// Reproduces Table 5-1: overhead comparison for one period at the
// paper's 1 GB / 128 MB / 1 KB configuration, ĉ = 4, Z = 4.
//
// Two columns per row: the closed-form values of §5.1 (which the paper
// tabulates) and a cross-check measured from a full simulated period.
#include <cmath>
#include <iostream>

#include "analysis/theoretical.h"
#include "common.h"
#include "sim/profiles.h"
#include "util/math.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  constexpr std::uint64_t big_n = 1 << 20;  // 1 GB of 1 KB blocks
  constexpr std::uint64_t n = 1 << 17;      // 128 MB
  constexpr double c_hat = 4.0;
  constexpr std::uint64_t block = 1024;

  // ------------------------------------------------------ analytic side
  const double level_memory = std::log2(static_cast<double>(n) / 4.0);
  const double level_storage = std::log2(2.0 * big_n / n);
  const auto period = analysis::horam_period_overhead(big_n, n, c_hat,
                                                      block);
  const auto path_io = analysis::path_oram_io_per_request(big_n, n, 4.0);
  const std::uint64_t requests_per_period =
      analysis::requests_per_period(n, c_hat);

  std::cout << "=== Table 5-1: overhead comparison for one period "
               "(1 GB data, 128 MB memory, 1 KB block) ===\n";
  util::text_table table({"Row", "H-ORAM", "Path ORAM", "Paper (H-ORAM)",
                          "Paper (Path ORAM)"});
  table.add_row({"Storage/Memory Size",
                 "1 GB / 128 MB (+slack, see below)",
                 "1.875 GB / 128 MB", "1GB / 128 MB",
                 "1.875GB / 128 MB"});
  table.add_row({"Path ORAM level",
                 util::format_double(level_memory, 0),
                 util::format_double(level_memory, 0) + " + " +
                     util::format_double(level_storage, 0),
                 "16", "16 + 4"});
  table.add_row({"Requests Serviced",
                 util::format_count(requests_per_period),
                 util::format_count(n / 2), "262,144", "65,536"});
  table.add_row({"Access Overhead",
                 util::format_double(period.access_read_kb, 0) +
                     " KB (read)",
                 util::format_double(path_io.reads, 0) + " KB (read) + " +
                     util::format_double(path_io.writes, 0) +
                     " KB (write)",
                 "1KB (read)", "16 KB (read) + 16 KB (write)"});
  table.add_row({"Shuffle Overhead",
                 util::format_double(period.shuffle_read_gb, 3) +
                     " GB (read) + " +
                     util::format_double(period.shuffle_write_gb, 0) +
                     " GB (write)",
                 "N/A", "0.875 GB (read) + 1 GB (write)", "N/A"});
  table.add_row({"Average Overhead",
                 util::format_double(period.average_read_kb, 1) +
                     " KB (read) + " +
                     util::format_double(period.average_write_kb, 0) +
                     " KB (write)",
                 util::format_double(path_io.reads, 0) + " KB (read) + " +
                     util::format_double(path_io.writes, 0) +
                     " KB (write)",
                 "4.5 KB (read) + 4KB (write)",
                 "16 KB (read) + 16 KB (write)"});
  table.print(std::cout);

  // ------------------------------------------------- simulated check
  // Run exactly one access period at the full 1 GB geometry and report
  // what the devices actually moved.
  std::cout << "\nSimulated cross-check (one full period, uniform "
               "all-miss stream):\n";
  dataset data;
  data.data_bytes = util::gib;
  data.memory_bytes = 128 * util::mib;

  client ctrl = client_builder()
                    .blocks(data.block_count())
                    .memory_blocks(data.memory_blocks())
                    .payload_bytes(data.payload_bytes)
                    .logical_block_bytes(data.block_bytes)
                    .seal(false)
                    .seed(7)
                    .build();

  // Drive exactly period_loads cycles with an all-miss uniform stream
  // (every request distinct), so one period completes.
  std::vector<request> stream;
  stream.reserve(ctrl.config().period_loads());
  for (std::uint64_t i = 0; i < ctrl.config().period_loads(); ++i) {
    stream.push_back(request{oram::op_kind::read, i, 0, {}});
  }
  ctrl.run(stream);

  const auto& io = ctrl.storage_device().stats();
  util::text_table sim_table({"Measured quantity", "Value", "Analytic"});
  sim_table.add_row({"Period storage reads (loads)",
                     util::format_count(ctrl.stats().cycles),
                     util::format_count(n / 2)});
  sim_table.add_row(
      {"Shuffle bytes read",
       util::format_bytes(io.bytes_read - ctrl.stats().cycles * block),
       util::format_bytes(static_cast<std::uint64_t>(
           period.shuffle_read_gb * 1024.0 * util::mib))});
  sim_table.add_row({"Shuffle bytes written",
                     util::format_bytes(io.bytes_written),
                     util::format_bytes(static_cast<std::uint64_t>(
                         period.shuffle_write_gb * 1024.0 * util::mib))});
  sim_table.add_row({"Physical storage footprint",
                     util::format_bytes(ctrl.backend().physical_bytes()),
                     "1 GB (paper ignores partition slack)"});
  sim_table.print(std::cout);
  std::cout << "(Our shuffle moves the physical footprint including the "
               "partition slack dummies;\n the paper's 0.875 GB counts "
               "only live cold data.)\n";
  return 0;
}
