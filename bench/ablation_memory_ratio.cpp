// Measured-vs-theory overlay for Figure 5-1: sweep the storage/memory
// ratio N/n end to end (fixed 64 MB dataset, shrinking memory) and
// compare the measured I/O-overhead reduction with Eqs 5-3/5-4 at the
// realised c-hat. This validates that the closed-form model actually
// predicts the simulator — the strongest internal-consistency check the
// repository offers.
#include <iostream>

#include "analysis/theoretical.h"
#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  const machine hw = paper_machine();
  workload_recipe recipe;
  // Long enough that even the largest memory completes shuffle periods,
  // so the measured numbers include amortised shuffle cost like Eq 5-4.
  recipe.request_count = 60000;

  std::cout << "=== Measured vs theoretical gain across N/n (64 MB "
               "dataset) ===\n";
  util::text_table table({"N/n", "c-hat (measured)", "I/O reduction",
                          "I/O-time gain (measured)",
                          "Gain (Eq 5-3/5-4 at c-hat)",
                          "Total speedup"});
  for (const std::uint64_t ratio : {4ULL, 8ULL, 16ULL, 32ULL}) {
    dataset data;
    data.data_bytes = 64 * util::mib;
    data.memory_bytes = data.data_bytes / ratio;

    const system_run horam_run = run_horam(data, recipe, hw);
    const system_run path_run = run_tree_top_path(data, recipe, hw);

    const double measured_speedup =
        static_cast<double>(path_run.total_time) /
        static_cast<double>(horam_run.total_time);
    // Apples-to-apples with the equations: storage-device busy time
    // per request (loads + shuffle traffic), H-ORAM vs baseline.
    const double measured_io_gain =
        static_cast<double>(path_run.io_busy) /
        static_cast<double>(horam_run.io_busy);
    const double theory = analysis::theoretical_gain(
        static_cast<double>(ratio), horam_run.avg_c, 4.0, 102.7e6,
        55.2e6);
    table.add_row(
        {std::to_string(ratio), util::format_double(horam_run.avg_c, 2),
         util::format_double(static_cast<double>(path_run.io_accesses) /
                                 static_cast<double>(
                                     horam_run.io_accesses),
                             2) +
             "x",
         util::format_double(measured_io_gain, 1) + "x",
         util::format_double(theory, 1) + "x",
         util::format_double(measured_speedup, 1) + "x"});
  }
  table.print(std::cout);
  std::cout << "Both columns fall together as N/n grows — Figure 5-1's "
               "shape. Measured gains run\n~2x above the equations "
               "because Eqs 5-3/5-4 count block volumes only: the "
               "baseline\nalso pays ~8 seeks per request while H-ORAM "
               "pays one (and none while shuffling\nsequentially) — "
               "the very effect §5.2 highlights on HDDs.\n";
  return 0;
}
