// Ablation for the Ring ORAM backend (src/oram/ring/): storage-device
// operations and bytes per logical request, swept over the bucket
// geometry (Z real slots x S spare dummies) and device profile, with
// the Path ORAM backend as the per-profile control.
//
// Path reads and rewrites every slot of every bucket on the accessed
// path, so its device bill per request is 2 x levels x Z blocks. Ring
// reads exactly one slot per path bucket online (the real block where
// the target lives, a fresh dummy everywhere else) and, with the XOR
// read mode on, combines the whole path into one device op carrying
// one block's worth of bytes; evictions and early reshuffles move the
// remaining traffic into batched background sweeps amortised over the
// eviction rate A. Device ops and bytes per request are therefore the
// headline columns: ring must come in strictly below path on every
// profile, and the byte gap is widest on the paper's HDD profile where
// XOR turns a levels-deep read into a single seek + one-block
// transfer. An XOR-off row of the default geometry isolates how much
// of the win is the combined fetch vs the one-slot-per-bucket reads.
//
// Every run writes BENCH_ring.json to the working directory so the
// trajectory is machine-readable (CI uploads it as an artifact);
// `--json` additionally emits the document to stdout instead of the
// table and `--small` shrinks the sweep for smoke runs.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

/// One ring bucket geometry of the sweep. The spare budget S tracks Z
/// (unread dummies must outlast the reads between reshuffles) and the
/// eviction rate A stays proportional so the background sweep
/// amortisation is comparable across rows.
struct ring_geometry {
  std::uint32_t z = 0;
  std::uint32_t s = 0;
  std::uint32_t a = 0;
};

std::vector<ring_geometry> geometries(bool small) {
  if (small) {
    return {{16, 25, 20}};
  }
  return {{8, 13, 10}, {16, 25, 20}, {32, 49, 40}};
}

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 32 * util::mib;
  data.memory_bytes = options.small ? 1 * util::mib : 4 * util::mib;
  const workload_recipe recipe = bench_recipe(options, 3000, 20000);

  const std::vector<sim::device_profile> profiles =
      bench_storage_profiles(options);
  const std::vector<ring_geometry> rows = geometries(options.small);

  if (!options.json) {
    std::cout << "=== Ablation: ring geometry (Z x S) x device profile, "
                 "path control ("
              << util::format_bytes(data.data_bytes) << " dataset, "
              << util::format_count(recipe.request_count)
              << " requests) ===\n";
  }

  std::string json = "{\n  \"bench\": \"ablation_ring\",\n  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Profile", "Backend", "Z", "S", "A", "XOR",
                          "Online ops/req", "Online B/req",
                          "Online ops vs path", "Online B vs path",
                          "Total B/req", "Total B vs path", "Sim total"});

  for (const sim::device_profile& profile : profiles) {
    const machine hw{profile, sim::dram_ddr4(), sim::cpu_aesni()};

    double path_online_ops = 0.0;
    double path_online_bytes = 0.0;
    double path_total_bytes = 0.0;
    const auto emit = [&](const system_run& run, std::string_view backend,
                          const ring_geometry& geometry, bool xor_reads) {
      const double requests =
          static_cast<double>(std::max<std::uint64_t>(1, run.requests));
      const double online_ops =
          static_cast<double>(run.online_device_ops()) / requests;
      const double online_bytes =
          static_cast<double>(run.online_device_bytes()) / requests;
      const double total_bytes =
          static_cast<double>(run.device_read_bytes +
                              run.device_write_bytes) /
          requests;
      if (backend == "path") {
        path_online_ops = online_ops;
        path_online_bytes = online_bytes;
        path_total_bytes = total_bytes;
      }
      // Path is the control of each profile; the reduction columns are
      // how many path device ops (bytes) one ring op (byte) replaces.
      const auto reduction = [](double path_value, double value) {
        return value > 0.0 ? path_value / value : 0.0;
      };
      const double online_op_reduction = reduction(path_online_ops,
                                                   online_ops);
      const double online_byte_reduction = reduction(path_online_bytes,
                                                     online_bytes);
      const double total_byte_reduction = reduction(path_total_bytes,
                                                    total_bytes);
      const bool ring = backend == "ring";
      table.add_row(
          {std::string(profile.name), std::string(backend),
           ring ? std::to_string(geometry.z) : "-",
           ring ? std::to_string(geometry.s) : "-",
           ring ? std::to_string(geometry.a) : "-",
           ring ? (xor_reads ? "on" : "off") : "-",
           util::format_double(online_ops, 2),
           util::format_bytes(static_cast<std::uint64_t>(online_bytes)),
           util::format_double(online_op_reduction, 2) + "x",
           util::format_double(online_byte_reduction, 2) + "x",
           util::format_bytes(static_cast<std::uint64_t>(total_bytes)),
           util::format_double(total_byte_reduction, 2) + "x",
           util::format_time_ns(run.total_time)});
      if (!first_run) {
        json += ",\n";
      }
      first_run = false;
      json += "    {\"storage_profile\": " + json_escape(profile.name) +
              ", \"backend\": " + json_escape(backend) +
              ", \"ring_z\": " + std::to_string(ring ? geometry.z : 0) +
              ", \"ring_s\": " + std::to_string(ring ? geometry.s : 0) +
              ", \"ring_a\": " + std::to_string(ring ? geometry.a : 0) +
              ", \"ring_xor\": " +
              (ring && xor_reads ? std::string("true")
                                 : std::string("false")) +
              ", \"online_device_ops_per_request\": " +
              json_number(online_ops) +
              ", \"online_device_bytes_per_request\": " +
              json_number(online_bytes) +
              ", \"device_bytes_per_request\": " +
              json_number(total_bytes) +
              ", \"online_op_reduction_vs_path\": " +
              json_number(online_op_reduction) +
              ", \"online_byte_reduction_vs_path\": " +
              json_number(online_byte_reduction) +
              ", \"byte_reduction_vs_path\": " +
              json_number(total_byte_reduction) + ", " +
              json_fields(run) + "}";
    };

    const system_run path_run = run_horam(data, recipe, hw,
                                          /*config_tweak=*/{},
                                          backend_kind::path);
    emit(path_run, "path", {}, false);

    for (const ring_geometry& geometry : rows) {
      // XOR off only for the default geometry: one row isolates the
      // combined-fetch contribution without doubling the whole sweep.
      const bool sweep_xor_off = geometry.z == 16 && !options.small;
      for (const bool xor_reads :
           sweep_xor_off ? std::vector<bool>{true, false}
                         : std::vector<bool>{true}) {
        const system_run run = run_horam(
            data, recipe, hw,
            [geometry, xor_reads](horam_config& config) {
              config.ring_bucket_size = geometry.z;
              config.ring_spare_slots = geometry.s;
              config.ring_eviction_rate = geometry.a;
              config.ring_xor = xor_reads;
            },
            backend_kind::ring);
        emit(run, "ring", geometry, xor_reads);
      }
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_ring.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "Path pays 2 x levels x Z blocks of online device traffic "
           "per request; ring\nreads one slot per path bucket and, "
           "with XOR on, ships the whole online read\nas a single "
           "device op carrying one block — evictions and early "
           "reshuffles\nbatch the rest into background sweeps "
           "(amortised over A; the Total columns\ninclude them). The "
           "XOR-off row isolates the combined fetch: the op "
           "reduction\nlives there, the online byte reduction is the "
           "one-real-block read itself.\n(wrote BENCH_ring.json)\n";
  }
  return 0;
}
