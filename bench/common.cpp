#include "common.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "oram/path/path_oram.h"
#include "sim/profiles.h"
#include "util/math.h"
#include "util/table.h"
#include "util/units.h"

namespace horam::bench {

namespace {

std::vector<request> make_stream(const dataset& data,
                                 const workload_recipe& recipe) {
  util::pcg64 rng(recipe.seed);
  workload::stream_config stream;
  stream.request_count = recipe.request_count;
  stream.block_count = data.block_count();
  stream.write_fraction = 0.0;  // reads and writes cost the same here
  stream.payload_bytes = data.payload_bytes;
  return workload::hotspot(rng, stream, recipe.hot_probability,
                           recipe.hot_region_fraction);
}

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// --threads from the CLI, applied to every run_horam in the process so
/// existing benches run threaded without touching their run matrices.
std::uint32_t g_cli_threads = 0;

}  // namespace

machine paper_machine() {
  return machine{sim::hdd_paper(), sim::dram_ddr4(), sim::cpu_aesni()};
}

bench_options parse_bench_args(int argc, char** argv) {
  bench_options options;
  const auto count_flag = [&](int& i, std::string_view flag) {
    if (i + 1 >= argc) {
      std::cerr << flag << " needs a value (an integer >= 1)\n";
      std::exit(2);
    }
    char* end = nullptr;
    const unsigned long long value = std::strtoull(argv[++i], &end, 10);
    if (end == nullptr || *end != '\0' || value == 0) {
      std::cerr << flag << " got '" << argv[i]
                << "' (expected an integer >= 1)\n";
      std::exit(2);
    }
    return static_cast<std::uint64_t>(value);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--small") {
      options.small = true;
    } else if (arg == "--threads") {
      options.threads =
          static_cast<std::uint32_t>(count_flag(i, "--threads"));
    } else if (arg == "--requests") {
      options.requests = count_flag(i, "--requests");
    } else if (arg == "--profile") {
      if (i + 1 >= argc) {
        std::cerr << "--profile needs a name "
                     "(hdd | hdd-raw | ssd | nvme | net-remote | dram)\n";
        std::exit(2);
      }
      options.profile = argv[++i];
      try {
        (void)storage_profile_by_name(options.profile);
      } catch (const contract_error&) {
        std::cerr << "--profile got '" << options.profile
                  << "' (supported: hdd hdd-raw ssd nvme net-remote "
                     "dram)\n";
        std::exit(2);
      }
    } else {
      std::cerr << "unknown flag '" << arg
                << "' (supported: --json --small --threads N "
                   "--profile NAME --requests N)\n";
      std::exit(2);
    }
  }
  g_cli_threads = options.threads;
  return options;
}

std::uint64_t bench_request_count(const bench_options& options,
                                  std::uint64_t small_requests,
                                  std::uint64_t full_requests) {
  if (options.requests > 0) {
    return options.requests;
  }
  return options.small ? small_requests : full_requests;
}

workload_recipe bench_recipe(const bench_options& options,
                             std::uint64_t small_requests,
                             std::uint64_t full_requests) {
  workload_recipe recipe;
  recipe.request_count =
      bench_request_count(options, small_requests, full_requests);
  return recipe;
}

std::vector<sim::device_profile> bench_storage_profiles(
    const bench_options& options) {
  if (!options.profile.empty()) {
    return {storage_profile_by_name(options.profile)};
  }
  if (options.small) {
    return {sim::hdd_paper(), sim::dram_ddr4()};
  }
  return {sim::hdd_paper(), sim::hdd_7200_raw(), sim::ssd_sata(),
          sim::dram_ddr4()};
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  std::ostringstream out;
  out << value;
  return out.str();
}

std::string json_fields(const system_run& run) {
  std::ostringstream out;
  const double throughput =
      run.total_time > 0 ? static_cast<double>(run.requests) * 1e9 /
                               static_cast<double>(run.total_time)
                         : 0.0;
  out << "\"name\": " << json_escape(run.name)
      << ", \"requests\": " << run.requests
      << ", \"io_accesses\": " << run.io_accesses
      << ", \"avg_io_latency_us\": " << json_number(run.avg_io_latency_us)
      << ", \"shuffle_time_ns\": " << run.shuffle_time
      << ", \"shuffle_count\": " << run.shuffle_count
      << ", \"total_time_ns\": " << run.total_time
      << ", \"io_busy_ns\": " << run.io_busy
      << ", \"throughput_rps\": " << json_number(throughput)
      << ", \"hit_rate\": " << json_number(run.hit_rate)
      << ", \"avg_c\": " << json_number(run.avg_c)
      << ", \"storage_bytes\": " << run.storage_bytes
      << ", \"device_read_ops\": " << run.device_read_ops
      << ", \"device_write_ops\": " << run.device_write_ops
      << ", \"device_read_bytes\": " << run.device_read_bytes
      << ", \"device_write_bytes\": " << run.device_write_bytes
      << ", \"shuffle_device_read_ops\": " << run.shuffle_device_read_ops
      << ", \"shuffle_device_write_ops\": "
      << run.shuffle_device_write_ops
      << ", \"shuffle_device_read_bytes\": "
      << run.shuffle_device_read_bytes
      << ", \"shuffle_device_write_bytes\": "
      << run.shuffle_device_write_bytes
      << ", \"device_round_trips\": " << run.device_round_trips
      << ", \"shuffle_device_round_trips\": "
      << run.shuffle_device_round_trips
      << ", \"online_round_trips\": " << run.online_round_trips()
      << ", \"round_trips_per_request\": "
      << json_number(run.requests > 0
                         ? static_cast<double>(run.online_round_trips()) /
                               static_cast<double>(run.requests)
                         : 0.0)
      << ", \"online_device_ops\": " << run.online_device_ops()
      << ", \"online_device_bytes\": " << run.online_device_bytes()
      << ", \"host_seconds\": " << json_number(run.host_seconds)
      << ", \"latency_p50_ns\": " << run.latency_p50
      << ", \"latency_p95_ns\": " << run.latency_p95
      << ", \"latency_p99_ns\": " << run.latency_p99
      << ", \"latency_max_ns\": " << run.latency_max
      << ", \"shuffle_slices\": " << run.shuffle_slices
      << ", \"shuffle_stall_ns\": " << run.shuffle_stall_time
      << ", \"runtime\": " << json_escape(run.runtime)
      << ", \"threads\": " << run.threads
      << ", \"wall_seconds\": " << json_number(run.wall_seconds);
  return out.str();
}

system_run run_horam(
    const dataset& data, const workload_recipe& recipe, const machine& hw,
    const std::function<void(horam_config&)>& config_tweak,
    backend_kind backend) {
  const auto start = std::chrono::steady_clock::now();

  client_builder builder;
  builder.blocks(data.block_count())
      .memory_blocks(data.memory_blocks())
      .payload_bytes(data.payload_bytes)
      .logical_block_bytes(data.block_bytes)
      .storage_profile(hw.storage)
      .memory_profile(hw.memory)
      .cpu(hw.cpu)
      .backend(backend)
      .seal(false)  // modelled crypto time; full runs stay fast
      .seed(recipe.seed ^ 0x605a);
  if (g_cli_threads > 0) {
    // CLI-wide threading; a per-run config_tweak setting the runtime
    // itself still wins (tweaks apply later, inside build()).
    builder.threads(g_cli_threads);
  }
  if (config_tweak) {
    builder.config_tweak(config_tweak);
  }

  client ctrl = builder.build();
  const std::vector<request> stream = make_stream(data, recipe);
  const auto stream_start = std::chrono::steady_clock::now();
  ctrl.run(stream);
  const double wall_seconds = seconds_since(stream_start);

  const controller_stats& stats = ctrl.stats();
  system_run run;
  run.name = backend == backend_kind::partitioned
                 ? "H-ORAM"
                 : "H-ORAM/" + std::string(backend_name(backend));
  run.requests = stats.requests;
  run.io_accesses = stats.cycles;
  run.avg_io_latency_us = stats.average_io_latency_us();
  run.shuffle_time = stats.shuffle_time;
  run.shuffle_count = stats.periods;
  run.total_time = stats.total_time;
  run.io_busy = stats.io_busy;
  run.hit_rate = static_cast<double>(stats.hits) /
                 static_cast<double>(std::max<std::uint64_t>(
                     1, stats.requests));
  run.avg_c = stats.average_c();
  // Whole-machine footprint: every shard's store counts.
  run.storage_bytes = 0;
  for (std::uint32_t s = 0; s < ctrl.eng().shard_count(); ++s) {
    run.storage_bytes += ctrl.eng().shard(s).backend().physical_bytes();
    const sim::io_stats& device = ctrl.eng().shard_storage(s).stats();
    run.device_read_ops += device.read_ops;
    run.device_write_ops += device.write_ops;
    run.device_read_bytes += device.bytes_read;
    run.device_write_bytes += device.bytes_written;
    run.device_round_trips += device.round_trips;
  }
  run.shuffle_device_read_ops = stats.shuffle_device_read_ops;
  run.shuffle_device_write_ops = stats.shuffle_device_write_ops;
  run.shuffle_device_read_bytes = stats.shuffle_device_read_bytes;
  run.shuffle_device_write_bytes = stats.shuffle_device_write_bytes;
  run.shuffle_device_round_trips = stats.shuffle_device_round_trips;
  run.latency_p50 = stats.request_latency.p50();
  run.latency_p95 = stats.request_latency.p95();
  run.latency_p99 = stats.request_latency.p99();
  run.latency_max = stats.request_latency.max();
  run.shuffle_slices = stats.shuffle_slices;
  run.shuffle_stall_time = stats.shuffle_stall_time;
  run.runtime = std::string(runtime_policy_name(ctrl.config().runtime));
  run.threads = ctrl.eng().worker_threads();
  run.wall_seconds = wall_seconds;
  run.host_seconds = seconds_since(start);
  return run;
}

system_run run_tree_top_path(const dataset& data,
                             const workload_recipe& recipe,
                             const machine& hw) {
  const auto start = std::chrono::steady_clock::now();

  sim::block_device storage_device(hw.storage);
  sim::block_device memory_device(hw.memory);
  const sim::cpu_model cpu(hw.cpu);
  util::pcg64 rng(recipe.seed ^ 0x7061);

  // Tree sized for 2N blocks (<= 50% utilisation, §2.1.2); top levels
  // fill the memory budget, the rest live on storage.
  const std::uint64_t n_blocks = data.block_count();
  oram::path_oram_config config;
  config.bucket_size = 4;
  config.leaf_count =
      util::next_pow2(2 * n_blocks) / (2 * config.bucket_size);
  config.payload_bytes = data.payload_bytes;
  config.logical_block_bytes = data.block_bytes;
  config.id_universe = n_blocks;
  config.seal = false;
  const std::uint64_t memory_bucket_budget =
      data.memory_blocks() / config.bucket_size;
  config.memory_levels = static_cast<std::uint32_t>(
      util::floor_log2(memory_bucket_budget + 1));

  oram::path_oram oram(config, memory_device, &storage_device, cpu, rng,
                       nullptr);
  oram.initialize_full(n_blocks,
                       [](oram::block_id, std::span<std::uint8_t>) {});
  storage_device.reset_stats();
  memory_device.reset_stats();

  const std::vector<request> stream = make_stream(data, recipe);
  const auto stream_start = std::chrono::steady_clock::now();
  sim::sim_time total = 0;
  sim::sim_time io_total = 0;
  for (const request& req : stream) {
    // Serial device usage: a path access walks levels in order.
    const oram::cost_split cost =
        oram.access(req.op, req.id, req.write_data, {});
    total += cost.total();
    io_total += cost.io;
  }

  system_run run;
  run.name = "Path ORAM (tree-top cache)";
  run.requests = stream.size();
  run.io_accesses = stream.size();  // every access touches storage
  run.avg_io_latency_us = static_cast<double>(io_total) / 1e3 /
                          static_cast<double>(stream.size());
  run.shuffle_time = 0;
  run.shuffle_count = 0;
  run.total_time = total;
  run.io_busy = io_total;
  run.hit_rate = 0.0;
  run.avg_c = 1.0;
  // Physical tree footprint: all buckets at the logical block size.
  run.storage_bytes = (2 * config.leaf_count - 1) * config.bucket_size *
                      data.block_bytes;
  run.device_read_ops = storage_device.stats().read_ops;
  run.device_write_ops = storage_device.stats().write_ops;
  run.device_read_bytes = storage_device.stats().bytes_read;
  run.device_write_bytes = storage_device.stats().bytes_written;
  run.device_round_trips = storage_device.stats().round_trips;
  run.wall_seconds = seconds_since(stream_start);
  run.host_seconds = seconds_since(start);
  return run;
}

void print_comparison(const std::string& title, const system_run& horam,
                      const system_run& path,
                      const std::optional<paper_reference>& paper) {
  std::cout << "\n=== " << title << " ===\n";
  util::text_table table(
      paper.has_value()
          ? std::vector<std::string>{"Metric", "H-ORAM (sim)",
                                     "H-ORAM (paper)", "Path ORAM (sim)",
                                     "Path ORAM (paper)"}
          : std::vector<std::string>{"Metric", "H-ORAM (sim)",
                                     "Path ORAM (sim)"});

  const auto row = [&](const std::string& metric, const std::string& h,
                       const std::string& h_paper, const std::string& p,
                       const std::string& p_paper) {
    if (paper.has_value()) {
      table.add_row({metric, h, h_paper, p, p_paper});
    } else {
      table.add_row({metric, h, p});
    }
  };

  const auto ms = [](double v) {
    return util::format_double(v, 0) + " ms";
  };
  row("Number of I/O Access", util::format_count(horam.io_accesses),
      paper ? util::format_count(
                  static_cast<std::uint64_t>(paper->horam_io_accesses))
            : "",
      util::format_count(path.io_accesses),
      paper ? util::format_count(
                  static_cast<std::uint64_t>(paper->path_io_accesses))
            : "");
  row("I/O Latency",
      util::format_double(horam.avg_io_latency_us, 0) + " us",
      paper ? util::format_double(paper->horam_io_latency_us, 0) + " us"
            : "",
      util::format_double(path.avg_io_latency_us, 0) + " us",
      paper ? util::format_double(paper->path_io_latency_us, 0) + " us"
            : "");
  row("Shuffle Time",
      util::format_time_ns(horam.shuffle_time) + " * " +
          std::to_string(horam.shuffle_count),
      paper ? ms(paper->horam_shuffle_ms) : "", "N/A",
      paper ? "N/A" : "");
  row("Total Time", util::format_time_ns(horam.total_time),
      paper ? ms(paper->horam_total_ms) : "",
      util::format_time_ns(path.total_time),
      paper ? ms(paper->path_total_ms) : "");
  row("Storage Size", util::format_bytes(horam.storage_bytes), "",
      util::format_bytes(path.storage_bytes), "");
  table.print(std::cout);

  const double speedup = static_cast<double>(path.total_time) /
                         static_cast<double>(horam.total_time);
  std::cout << "Speedup (total time): " << util::format_double(speedup, 1)
            << "x";
  if (paper.has_value()) {
    std::cout << "   [paper: "
              << util::format_double(
                     paper->path_total_ms / paper->horam_total_ms, 1)
              << "x]";
  }
  std::cout << "\nH-ORAM hit rate: "
            << util::format_double(100.0 * horam.hit_rate, 1)
            << " %, average c-hat: "
            << util::format_double(horam.avg_c, 2)
            << ", I/O reduction: "
            << util::format_double(static_cast<double>(path.io_accesses) /
                                       static_cast<double>(
                                           horam.io_accesses),
                                   2)
            << "x\n";
  std::cout << "(host simulation time: "
            << util::format_double(horam.host_seconds, 1) << " s + "
            << util::format_double(path.host_seconds, 1) << " s)\n";
}

}  // namespace horam::bench
