// Backend matrix: the same hotspot workload through every pluggable
// oblivious store — H-ORAM's partitioned layer, the sqrt ORAM with
// Melbourne reshuffles, the partition ORAM with isolated shuffles, and
// the Path ORAM tree with a recursive position map — on the paper's
// calibrated machine. The point of the cacheable interface is that this
// whole table is one builder argument; the numbers show what each
// scheme's shuffle machinery (or, for Path ORAM, per-access tree walk)
// costs behind an identical cache, scheduler and workload.
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  const machine hw = paper_machine();
  workload_recipe recipe;
  recipe.request_count = 40000;

  dataset data;
  data.data_bytes = 32 * util::mib;
  data.memory_bytes = 4 * util::mib;

  std::cout << "=== One workload, four oblivious stores (32 MB dataset, "
               "1/8 memory) ===\n";
  util::text_table table({"Backend", "I/O accesses", "I/O latency",
                          "Shuffle time", "Storage bytes", "Total time",
                          "vs partitioned"});
  sim::sim_time partitioned_total = 0;
  for (const backend_kind kind : all_backend_kinds) {
    const system_run run =
        run_horam(data, recipe, hw, /*config_tweak=*/{}, kind);
    if (kind == backend_kind::partitioned) {
      partitioned_total = run.total_time;
    }
    table.add_row(
        {std::string(backend_name(kind)),
         util::format_count(run.io_accesses),
         util::format_double(run.avg_io_latency_us, 1) + " us",
         util::format_time_ns(run.shuffle_time),
         util::format_bytes(run.storage_bytes),
         util::format_time_ns(run.total_time),
         util::format_double(static_cast<double>(run.total_time) /
                                 static_cast<double>(partitioned_total),
                             2) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "The flat backends pay their cost in shuffle passes; the "
               "path backend pays it\nper access (log N bucket walk + "
               "recursive map) — the trade the paper's Figure\n3-1 "
               "frames, now measured behind one interface.\n";
  return 0;
}
