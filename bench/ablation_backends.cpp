// Backend matrix: the same hotspot workload through every pluggable
// oblivious store — H-ORAM's partitioned layer, the sqrt ORAM with
// Melbourne reshuffles, the partition ORAM with isolated shuffles, the
// Path ORAM tree with a recursive position map, and the Ring ORAM tree
// with one-slot-per-bucket online reads — on the paper's calibrated
// machine. The point of the cacheable interface is that this whole
// table is one builder argument; the numbers show what each scheme's
// shuffle machinery (or, for the tree backends, per-access walk) costs
// behind an identical cache, scheduler and workload.
//
// Every run writes BENCH_backends.json to the working directory so the
// trajectory is machine-readable (CI uploads it as an artifact);
// `--json` additionally emits the document to stdout instead of the
// table and `--small` shrinks the dataset for smoke runs.
#include <fstream>
#include <iostream>
#include <string>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace horam;
  using namespace horam::bench;

  const bench_options options = parse_bench_args(argc, argv);

  const machine hw = paper_machine();
  const workload_recipe recipe = bench_recipe(options, 6000, 40000);

  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 32 * util::mib;
  data.memory_bytes = data.data_bytes / 8;

  if (!options.json) {
    std::cout << "=== One workload, five oblivious stores ("
              << util::format_bytes(data.data_bytes) << " dataset, 1/8 "
              << "memory, "
              << util::format_count(recipe.request_count)
              << " requests) ===\n";
  }
  std::string json = "{\n  \"bench\": \"ablation_backends\",\n"
                     "  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Backend", "I/O accesses", "I/O latency",
                          "Shuffle time", "Device ops", "Device bytes",
                          "Storage bytes", "Total time",
                          "vs partitioned"});
  sim::sim_time partitioned_total = 0;
  for (const backend_kind kind : all_backend_kinds) {
    const system_run run =
        run_horam(data, recipe, hw, /*config_tweak=*/{}, kind);
    if (kind == backend_kind::partitioned) {
      partitioned_total = run.total_time;
    }
    table.add_row(
        {std::string(backend_name(kind)),
         util::format_count(run.io_accesses),
         util::format_double(run.avg_io_latency_us, 1) + " us",
         util::format_time_ns(run.shuffle_time),
         util::format_count(run.device_read_ops + run.device_write_ops),
         util::format_bytes(run.device_read_bytes +
                            run.device_write_bytes),
         util::format_bytes(run.storage_bytes),
         util::format_time_ns(run.total_time),
         util::format_double(static_cast<double>(run.total_time) /
                                 static_cast<double>(partitioned_total),
                             2) +
             "x"});
    if (!first_run) {
      json += ",\n";
    }
    first_run = false;
    json += "    {\"backend\": " + json_escape(backend_name(kind)) +
            ", " + json_fields(run) + "}";
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_backends.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout << "The flat backends pay their cost in shuffle passes; "
                 "the tree backends pay it\nper access — path walks "
                 "whole buckets, ring reads one slot per bucket (XOR-"
                 "\ncombined) and pays eviction/reshuffle sweeps in the "
                 "background — the trade the\npaper's Figure 3-1 "
                 "frames, now measured behind one interface.\n"
                 "(wrote BENCH_backends.json)\n";
  }
  return 0;
}
