// Shared machinery of the benchmark harnesses: end-to-end runners for
// H-ORAM and the tree-top-cache Path ORAM baseline, plus row/report
// helpers that print the paper's tables next to our measured values.
#ifndef HORAM_BENCH_COMMON_H
#define HORAM_BENCH_COMMON_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "horam.h"

namespace horam::bench {

/// Devices and CPU of one simulated machine (paper Table 5-2 analogue).
struct machine {
  sim::device_profile storage;
  sim::device_profile memory;
  sim::cpu_profile cpu;
};

/// The paper's experimental machine, calibrated (see sim/profiles.h).
machine paper_machine();

/// One end-to-end run's results (rows of Tables 5-3 / 5-4).
struct system_run {
  std::string name;
  std::uint64_t requests = 0;
  /// Request-level I/O count: the paper's "Number of I/O Access".
  std::uint64_t io_accesses = 0;
  double avg_io_latency_us = 0.0;
  sim::sim_time shuffle_time = 0;
  std::uint64_t shuffle_count = 0;
  sim::sim_time total_time = 0;
  /// Storage-device busy time, including shuffle traffic (the measured
  /// counterpart of Eqs 5-3/5-4's I/O overhead).
  sim::sim_time io_busy = 0;
  double hit_rate = 0.0;
  double avg_c = 0.0;
  std::uint64_t storage_bytes = 0;
  double host_seconds = 0.0;  // real time spent simulating
  /// Per-request service-latency tail (controller_stats::
  /// request_latency: ROB entry to retirement, shuffle charges
  /// included) — what the deamortized shuffle pipeline improves.
  sim::sim_time latency_p50 = 0;
  sim::sim_time latency_p95 = 0;
  sim::sim_time latency_p99 = 0;
  sim::sim_time latency_max = 0;
  /// Incremental shuffle slices pumped / foreground stall paying off an
  /// unfinished job (shuffle_policy::incremental only).
  std::uint64_t shuffle_slices = 0;
  sim::sim_time shuffle_stall_time = 0;
  /// Execution runtime ("sim" / "threaded") and the worker threads
  /// actually spawned (0 under sim and for single-shard machines).
  std::string runtime = "sim";
  std::uint32_t threads = 0;
  /// Real time spent inside the request stream itself (excludes
  /// machine construction, unlike host_seconds) — the wall-clock
  /// number the threaded runtime moves while total_time stays put.
  double wall_seconds = 0.0;
  /// Storage-device operations issued during the stream, summed over
  /// shard lanes — what the page layout reduces (one op per path
  /// segment instead of one per bucket).
  std::uint64_t device_read_ops = 0;
  std::uint64_t device_write_ops = 0;
  /// Storage-device bytes moved during the stream, summed over shard
  /// lanes — what the ring backend's one-slot-per-bucket reads (and
  /// the XOR-combined fetch) reduce relative to full-bucket paths.
  std::uint64_t device_read_bytes = 0;
  std::uint64_t device_write_bytes = 0;
  /// The shuffle-period / shuffle-slice share of the device traffic
  /// above (controller_stats::shuffle_device_*); subtracting it leaves
  /// the online traffic of the access rounds.
  std::uint64_t shuffle_device_read_ops = 0;
  std::uint64_t shuffle_device_write_ops = 0;
  std::uint64_t shuffle_device_read_bytes = 0;
  std::uint64_t shuffle_device_write_bytes = 0;
  /// Dependency-aware request/response exchanges with the storage
  /// devices (sim::io_stats::round_trips, summed over shard lanes) and
  /// the shuffle machinery's share of them — what the hier backend's
  /// batched probes collapse to ≈1 per request while a recursive map
  /// walk pays one dependent trip per level.
  std::uint64_t device_round_trips = 0;
  std::uint64_t shuffle_device_round_trips = 0;

  /// Device ops / bytes of the access rounds only (totals minus the
  /// shuffle share) — the cost an interactive request actually waits
  /// on, and the headline the ring backend's one-slot online reads
  /// move. Saturating: a backend whose shuffles outpace the window's
  /// totals (impossible today) would read as zero, not wrap.
  [[nodiscard]] std::uint64_t online_device_ops() const {
    const std::uint64_t total = device_read_ops + device_write_ops;
    const std::uint64_t shuffle =
        shuffle_device_read_ops + shuffle_device_write_ops;
    return total > shuffle ? total - shuffle : 0;
  }
  [[nodiscard]] std::uint64_t online_device_bytes() const {
    const std::uint64_t total = device_read_bytes + device_write_bytes;
    const std::uint64_t shuffle =
        shuffle_device_read_bytes + shuffle_device_write_bytes;
    return total > shuffle ? total - shuffle : 0;
  }
  /// Round trips of the access rounds only (total minus the shuffle
  /// share) — the latency-critical chain an interactive request waits
  /// on. Saturating like the helpers above.
  [[nodiscard]] std::uint64_t online_round_trips() const {
    return device_round_trips > shuffle_device_round_trips
               ? device_round_trips - shuffle_device_round_trips
               : 0;
  }
};

/// Workload recipe shared by both systems (§5.2.1): hotspot stream with
/// 80% of requests in a hot region.
struct workload_recipe {
  std::uint64_t request_count = 0;
  double hot_probability = 0.8;
  /// Hot region size as a fraction of the dataset. The thesis does not
  /// report it; 0.017 back-solves from its measured I/O counts (7,228
  /// loads / 25,000 requests small; 129,235 / 500,000 large).
  double hot_region_fraction = 0.017;
  std::uint64_t seed = 2019;
};

/// Dataset geometry shared by both systems.
struct dataset {
  std::uint64_t data_bytes = 0;    // N * block
  std::uint64_t memory_bytes = 0;  // n * block
  std::uint64_t block_bytes = 1024;
  /// Bytes actually carried per block (timing still uses block_bytes);
  /// kept small so 1 GB-scale runs fit comfortably in host memory.
  std::size_t payload_bytes = 32;

  [[nodiscard]] std::uint64_t block_count() const {
    return data_bytes / block_bytes;
  }
  [[nodiscard]] std::uint64_t memory_blocks() const {
    return memory_bytes / block_bytes;
  }
};

/// Runs H-ORAM on the recipe; `config_tweak` (optional) edits the
/// derived horam_config before construction (policies, stages, ...) and
/// `backend` picks the oblivious store behind the controller.
system_run run_horam(
    const dataset& data, const workload_recipe& recipe,
    const machine& hw,
    const std::function<void(horam_config&)>& config_tweak = {},
    backend_kind backend = backend_kind::partitioned);

/// Runs the tree-top-cache Path ORAM baseline (Figure 3-1 a) on the
/// same recipe: 2N-block tree, top levels in memory, the rest on disk.
system_run run_tree_top_path(const dataset& data,
                             const workload_recipe& recipe,
                             const machine& hw);

// ----------------------------------------------------- CLI / JSON mode

/// Flags shared by the bench harnesses (parse with parse_bench_args).
struct bench_options {
  /// Emit machine-readable JSON instead of (or besides) the tables.
  bool json = false;
  /// Shrunken configuration for CI smoke runs.
  bool small = false;
  /// Worker threads for every H-ORAM run in the harness: 0 keeps the
  /// sim runtime, N > 0 selects runtime_policy::threaded with N
  /// workers. Applies through run_horam, so every existing ablation
  /// bench runs threaded without code changes; per-run config tweaks
  /// still win when they set the runtime themselves.
  std::uint32_t threads = 0;
  /// Restrict profile-sweeping benches to one storage profile
  /// (hdd | hdd-raw | ssd | nvme | net-remote | dram); empty sweeps
  /// the bench's own default list. Validated at parse time.
  std::string profile;
  /// Override the per-run request count; 0 keeps the bench's
  /// small/full defaults.
  std::uint64_t requests = 0;
};

/// Parses `--json`, `--small`, `--threads N`, `--profile NAME` and
/// `--requests N`; unknown flags (and unknown profile names) abort
/// with a usage message so CI failures are loud.
bench_options parse_bench_args(int argc, char** argv);

/// The bench's request count: the `--requests` override when given,
/// else the small/full default — the once-per-main
/// `options.small ? X : Y` request block, hoisted.
[[nodiscard]] std::uint64_t bench_request_count(
    const bench_options& options, std::uint64_t small_requests,
    std::uint64_t full_requests);

/// Workload recipe honoring `--requests` / `--small`, for benches whose
/// only per-mode recipe difference is the request count.
[[nodiscard]] workload_recipe bench_recipe(const bench_options& options,
                                           std::uint64_t small_requests,
                                           std::uint64_t full_requests);

/// Storage profiles a profile-sweeping bench should run: the
/// `--profile` singleton when given, else {hdd, dram} for `--small`
/// runs and {hdd, hdd-raw, ssd, dram} for full runs.
[[nodiscard]] std::vector<sim::device_profile> bench_storage_profiles(
    const bench_options& options);

/// JSON string literal with escaping.
std::string json_escape(std::string_view text);

/// A double as a JSON value: finite values print as-is, inf/nan become
/// `null` — std::to_string(inf) would emit "inf", which no JSON parser
/// accepts. Every double a bench emits must go through this.
std::string json_number(double value);

/// The run's metrics as JSON object *fields* (no braces), so callers
/// can prepend their own keys: `{"backend": "...", <json_fields(run)>}`.
std::string json_fields(const system_run& run);

/// Prints a Table 5-3/5-4 style comparison, with the paper's reference
/// numbers when provided.
struct paper_reference {
  double horam_io_accesses = 0;
  double horam_io_latency_us = 0;
  double horam_shuffle_ms = 0;
  double horam_total_ms = 0;
  double path_io_accesses = 0;
  double path_io_latency_us = 0;
  double path_total_ms = 0;
};
void print_comparison(const std::string& title, const system_run& horam,
                      const system_run& path,
                      const std::optional<paper_reference>& paper);

}  // namespace horam::bench

#endif  // HORAM_BENCH_COMMON_H
