// Ablation for §5.3.1 (partial shuffle): sweep the shuffle cadence
// 1/r — shuffling only 1/k of the partitions per period trades shuffle
// I/O for redundant masking reads on un-shuffled partitions. The paper:
// "Through this method, we can compute a proper shuffle ratio with a
// system profiling, which balances the shuffle overhead and the I/O
// overhead."
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  dataset data;
  data.data_bytes = 64 * util::mib;
  data.memory_bytes = 8 * util::mib;
  workload_recipe recipe;
  recipe.request_count = 25000;
  const machine hw = paper_machine();

  std::cout << "=== Ablation: partial shuffle ratio (64 MB dataset, "
               "25,000 requests) ===\n";
  util::text_table table({"Shuffle ratio r", "I/O accesses",
                          "Masking reads", "Shuffle time", "Access time",
                          "Total time", "Speedup vs r=1"});

  sim::sim_time baseline_total = 0;
  for (const std::uint32_t cadence : {1u, 2u, 4u, 8u}) {
    // Masking reads need dead-slot fodder: scale the slack with the
    // pending-segment depth (documented partial-shuffle cost).
    const double slack = 1.05 + 0.1 * (cadence - 1);
    const system_run run =
        run_horam(data, recipe, hw, [&](horam_config& config) {
          config.shuffle_every_periods = cadence;
          config.partition_slack = slack;
        });
    if (cadence == 1) {
      baseline_total = run.total_time;
    }
    // Recover masking-read count: total loads in io_accesses are
    // cycles; masking reads show up as extra storage reads inside the
    // access periods. Re-derive from a dedicated run for clarity.
    client ctrl = client_builder()
                      .blocks(data.block_count())
                      .memory_blocks(data.memory_blocks())
                      .payload_bytes(data.payload_bytes)
                      .logical_block_bytes(data.block_bytes)
                      .storage_profile(hw.storage)
                      .memory_profile(hw.memory)
                      .cpu(hw.cpu)
                      .seal(false)
                      .shuffle_every(cadence)
                      .config_tweak([&](horam_config& config) {
                        config.partition_slack = slack;
                      })
                      .seed(recipe.seed ^ 0x605a)
                      .build();
    util::pcg64 wl(recipe.seed);
    workload::stream_config stream;
    stream.request_count = recipe.request_count;
    stream.block_count = data.block_count();
    stream.payload_bytes = data.payload_bytes;
    ctrl.run(workload::hotspot(wl, stream, recipe.hot_probability,
                               recipe.hot_region_fraction));
    const std::uint64_t masking = ctrl.backend().stats().masking_reads;

    table.add_row(
        {"1/" + std::to_string(cadence), util::format_count(run.io_accesses),
         util::format_count(masking), util::format_time_ns(run.shuffle_time),
         util::format_time_ns(run.total_time -
                              std::min(run.total_time, run.shuffle_time)),
         util::format_time_ns(run.total_time),
         util::format_double(static_cast<double>(baseline_total) /
                                 static_cast<double>(run.total_time),
                             2) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "Less frequent shuffles cut shuffle I/O but add masking "
               "reads and defer compaction\n(the paper's predicted "
               "balance point shows as the minimum of Total time).\n";
  return 0;
}
