// Ablation for the real-thread runtime: wall-clock time as shard lanes
// move from the single-threaded sim machine onto 1 / 2 / 4 / 8 worker
// threads, for each backend and shard count, on the paper's device
// profile. Virtual time (total_time) is runtime-invariant by
// construction — the determinism tests assert bit-for-bit equality —
// so the interesting column is wall_seconds: with real cores available
// the threaded runtime should approach wall/threads scaling until the
// per-round fan-out/merge barrier and the host's core count cap it.
//
// Every run writes BENCH_threads.json to the working directory so the
// performance trajectory is machine-readable (CI uploads it as an
// artifact); the document records hardware_threads so a 1-core CI box
// showing no speedup is distinguishable from a regression. `--json`
// additionally emits the same document to stdout instead of the table,
// and `--small` shrinks the dataset and backend list for smoke runs.
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

constexpr std::uint32_t kShardCounts[] = {1, 4, 8};
/// 0 = the sim runtime baseline; the rest are threaded worker counts.
constexpr std::uint32_t kThreadCounts[] = {0, 1, 2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 64 * util::mib;
  data.memory_bytes = options.small ? 1 * util::mib : 8 * util::mib;
  const workload_recipe recipe = bench_recipe(options, 4000, 25000);
  const machine hw = paper_machine();

  const std::vector<backend_kind> kinds =
      options.small
          ? std::vector<backend_kind>{backend_kind::partitioned,
                                      backend_kind::path}
          : std::vector<backend_kind>(std::begin(all_backend_kinds),
                                      std::end(all_backend_kinds));

  if (!options.json) {
    std::cout << "=== Ablation: threads x shards x backend ("
              << util::format_bytes(data.data_bytes) << " dataset, "
              << util::format_count(recipe.request_count)
              << " requests, paper HDD profile, "
              << std::thread::hardware_concurrency()
              << " hardware threads) ===\n";
  }

  std::string json = "{\n  \"bench\": \"ablation_threads\",\n"
                     "  \"hardware_threads\": " +
                     std::to_string(std::thread::hardware_concurrency()) +
                     ",\n  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Backend", "Shards", "Runtime", "Threads",
                          "Sim total", "Wall (s)", "Wall speedup vs 1t",
                          "Throughput (req/s)"});
  for (const backend_kind kind : kinds) {
    for (const std::uint32_t shards : kShardCounts) {
      // Collect the whole thread sweep for this backend x shards cell
      // first: wall speedups are relative to the threaded 1-worker run
      // (same runtime machinery, no parallelism).
      std::vector<std::pair<std::uint32_t, system_run>> cell;
      for (const std::uint32_t threads : kThreadCounts) {
        if (threads > shards) {
          continue;  // extra workers past one-per-shard can't get work
        }
        const system_run run = run_horam(
            data, recipe, hw,
            [shards, threads](horam_config& config) {
              config.shard_count = shards;
              if (threads > 0) {
                config.runtime = runtime_policy::threaded;
                config.worker_threads = threads;
              } else {
                config.runtime = runtime_policy::sim;
                config.worker_threads = 0;
              }
            },
            kind);
        cell.emplace_back(threads, run);
      }
      double base_wall = 0.0;
      for (const auto& [threads, run] : cell) {
        if (threads == 1) {
          base_wall = run.wall_seconds;
        }
      }
      for (const auto& [threads, run] : cell) {
        const double wall_speedup =
            run.wall_seconds > 0.0 && base_wall > 0.0
                ? base_wall / run.wall_seconds
                : 0.0;
        const double throughput =
            run.total_time > 0
                ? static_cast<double>(run.requests) * 1e9 /
                      static_cast<double>(run.total_time)
                : 0.0;
        table.add_row(
            {std::string(backend_name(kind)), std::to_string(shards),
             run.runtime, std::to_string(run.threads),
             util::format_time_ns(run.total_time),
             util::format_double(run.wall_seconds, 2),
             util::format_double(wall_speedup, 2) + "x",
             util::format_count(static_cast<std::uint64_t>(throughput))});
        if (!first_run) {
          json += ",\n";
        }
        first_run = false;
        json += "    {\"backend\": " + json_escape(backend_name(kind)) +
                ", \"shards\": " + std::to_string(shards) +
                ", \"requested_threads\": " + std::to_string(threads) +
                ", \"wall_speedup_vs_1_thread\": " +
                json_number(wall_speedup) + ", " + json_fields(run) + "}";
      }
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_threads.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "Sim total is runtime-invariant (the determinism grid asserts "
           "bit-for-bit\nequality); only wall-clock moves. Wall speedup "
           "compares against the threaded\n1-worker run and is bounded "
           "by min(threads, shards, hardware threads).\n"
           "(wrote BENCH_threads.json)\n";
  }
  return 0;
}
