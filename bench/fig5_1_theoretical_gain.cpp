// Reproduces Figure 5-1: theoretical performance gain of H-ORAM over
// Path ORAM (Eqs 5-2 .. 5-4) as a function of the storage/memory ratio
// N/n, for several values of c, with Z = 4 and the measured HDD
// read/write asymmetry (102.7 / 55.2 MB/s).
//
// Paper claims: gains shrink as N/n grows; around 8x in its example
// point; "the best performance is 12 times or 16 times faster". Note
// DESIGN.md: the prose's 8x at (c=4, N/n=8) is not reproducible from
// the paper's own equations (they give ~3.8x with equal weights); we
// plot the equations faithfully.
#include <iostream>

#include "analysis/theoretical.h"
#include "util/table.h"

int main() {
  using namespace horam;

  constexpr double z = 4.0;
  constexpr double read_bps = 102.7e6;
  constexpr double write_bps = 55.2e6;
  const std::vector<double> c_values = {1, 2, 4, 8, 16};
  const std::vector<double> ratios = {2, 4, 8, 16, 32, 64};

  std::cout << "=== Figure 5-1: theoretical gain over Path ORAM "
               "(overhead reduction factor) ===\n";
  std::vector<std::string> header = {"N/n ratio"};
  for (const double c : c_values) {
    header.push_back("c = " + util::format_double(c, 0));
  }
  util::text_table table(header);
  double best = 0.0;
  for (const double ratio : ratios) {
    std::vector<std::string> row = {util::format_double(ratio, 0)};
    for (const double c : c_values) {
      const double gain =
          analysis::theoretical_gain(ratio, c, z, read_bps, write_bps);
      best = std::max(best, gain);
      row.push_back(util::format_double(gain, 2));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "Best gain across the sweep: "
            << util::format_double(best, 1)
            << "x   [paper prose: \"12 times or 16 times\"]\n";

  // CSV series for plotting.
  std::cout << "\nCSV: ratio";
  for (const double c : c_values) {
    std::cout << ",c" << c;
  }
  std::cout << "\n";
  for (const double ratio : ratios) {
    std::cout << "CSV: " << ratio;
    for (const double c : c_values) {
      std::cout << ","
                << analysis::theoretical_gain(ratio, c, z, read_bps,
                                              write_bps);
    }
    std::cout << "\n";
  }
  return 0;
}
