// Ablation for the shuffle substrate (§3.2 / §4.3): compares the cost
// of the oblivious shuffle algorithms the paper discusses — bitonic
// network, Waksman network, Melbourne shuffle (external), CacheShuffle
// (external) — against plain Fisher-Yates, across sizes. This is the
// quantitative version of the paper's claim that full oblivious
// shuffles "bring excessive overhead" compared with its sequential
// group-and-partition shuffle.
#include <chrono>
#include <iostream>

#include "shuffle/bitonic.h"
#include "shuffle/cache_shuffle.h"
#include "shuffle/fisher_yates.h"
#include "shuffle/melbourne.h"
#include "shuffle/waksman.h"
#include "sim/profiles.h"
#include "storage/block_store.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;

constexpr std::size_t record_bytes = 64;
constexpr std::uint64_t logical_block = 1024;

std::vector<std::uint8_t> make_records(std::uint64_t n) {
  std::vector<std::uint8_t> records(n * record_bytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i] = static_cast<std::uint8_t>(i);
  }
  return records;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: shuffle algorithm costs ===\n";
  util::text_table table({"n records", "Algorithm", "Touch ops",
                          "Bytes moved", "Device I/O time",
                          "Host time"});

  for (const std::uint64_t n : {1024ULL, 4096ULL, 16384ULL}) {
    util::pcg64 rng(n);

    {  // Fisher-Yates (non-oblivious reference).
      auto records = make_records(n);
      shuffle::shuffle_stats stats;
      const auto start = std::chrono::steady_clock::now();
      shuffle::fisher_yates(rng, records, record_bytes, &stats);
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      table.add_row({util::format_count(n), "fisher-yates",
                     util::format_count(stats.touch_ops),
                     util::format_bytes(stats.bytes_moved), "in-memory",
                     util::format_double(host * 1e3, 2) + " ms"});
    }
    {  // Bitonic oblivious shuffle.
      auto records = make_records(n);
      shuffle::shuffle_stats stats;
      const auto start = std::chrono::steady_clock::now();
      shuffle::bitonic_shuffle(rng, records, record_bytes, &stats);
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      table.add_row({util::format_count(n), "bitonic network",
                     util::format_count(stats.touch_ops),
                     util::format_bytes(stats.bytes_moved), "in-memory",
                     util::format_double(host * 1e3, 2) + " ms"});
    }
    {  // Waksman network (permutation known up front).
      auto records = make_records(n);
      shuffle::shuffle_stats stats;
      const auto start = std::chrono::steady_clock::now();
      const auto pi = util::random_permutation(rng, n);
      const auto network = shuffle::build_waksman(pi);
      shuffle::apply_waksman(network, records, record_bytes, &stats);
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      table.add_row({util::format_count(n), "waksman network",
                     util::format_count(stats.touch_ops),
                     util::format_bytes(stats.bytes_moved), "in-memory",
                     util::format_double(host * 1e3, 2) + " ms"});
    }
    {  // Melbourne shuffle on the HDD model.
      sim::block_device device(sim::hdd_paper());
      const shuffle::melbourne_config config{};
      storage::block_store input(device, 0, n, record_bytes,
                                 logical_block);
      storage::block_store scratch(
          device, n * logical_block,
          shuffle::melbourne_scratch_records(n, config), record_bytes,
          logical_block);
      storage::block_store output(
          device,
          (n + shuffle::melbourne_scratch_records(n, config)) *
              logical_block,
          n, record_bytes, logical_block);
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          shuffle::melbourne_shuffle(input, scratch, output, rng, config);
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      table.add_row({util::format_count(n), "melbourne (external)",
                     util::format_count(result.stats.touch_ops),
                     util::format_bytes(result.stats.bytes_moved),
                     util::format_time_ns(result.io_time),
                     util::format_double(host * 1e3, 2) + " ms"});
    }
    {  // CacheShuffle on the HDD model.
      sim::block_device device(sim::hdd_paper());
      shuffle::cache_shuffle_config config;
      config.client_memory_records = std::max<std::uint64_t>(64, n / 8);
      storage::block_store input(device, 0, n, record_bytes,
                                 logical_block);
      storage::block_store scratch(
          device, n * logical_block,
          shuffle::cache_shuffle_scratch_records(n, config), record_bytes,
          logical_block);
      storage::block_store output(
          device,
          (n + shuffle::cache_shuffle_scratch_records(n, config)) *
              logical_block,
          n, record_bytes, logical_block);
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          shuffle::cache_shuffle(input, scratch, output, rng, config);
      const double host =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      table.add_row({util::format_count(n), "cache shuffle (external)",
                     util::format_count(result.stats.touch_ops),
                     util::format_bytes(result.stats.bytes_moved),
                     util::format_time_ns(result.io_time),
                     util::format_double(host * 1e3, 2) + " ms"});
    }
    {  // H-ORAM's per-partition sequential rewrite, for comparison: one
       // streaming read + shuffle in trusted memory + streaming write.
      sim::block_device device(sim::hdd_paper());
      storage::block_store store(device, 0, n, record_bytes,
                                 logical_block);
      std::vector<std::uint8_t> image(n * record_bytes);
      sim::sim_time io = store.read_range(0, n, image);
      shuffle::fisher_yates(rng, image, record_bytes);
      io += store.write_range(0, n, image);
      table.add_row({util::format_count(n),
                     "sequential rewrite (H-ORAM partition)",
                     util::format_count(n), util::format_bytes(
                         2 * n * record_bytes),
                     util::format_time_ns(io), "-"});
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::cout << "The paper's motivation in numbers: oblivious external "
               "shuffles move ~(1+quota)x the data with\nmessage-"
               "granular seeks, while H-ORAM's partition shuffle streams "
               "each partition exactly twice.\n";
  return 0;
}
