// Ablation for the deamortized shuffle pipeline: request-latency tail
// (p50/p95/p99/max) as the shuffle runs foreground vs. incrementally in
// budget-bounded slices between access rounds, swept over slice budget
// x backend x shard count on the paper's HDD profile.
//
// The foreground policy charges each period's whole shuffle burst at
// the period boundary, so every request in flight at that moment eats
// the full burst — the p99/max cliff. shuffle_policy::incremental
// spreads the same device time over the period's rounds; the slice
// budget trades tail latency (smaller slices, flatter tail) against
// stall risk (a budget too small to finish a job within one period
// pays the remainder foreground at the next boundary).
//
// Budgets are derived from the measured foreground burst: b0 = burst /
// period_loads is the smallest budget that finishes a job within one
// period (no stall); the sweep brackets it from both sides. Every run
// writes BENCH_shuffle_overlap.json to the working directory (CI
// uploads it as an artifact); `--json` emits the same document to
// stdout instead of the table, `--small` shrinks the matrix for smoke
// runs.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "util/math.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

constexpr std::uint32_t kShardCounts[] = {1, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  // Geometry note: the cliff only registers at p99 if the requests in
  // flight at a period boundary are > 1% of the stream, i.e. periods
  // must recur every few thousand requests. A paper-ratio cache (1/8)
  // at this scale shuffles once or twice per run and pushes the cliff
  // out to p99.9 — so this ablation runs cache-lean (1 MB memory ⇒
  // period every n/2 = 512 loads), which is also the regime the
  // ROADMAP's many-tenant service lives in.
  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 32 * util::mib;
  data.memory_bytes = 1 * util::mib;
  const workload_recipe recipe = bench_recipe(options, 4000, 25000);
  const machine hw = paper_machine();

  std::vector<backend_kind> backends;
  if (options.small) {
    // The two native stepped-job backends cover the smoke run.
    backends = {backend_kind::partitioned, backend_kind::path};
  } else {
    backends.assign(std::begin(all_backend_kinds),
                    std::end(all_backend_kinds));
  }

  if (!options.json) {
    std::cout << "=== Ablation: shuffle overlap (slice budget x backend x "
                 "shards, "
              << util::format_bytes(data.data_bytes) << " dataset, "
              << util::format_count(recipe.request_count)
              << " requests, paper HDD profile) ===\n";
  }

  std::string json =
      "{\n  \"bench\": \"ablation_shuffle_overlap\",\n  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Backend", "Shards", "Policy", "Slice budget",
                          "p50", "p99", "max", "p99 vs fg", "Slices",
                          "Stall", "Total time"});

  const auto emit = [&](backend_kind kind, std::uint32_t shards,
                        shuffle_policy policy, sim::sim_time budget,
                        const system_run& run, sim::sim_time fg_p99) {
    const double p99_ratio =
        fg_p99 > 0 ? static_cast<double>(run.latency_p99) /
                         static_cast<double>(fg_p99)
                   : 0.0;
    table.add_row(
        {std::string(backend_name(kind)), std::to_string(shards),
         std::string(shuffle_policy_name(policy)),
         budget > 0 ? util::format_time_ns(budget) : "-",
         util::format_time_ns(run.latency_p50),
         util::format_time_ns(run.latency_p99),
         util::format_time_ns(run.latency_max),
         policy == shuffle_policy::incremental
             ? util::format_double(p99_ratio, 3) + "x"
             : "1x",
         util::format_count(run.shuffle_slices),
         util::format_time_ns(run.shuffle_stall_time),
         util::format_time_ns(run.total_time)});
    if (!first_run) {
      json += ",\n";
    }
    first_run = false;
    json += "    {\"backend\": " + json_escape(backend_name(kind)) +
            ", \"shards\": " + std::to_string(shards) +
            ", \"policy\": " + json_escape(shuffle_policy_name(policy)) +
            ", \"slice_budget_ns\": " + std::to_string(budget) +
            ", \"p99_vs_foreground\": " + json_number(p99_ratio) +
            ", " + json_fields(run) + "}";
  };

  for (const backend_kind kind : backends) {
    for (const std::uint32_t shards : kShardCounts) {
      const auto tweak = [shards](shuffle_policy policy,
                                  sim::sim_time budget) {
        return [shards, policy, budget](horam_config& config) {
          config.shard_count = shards;
          config.shuffle = policy;
          config.shuffle_slice_budget = budget;
        };
      };

      // Foreground baseline: the latency cliff to beat.
      const system_run fg = run_horam(
          data, recipe, hw, tweak(shuffle_policy::foreground, 0), kind);
      emit(kind, shards, shuffle_policy::foreground, 0, fg,
           fg.latency_p99);

      // b0: smallest slice budget that retires a period's burst within
      // the period (burst spread over the per-shard period_loads
      // rounds). Derived from public quantities only.
      const std::uint64_t per_shard_period_loads =
          std::max<std::uint64_t>(1, data.memory_blocks() / shards / 2);
      const sim::sim_time mean_burst =
          fg.shuffle_count > 0
              ? fg.shuffle_time /
                    static_cast<sim::sim_time>(fg.shuffle_count)
              : 0;
      const sim::sim_time b0 = std::max<sim::sim_time>(
          1, util::ceil_div(static_cast<std::uint64_t>(mean_burst),
                            per_shard_period_loads));

      // The ladder brackets the interesting range: b0 (finest no-stall
      // slices), a middle rung, and quarter-burst slices (coarse —
      // approaching the foreground cliff again).
      const sim::sim_time quarter_burst =
          std::max<sim::sim_time>(4 * b0, mean_burst / 4);
      for (const sim::sim_time budget : {b0, 4 * b0, quarter_burst}) {
        const system_run run = run_horam(
            data, recipe, hw,
            tweak(shuffle_policy::incremental, budget), kind);
        emit(kind, shards, shuffle_policy::incremental, budget, run,
             fg.latency_p99);
      }
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_shuffle_overlap.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "Foreground charges each period's whole shuffle at the "
           "boundary (the p99/max cliff);\nincremental spreads the same "
           "device time over budget-bounded slices between rounds.\n"
           "b0 = burst / period_loads is the no-stall budget; below it "
           "the leftover is paid\nforeground at the next boundary "
           "(Stall column). sqrt/partition use the default\nmonolithic "
           "job adapter (one slice = the whole burst), so their tail "
           "stays at 1x by\nconstruction — the native stepped jobs "
           "(partitioned, path) are where the win is.\n"
           "(wrote BENCH_shuffle_overlap.json)\n";
  }
  return 0;
}
