// Reproduces Table 5-4: 1 GB dataset with 500,000 requests.
//
// Paper reference (H-ORAM vs Path ORAM):
//   storage/memory size: 1 GB / 128 MB vs 1.875 GB / 128 MB
//   number of I/O accesses: 129,235 vs 500,000
//   I/O latency: 107 us vs 1,364 us
//   shuffle time: 9,743 ms * 2; total: 29,657 ms vs 682,041 ms (22.9x)
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  dataset data;
  data.data_bytes = util::gib;
  data.memory_bytes = 128 * util::mib;

  workload_recipe recipe;
  recipe.request_count = 500000;

  const machine hw = paper_machine();
  const system_run horam_run = run_horam(data, recipe, hw);
  const system_run path_run = run_tree_top_path(data, recipe, hw);

  paper_reference paper;
  paper.horam_io_accesses = 129235;
  paper.horam_io_latency_us = 107;
  paper.horam_shuffle_ms = 2 * 9743;
  paper.horam_total_ms = 29657;
  paper.path_io_accesses = 500000;
  paper.path_io_latency_us = 1364;
  paper.path_total_ms = 682041;

  print_comparison("Table 5-4: 1 GB dataset, 500,000 requests",
                   horam_run, path_run, paper);

  const system_run horam_async =
      run_horam(data, recipe, hw, [](horam_config& config) {
        config.shuffle = shuffle_policy::async_writeback;
      });
  std::cout << "\nWith async write-back shuffle (models the thesis's "
               "page-cache-assisted measurement):\n"
            << "  total time "
            << util::format_time_ns(horam_async.total_time)
            << ", speedup "
            << util::format_double(
                   static_cast<double>(path_run.total_time) /
                       static_cast<double>(horam_async.total_time),
                   1)
            << "x\n";
  return 0;
}
