// Reproduces Table 5-2 (experimental machine setup) as a calibration
// check: runs sequential and random micro-sweeps against every device
// model and prints the achieved figures next to the thesis's
// measurements.
#include <iostream>

#include "sim/device.h"
#include "sim/profiles.h"
#include "util/table.h"
#include "util/units.h"

namespace {

struct calibration {
  double seq_read_mbps = 0.0;
  double seq_write_mbps = 0.0;
  double random_1k_read_us = 0.0;
  double random_4k_read_us = 0.0;
};

calibration measure(const horam::sim::device_profile& profile) {
  using namespace horam;
  calibration result;

  {  // Sequential read: stream 256 MB.
    sim::block_device device(profile);
    sim::sim_time t = 0;
    for (int i = 0; i < 256; ++i) {
      t += device.read(static_cast<std::uint64_t>(i) << 20, 1 << 20);
    }
    result.seq_read_mbps = 256.0 * 1048576.0 / 1e6 / util::ns_to_s(t);
  }
  {  // Sequential write.
    sim::block_device device(profile);
    sim::sim_time t = 0;
    for (int i = 0; i < 256; ++i) {
      t += device.write(static_cast<std::uint64_t>(i) << 20, 1 << 20);
    }
    result.seq_write_mbps = 256.0 * 1048576.0 / 1e6 / util::ns_to_s(t);
  }
  {  // Random reads at 1 KB and 4 KB.
    sim::block_device device(profile);
    sim::sim_time t1 = 0;
    for (int i = 0; i < 1000; ++i) {
      t1 += device.read(static_cast<std::uint64_t>(i) * 7919 * 4096,
                        1024);
    }
    result.random_1k_read_us = util::ns_to_us(t1) / 1000.0;
    sim::block_device device4(profile);
    sim::sim_time t4 = 0;
    for (int i = 0; i < 1000; ++i) {
      t4 += device4.read(static_cast<std::uint64_t>(i) * 104729 * 4096,
                         4096);
    }
    result.random_4k_read_us = util::ns_to_us(t4) / 1000.0;
  }
  return result;
}

}  // namespace

int main() {
  using namespace horam;

  std::cout << "=== Table 5-2: simulated machine setup & device "
               "calibration ===\n";
  std::cout << "Paper testbed: i7-7700K, 16 GB DDR4-2133, HDD 7200 RPM "
               "500 GB, Ubuntu 16.04\n";
  std::cout << "Paper measured throughput: 102.7 MB/s read, 55.2 MB/s "
               "write\n\n";

  util::text_table table({"Device model", "Seq read", "Seq write",
                          "Rand 1KB read", "Rand 4KB read"});
  const std::vector<sim::device_profile> profiles = {
      sim::hdd_paper(), sim::hdd_7200_raw(), sim::ssd_sata(), sim::nvme(),
      sim::dram_ddr4()};
  for (const auto& profile : profiles) {
    const calibration c = measure(profile);
    table.add_row(
        {profile.name,
         util::format_double(c.seq_read_mbps, 1) + " MB/s",
         util::format_double(c.seq_write_mbps, 1) + " MB/s",
         util::format_double(c.random_1k_read_us, 1) + " us",
         util::format_double(c.random_4k_read_us, 1) + " us"});
  }
  table.print(std::cout);
  std::cout
      << "hdd-paper-calibrated targets: 102.7 / 55.2 MB/s sequential, "
         "~77 us random 1 KB read\n(the thesis's latencies are "
         "page-cache-assisted; hdd-7200-raw models the bare disk).\n";
  return 0;
}
