// Ablation for §3.1's hardware premise: who wins, and by how much, as
// the storage device changes. H-ORAM's advantage rests on the random/
// sequential gap of HDDs; on NVMe the gap — and with it the crossover —
// largely disappears.
#include <iostream>

#include "common.h"
#include "sim/profiles.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  dataset data;
  data.data_bytes = 64 * util::mib;
  data.memory_bytes = 8 * util::mib;
  workload_recipe recipe;
  recipe.request_count = 25000;

  std::cout << "=== Ablation: storage device sensitivity (64 MB "
               "dataset, 25,000 requests) ===\n";
  util::text_table table({"Storage device", "H-ORAM total",
                          "Path ORAM total", "Speedup",
                          "H-ORAM I/O latency", "Path I/O latency"});
  const std::vector<sim::device_profile> devices = {
      sim::hdd_7200_raw(), sim::hdd_paper(), sim::ssd_sata(),
      sim::nvme()};
  for (const auto& device : devices) {
    machine hw = paper_machine();
    hw.storage = device;
    const system_run horam_run = run_horam(data, recipe, hw);
    const system_run path_run = run_tree_top_path(data, recipe, hw);
    table.add_row(
        {device.name, util::format_time_ns(horam_run.total_time),
         util::format_time_ns(path_run.total_time),
         util::format_double(static_cast<double>(path_run.total_time) /
                                 static_cast<double>(horam_run.total_time),
                             1) +
             "x",
         util::format_double(horam_run.avg_io_latency_us, 0) + " us",
         util::format_double(path_run.avg_io_latency_us, 0) + " us"});
  }
  table.print(std::cout);
  std::cout << "The seek-dominated devices are where the cacheable "
               "interface pays off; as random\naccess approaches "
               "sequential speed the two designs converge.\n";
  return 0;
}
