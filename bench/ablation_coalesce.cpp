// Ablation for the request-coalescing subsystem (src/coalesce/):
// physical ORAM accesses per logical request as workload skew rises,
// for each backend and shard count, coalescing off vs on at the *same*
// public round cap.
//
// The runs pump through the asynchronous service layer — sessions admit
// the stream, the tenant scheduler hands the engine one round's worth
// of slots at a time — rather than an open-loop drain of the whole
// batch, so a round can only merge the duplicates that are genuinely
// concurrent under the scheduler's own admission window. Off rows are
// the control: every logical request pays one physical access
// (IOs/req = 1.0) by construction. On rows show the constant factor
// coalescing removes: uniform traffic stays near 1.0 while skewed
// streams (zipfian, hot-set) retire many tickets per access.
//
// Every run writes BENCH_coalesce.json to the working directory so the
// trajectory is machine-readable (CI uploads it as an artifact);
// `--json` additionally emits the document to stdout instead of the
// table and `--small` shrinks the sweep for smoke runs.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/generators.h"

namespace {

using namespace horam;
using namespace horam::bench;

constexpr std::uint64_t kSeed = 2019;
constexpr std::uint32_t kSessions = 4;

/// One skew point of the sweep.
struct workload_spec {
  std::string name;
  /// 0 = uniform, > 0 = zipfian exponent s.
  double zipf_s = 0.0;
  /// True = scattered hot-set stream instead (the duplicate-heavy
  /// shape request coalescing targets hardest).
  bool hot_set = false;
};

std::vector<request> make_stream(const workload_spec& spec,
                                 util::random_source& rng,
                                 const workload::stream_config& config) {
  if (spec.hot_set) {
    return workload::hot_set(rng, config, 0.95, 8);
  }
  if (spec.zipf_s > 0.0) {
    return workload::zipfian(rng, config, spec.zipf_s);
  }
  return workload::uniform(rng, config);
}

/// One service-layer run of a prepared stream.
struct cell_run {
  std::uint64_t requests = 0;
  std::uint64_t physical = 0;
  std::uint64_t merged = 0;
  double ios_per_request = 1.0;
  std::uint32_t round_cap = 0;
  std::uint64_t rounds = 0;
  sim::sim_time total_time = 0;
  double throughput = 0.0;
  double wall_seconds = 0.0;
};

cell_run run_cell(const std::vector<request>& stream, backend_kind kind,
                  std::uint32_t shards, bool coalescing,
                  std::uint64_t blocks, std::uint64_t memory_blocks,
                  std::uint32_t threads) {
  client_builder builder = client_builder()
                               .blocks(blocks)
                               .memory_blocks(memory_blocks)
                               .payload_bytes(32)
                               .backend(kind)
                               .shards(shards)
                               .coalescing(coalescing)
                               .seed(kSeed);
  if (threads > 0) {
    builder.threads(std::min(threads, shards));
  }
  service svc = builder.build_service();
  std::vector<session> users;
  users.reserve(kSessions);
  for (std::uint32_t u = 0; u < kSessions; ++u) {
    users.push_back(svc.open_session());
  }

  const sim::sim_time epoch = svc.now();
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const request& req = stream[i];
    session& user = users[i % kSessions];
    if (req.op == oram::op_kind::write) {
      (void)user.async_write(req.id, req.write_data);
    } else {
      (void)user.async_read(req.id);
    }
  }
  svc.run_until_idle();
  const auto wall_end = std::chrono::steady_clock::now();

  const engine_stats& router = svc.underlying().eng().router_stats();
  cell_run run;
  run.requests = router.real_requests;
  run.physical = router.physical_accesses;
  run.merged = router.coalesced_requests;
  run.ios_per_request = router.ios_per_logical_request();
  run.round_cap = svc.underlying().eng().round_cap();
  run.rounds = router.rounds;
  run.total_time = svc.now() - epoch;
  run.throughput = run.total_time > 0
                       ? static_cast<double>(run.requests) * 1e9 /
                             static_cast<double>(run.total_time)
                       : 0.0;
  run.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  const std::uint64_t blocks = options.small ? 2048 : 16384;
  const std::uint64_t memory_blocks = blocks / 8;
  const std::uint64_t request_count =
      bench_request_count(options, 4000, 12000);

  const std::vector<workload_spec> workloads =
      options.small
          ? std::vector<workload_spec>{{"uniform", 0.0, false},
                                       {"zipf-1.1", 1.1, false},
                                       {"hot-set", 0.0, true}}
          : std::vector<workload_spec>{{"uniform", 0.0, false},
                                       {"zipf-0.8", 0.8, false},
                                       {"zipf-1.1", 1.1, false},
                                       {"zipf-1.4", 1.4, false},
                                       {"hot-set", 0.0, true}};
  const std::vector<backend_kind> kinds =
      options.small
          ? std::vector<backend_kind>{backend_kind::partitioned,
                                      backend_kind::path}
          : std::vector<backend_kind>(std::begin(all_backend_kinds),
                                      std::end(all_backend_kinds));
  constexpr std::uint32_t kShardCounts[] = {1, 4};

  if (!options.json) {
    std::cout << "=== Ablation: request coalescing x workload skew x "
                 "backend x shards ("
              << util::format_count(blocks) << " blocks, "
              << util::format_count(request_count)
              << " requests via the service layer, paper HDD profile) "
                 "===\n";
  }

  std::string json = "{\n  \"bench\": \"ablation_coalesce\",\n"
                     "  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Workload", "Backend", "Shards", "Coalescing",
                          "Requests", "Physical", "Merged", "IOs/req",
                          "IO reduction", "Sim total", "Req/s"});
  for (const workload_spec& spec : workloads) {
    workload::stream_config wl;
    wl.request_count = request_count;
    wl.block_count = blocks;
    wl.write_fraction = 0.2;
    wl.payload_bytes = 32;
    for (const backend_kind kind : kinds) {
      for (const std::uint32_t shards : kShardCounts) {
        // Same stream for the off and on runs of a cell: the machines
        // differ in the coalescing flag only, at the same round cap.
        util::pcg64 gen(kSeed ^ (spec.hot_set ? 0x5eedULL : 0) ^
                        static_cast<std::uint64_t>(spec.zipf_s * 1000));
        const std::vector<request> stream = make_stream(spec, gen, wl);
        cell_run off;
        for (const bool coalescing : {false, true}) {
          const cell_run run =
              run_cell(stream, kind, shards, coalescing, blocks,
                       memory_blocks, options.threads);
          if (!coalescing) {
            off = run;
          }
          // Off rows pay one physical access per logical request by
          // construction; the reduction column is how much cheaper the
          // coalescing machine's device bill is at the same cap.
          const double reduction =
              run.ios_per_request > 0.0
                  ? off.ios_per_request / run.ios_per_request
                  : 0.0;
          table.add_row(
              {spec.name, std::string(backend_name(kind)),
               std::to_string(shards), coalescing ? "on" : "off",
               util::format_count(run.requests),
               util::format_count(run.physical),
               util::format_count(run.merged),
               util::format_double(run.ios_per_request, 3),
               util::format_double(reduction, 2) + "x",
               util::format_time_ns(run.total_time),
               util::format_count(
                   static_cast<std::uint64_t>(run.throughput))});
          if (!first_run) {
            json += ",\n";
          }
          first_run = false;
          json += "    {\"workload\": " + json_escape(spec.name) +
                  ", \"backend\": " + json_escape(backend_name(kind)) +
                  ", \"shards\": " + std::to_string(shards) +
                  ", \"coalescing\": " +
                  (coalescing ? std::string("true") : std::string("false")) +
                  ", \"requests\": " + std::to_string(run.requests) +
                  ", \"physical_accesses\": " +
                  std::to_string(run.physical) +
                  ", \"coalesced_requests\": " + std::to_string(run.merged) +
                  ", \"ios_per_logical_request\": " +
                  json_number(run.ios_per_request) +
                  ", \"io_reduction_vs_off\": " + json_number(reduction) +
                  ", \"round_cap\": " + std::to_string(run.round_cap) +
                  ", \"rounds\": " + std::to_string(run.rounds) +
                  ", \"sim_total_ns\": " + std::to_string(run.total_time) +
                  ", \"throughput_rps\": " + json_number(run.throughput) +
                  ", \"wall_seconds\": " + json_number(run.wall_seconds) +
                  "}";
        }
      }
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_coalesce.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "Coalescing changes only how many real slots a round "
           "consumes — both rows of a\ncell run at the same public "
           "round cap, so IOs/req is the whole story: the\nskewed "
           "streams retire several logical requests per physical "
           "access while\nuniform traffic stays near 1.0.\n"
           "(wrote BENCH_coalesce.json)\n";
  }
  return 0;
}
