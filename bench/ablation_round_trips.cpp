// Ablation for dependency-aware round-trip accounting (sim::io_stats::
// round_trips): online storage round trips per request and per backend
// load, swept over backend {path, ring, hier} and device profile
// {hdd, nvme, net-remote}.
//
// A round trip is one request/response exchange with the storage
// device: every operation issued inside one begin_trip()/end_trip()
// scope ships together and counts as a single trip, while operations
// whose inputs depend on earlier results need their own scope and
// therefore their own trip. The path and ring backends walk a
// recursive position map before they can touch the data tree, so each
// load pays (map levels + 1) dependent trips; the hier backend keeps a
// succinct in-memory index and ships all per-level probes as one
// batched scatter read, so a load costs one trip regardless of depth
// (plus the occasional level-refresh sweep, the ±epsilon). The gap is
// invisible on throughput-style metrics — path may move fewer bytes —
// and only shows up in trip-dominated profiles, so the sweep includes
// nvme (fast but per-op-priced) and net-remote (200us RTT-dominated),
// where hier's total virtual time must come in below path and ring.
//
// Path and ring rows run with map_on_storage=true so their map walks
// hit the same counted device as the data accesses; the default
// in-memory map wiring would hide exactly the cost this ablation
// measures. hier ignores the knob (its index is trusted memory by
// design — that is the trade: control_memory_bytes grows with N).
//
// Every run writes BENCH_round_trips.json to the working directory so
// the trajectory is machine-readable (CI uploads it as an artifact);
// `--json` additionally emits the document to stdout instead of the
// table and `--small` shrinks the workload for smoke runs.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

/// Profiles this bench sweeps by default: the paper's HDD for
/// continuity, then the two trip-dominated targets the hier backend is
/// built for. `--profile` still restricts to a singleton.
std::vector<sim::device_profile> round_trip_profiles(
    const bench_options& options) {
  if (!options.profile.empty()) {
    return bench_storage_profiles(options);
  }
  return {sim::hdd_paper(), sim::nvme(), sim::net_remote()};
}

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 32 * util::mib;
  data.memory_bytes = options.small ? 1 * util::mib : 4 * util::mib;
  const workload_recipe recipe = bench_recipe(options, 3000, 20000);

  const std::vector<sim::device_profile> profiles =
      round_trip_profiles(options);

  if (!options.json) {
    std::cout << "=== Ablation: online round trips, backend x device "
                 "profile ("
              << util::format_bytes(data.data_bytes) << " dataset, "
              << util::format_count(recipe.request_count)
              << " requests) ===\n";
  }

  std::string json =
      "{\n  \"bench\": \"ablation_round_trips\",\n  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Profile", "Backend", "RT/req", "RT/load",
                          "RT/load vs path", "Online trips",
                          "Shuffle trips", "Sim total",
                          "Total vs path"});

  for (const sim::device_profile& profile : profiles) {
    const machine hw{profile, sim::dram_ddr4(), sim::cpu_aesni()};

    double path_per_load = 0.0;
    double path_total = 0.0;
    const auto emit = [&](const system_run& run,
                          std::string_view backend) {
      const double requests =
          static_cast<double>(std::max<std::uint64_t>(1, run.requests));
      const double loads = static_cast<double>(
          std::max<std::uint64_t>(1, run.io_accesses));
      const double per_request =
          static_cast<double>(run.online_round_trips()) / requests;
      const double per_load =
          static_cast<double>(run.online_round_trips()) / loads;
      if (backend == "path") {
        path_per_load = per_load;
        path_total = static_cast<double>(run.total_time);
      }
      // Path is the control of each profile: the reduction columns are
      // how many path round trips (how much path virtual time) one of
      // this backend's replaces.
      const double trip_reduction =
          per_load > 0.0 ? path_per_load / per_load : 0.0;
      const double time_reduction =
          run.total_time > 0
              ? path_total / static_cast<double>(run.total_time)
              : 0.0;
      table.add_row({std::string(profile.name), std::string(backend),
                     util::format_double(per_request, 2),
                     util::format_double(per_load, 2),
                     util::format_double(trip_reduction, 2) + "x",
                     util::format_count(run.online_round_trips()),
                     util::format_count(run.shuffle_device_round_trips),
                     util::format_time_ns(run.total_time),
                     util::format_double(time_reduction, 2) + "x"});
      if (!first_run) {
        json += ",\n";
      }
      first_run = false;
      json += "    {\"storage_profile\": " + json_escape(profile.name) +
              ", \"backend\": " + json_escape(backend) +
              ", \"online_round_trips_per_load\": " +
              json_number(per_load) +
              ", \"round_trip_reduction_vs_path\": " +
              json_number(trip_reduction) +
              ", \"time_reduction_vs_path\": " +
              json_number(time_reduction) + ", " + json_fields(run) +
              "}";
    };

    for (const backend_kind backend :
         {backend_kind::path, backend_kind::ring, backend_kind::hier}) {
      const system_run run = run_horam(
          data, recipe, hw,
          [](horam_config& config) {
            config.map_on_storage = true;
            // At bench scale the default direct_threshold (1024)
            // collapses the recursive map to one level, hiding the
            // dependent chain a real-scale dataset pays (8 GB at 64
            // entries/block is a 3-level walk). Recurse down to the
            // depth large-N deployments see so the per-load trip count
            // is representative, not a small-dataset artifact.
            config.map_direct_threshold = 16;
          },
          backend);
      emit(run, backend_name(backend));
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_round_trips.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "RT/load is the dependent request/response chain one "
           "backend load waits on:\npath and ring walk the recursive "
           "position map level by level before touching\nthe tree "
           "(map levels + 1 trips), hier resolves the level in its "
           "in-memory\nsuccinct index and ships every per-level probe "
           "as one batched scatter read\n(~1 trip; level refreshes are "
           "the small excess). RT/req dilutes by cache\nhits. The time "
           "columns show where it matters: trip-priced profiles "
           "(nvme,\nnet-remote), not seek-priced ones "
           "(hdd).\n(wrote BENCH_round_trips.json)\n";
  }
  return 0;
}
