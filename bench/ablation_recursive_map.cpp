// Ablation for the recursive position map extension: the thesis runs
// "the naive setting (no recursive)" — a flat trusted map of 8 B per
// block (Figure 4-1's "Position map (4MB)"). Recursion shrinks trusted
// state geometrically at the price of one extra in-memory ORAM access
// per level per map operation. This bench quantifies that trade so a
// deployment can pick its point.
#include <iostream>

#include "oram/path/recursive_position_map.h"
#include "sim/profiles.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;

  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());

  constexpr std::uint64_t universe = 1 << 19;  // the paper's 4 MB map
  std::cout << "=== Ablation: recursive position map (universe = 2^19 "
               "blocks; flat map = 4 MB trusted) ===\n";
  util::text_table table({"Entries/block", "Threshold", "Levels",
                          "Trusted bytes", "Map-ORAM bytes",
                          "Lookup cost", "Assign cost"});

  struct option {
    std::uint64_t epb;
    std::uint64_t threshold;
  };
  const std::vector<option> options = {
      {16, 1 << 19},  // degenerate: stays flat
      {16, 1 << 14},
      {16, 1 << 10},
      {16, 64},
      {64, 64},
      {256, 64},
  };
  for (const option& opt : options) {
    util::pcg64 rng(5);
    oram::recursive_map_config config;
    config.universe = universe;
    config.entries_per_block = opt.epb;
    config.direct_threshold = opt.threshold;
    config.seal = false;
    oram::recursive_position_map map(config, memory, cpu, rng, nullptr);

    // Average a handful of operations.
    oram::cost_split lookup_cost;
    oram::cost_split assign_cost;
    constexpr int samples = 50;
    for (int i = 0; i < samples; ++i) {
      const oram::block_id id = util::uniform_below(rng, universe);
      assign_cost += map.assign(id, i + 1);
      std::optional<oram::leaf_id> out;
      lookup_cost += map.lookup(id, out);
    }
    table.add_row(
        {std::to_string(opt.epb), std::to_string(opt.threshold),
         std::to_string(map.level_count()),
         util::format_bytes(map.trusted_bytes()),
         util::format_bytes(map.oram_bytes()),
         util::format_time_ns(lookup_cost.total() / samples),
         util::format_time_ns(assign_cost.total() / samples)});
  }
  table.print(std::cout);
  std::cout << "Each level adds one in-memory path access per map "
               "operation; trusted memory falls\nfrom 4 MB to a few "
               "hundred bytes — the standard Path ORAM recursion the "
               "thesis skips.\n";
  return 0;
}
