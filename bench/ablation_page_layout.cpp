// Ablation for the page-packed bucket layout (src/storage/page_layout):
// storage-device operations per logical request, flat vs page layout,
// for each backend across device profiles (HDD / raw HDD / SSD / DRAM).
//
// The flat layout issues one range op per tree bucket on the path; the
// page layout packs h-level subtree segments into device pages so a
// path costs one op per *segment*, and the valid-bit tree skips device
// reads of never-written segments entirely. Device ops per request is
// therefore the headline column: on the path backend the page rows must
// come in strictly below flat, and the gap matters most on seek-bound
// profiles (HDD) where each saved op is a saved positioning cost. The
// partitioned backend is the control — its accesses are single-slot
// draws from a random permutation, so the layout knob is inert there by
// design and its reduction column stays at 1.00x.
//
// Every run writes BENCH_page_layout.json to the working directory so
// the trajectory is machine-readable (CI uploads it as an artifact);
// `--json` additionally emits the document to stdout instead of the
// table and `--small` shrinks the sweep for smoke runs.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 64 * util::mib;
  data.memory_bytes = options.small ? 1 * util::mib : 8 * util::mib;
  const workload_recipe recipe = bench_recipe(options, 3000, 20000);

  const std::uint64_t page_bytes = 16384;
  const std::vector<sim::device_profile> profiles =
      bench_storage_profiles(options);
  const std::vector<backend_kind> kinds =
      options.small
          ? std::vector<backend_kind>{backend_kind::path}
          : std::vector<backend_kind>{backend_kind::partitioned,
                                      backend_kind::path};

  if (!options.json) {
    std::cout << "=== Ablation: storage layout x backend x device "
                 "profile ("
              << util::format_bytes(data.data_bytes) << " dataset, "
              << util::format_count(recipe.request_count) << " requests, "
              << util::format_bytes(page_bytes) << " pages) ===\n";
  }

  std::string json = "{\n  \"bench\": \"ablation_page_layout\",\n"
                     "  \"page_bytes\": " +
                     std::to_string(page_bytes) + ",\n  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Profile", "Backend", "Layout", "Requests",
                          "Dev reads", "Dev writes", "Ops/req",
                          "Op reduction", "Avg IO (us)", "Sim total"});
  for (const sim::device_profile& profile : profiles) {
    const machine hw{profile, sim::dram_ddr4(), sim::cpu_aesni()};
    for (const backend_kind kind : kinds) {
      double flat_ops_per_request = 0.0;
      for (const storage::storage_layout layout : all_storage_layouts) {
        const system_run run = run_horam(
            data, recipe, hw,
            [layout, page_bytes](horam_config& config) {
              config.layout = layout;
              config.page_bytes = page_bytes;
            },
            kind);
        const std::uint64_t device_ops =
            run.device_read_ops + run.device_write_ops;
        const double ops_per_request =
            run.requests > 0
                ? static_cast<double>(device_ops) /
                      static_cast<double>(run.requests)
                : 0.0;
        if (layout == storage::storage_layout::flat) {
          flat_ops_per_request = ops_per_request;
        }
        // Flat is the control of each profile x backend cell; the
        // reduction column is how many flat-layout device ops one
        // page-layout op replaces.
        const double reduction = ops_per_request > 0.0
                                     ? flat_ops_per_request /
                                           ops_per_request
                                     : 0.0;
        table.add_row(
            {std::string(profile.name),
             std::string(backend_name(kind)),
             std::string(storage_layout_name(layout)),
             util::format_count(run.requests),
             util::format_count(run.device_read_ops),
             util::format_count(run.device_write_ops),
             util::format_double(ops_per_request, 2),
             util::format_double(reduction, 2) + "x",
             util::format_double(run.avg_io_latency_us, 1),
             util::format_time_ns(run.total_time)});
        if (!first_run) {
          json += ",\n";
        }
        first_run = false;
        json += "    {\"storage_profile\": " + json_escape(profile.name) +
                ", \"backend\": " + json_escape(backend_name(kind)) +
                ", \"layout\": " +
                json_escape(storage_layout_name(layout)) +
                ", \"device_ops_per_request\": " +
                json_number(ops_per_request) +
                ", \"op_reduction_vs_flat\": " + json_number(reduction) +
                ", " + json_fields(run) + "}";
      }
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_page_layout.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "Page rows bundle each h-level path subtree into one device "
           "op and skip reads\nof never-written segments via the "
           "valid-bit tree, so on the path backend the\nops/request "
           "column drops below flat everywhere; seek-bound profiles "
           "(HDD) turn\nthe saved ops into the largest latency win. The "
           "partitioned backend draws\nsingle slots from a permutation "
           "— the layout knob is inert there by design.\n"
           "(wrote BENCH_page_layout.json)\n";
  }
  return 0;
}
