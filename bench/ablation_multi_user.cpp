// Ablation for §5.3.2 (multi-user case): H-ORAM's group scheduler packs
// requests from several users into the same cycles, so throughput holds
// as users are added; per-user latency grows with the queue depth, not
// with a per-user ORAM serialisation.
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  constexpr std::uint64_t requests_per_user = 4000;
  dataset data;
  data.data_bytes = 64 * util::mib;
  data.memory_bytes = 8 * util::mib;
  const machine hw = paper_machine();

  std::cout << "=== Ablation: multi-user front end (64 MB dataset, "
               "4,000 requests per user) ===\n";
  util::text_table table({"Users", "Total requests", "Makespan",
                          "Throughput (req/s)", "Mean latency",
                          "Max/min user latency"});
  for (const std::uint32_t users : {1u, 2u, 4u, 8u}) {
    client ctrl = client_builder()
                      .blocks(data.block_count())
                      .memory_blocks(data.memory_blocks())
                      .payload_bytes(data.payload_bytes)
                      .logical_block_bytes(data.block_bytes)
                      .storage_profile(hw.storage)
                      .memory_profile(hw.memory)
                      .cpu(hw.cpu)
                      .seal(false)
                      .seed(77)
                      .build();
    multi_user_frontend frontend(ctrl.ctrl());

    util::pcg64 wl(78);
    workload::stream_config stream;
    stream.request_count = requests_per_user;
    stream.block_count = data.block_count();
    stream.payload_bytes = data.payload_bytes;
    std::vector<std::vector<request>> queues;
    for (std::uint32_t u = 0; u < users; ++u) {
      queues.push_back(workload::hotspot(wl, stream, 0.8, 0.017));
    }
    const multi_user_summary summary = frontend.run(std::move(queues));

    sim::sim_time mean = 0;
    sim::sim_time lo = summary.users[0].mean_latency;
    sim::sim_time hi = lo;
    for (const user_summary& user : summary.users) {
      mean += user.mean_latency;
      lo = std::min(lo, user.mean_latency);
      hi = std::max(hi, user.mean_latency);
    }
    mean /= static_cast<sim::sim_time>(summary.users.size());
    table.add_row(
        {std::to_string(users),
         util::format_count(users * requests_per_user),
         util::format_time_ns(summary.makespan),
         util::format_count(
             static_cast<std::uint64_t>(summary.throughput)),
         util::format_time_ns(mean),
         util::format_double(
             static_cast<double>(hi) / static_cast<double>(std::max<
                 sim::sim_time>(1, lo)),
             2)});
  }
  table.print(std::cout);
  std::cout << "Group scheduling absorbs extra users into shared "
               "cycles while round-robin keeps\nper-user latencies "
               "balanced (max/min near 1). Once the combined working "
               "set\noutgrows the memory tree, shuffle periods start "
               "amortising across users and\nthroughput steps down — "
               "the access-control/scheduling trade §5.3.2 anticipates.\n";
  return 0;
}
