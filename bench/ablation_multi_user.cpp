// Ablation for §5.3.2 (multi-user case): H-ORAM's group scheduler packs
// requests from several tenants into the same cycles, so throughput
// holds as tenants are added; per-tenant latency grows with the queue
// depth, not with a per-tenant ORAM serialisation.
//
// Runs entirely through the asynchronous horam::service facade: each
// tenant is a session submitting ticketed requests, the service
// interleaves them under a fairness policy, and reset_stats() excludes
// the cache warm-up from every measurement. A second sweep swaps
// round-robin for weighted-share and reports the realised shares.
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

constexpr std::uint64_t requests_per_user = 4000;
constexpr std::uint64_t warmup_per_user = 400;

service build_service_for(const dataset& data, const machine& hw,
                          fairness_kind policy) {
  return client_builder()
      .blocks(data.block_count())
      .memory_blocks(data.memory_blocks())
      .payload_bytes(data.payload_bytes)
      .logical_block_bytes(data.block_bytes)
      .storage_profile(hw.storage)
      .memory_profile(hw.memory)
      .cpu(hw.cpu)
      .seal(false)
      .fairness(policy)
      .seed(77)
      .build_service();
}

void submit_stream(session& tenant, util::pcg64& wl,
                   const workload::stream_config& stream) {
  for (const request& req : workload::hotspot(wl, stream, 0.8, 0.017)) {
    if (req.op == oram::op_kind::write) {
      (void)tenant.async_write(req.id, req.write_data);
    } else {
      (void)tenant.async_read(req.id);
    }
  }
}

}  // namespace

int main() {
  dataset data;
  data.data_bytes = 64 * util::mib;
  data.memory_bytes = 8 * util::mib;
  const machine hw = paper_machine();

  workload::stream_config warmup_stream;
  warmup_stream.request_count = warmup_per_user;
  warmup_stream.block_count = data.block_count();
  warmup_stream.payload_bytes = data.payload_bytes;
  workload::stream_config stream = warmup_stream;
  stream.request_count = requests_per_user;

  std::cout << "=== Ablation: multi-tenant service (64 MB dataset, "
               "4,000 requests per tenant, warm-up excluded) ===\n";
  util::text_table table({"Tenants", "Total requests", "Makespan",
                          "Throughput (req/s)", "Mean latency",
                          "Max/min tenant latency"});
  std::vector<controller_stats> sweep_stats;
  for (const std::uint32_t users : {1u, 2u, 4u, 8u}) {
    service svc =
        build_service_for(data, hw, fairness_kind::round_robin);
    std::vector<session> tenants;
    for (std::uint32_t u = 0; u < users; ++u) {
      tenants.push_back(svc.open_session());
    }

    util::pcg64 wl(78);
    // Warm the cache tree, then drop the warm-up from every counter so
    // the table reports steady-state behaviour.
    for (session& tenant : tenants) {
      submit_stream(tenant, wl, warmup_stream);
    }
    svc.run_until_idle();
    svc.reset_stats();

    const sim::sim_time start = svc.now();
    for (session& tenant : tenants) {
      submit_stream(tenant, wl, stream);
    }
    svc.run_until_idle();
    const sim::sim_time makespan = svc.now() - start;
    sweep_stats.push_back(svc.stats());

    sim::sim_time mean = 0;
    sim::sim_time lo = svc.tenant_stats(0).mean_latency();
    sim::sim_time hi = lo;
    std::uint64_t total = 0;
    for (std::uint32_t u = 0; u < users; ++u) {
      const tenant_stats ts = svc.tenant_stats(u);
      mean += ts.mean_latency();
      lo = std::min(lo, ts.mean_latency());
      hi = std::max(hi, ts.mean_latency());
      total += ts.completed;
    }
    mean /= static_cast<sim::sim_time>(users);
    const double throughput =
        makespan > 0 ? static_cast<double>(total) * 1e9 /
                           static_cast<double>(makespan)
                     : 0.0;
    table.add_row(
        {std::to_string(users), util::format_count(total),
         util::format_time_ns(makespan),
         util::format_count(static_cast<std::uint64_t>(throughput)),
         util::format_time_ns(mean),
         util::format_double(
             static_cast<double>(hi) /
                 static_cast<double>(std::max<sim::sim_time>(1, lo)),
             2)});
  }
  table.print(std::cout);
  // Whole-sweep resource totals via the multi-instance aggregation the
  // sharded engine uses (controller_stats::operator+=).
  const controller_stats sweep_total = aggregate(sweep_stats);
  std::cout << "Sweep totals: "
            << util::format_count(sweep_total.requests) << " requests, "
            << util::format_count(sweep_total.cycles) << " I/O accesses, "
            << util::format_count(sweep_total.periods)
            << " shuffle periods, storage busy "
            << util::format_time_ns(sweep_total.io_busy)
            << " over all sweep machines.\n";
  std::cout << "Group scheduling absorbs extra tenants into shared "
               "cycles while round-robin keeps\nper-tenant latencies "
               "balanced (max/min near 1). Once the combined working "
               "set\noutgrows the memory tree, shuffle periods start "
               "amortising across tenants and\nthroughput steps down — "
               "the access-control/scheduling trade §5.3.2 anticipates."
               "\n\n";

  // --- Weighted shares: same machine, unequal tenants. ---
  std::cout << "=== Weighted-share policy: 4 tenants, weights 1/1/2/4, "
               "backlogged queues ===\n";
  service svc = build_service_for(data, hw, fairness_kind::weighted_share);
  const std::vector<double> weights = {1.0, 1.0, 2.0, 4.0};
  std::vector<session> tenants;
  for (const double w : weights) {
    tenants.push_back(svc.open_session(w));
  }
  util::pcg64 wl(79);
  // Warm up in weight proportion: the deficit counters the policy
  // steers by are lifetime counts, so an equal-split warm-up would owe
  // the heavy tenants a catch-up burst right after the reset.
  for (std::uint32_t u = 0; u < tenants.size(); ++u) {
    workload::stream_config scaled = warmup_stream;
    scaled.request_count = static_cast<std::uint64_t>(
        static_cast<double>(warmup_per_user) * weights[u]);
    submit_stream(tenants[u], wl, scaled);
  }
  svc.run_until_idle();
  svc.reset_stats();
  for (session& tenant : tenants) {
    submit_stream(tenant, wl, stream);
  }
  // Pump a bounded number of rounds so every queue stays backlogged:
  // the interesting quantity is the share each tenant realises.
  for (int round = 0; round < 200 && svc.step(); ++round) {
  }
  std::uint64_t total = 0;
  for (std::uint32_t u = 0; u < tenants.size(); ++u) {
    total += svc.tenant_stats(u).completed;
  }
  util::text_table shares({"Tenant", "Weight", "Completed",
                           "Observed share", "Weight share",
                           "Mean latency"});
  for (std::uint32_t u = 0; u < tenants.size(); ++u) {
    const tenant_stats ts = svc.tenant_stats(u);
    shares.add_row(
        {std::to_string(u), util::format_double(weights[u], 1),
         util::format_count(ts.completed),
         util::format_double(100.0 * static_cast<double>(ts.completed) /
                                 static_cast<double>(total),
                             1) +
             " %",
         util::format_double(100.0 * weights[u] / 8.0, 1) + " %",
         util::format_time_ns(ts.mean_latency())});
  }
  shares.print(std::cout);
  svc.run_until_idle();
  std::cout << "Observed shares track the configured weights while no "
               "tenant starves — the\ndeficit-style policy only ever "
               "sees queue depths and service counts, so the\nfairness "
               "choice cannot leak which blocks a tenant touches.\n";
  return 0;
}
