// Ablation for the sharded engine: throughput as the block space is
// striped over 1 / 2 / 4 / 8 controller shards, for every backend, on
// the paper's device profile. Each shard owns its own storage lane, so
// total throughput should scale with the shard count until padding
// overhead (the oblivious router tops every shard round up to the
// public cap) and the per-shard memory split eat the gains.
//
// Every run writes BENCH_shards.json to the working directory so the
// performance trajectory is machine-readable (CI uploads it as an
// artifact); `--json` additionally emits the same document to stdout
// instead of the table, and `--small` shrinks the dataset for smoke
// runs.
#include <fstream>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;
using namespace horam::bench;

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  const bench_options options = parse_bench_args(argc, argv);

  dataset data;
  data.data_bytes = options.small ? 8 * util::mib : 64 * util::mib;
  data.memory_bytes = options.small ? 1 * util::mib : 8 * util::mib;
  const workload_recipe recipe = bench_recipe(options, 4000, 25000);
  const machine hw = paper_machine();

  if (!options.json) {
    std::cout << "=== Ablation: shard count x backend ("
              << util::format_bytes(data.data_bytes) << " dataset, "
              << util::format_count(recipe.request_count)
              << " requests, paper HDD profile) ===\n";
  }

  std::string json = "{\n  \"bench\": \"ablation_shards\",\n  \"runs\": [\n";
  bool first_run = true;
  util::text_table table({"Backend", "Shards", "Total time",
                          "Throughput (req/s)", "Speedup vs 1", "Hit rate",
                          "I/O accesses", "Storage"});
  for (const backend_kind kind : all_backend_kinds) {
    sim::sim_time base_time = 0;
    for (const std::uint32_t shards : kShardCounts) {
      const system_run run = run_horam(
          data, recipe, hw,
          [shards](horam_config& config) { config.shard_count = shards; },
          kind);
      if (shards == 1) {
        base_time = run.total_time;
      }
      const double speedup =
          run.total_time > 0 ? static_cast<double>(base_time) /
                                   static_cast<double>(run.total_time)
                             : 0.0;
      const double throughput =
          run.total_time > 0 ? static_cast<double>(run.requests) * 1e9 /
                                   static_cast<double>(run.total_time)
                             : 0.0;
      table.add_row(
          {std::string(backend_name(kind)), std::to_string(shards),
           util::format_time_ns(run.total_time),
           util::format_count(static_cast<std::uint64_t>(throughput)),
           util::format_double(speedup, 2) + "x",
           util::format_double(100.0 * run.hit_rate, 1) + " %",
           util::format_count(run.io_accesses),
           util::format_bytes(run.storage_bytes)});
      if (!first_run) {
        json += ",\n";
      }
      first_run = false;
      json += "    {\"backend\": " +
              json_escape(backend_name(kind)) +
              ", \"shards\": " + std::to_string(shards) +
              ", \"speedup_vs_1_shard\": " +
              json_number(speedup) + ", " + json_fields(run) + "}";
    }
  }
  json += "\n  ]\n}\n";

  std::ofstream out("BENCH_shards.json");
  out << json;
  out.close();

  if (options.json) {
    std::cout << json;
  } else {
    table.print(std::cout);
    std::cout
        << "Each shard owns an independent storage lane, so lanes drain "
           "in parallel and the\nround router pads every shard to a "
           "public per-round cap — throughput scales\nwith shards while "
           "the bus shape of each lane stays workload-independent.\n"
           "(wrote BENCH_shards.json)\n";
  }
  return 0;
}
