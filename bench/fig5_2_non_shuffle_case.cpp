// Reproduces Figure 5-2 (applications of the non-shuffle case): in the
// client/server deployment the shuffle runs on the remote server or in
// off-line hours, so only access-period time hits the critical path.
// The paper's claim: "without considering the shuffle as an extra
// overhead, our H-ORAM can theoretically achieve 32 times faster access
// time than the Path ORAM."
#include <iostream>
#include <string>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  const machine hw = paper_machine();

  struct scenario {
    const char* name;
    std::uint64_t data_mb;
    std::uint64_t memory_mb;
    std::uint64_t requests;
  };
  const std::vector<scenario> scenarios = {
      {"64 MB / 8 MB", 64, 8, 25000},
      {"1 GB / 128 MB", 1024, 128, 400000},
  };

  std::cout << "=== Figure 5-2: client/server non-shuffle case ===\n";
  util::text_table table({"Dataset", "Policy", "Total time",
                          "Speedup vs Path ORAM"});
  for (const scenario& s : scenarios) {
    dataset data;
    data.data_bytes = s.data_mb * util::mib;
    data.memory_bytes = s.memory_mb * util::mib;
    workload_recipe recipe;
    recipe.request_count = s.requests;

    const system_run path_run = run_tree_top_path(data, recipe, hw);
    const auto speedup = [&](const system_run& run) {
      return util::format_double(static_cast<double>(path_run.total_time) /
                                     static_cast<double>(run.total_time),
                                 1) +
             "x";
    };

    // One row per execution policy, labelled from the canonical name
    // list so the table never drifts from the enum.
    for (const shuffle_policy policy :
         {shuffle_policy::foreground, shuffle_policy::async_writeback,
          shuffle_policy::offloaded}) {
      const system_run run =
          run_horam(data, recipe, hw, [policy](horam_config& c) {
            c.shuffle = policy;
          });
      table.add_row({s.name, std::string(shuffle_policy_name(policy)),
                     util::format_time_ns(run.total_time), speedup(run)});
    }
  }
  table.print(std::cout);
  std::cout << "Paper: ideal non-shuffle case ~32x over Path ORAM.\n";
  return 0;
}
