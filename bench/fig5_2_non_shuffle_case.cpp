// Reproduces Figure 5-2 (applications of the non-shuffle case): in the
// client/server deployment the shuffle runs on the remote server or in
// off-line hours, so only access-period time hits the critical path.
// The paper's claim: "without considering the shuffle as an extra
// overhead, our H-ORAM can theoretically achieve 32 times faster access
// time than the Path ORAM."
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  const machine hw = paper_machine();

  struct scenario {
    const char* name;
    std::uint64_t data_mb;
    std::uint64_t memory_mb;
    std::uint64_t requests;
  };
  const std::vector<scenario> scenarios = {
      {"64 MB / 8 MB", 64, 8, 25000},
      {"1 GB / 128 MB", 1024, 128, 400000},
  };

  std::cout << "=== Figure 5-2: client/server non-shuffle case ===\n";
  util::text_table table({"Dataset", "Policy", "Total time",
                          "Speedup vs Path ORAM"});
  for (const scenario& s : scenarios) {
    dataset data;
    data.data_bytes = s.data_mb * util::mib;
    data.memory_bytes = s.memory_mb * util::mib;
    workload_recipe recipe;
    recipe.request_count = s.requests;

    const system_run path_run = run_tree_top_path(data, recipe, hw);
    const auto speedup = [&](const system_run& run) {
      return util::format_double(static_cast<double>(path_run.total_time) /
                                     static_cast<double>(run.total_time),
                                 1) +
             "x";
    };

    const system_run fg = run_horam(data, recipe, hw);
    table.add_row({s.name, "foreground shuffle",
                   util::format_time_ns(fg.total_time), speedup(fg)});
    const system_run async =
        run_horam(data, recipe, hw, [](horam_config& c) {
          c.shuffle = shuffle_policy::async_writeback;
        });
    table.add_row({s.name, "async write-back",
                   util::format_time_ns(async.total_time),
                   speedup(async)});
    const system_run off =
        run_horam(data, recipe, hw, [](horam_config& c) {
          c.shuffle = shuffle_policy::offloaded;
        });
    table.add_row({s.name, "offloaded (Fig 5-2)",
                   util::format_time_ns(off.total_time), speedup(off)});
  }
  table.print(std::cout);
  std::cout << "Paper: ideal non-shuffle case ~32x over Path ORAM.\n";
  return 0;
}
