// Reproduces Table 5-3: 64 MB dataset with 25,000 requests.
//
// Paper reference (H-ORAM vs Path ORAM):
//   storage/memory size: 64 MB / 8 MB vs 120 MB / 8 MB
//   number of I/O accesses: 7,228 vs 25,000
//   I/O latency: 77 us vs 1,032 us
//   shuffle time: 729 ms * 1; total time: 1,290 ms vs 25,575 ms (19.8x)
//
// Our simulator charges the shuffle's sequential writes at the paper's
// measured raw throughput (55.2 MB/s); the thesis's 729 ms shuffle is
// only reachable with page-cache write absorption, so a second H-ORAM
// row shows the async write-back policy that models it.
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  dataset data;
  data.data_bytes = 64 * util::mib;
  data.memory_bytes = 8 * util::mib;

  workload_recipe recipe;
  recipe.request_count = 25000;

  const machine hw = paper_machine();
  const system_run horam_run = run_horam(data, recipe, hw);
  const system_run path_run = run_tree_top_path(data, recipe, hw);

  paper_reference paper;
  paper.horam_io_accesses = 7228;
  paper.horam_io_latency_us = 77;
  paper.horam_shuffle_ms = 729;
  paper.horam_total_ms = 1290;
  paper.path_io_accesses = 25000;
  paper.path_io_latency_us = 1032;
  paper.path_total_ms = 25575;

  print_comparison("Table 5-3: 64 MB dataset, 25,000 requests",
                   horam_run, path_run, paper);

  // Page-cache-style write-back (the thesis testbed's behaviour).
  const system_run horam_async =
      run_horam(data, recipe, hw, [](horam_config& config) {
        config.shuffle = shuffle_policy::async_writeback;
      });
  std::cout << "\nWith async write-back shuffle (models the thesis's "
               "page-cache-assisted measurement):\n"
            << "  total time "
            << util::format_time_ns(horam_async.total_time)
            << ", speedup "
            << util::format_double(
                   static_cast<double>(path_run.total_time) /
                       static_cast<double>(horam_async.total_time),
                   1)
            << "x\n";
  return 0;
}
