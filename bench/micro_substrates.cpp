// Google-benchmark microbenchmarks of the substrates: cipher, PRF,
// sealing, RNG, Fenwick sampling, shuffle kernels, Path ORAM access.
// These measure host performance of the library code itself (the other
// harnesses report virtual time).
#include <benchmark/benchmark.h>

#include "crypto/chacha20.h"
#include "crypto/seal.h"
#include "crypto/siphash.h"
#include "oram/path/path_oram.h"
#include "shuffle/bitonic.h"
#include "shuffle/fisher_yates.h"
#include "sim/profiles.h"
#include "util/fenwick.h"
#include "util/rng.h"

namespace {

using namespace horam;

void bm_chacha20_block(benchmark::State& state) {
  crypto::chacha_key key{};
  crypto::chacha_nonce nonce{};
  std::array<std::uint8_t, 64> out;
  std::uint32_t counter = 0;
  for (auto _ : state) {
    crypto::chacha20_block(key, counter++, nonce, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64);
}
BENCHMARK(bm_chacha20_block);

void bm_chacha20_xor_1k(benchmark::State& state) {
  crypto::chacha_key key{};
  crypto::chacha_nonce nonce{};
  std::vector<std::uint8_t> data(1024, 0x5a);
  for (auto _ : state) {
    crypto::chacha20_xor(key, nonce, 0, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(bm_chacha20_xor_1k);

void bm_siphash_1k(benchmark::State& state) {
  crypto::siphash_key key{};
  std::vector<std::uint8_t> data(1024, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::siphash24(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(bm_siphash_1k);

void bm_seal_open_1k(benchmark::State& state) {
  crypto::block_sealer sealer(crypto::derive_seal_keys(1));
  const std::vector<std::uint8_t> plaintext(1024, 0x11);
  for (auto _ : state) {
    const auto sealed = sealer.seal(plaintext);
    benchmark::DoNotOptimize(sealer.open(sealed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(bm_seal_open_1k);

void bm_pcg64(benchmark::State& state) {
  util::pcg64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(bm_pcg64);

void bm_chacha_rng(benchmark::State& state) {
  crypto::chacha_rng rng(std::uint64_t{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(bm_chacha_rng);

void bm_fenwick_sample(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  util::fenwick_tree tree(size);
  for (std::size_t i = 0; i < size; ++i) {
    tree.add(i, 4);
  }
  util::pcg64 rng(2);
  for (auto _ : state) {
    const auto offset = static_cast<std::int64_t>(
        util::uniform_below(rng, static_cast<std::uint64_t>(
                                     tree.total())));
    benchmark::DoNotOptimize(tree.find_by_offset(offset));
  }
}
BENCHMARK(bm_fenwick_sample)->Arg(256)->Arg(1024)->Arg(4096);

void bm_fisher_yates(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  util::pcg64 rng(3);
  std::vector<std::uint8_t> records(n * 64);
  for (auto _ : state) {
    shuffle::fisher_yates(rng, records, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_fisher_yates)->Arg(1024)->Arg(4096);

void bm_bitonic_shuffle(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  util::pcg64 rng(4);
  std::vector<std::uint8_t> records(n * 64);
  for (auto _ : state) {
    shuffle::bitonic_shuffle(rng, records, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bm_bitonic_shuffle)->Arg(1024)->Arg(4096);

void bm_path_oram_access(benchmark::State& state) {
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(5);
  oram::path_oram_config config;
  config.leaf_count = 1024;
  config.bucket_size = 4;
  config.payload_bytes = 64;
  config.id_universe = 8192;
  config.seal = state.range(0) != 0;
  oram::path_oram oram(config, memory, nullptr, cpu, rng, nullptr);
  std::vector<std::uint8_t> payload(64, 1);
  oram::block_id id = 0;
  for (auto _ : state) {
    oram.access(oram::op_kind::write, id % 4096, payload, {});
    ++id;
  }
  state.SetLabel(config.seal ? "sealed" : "plain");
}
BENCHMARK(bm_path_oram_access)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
