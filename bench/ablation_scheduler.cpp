// Ablation for §4.2 (secure scheduler): stage schedules and prefetch
// window. Shows why the paper ramps c across the period (a flat large c
// wastes dummy path reads while the tree is cold) and how the prefetch
// distance d reduces dummy padding.
#include <iostream>

#include "common.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;
  using namespace horam::bench;

  dataset data;
  data.data_bytes = 64 * util::mib;
  data.memory_bytes = 8 * util::mib;
  workload_recipe recipe;
  recipe.request_count = 25000;
  const machine hw = paper_machine();

  std::cout << "=== Ablation: scheduler stages (64 MB dataset) ===\n";
  struct stage_option {
    const char* name;
    std::vector<scheduler_stage> stages;
  };
  const std::vector<stage_option> options = {
      {"flat c=1", {{1, 1.0}}},
      {"flat c=3", {{3, 1.0}}},
      {"flat c=5", {{5, 1.0}}},
      {"flat c=8", {{8, 1.0}}},
      {"paper {1,3,5}", {{1, 0.20}, {3, 0.13}, {5, 0.67}}},
      {"aggressive {1,5,8}", {{1, 0.15}, {5, 0.25}, {8, 0.60}}},
  };
  util::text_table stage_table({"Stage schedule", "I/O accesses",
                                "c-hat", "Hit rate", "Total time"});
  for (const stage_option& option : options) {
    const system_run run =
        run_horam(data, recipe, hw, [&](horam_config& config) {
          config.stages = option.stages;
        });
    stage_table.add_row(
        {option.name, util::format_count(run.io_accesses),
         util::format_double(run.avg_c, 2),
         util::format_double(100.0 * run.hit_rate, 1) + " %",
         util::format_time_ns(run.total_time)});
  }
  stage_table.print(std::cout);

  std::cout << "\n=== Ablation: prefetch window d = factor * c + 1 ===\n";
  util::text_table window_table({"Prefetch factor", "I/O accesses",
                                 "c-hat", "Total time"});
  for (const std::uint32_t factor : {1u, 2u, 3u, 5u, 8u}) {
    const system_run run =
        run_horam(data, recipe, hw, [&](horam_config& config) {
          config.prefetch_factor = factor;
        });
    window_table.add_row({std::to_string(factor),
                          util::format_count(run.io_accesses),
                          util::format_double(run.avg_c, 2),
                          util::format_time_ns(run.total_time)});
  }
  window_table.print(std::cout);
  std::cout << "A deeper window (the paper's I/O pre-fetching) finds "
               "more real work per cycle,\nraising c-hat until the "
               "memory lane saturates.\n";
  return 0;
}
