// Oblivious binary search — the paper's §5.3.2 observation made
// concrete: "the square root ORAM has the advantage in the group
// access, such as the binary search O(N) comparing to the Path ORAM
// O(N log N)". Each probe of a binary search depends on the previous
// one, so a pure Path ORAM pays a full path (log N blocks of traffic)
// per probe; H-ORAM serves warm probes from its memory tree and touches
// storage once per cold probe.
//
// We search a sorted table of 64-bit keys striped over blocks and
// compare H-ORAM against the tree-top Path ORAM baseline on the same
// virtual machine.
//
//   $ ./examples/oblivious_search
#include <cstdio>
#include <iostream>
#include <cstring>

#include "horam.h"
#include "oram/path/path_oram.h"
#include "util/math.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;

constexpr std::uint64_t keys_per_block = 8;

std::uint64_t key_at(std::uint64_t index) { return 1000 + 3 * index; }

/// Reads the key at `index` through a read callback over blocks.
template <typename ReadBlock>
std::uint64_t fetch_key(std::uint64_t index, ReadBlock&& read_block) {
  const std::vector<std::uint8_t> block =
      read_block(index / keys_per_block);
  std::uint64_t key = 0;
  std::memcpy(&key, block.data() + (index % keys_per_block) * 8, 8);
  return key;
}

/// Classic binary search over [0, count) via oblivious block reads.
template <typename ReadBlock>
std::int64_t search(std::uint64_t count, std::uint64_t needle,
                    ReadBlock&& read_block, std::uint64_t& probes) {
  std::uint64_t lo = 0;
  std::uint64_t hi = count;
  probes = 0;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    ++probes;
    const std::uint64_t key = fetch_key(mid, read_block);
    if (key == needle) {
      return static_cast<std::int64_t>(mid);
    }
    if (key < needle) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return -1;
}

}  // namespace

int main() {
  using namespace horam;

  constexpr std::uint64_t key_count = 1 << 16;  // 64 Ki sorted keys
  constexpr std::uint64_t block_count = key_count / keys_per_block;

  // --- H-ORAM instance, pre-filled with the sorted table. The
  // interactive-search deployment matches Fig 5-2's client/server
  // setting: shuffles run between query bursts, off the critical path.
  const auto fill_sorted = [](oram::block_id b,
                              std::span<std::uint8_t> payload) {
    for (std::uint64_t k = 0; k < keys_per_block; ++k) {
      const std::uint64_t key = key_at(b * keys_per_block + k);
      std::memcpy(payload.data() + k * 8, &key, 8);
    }
  };
  client horam_ctrl = client_builder()
                          .blocks(block_count)
                          .cache_ratio(0.125)
                          .payload_bytes(keys_per_block * 8)
                          .logical_block_bytes(1024)
                          .seal(true)
                          .shuffle(shuffle_policy::offloaded)
                          .filler(fill_sorted)
                          .seed(55)
                          .build();
  const sim::cpu_model cpu(sim::cpu_aesni());

  // --- Path ORAM baseline on its own devices. ---
  sim::block_device path_disk(sim::hdd_paper());
  sim::block_device path_memory(sim::dram_ddr4());
  util::pcg64 path_rng(56);
  oram::path_oram_config path_config;
  path_config.bucket_size = 4;
  path_config.leaf_count =
      util::next_pow2(2 * block_count) / (2 * path_config.bucket_size);
  path_config.payload_bytes = keys_per_block * 8;
  path_config.logical_block_bytes = 1024;
  path_config.id_universe = block_count;
  path_config.seal = true;
  path_config.memory_levels = static_cast<std::uint32_t>(util::floor_log2(
      horam_ctrl.config().memory_blocks / path_config.bucket_size + 1));
  oram::path_oram path(path_config, path_memory, &path_disk, cpu,
                       path_rng, nullptr);
  path.initialize_full(
      block_count, [](oram::block_id b, std::span<std::uint8_t> payload) {
        for (std::uint64_t k = 0; k < keys_per_block; ++k) {
          const std::uint64_t key = key_at(b * keys_per_block + k);
          std::memcpy(payload.data() + k * 8, &key, 8);
        }
      });

  // --- Run a burst of searches on both. ---
  constexpr int searches = 64;
  std::uint64_t horam_probes = 0;
  std::uint64_t path_probes = 0;
  sim::sim_time path_time = 0;

  const sim::sim_time horam_start = horam_ctrl.now();
  util::pcg64 needles(57);
  for (int s = 0; s < searches; ++s) {
    const std::uint64_t target =
        key_at(util::uniform_below(needles, key_count));
    std::uint64_t probes = 0;
    const std::int64_t found = search(
        key_count, target,
        [&](std::uint64_t block) { return horam_ctrl.read(block); },
        probes);
    horam_probes += probes;
    if (found < 0) {
      std::printf("H-ORAM search failed?!\n");
      return 1;
    }
  }
  const sim::sim_time horam_time = horam_ctrl.now() - horam_start;

  util::pcg64 needles2(57);
  for (int s = 0; s < searches; ++s) {
    const std::uint64_t target =
        key_at(util::uniform_below(needles2, key_count));
    std::uint64_t probes = 0;
    const std::int64_t found = search(
        key_count, target,
        [&](std::uint64_t block) {
          std::vector<std::uint8_t> out(keys_per_block * 8);
          path_time += path
                           .access(oram::op_kind::read, block, {}, out)
                           .total();
          return out;
        },
        probes);
    path_probes += probes;
    if (found < 0) {
      std::printf("Path ORAM search failed?!\n");
      return 1;
    }
  }

  std::printf("oblivious binary search over %llu sorted keys "
              "(%d searches):\n\n",
              static_cast<unsigned long long>(key_count), searches);
  util::text_table table({"System", "Probes", "Virtual time",
                          "Per search"});
  table.add_row({"H-ORAM", util::format_count(horam_probes),
                 util::format_time_ns(horam_time),
                 util::format_time_ns(horam_time / searches)});
  table.add_row({"Path ORAM (tree-top)", util::format_count(path_probes),
                 util::format_time_ns(path_time),
                 util::format_time_ns(path_time / searches)});
  table.print(std::cout);
  std::printf(
      "\nthe top of the binary-search tree (blocks near the midpoints) "
      "stays cached in\nH-ORAM's memory tree, so warm probes cost one "
      "cheap cycle (the storage channel\nsees only indistinguishable "
      "dummy loads) instead of the baseline's full\nread-and-rewrite "
      "path — the group-access advantage §5.3.2 attributes to the\n"
      "square-root family. Shuffles run server-side between query "
      "bursts (Fig 5-2).\n");
  return 0;
}
