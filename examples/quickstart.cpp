// Quickstart: protect a small dataset with H-ORAM through the public
// facade, read and write a few blocks, then run the same workload
// against two different oblivious-store backends — selected with one
// builder call each — and compare what they cost.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API: client_builder, single-block
// read/write, batch processing, the incremental submit/drain session,
// statistics, and backend swapping.
#include <cstdio>
#include <iostream>
#include <string>

#include "horam.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace horam;

  // --- 1. Build a client: 64 MB dataset, 8 MB memory, 1 KB blocks. ---
  // The builder owns the whole simulated machine (devices, CPU, RNG).
  client oram = client_builder()
                    .blocks(64 * util::mib / util::kib)   // 65,536 blocks
                    .memory_blocks(8 * util::mib / util::kib)
                    .payload_bytes(64)          // carried bytes (demo-sized)
                    .logical_block_bytes(1024)  // timed as 1 KB blocks
                    .storage_profile("hdd")     // paper-calibrated disk
                    .seal(true)                 // real ChaCha20 + SipHash
                    .seed(42)
                    .build();
  std::printf("H-ORAM up: %llu blocks on storage, %llu-block memory tree, "
              "'%s' backend\n",
              static_cast<unsigned long long>(oram.config().block_count),
              static_cast<unsigned long long>(oram.config().memory_blocks),
              std::string(oram.backend().name()).c_str());

  // --- 2. Single-block API. ---
  const std::string greeting = "hello, oblivious world";
  oram.write(/*block=*/1234,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(greeting.data()),
                 greeting.size()));
  const std::vector<std::uint8_t> back = oram.read(1234);
  std::printf("block 1234 reads back: \"%.*s\"\n",
              static_cast<int>(greeting.size()),
              reinterpret_cast<const char*>(back.data()));

  // --- 3. Session API: stream requests in, drain when convenient. ---
  for (oram::block_id id = 100; id < 110; ++id) {
    oram.submit(request{oram::op_kind::read, id, 0, {}});
  }
  std::vector<request_result> session_results;
  oram.drain(&session_results);
  std::printf("session drain serviced %zu streamed requests\n",
              session_results.size());

  // --- 4. Backend comparison: the paper's hotspot workload through all
  // six oblivious stores (H-ORAM's partitioned layer, sqrt ORAM,
  // partition ORAM, Path ORAM with a recursive position map, Ring ORAM
  // with one-slot XOR-combined online reads, and the hierarchical
  // backend whose succinct index batches every online access into a
  // single device round trip).
  // Everything other than the backend() call is identical. ---
  const auto measure = [](backend_kind kind) {
    client c = client_builder()
                   .blocks(16384)
                   .cache_ratio(0.125)
                   .payload_bytes(64)
                   .logical_block_bytes(1024)
                   .backend(kind)
                   // Position maps live on the counted storage device so
                   // the round-trip column shows the dependent chain the
                   // tree schemes pay; hier keeps its index in trusted
                   // memory (that is its trade) and ignores the knob.
                   .map_on_storage(true)
                   .seal(true)
                   .seed(2019)
                   .build();
    workload::stream_config stream;
    stream.request_count = 20000;
    stream.block_count = c.config().block_count;
    stream.write_fraction = 0.2;
    stream.payload_bytes = c.config().payload_bytes;
    util::pcg64 gen(7);
    const std::vector<request> batch =
        workload::hotspot(gen, stream, /*hot_probability=*/0.8,
                          /*hot_region_fraction=*/0.02);
    c.run(batch);
    return c;
  };

  std::vector<client> stores;
  for (const backend_kind kind : all_backend_kinds) {
    stores.push_back(measure(kind));
  }

  const auto row_for = [](const client& c, const std::string& metric) {
    const controller_stats& stats = c.stats();
    if (metric == "round_trips") {
      // Online (non-shuffle) storage round trips per request: the
      // dependent request/response chain an interactive access waits
      // on — ~constant for hier, one per map level plus one for the
      // tree schemes.
      std::uint64_t device_trips = 0;
      for (std::uint32_t s = 0; s < c.eng().shard_count(); ++s) {
        device_trips += c.eng().shard_storage(s).stats().round_trips;
      }
      const std::uint64_t online =
          device_trips > stats.shuffle_device_round_trips
              ? device_trips - stats.shuffle_device_round_trips
              : 0;
      return util::format_double(static_cast<double>(online) /
                                     static_cast<double>(stats.requests),
                                 2);
    }
    if (metric == "hit") {
      return util::format_double(
                 100.0 * static_cast<double>(stats.hits) /
                     static_cast<double>(stats.requests),
                 1) +
             " %";
    }
    if (metric == "loads") {
      return util::format_count(stats.cycles);
    }
    if (metric == "latency") {
      return util::format_double(stats.average_io_latency_us(), 1) + " us";
    }
    if (metric == "shuffle") {
      return util::format_time_ns(stats.shuffle_time);
    }
    if (metric == "storage") {
      return util::format_bytes(c.backend().physical_bytes());
    }
    return util::format_time_ns(stats.total_time);
  };

  std::printf("\nsame workload, six oblivious stores "
              "(one .backend(...) call apart):\n");
  std::vector<std::string> header = {"Metric"};
  for (const client& c : stores) {
    header.emplace_back(c.backend().name());
  }
  util::text_table table(header);
  for (const auto& [metric, label] :
       {std::pair<const char*, const char*>{"loads", "I/O accesses"},
        {"hit", "Hit rate"},
        {"round_trips", "Round trips / request"},
        {"latency", "Average I/O latency"},
        {"shuffle", "Shuffle time"},
        {"storage", "Physical storage"},
        {"total", "Total virtual time"}}) {
    std::vector<std::string> row = {label};
    for (const client& c : stores) {
      row.push_back(row_for(c, metric));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  const client& partitioned = stores.front();
  for (std::size_t k = 1; k < stores.size(); ++k) {
    const double speedup =
        static_cast<double>(stores[k].stats().total_time) /
        static_cast<double>(partitioned.stats().total_time);
    std::printf("partitioned backend speedup over %s: %sx\n",
                std::string(stores[k].backend().name()).c_str(),
                util::format_double(speedup, 1).c_str());
  }

  // --- 5. Scaling out: the same workload over four controller shards.
  // One builder call stripes the block space over four independent
  // device lanes behind an oblivious batch router; backends can also be
  // picked by canonical name (backend_names() is the authoritative
  // list, so nothing here hard-codes the strings). ---
  std::string names;
  for (const std::string_view name : backend_names()) {
    names += names.empty() ? std::string(name) : " | " + std::string(name);
  }
  std::printf("\navailable backends: %s\n", names.c_str());
  const auto measure_sharded = [&](std::uint32_t shards) {
    client c = client_builder()
                   .blocks(16384)
                   .cache_ratio(0.125)
                   .payload_bytes(64)
                   .logical_block_bytes(1024)
                   .backend(backend_names().front())  // by name
                   .shards(shards)
                   .seal(true)
                   .seed(2019)
                   .build();
    workload::stream_config stream;
    stream.request_count = 20000;
    stream.block_count = c.config().block_count;
    stream.write_fraction = 0.2;
    stream.payload_bytes = c.config().payload_bytes;
    util::pcg64 gen(7);
    c.run(workload::hotspot(gen, stream, 0.8, 0.02));
    return c.stats().total_time;
  };
  const sim::sim_time one_lane = measure_sharded(1);
  const sim::sim_time four_lanes = measure_sharded(4);
  std::printf("sharded engine: 1 shard %s, 4 shards %s (%sx faster)\n",
              util::format_time_ns(one_lane).c_str(),
              util::format_time_ns(four_lanes).c_str(),
              util::format_double(static_cast<double>(one_lane) /
                                      static_cast<double>(four_lanes),
                                  1)
                  .c_str());
  return 0;
}
