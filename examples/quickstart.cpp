// Quickstart: protect a small dataset with H-ORAM, read and write a few
// blocks, run a full workload batch, and print what it cost.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API: device + CPU models, controller
// construction, single-block read/write, batch processing, statistics.
#include <cstdio>
#include <iostream>
#include <string>

#include "core/controller.h"
#include "sim/profiles.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/generators.h"

int main() {
  using namespace horam;

  // --- 1. Model the machine: one storage device, one memory device. ---
  sim::block_device storage(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(/*seed=*/42);

  // --- 2. Configure H-ORAM: 64 MB dataset, 8 MB memory, 1 KB blocks. ---
  horam_config config;
  config.block_count = 64 * util::mib / util::kib;   // 65,536 blocks
  config.memory_blocks = 8 * util::mib / util::kib;  // 8,192 blocks
  config.payload_bytes = 64;       // carried bytes (demo-sized)
  config.logical_block_bytes = 1024;  // timed as 1 KB blocks
  config.seal = true;              // real ChaCha20 + SipHash sealing

  controller horam(config, storage, memory, cpu, rng);
  std::printf("H-ORAM up: %llu blocks on storage, %llu-block memory tree\n",
              static_cast<unsigned long long>(config.block_count),
              static_cast<unsigned long long>(config.memory_blocks));

  // --- 3. Single-block API. ---
  const std::string greeting = "hello, oblivious world";
  horam.write(/*block=*/1234,
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(greeting.data()),
                  greeting.size()));
  const std::vector<std::uint8_t> back = horam.read(1234);
  std::printf("block 1234 reads back: \"%.*s\"\n",
              static_cast<int>(greeting.size()),
              reinterpret_cast<const char*>(back.data()));

  // --- 4. Batch API: the paper's hotspot workload. ---
  workload::stream_config stream;
  stream.request_count = 20000;
  stream.block_count = config.block_count;
  stream.write_fraction = 0.2;
  stream.payload_bytes = config.payload_bytes;
  const std::vector<request> batch =
      workload::hotspot(rng, stream, /*hot_probability=*/0.8,
                        /*hot_region_fraction=*/0.02);
  horam.run(batch);

  // --- 5. What did it cost? ---
  const controller_stats& stats = horam.stats();
  util::text_table table({"Metric", "Value"});
  table.add_row({"Requests serviced", util::format_count(stats.requests)});
  table.add_row({"Hit rate",
                 util::format_double(100.0 * static_cast<double>(stats.hits) /
                                         static_cast<double>(stats.requests),
                                     1) +
                     " %"});
  table.add_row({"Storage loads (I/O accesses)",
                 util::format_count(stats.cycles)});
  table.add_row({"Average I/O latency",
                 util::format_double(stats.average_io_latency_us(), 1) +
                     " us"});
  table.add_row({"Average group size (c-hat)",
                 util::format_double(stats.average_c(), 2)});
  table.add_row({"Shuffle periods", util::format_count(stats.periods)});
  table.add_row({"Access time", util::format_time_ns(stats.access_time)});
  table.add_row({"Shuffle time", util::format_time_ns(stats.shuffle_time)});
  table.add_row({"Total time", util::format_time_ns(stats.total_time)});
  table.print(std::cout);
  return 0;
}
