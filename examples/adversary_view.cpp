// The adversary's view: runs a workload through H-ORAM with tracing on,
// dumps a window of the observable bus events, and then runs the
// pattern auditor over the full trace to check the obliviousness
// invariants (DESIGN.md §6) — the executable version of the paper's
// §4.4 security analysis.
//
//   $ ./examples/adversary_view
#include <cstdio>
#include <iostream>

#include "analysis/pattern_audit.h"
#include "horam.h"
#include "util/table.h"
#include "util/units.h"

namespace {

const char* kind_name(horam::oram::event_kind kind) {
  using horam::oram::event_kind;
  switch (kind) {
    case event_kind::storage_read_slot: return "storage read slot";
    case event_kind::storage_write_slot: return "storage write slot";
    case event_kind::storage_read_sweep: return "storage read sweep";
    case event_kind::storage_write_sweep: return "storage write sweep";
    case event_kind::memory_bucket_read: return "memory bucket read";
    case event_kind::memory_bucket_write: return "memory bucket write";
    case event_kind::memory_path_access: return "memory path access";
    case event_kind::cycle_begin: return "CYCLE";
    case event_kind::period_begin: return "PERIOD";
    case event_kind::shuffle_begin: return "SHUFFLE";
    case event_kind::shuffle_partition: return "shuffle partition";
    case event_kind::shuffle_slice: return "SHUFFLE SLICE";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace horam;

  client oram = client_builder()
                    .blocks(4096)
                    .memory_blocks(512)
                    .payload_bytes(64)
                    .logical_block_bytes(1024)
                    .seal(true)
                    .seed(2019)
                    .trace(true)
                    .build();

  workload::stream_config stream;
  stream.request_count = 4000;
  stream.block_count = oram.config().block_count;
  stream.write_fraction = 0.3;
  stream.payload_bytes = oram.config().payload_bytes;
  util::pcg64 wl(4);
  oram.run(workload::hotspot(wl, stream, 0.8, 0.05));
  const oram::access_trace& trace = *oram.trace();

  // --- A window of what the bus shows. ---
  std::printf("first three cycles as the adversary sees them "
              "(leaf/slot indices only — contents are sealed):\n");
  int cycles_shown = 0;
  for (const oram::trace_event& event : trace.events()) {
    if (event.kind == oram::event_kind::cycle_begin) {
      if (++cycles_shown > 3) {
        break;
      }
      std::printf("  cycle %llu (group size c = %llu)\n",
                  static_cast<unsigned long long>(event.a),
                  static_cast<unsigned long long>(event.b));
      continue;
    }
    if (cycles_shown == 0) {
      continue;
    }
    if (event.kind == oram::event_kind::memory_bucket_read ||
        event.kind == oram::event_kind::memory_bucket_write) {
      continue;  // keep the dump readable; bucket events mirror paths
    }
    std::printf("    %-20s a=%llu b=%llu\n", kind_name(event.kind),
                static_cast<unsigned long long>(event.a),
                static_cast<unsigned long long>(event.b));
  }

  // --- The auditor's verdict over the whole run. ---
  analysis::audit_config audit;
  const storage::partition_geometry& geometry =
      oram.ctrl().storage().geometry();
  audit.partition_count = geometry.partition_count;
  audit.slots_per_partition = geometry.slots_per_partition();
  audit.main_capacity = geometry.main_capacity;
  audit.leaf_count = oram.ctrl().memory_tree().config().leaf_count;
  audit.expect_single_read_per_cycle = true;
  const analysis::audit_report report =
      analysis::audit_trace(trace, audit);

  std::printf("\npattern audit over %zu events:\n", trace.size());
  util::text_table table({"Check", "Result"});
  table.add_row({"cycles observed", util::format_count(report.cycles)});
  table.add_row({"storage slot reads",
                 util::format_count(report.storage_reads)});
  table.add_row({"path accesses", util::format_count(report.path_accesses)});
  table.add_row({"shuffle periods", util::format_count(report.shuffles)});
  table.add_row({"slot read-once invariant",
                 report.passed() ? "PASS" : "VIOLATED"});
  table.add_row({"cycle regularity (1 load + c paths)",
                 report.passed() ? "PASS" : "VIOLATED"});
  table.add_row(
      {"leaf uniformity chi-square",
       util::format_double(report.leaf_chi_square, 1) + " (" +
           (report.leaf_uniformity_ok ? "PASS" : "VIOLATED") + ")"});
  table.print(std::cout);
  for (const std::string& violation : report.violations) {
    std::printf("VIOLATION: %s\n", violation.c_str());
  }
  if (report.passed()) {
    std::printf("\nno invariant violated: hit/miss mix, request "
                "addresses and repetition are hidden.\n");
  }
  return report.passed() ? 0 : 1;
}
