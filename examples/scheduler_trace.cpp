// Reproduces Figure 4-2: a cycle-by-cycle view of the secure scheduler
// with I/O prefetching. Nine requests sit in the ROB (the figure's
// {H1 H2 H3 M1 H4 H5 M2 M2 H6} pattern: H = in-memory hit, M = storage
// miss); with c = 3 and d = 9 the scheduler overlaps each cycle's
// storage load with three in-memory accesses, servicing a miss via the
// memory lane one cycle after its load.
//
//   $ ./examples/scheduler_trace
#include <cstdio>
#include <iostream>

#include "horam.h"
#include "util/table.h"

int main() {
  using namespace horam;

  // The figure's request mix: positions of the misses in the window.
  const std::vector<const char*> labels = {"H1", "H2", "H3", "M1", "H4",
                                           "H5", "M2", "M2'", "H6"};
  const std::vector<bool> initially_resident = {
      true, true, true, false, true, true, false, false, true};
  // Request k asks for block k, except the duplicate M2' which re-reads
  // M2's block (the figure schedules its load once).
  const std::vector<oram::block_id> ids = {0, 1, 2, 3, 4, 5, 6, 6, 8};

  std::vector<bool> resident = initially_resident;
  rob_table rob;
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    rob.push(i);
  }

  scheduler sched({{3, 1.0}}, /*period_loads=*/1000,
                  /*prefetch_factor=*/3);  // c = 3, d = 10 > figure's 9

  std::printf("Figure 4-2: request scheduler with prefetching "
              "(c = 3, window d = 10)\n");
  std::printf("ROB: ");
  for (const char* label : labels) {
    std::printf("%s ", label);
  }
  std::printf("\n\n");

  util::text_table table({"Cycle", "I/O lane (load)", "Memory lane "
                          "(3 path accesses)", "Serviced"});
  std::uint64_t loading_request = SIZE_MAX;
  for (int cycle = 1; !rob.empty() || loading_request != SIZE_MAX;
       ++cycle) {
    // The previous cycle's load has arrived.
    if (loading_request != SIZE_MAX) {
      resident[loading_request] = true;
      loading_request = SIZE_MAX;
    }
    const cycle_plan plan = sched.plan(
        rob, 0, [&](std::uint64_t index) { return ids[index]; },
        [&](oram::block_id id) -> bool {
          for (std::uint64_t k = 0; k < ids.size(); ++k) {
            if (ids[k] == id) {
              return resident[k];
            }
          }
          return false;
        });

    std::string io_cell = "load dummy";
    if (plan.miss_position.has_value()) {
      const std::uint64_t request =
          rob.at(*plan.miss_position).request_index;
      io_cell = std::string("load ") + labels[request];
      rob.at(*plan.miss_position).loading = true;
      loading_request = request;
    }
    std::string memory_cell;
    std::string serviced_cell;
    for (const std::size_t position : plan.hit_positions) {
      const std::uint64_t request = rob.at(position).request_index;
      memory_cell += std::string(labels[request]) + " ";
      serviced_cell += std::string(labels[request]) + " ";
    }
    for (std::uint32_t k = 0; k < plan.dummy_hits; ++k) {
      memory_cell += "dummy ";
    }
    table.add_row({std::to_string(cycle), io_cell, memory_cell,
                   serviced_cell.empty() ? "-" : serviced_cell});

    // Retire serviced requests (descending positions).
    for (auto it = plan.hit_positions.rbegin();
         it != plan.hit_positions.rend(); ++it) {
      rob.remove(*it);
    }
    rob.clear_loading_flags();
    if (cycle > 16) {
      break;  // safety for the demo
    }
  }
  table.print(std::cout);
  std::printf(
      "\nEvery cycle issues exactly one storage load (real or dummy) and "
      "c = 3 path\naccesses — the adversary sees an identical bus shape "
      "whatever the hit/miss mix.\nMisses are serviced through the memory "
      "lane one cycle after their load, exactly\nas in the paper's "
      "figure; the duplicate M2' needs no second load.\n");
  return 0;
}
