// A small oblivious key-value store built on the H-ORAM public API,
// running through the asynchronous service layer.
//
// Demonstrates how an application layers its own abstraction on the
// block interface: string keys are hashed (SipHash) onto block ids with
// open addressing; values live inside the 1 KB blocks together with the
// key for collision detection. Probes are admitted through a session
// and resolved with future-style tickets — ticket::result() pumps the
// service until the block arrives. The access pattern an attacker sees
// is H-ORAM's — which keys are hot, or whether a lookup hit, stays
// hidden.
//
//   $ ./examples/secure_kv_store
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "crypto/siphash.h"
#include "horam.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;

/// Block layout: [1B used][2B key length][key bytes][2B value length]
/// [value bytes]; keys and values must fit one block together.
class kv_store {
 public:
  explicit kv_store(service& svc)
      : service_(svc), session_(svc.open_session()) {}

  void put(const std::string& key, const std::string& value) {
    const std::size_t capacity = service_.config().payload_bytes;
    expects(5 + key.size() + 2 + value.size() <= capacity,
            "entry too large for one block");
    for (std::uint64_t probe = 0; probe < max_probes; ++probe) {
      const oram::block_id id = slot_of(key, probe);
      const std::vector<std::uint8_t> block = read_slot(id);
      if (block[0] != 0 && !key_matches(block, key)) {
        continue;  // occupied by another key: linear probe onward
      }
      std::vector<std::uint8_t> fresh(capacity, 0);
      fresh[0] = 1;
      fresh[1] = static_cast<std::uint8_t>(key.size());
      fresh[2] = static_cast<std::uint8_t>(key.size() >> 8);
      std::memcpy(fresh.data() + 3, key.data(), key.size());
      const std::size_t value_offset = 3 + key.size();
      fresh[value_offset] = static_cast<std::uint8_t>(value.size());
      fresh[value_offset + 1] =
          static_cast<std::uint8_t>(value.size() >> 8);
      std::memcpy(fresh.data() + value_offset + 2, value.data(),
                  value.size());
      // The ticket is a future: result() blocks (pumping the service)
      // until the write is applied, keeping probe chains ordered.
      (void)session_.async_write(id, fresh).result();
      return;
    }
    throw std::runtime_error("kv_store: probe chain exhausted");
  }

  std::optional<std::string> get(const std::string& key) {
    for (std::uint64_t probe = 0; probe < max_probes; ++probe) {
      const oram::block_id id = slot_of(key, probe);
      const std::vector<std::uint8_t> block = read_slot(id);
      if (block[0] == 0) {
        return std::nullopt;  // empty slot terminates the chain
      }
      if (key_matches(block, key)) {
        const std::size_t key_size = block[1] | (block[2] << 8);
        const std::size_t value_offset = 3 + key_size;
        const std::size_t value_size =
            block[value_offset] | (block[value_offset + 1] << 8);
        return std::string(
            reinterpret_cast<const char*>(block.data() + value_offset + 2),
            value_size);
      }
    }
    return std::nullopt;
  }

  /// Head of `key`'s probe chain — the block a flash crowd of readers
  /// all land on (the hot-key coalescing demo below watches it).
  [[nodiscard]] oram::block_id head_slot(const std::string& key) const {
    return slot_of(key, 0);
  }

 private:
  static constexpr std::uint64_t max_probes = 16;

  [[nodiscard]] std::vector<std::uint8_t> read_slot(oram::block_id id) {
    ticket t = session_.async_read(id);
    return t.result().payload;
  }

  [[nodiscard]] oram::block_id slot_of(const std::string& key,
                                       std::uint64_t probe) const {
    crypto::siphash_key hash_key{};
    hash_key[0] = 0x4b;  // fixed app-level hash key
    const std::uint64_t digest = crypto::siphash24(
        hash_key,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
    return (digest + probe) % service_.config().block_count;
  }

  static bool key_matches(const std::vector<std::uint8_t>& block,
                          const std::string& key) {
    const std::size_t key_size = block[1] | (block[2] << 8);
    return key_size == key.size() &&
           std::memcmp(block.data() + 3, key.data(), key.size()) == 0;
  }

  service& service_;
  session session_;
};

}  // namespace

int main() {
  using namespace horam;

  service svc = client_builder()
                    .blocks(16 * util::mib / util::kib)  // 16 MB of slots
                    .memory_blocks(2 * util::mib / util::kib)
                    .payload_bytes(256)
                    .logical_block_bytes(1024)
                    .seal(true)
                    .seed(7)
                    .build_service();
  kv_store store(svc);

  std::printf("oblivious KV store over the H-ORAM service (%llu slots)\n",
              static_cast<unsigned long long>(svc.config().block_count));

  store.put("paper", "H-ORAM: A Cacheable ORAM Interface");
  store.put("venue", "DAC 2019");
  store.put("advisor", "Jun Yang");
  store.put("supervisor", "Rujia Wang");
  for (int i = 0; i < 200; ++i) {
    store.put("bulk/" + std::to_string(i), "value-" + std::to_string(i));
  }

  const auto show = [&](const std::string& key) {
    const auto value = store.get(key);
    std::printf("  get(%-10s) -> %s\n", key.c_str(),
                value ? value->c_str() : "(absent)");
  };
  show("paper");
  show("venue");
  show("advisor");
  show("bulk/150");
  show("missing-key");

  const controller_stats& stats = svc.stats();
  std::printf(
      "\n%llu ORAM requests issued, hit rate %.1f%%, total virtual time "
      "%s\n",
      static_cast<unsigned long long>(stats.requests),
      100.0 * static_cast<double>(stats.hits) /
          static_cast<double>(stats.requests),
      util::format_time_ns(stats.total_time).c_str());
  std::printf(
      "every lookup costs one block access — the attacker cannot tell "
      "puts from gets,\nhits from misses, or hot keys from cold ones.\n");

  // --- Hot-key flash crowd: request coalescing -----------------------
  // A trending key gets hammered by many concurrent clients. With
  // coalescing(on) the round table merges every same-block read of a
  // scheduling round into one physical ORAM access and fans the payload
  // back to all of the waiting tickets — rounds stay padded to the
  // public cap, so the bus shape (and the obliviousness argument) is
  // unchanged; only the device bill shrinks.
  service hot = client_builder()
                    .blocks(16 * util::mib / util::kib)
                    .memory_blocks(2 * util::mib / util::kib)
                    .payload_bytes(256)
                    .logical_block_bytes(1024)
                    .coalescing(true)
                    .seal(true)
                    .seed(11)
                    .build_service();
  kv_store trending_store(hot);
  trending_store.put("trending", "everyone wants this value");
  hot.reset_stats();

  constexpr int crowd_size = 32;
  std::vector<session> crowd;
  std::vector<ticket> waiting;
  for (int i = 0; i < crowd_size; ++i) {
    crowd.push_back(hot.open_session());
    waiting.push_back(
        crowd.back().async_read(trending_store.head_slot("trending")));
  }
  hot.run_until_idle();
  for (ticket& t : waiting) {
    expects(t.ready(), "flash crowd left an unserved ticket");
  }

  const engine_stats& router = hot.underlying().eng().router_stats();
  std::printf(
      "\nhot-key flash crowd: %d clients read the same key "
      "concurrently\n  physical ORAM accesses: %llu\n  requests "
      "coalesced:      %llu\n  IOs per logical request: %.3f\n",
      crowd_size, static_cast<unsigned long long>(router.physical_accesses),
      static_cast<unsigned long long>(router.coalesced_requests),
      router.ios_per_logical_request());
  std::printf(
      "the crowd cost %llu device access(es) instead of %d — and the "
      "padded round\nshape means the bus trace looks exactly like any "
      "other round.\n",
      static_cast<unsigned long long>(router.physical_accesses),
      crowd_size);
  return 0;
}
