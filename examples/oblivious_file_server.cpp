// The paper's client/server deployment (Figure 2-3 server B and
// Figure 5-2): a client machine with trusted hardware serves files from
// an untrusted remote storage server through H-ORAM. The shuffle runs
// on the server — off the request path — so clients only ever wait for
// access-period work (the "non-shuffle case").
//
// Files are striped over consecutive blocks; a small directory (held in
// the trusted client) maps names to extents.
//
//   $ ./examples/oblivious_file_server
#include <cstdio>
#include <iostream>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "horam.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;

/// Striped-file layer over the block interface.
class file_server {
 public:
  explicit file_server(client& oram) : oram_(oram) {}

  void store_file(const std::string& name, const std::string& contents) {
    const std::size_t chunk = oram_.config().payload_bytes;
    const std::uint64_t blocks =
        (contents.size() + chunk - 1) / std::max<std::size_t>(1, chunk);
    expects(next_block_ + blocks <= oram_.config().block_count,
            "volume full");
    directory_[name] = extent{next_block_, contents.size()};

    std::vector<request> batch;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      request req;
      req.op = oram::op_kind::write;
      req.id = next_block_ + b;
      const std::size_t offset = b * chunk;
      const std::size_t size = std::min(chunk, contents.size() - offset);
      req.write_data.assign(contents.begin() +
                                static_cast<std::ptrdiff_t>(offset),
                            contents.begin() +
                                static_cast<std::ptrdiff_t>(offset + size));
      batch.push_back(std::move(req));
    }
    oram_.run(batch);
    next_block_ += blocks;
  }

  std::string read_file(const std::string& name) {
    const extent ext = directory_.at(name);
    const std::size_t chunk = oram_.config().payload_bytes;
    const std::uint64_t blocks = (ext.bytes + chunk - 1) / chunk;

    std::vector<request> batch;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      batch.push_back(request{oram::op_kind::read, ext.first_block + b,
                              0, {}});
    }
    std::vector<request_result> results;
    oram_.run(batch, &results);

    std::string contents;
    contents.reserve(ext.bytes);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::size_t size =
          std::min(chunk, ext.bytes - static_cast<std::size_t>(b) * chunk);
      contents.append(
          reinterpret_cast<const char*>(results[b].read_data.data()),
          size);
    }
    return contents;
  }

 private:
  struct extent {
    std::uint64_t first_block = 0;
    std::size_t bytes = 0;
  };

  client& oram_;
  std::map<std::string, extent> directory_;
  std::uint64_t next_block_ = 0;
};

}  // namespace

int main() {
  using namespace horam;

  // Server-side spinning storage; client-side memory cache. With the
  // offloaded policy the server performs shuffles between request
  // bursts (off-line hours), exactly the Figure 5-2 deployment.
  client oram = client_builder()
                    .blocks(32 * util::mib / util::kib)
                    .memory_blocks(4 * util::mib / util::kib)
                    .payload_bytes(512)
                    .logical_block_bytes(1024)
                    .seal(true)
                    .shuffle(shuffle_policy::offloaded)
                    .seed(99)
                    .build();
  file_server server(oram);

  std::printf("oblivious file server: %s volume, %s client cache, "
              "shuffle offloaded to the server\n",
              util::format_bytes(32 * util::mib).c_str(),
              util::format_bytes(4 * util::mib).c_str());

  // Store a few "files".
  std::string report;
  for (int line = 0; line < 200; ++line) {
    report += "quarterly figures, row " + std::to_string(line) + "\n";
  }
  server.store_file("reports/q1.txt", report);
  server.store_file("secrets/design.md",
                    "the cache hides the hit/miss sequence");
  server.store_file("notes.txt", "H-ORAM file server demo");

  const std::string q1 = server.read_file("reports/q1.txt");
  const std::string secret = server.read_file("secrets/design.md");
  std::printf("read back %zu bytes of reports/q1.txt (intact: %s)\n",
              q1.size(), q1 == report ? "yes" : "NO");
  std::printf("secrets/design.md -> \"%s\"\n", secret.c_str());

  // A burst of re-reads: the popular file is served from the client's
  // in-memory ORAM at memory speed, one dummy server touch per cycle.
  for (int i = 0; i < 20; ++i) {
    server.read_file("secrets/design.md");
  }

  const controller_stats& stats = oram.stats();
  util::text_table table({"Metric", "Value"});
  table.add_row({"Requests", util::format_count(stats.requests)});
  table.add_row({"Server I/O accesses", util::format_count(stats.cycles)});
  table.add_row({"Hit rate",
                 util::format_double(100.0 * static_cast<double>(stats.hits) /
                                         static_cast<double>(stats.requests),
                                     1) +
                     " %"});
  table.add_row({"Client-visible time",
                 util::format_time_ns(stats.total_time)});
  table.add_row({"Server-side shuffle work (hidden)",
                 util::format_time_ns(stats.shuffle_time)});
  table.print(std::cout);
  return 0;
}
