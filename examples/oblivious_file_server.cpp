// The paper's client/server deployment (Figure 2-3 server B and
// Figure 5-2), upgraded to the asynchronous multi-tenant service API:
// one H-ORAM machine with trusted hardware serves files for several
// tenants from an untrusted storage server. Each tenant gets a session
// (its own volume slice, enforced by an access-control grant at
// admission) and issues ticketed asynchronous reads and writes; the
// service interleaves the outstanding requests across tenants so their
// traffic shares scheduling groups instead of serialising ORAM
// accesses. The shuffle runs on the server — off the request path — so
// clients only ever wait for access-period work (the "non-shuffle
// case").
//
// Files are striped over consecutive blocks; a small directory (held in
// the trusted client) maps names to extents.
//
//   $ ./examples/oblivious_file_server
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "horam.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace horam;

/// Striped-file layer over one tenant's session: a private volume slice
/// [first_block, first_block + block_capacity).
class tenant_volume {
 public:
  tenant_volume(service& svc, session tenant_session,
                std::uint64_t first_block, std::uint64_t block_capacity)
      : service_(svc),
        session_(tenant_session),
        next_block_(first_block),
        end_block_(first_block + block_capacity) {}

  void store_file(const std::string& name, const std::string& contents) {
    const std::size_t chunk = service_.config().payload_bytes;
    const std::uint64_t blocks =
        (contents.size() + chunk - 1) / std::max<std::size_t>(1, chunk);
    expects(next_block_ + blocks <= end_block_, "volume slice full");
    directory_[name] = extent{next_block_, contents.size()};

    // Admit every stripe asynchronously; the service batches them into
    // shared scheduling cycles with the other tenants' traffic.
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::size_t offset = b * chunk;
      const std::size_t size = std::min(chunk, contents.size() - offset);
      (void)session_.async_write(
          next_block_ + b,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(contents.data()) +
                  offset,
              size));
    }
    next_block_ += blocks;
  }

  std::string read_file(const std::string& name) {
    const extent ext = directory_.at(name);
    const std::size_t chunk = service_.config().payload_bytes;
    const std::uint64_t blocks = (ext.bytes + chunk - 1) / chunk;

    std::vector<ticket> tickets;
    tickets.reserve(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      tickets.push_back(session_.async_read(ext.first_block + b));
    }

    // ticket::result() is a blocking get: it pumps the service (which
    // also advances the other tenants) until the stripe arrives.
    std::string contents;
    contents.reserve(ext.bytes);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::size_t size =
          std::min(chunk, ext.bytes - static_cast<std::size_t>(b) * chunk);
      const ticket_result& stripe = tickets[b].result();
      contents.append(
          reinterpret_cast<const char*>(stripe.payload.data()), size);
    }
    return contents;
  }

  [[nodiscard]] const session& tenant_session() const { return session_; }

 private:
  struct extent {
    std::uint64_t first_block = 0;
    std::size_t bytes = 0;
  };

  service& service_;
  session session_;
  std::map<std::string, extent> directory_;
  std::uint64_t next_block_ = 0;
  std::uint64_t end_block_ = 0;
};

}  // namespace

int main() {
  using namespace horam;

  // Server-side spinning storage; client-side memory cache. With the
  // offloaded policy the server performs shuffles between request
  // bursts (off-line hours), exactly the Figure 5-2 deployment.
  const std::uint64_t volume_blocks = 32 * util::mib / util::kib;
  service server = client_builder()
                       .blocks(volume_blocks)
                       .memory_blocks(4 * util::mib / util::kib)
                       .payload_bytes(512)
                       .logical_block_bytes(1024)
                       .seal(true)
                       .shuffle(shuffle_policy::offloaded)
                       .fairness(fairness_kind::round_robin)
                       .seed(99)
                       .build_service();

  // Two tenants, each granted half the volume. A request outside the
  // grant is rejected at admission, before it can touch the bus.
  session alice_session = server.open_session();
  session bob_session = server.open_session();
  server.grant(alice_session.tenant(), user_grant{0, volume_blocks / 2});
  server.grant(bob_session.tenant(),
               user_grant{volume_blocks / 2, volume_blocks});
  tenant_volume alice(server, alice_session, 0, volume_blocks / 2);
  tenant_volume bob(server, bob_session, volume_blocks / 2,
                    volume_blocks / 2);

  std::printf("oblivious file server: %s volume, %s client cache, "
              "2 tenants (%s fairness),\nshuffle offloaded to the "
              "server\n",
              util::format_bytes(32 * util::mib).c_str(),
              util::format_bytes(4 * util::mib).c_str(),
              std::string(server.policy_name()).c_str());

  // Both tenants store "files"; their stripes interleave in flight.
  std::string report;
  for (int line = 0; line < 200; ++line) {
    report += "quarterly figures, row " + std::to_string(line) + "\n";
  }
  alice.store_file("reports/q1.txt", report);
  bob.store_file("secrets/design.md",
                 "the cache hides the hit/miss sequence");
  alice.store_file("notes.txt", "H-ORAM file server demo");
  server.run_until_idle();

  const std::string q1 = alice.read_file("reports/q1.txt");
  const std::string secret = bob.read_file("secrets/design.md");
  std::printf("read back %zu bytes of reports/q1.txt (intact: %s)\n",
              q1.size(), q1 == report ? "yes" : "NO");
  std::printf("secrets/design.md -> \"%s\"\n", secret.c_str());

  // Access control: alice cannot reach bob's slice; the denial leaves
  // no observable trace.
  try {
    (void)alice_session.async_read(volume_blocks / 2);
    std::printf("ERROR: grant not enforced!\n");
    return 1;
  } catch (const access_denied& denied) {
    std::printf("grant enforced at admission: %s\n", denied.what());
  }

  // A burst of re-reads: the popular file is served from the client's
  // in-memory ORAM at memory speed, one dummy server touch per cycle.
  for (int i = 0; i < 20; ++i) {
    bob.read_file("secrets/design.md");
  }

  const controller_stats& stats = server.stats();
  util::text_table table({"Metric", "Value"});
  table.add_row({"Requests", util::format_count(stats.requests)});
  table.add_row({"Server I/O accesses", util::format_count(stats.cycles)});
  table.add_row({"Hit rate",
                 util::format_double(100.0 * static_cast<double>(stats.hits) /
                                         static_cast<double>(stats.requests),
                                     1) +
                     " %"});
  table.add_row({"Client-visible time",
                 util::format_time_ns(stats.total_time)});
  table.add_row({"Server-side shuffle work (hidden)",
                 util::format_time_ns(stats.shuffle_time)});
  table.print(std::cout);

  util::text_table tenants({"Tenant", "Completed", "Mean latency",
                            "Max latency", "Throughput (req/s)"});
  for (std::uint32_t t = 0; t < server.tenant_count(); ++t) {
    const tenant_stats ts = server.tenant_stats(t);
    tenants.add_row(
        {t == alice_session.tenant() ? "alice" : "bob",
         util::format_count(ts.completed),
         util::format_time_ns(ts.mean_latency()),
         util::format_time_ns(ts.max_latency),
         util::format_count(static_cast<std::uint64_t>(ts.throughput))});
  }
  tenants.print(std::cout);
  return 0;
}
