// Trace replay tool: runs a request trace (CSV: "op,id[,user]") through
// H-ORAM on a chosen device profile and prints the measurements —
// useful for comparing runs, regression-hunting, or feeding captured
// application traces through the simulator.
//
//   $ ./examples/replay_trace [my_trace.csv] [hdd|hdd-raw|ssd|nvme]
//                             [--out path.csv]
//
// Without a trace argument it generates, saves and replays a
// demonstration trace so the binary is self-contained. The generated
// CSV lands next to the binary (never the invoking directory — that
// used to leak demo_trace.csv into source checkouts); --out overrides
// the destination.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "horam.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace horam;

  constexpr std::uint64_t block_count = 16384;
  constexpr std::size_t payload_bytes = 64;

  // --- CLI: positional trace + device, optional --out for the demo. ---
  std::vector<std::string> positional;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out needs a path\n");
        return 1;
      }
      out_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }

  // --- Obtain a trace: from the CLI or a generated demonstration. ---
  std::vector<request> trace;
  std::string source;
  if (!positional.empty()) {
    std::ifstream in(positional[0]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", positional[0].c_str());
      return 1;
    }
    trace = workload::load_trace(in, payload_bytes);
    source = positional[0];
  } else {
    util::pcg64 rng(123);
    workload::stream_config stream;
    stream.request_count = 10000;
    stream.block_count = block_count;
    stream.write_fraction = 0.2;
    stream.payload_bytes = payload_bytes;
    trace = workload::hotspot(rng, stream, 0.8, 0.02);
    if (out_path.empty()) {
      // Default next to the binary (the build tree), not the CWD. A
      // PATH-looked-up argv[0] has no parent; fall back to the temp
      // dir rather than silently leaking into the invoking directory.
      std::filesystem::path dir =
          std::filesystem::path(argv[0]).parent_path();
      if (dir.empty()) {
        dir = std::filesystem::temp_directory_path();
      }
      out_path = (dir / "demo_trace.csv").string();
    }
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    workload::save_trace(out, trace);
    source = out_path + " (generated)";
  }
  for (const request& req : trace) {
    if (req.id >= block_count) {
      std::fprintf(stderr,
                   "trace id %llu outside the %llu-block volume\n",
                   static_cast<unsigned long long>(req.id),
                   static_cast<unsigned long long>(block_count));
      return 1;
    }
  }

  const std::string device_name =
      positional.size() >= 2 ? positional[1] : "hdd";
  sim::device_profile device;
  try {
    device = storage_profile_by_name(device_name);
  } catch (const contract_error&) {
    std::fprintf(stderr,
                 "unknown device '%s' (hdd | hdd-raw | ssd | nvme)\n",
                 device_name.c_str());
    return 1;
  }
  client ctrl = client_builder()
                    .blocks(block_count)
                    .cache_ratio(0.125)
                    .payload_bytes(payload_bytes)
                    .logical_block_bytes(1024)
                    .storage_profile(device)
                    .seal(false)
                    .seed(7)
                    .build();

  std::vector<request_result> results;
  ctrl.run(trace, &results);

  // Latency percentiles over completion times.
  std::vector<sim::sim_time> latencies;
  latencies.reserve(results.size());
  for (const request_result& result : results) {
    latencies.push_back(result.completion_time);
  }
  std::sort(latencies.begin(), latencies.end());
  const auto percentile = [&](double p) {
    const auto index = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[index];
  };

  const controller_stats& stats = ctrl.stats();
  std::printf("replayed %zu requests from %s on %s\n\n", trace.size(),
              source.c_str(),
              ctrl.storage_device().profile().name.c_str());
  util::text_table table({"Metric", "Value"});
  table.add_row({"Storage loads (I/O accesses)",
                 util::format_count(stats.cycles)});
  table.add_row({"Hit rate",
                 util::format_double(100.0 * static_cast<double>(stats.hits) /
                                         static_cast<double>(stats.requests),
                                     1) +
                     " %"});
  table.add_row({"Average c-hat", util::format_double(stats.average_c(), 2)});
  table.add_row({"Shuffle periods", util::format_count(stats.periods)});
  table.add_row({"Total virtual time",
                 util::format_time_ns(stats.total_time)});
  table.add_row({"Completion p50", util::format_time_ns(percentile(0.5))});
  table.add_row({"Completion p99", util::format_time_ns(percentile(0.99))});
  table.print(std::cout);
  return 0;
}
