#!/usr/bin/env python3
"""CI gate for bench regressions: device ops per request vs baselines.

Compares freshly produced BENCH_*.json documents (the bench-smoke job's
``--small`` runs) against the committed baselines in bench/baselines/.
The gated metric is storage-device operations per logical request,
computed uniformly from the fields every bench emits via json_fields():

    (device_read_ops + device_write_ops) / requests

and, where a run emits it, the online ``round_trips_per_request``
field (dependency-aware storage exchanges per request) under the same
tolerance band — a backend quietly growing an extra dependent hop per
request is exactly the regression the hier backend exists to avoid.

The simulator is deterministic, so the committed numbers are exactly
reproducible on any host; the tolerance band exists to absorb benign
run-matrix drift (e.g. a bench growing an extra warm-up round), not
noise. A fresh value above baseline * (1 + tolerance) fails the gate; a
value below baseline / (1 + tolerance) passes with a note suggesting
the baseline be refreshed so improvements are locked in.

Runs are matched between the two documents by bench-specific identity
keys (backend, profile, geometry knobs, ...). A baseline run with no
fresh counterpart fails loudly — losing a row is how a silent coverage
regression would slip through.

Usage:
    check_bench_regression.py --baseline-dir bench/baselines \
        --fresh-dir build-release [--tolerance 0.10]

Every BENCH_*.json present in the baseline directory is gated; extra
fresh documents without baselines are ignored (new benches get a
baseline when their numbers are committed).
"""

import argparse
import json
import pathlib
import sys

# Identity keys per bench document (the "bench" field). Only keys that
# are stable run labels belong here — derived quantities (measured
# slice budgets, throughputs) must not, or rows would never match.
IDENTITY_KEYS = {
    "ablation_ring": (
        "storage_profile",
        "backend",
        "ring_z",
        "ring_s",
        "ring_a",
        "ring_xor",
    ),
    "ablation_page_layout": ("storage_profile", "backend", "layout"),
    "ablation_shards": ("backend", "shards"),
    "ablation_backends": ("backend",),
    "ablation_coalesce": ("workload", "backend", "shards", "coalescing"),
    "ablation_threads": ("backend", "shards", "requested_threads"),
    "ablation_shuffle_overlap": (
        "backend",
        "shards",
        "policy",
        "slice_budget_ns",
    ),
    "ablation_round_trips": ("storage_profile", "backend"),
}


def identity(bench, run):
    keys = IDENTITY_KEYS.get(bench)
    if keys is None:
        # Unknown bench: every string/bool field is a label. Numeric
        # fields are assumed to be metrics and left out.
        keys = sorted(
            k for k, v in run.items() if isinstance(v, (str, bool))
        )
    return tuple((k, run.get(k)) for k in keys)


def ops_per_request(run):
    requests = run.get("requests", 0)
    if not requests:
        return None
    ops = run.get("device_read_ops", 0) + run.get("device_write_ops", 0)
    return ops / requests


def round_trips_per_request(run):
    # Gated only when the run emits it (older baselines predate the
    # counter); requests==0 rows gate nothing, like ops_per_request.
    value = run.get("round_trips_per_request")
    if value is None or not run.get("requests", 0):
        return None
    return float(value)


# Gated metrics: (label, extractor). An extractor returning None for
# either side of a row skips that metric for that row.
METRICS = (
    ("device ops/request", ops_per_request),
    ("round trips/request", round_trips_per_request),
)


def load_runs(path):
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    bench = document.get("bench", path.stem)
    runs = {}
    for run in document.get("runs", []):
        key = identity(bench, run)
        if key in runs:
            raise SystemExit(
                f"{path}: duplicate run identity {key} — the identity "
                f"keys for bench '{bench}' are incomplete"
            )
        runs[key] = run
    return bench, runs


def label(key):
    return ", ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir",
        required=True,
        type=pathlib.Path,
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        required=True,
        type=pathlib.Path,
        help="directory holding the freshly produced BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional increase over baseline (default 0.10)",
    )
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        raise SystemExit(
            f"no BENCH_*.json baselines under {args.baseline_dir}"
        )

    failures = []
    improvements = []
    compared = 0
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            failures.append(
                f"{baseline_path.name}: no fresh document at {fresh_path}"
            )
            continue
        bench, baseline_runs = load_runs(baseline_path)
        fresh_bench, fresh_runs = load_runs(fresh_path)
        if bench != fresh_bench:
            failures.append(
                f"{baseline_path.name}: bench name changed "
                f"('{bench}' -> '{fresh_bench}')"
            )
            continue
        for key, baseline_run in baseline_runs.items():
            if ops_per_request(baseline_run) is None:
                continue  # a baseline row with no requests gates nothing
            fresh_run = fresh_runs.get(key)
            if fresh_run is None:
                failures.append(
                    f"{bench} [{label(key)}]: run missing from fresh "
                    f"document"
                )
                continue
            if ops_per_request(fresh_run) is None:
                failures.append(
                    f"{bench} [{label(key)}]: fresh run has no requests"
                )
                continue
            for metric_label, extract in METRICS:
                baseline_value = extract(baseline_run)
                fresh_value = extract(fresh_run)
                if baseline_value is None or fresh_value is None:
                    continue
                compared += 1
                ceiling = baseline_value * (1.0 + args.tolerance)
                floor = baseline_value / (1.0 + args.tolerance)
                if fresh_value > ceiling:
                    failures.append(
                        f"{bench} [{label(key)}]: {metric_label} "
                        f"{fresh_value:.3f} exceeds baseline "
                        f"{baseline_value:.3f} (+{args.tolerance:.0%} "
                        f"ceiling {ceiling:.3f})"
                    )
                elif fresh_value < floor:
                    improvements.append(
                        f"{bench} [{label(key)}]: {metric_label} "
                        f"improved {baseline_value:.3f} -> "
                        f"{fresh_value:.3f}; refresh the baseline to "
                        f"lock it in"
                    )

    for note in improvements:
        print(f"note: {note}")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(
        f"bench regression gate: {compared} metric comparison(s) "
        f"within +{args.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
