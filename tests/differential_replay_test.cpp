// Randomized differential replay: identical generated workload traces
// (src/workload/generators) run through all four backends plus a plain
// in-memory reference map, with payload equality asserted at every
// step. Any divergence — between backends, or between a backend and
// the reference — names the backend, the workload and the step.
//
// All randomness derives from the logged HORAM_TEST_SEED
// (tests/test_support.h), so a failure in CI reproduces locally by
// exporting the logged value.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "horam.h"
#include "test_support.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

constexpr std::uint64_t kBlocks = 192;  // deliberately not a power of two
constexpr std::uint64_t kMemoryBlocks = 24;
constexpr std::size_t kPayload = 24;

std::vector<client> all_clients(std::uint64_t salt) {
  std::vector<client> clients;
  for (const backend_kind kind : all_backend_kinds) {
    clients.push_back(client_builder()
                          .blocks(kBlocks)
                          .memory_blocks(kMemoryBlocks)
                          .payload_bytes(kPayload)
                          .backend(kind)
                          .seed(test::seed(salt))
                          .build());
  }
  return clients;
}

/// Replays `stream` step by step through every backend and a plain
/// std::map oracle; every read must agree with the oracle everywhere.
void replay_and_compare(const std::vector<request>& stream,
                        const std::string& workload_name,
                        std::uint64_t machine_salt) {
  std::vector<client> clients = all_clients(machine_salt);
  std::map<block_id, std::vector<std::uint8_t>> reference;

  for (std::size_t step = 0; step < stream.size(); ++step) {
    const request& req = stream[step];
    if (req.op == op_kind::write) {
      std::vector<std::uint8_t> data = req.write_data;
      data.resize(kPayload, 0);
      for (client& oram : clients) {
        oram.write(req.id, data);
      }
      reference[req.id] = std::move(data);
    } else {
      const auto expected = reference.contains(req.id)
                                ? reference[req.id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      for (client& oram : clients) {
        ASSERT_EQ(oram.read(req.id), expected)
            << workload_name << " step " << step << " id " << req.id
            << " backend " << oram.backend().name();
      }
    }
  }

  for (client& oram : clients) {
    ASSERT_NO_THROW(oram.backend().check_consistency())
        << workload_name << " backend " << oram.backend().name();
    EXPECT_GT(oram.stats().periods, 2u)
        << workload_name << " backend " << oram.backend().name();
  }
}

workload::stream_config stream_config_for(std::uint64_t requests,
                                          double write_fraction) {
  workload::stream_config config;
  config.request_count = requests;
  config.block_count = kBlocks;
  config.write_fraction = write_fraction;
  config.payload_bytes = kPayload;
  return config;
}

TEST(DifferentialReplay, HotspotWorkloadAgreesEverywhere) {
  util::pcg64 gen(test::seed(101));
  const std::vector<request> stream =
      workload::hotspot(gen, stream_config_for(500, 0.4),
                        /*hot_probability=*/0.8,
                        /*hot_region_fraction=*/0.1);
  replay_and_compare(stream, "hotspot", 102);
}

TEST(DifferentialReplay, ZipfWorkloadAgreesEverywhere) {
  util::pcg64 gen(test::seed(103));
  const std::vector<request> stream =
      workload::zipf(gen, stream_config_for(500, 0.3), /*theta=*/0.9);
  replay_and_compare(stream, "zipf", 104);
}

TEST(DifferentialReplay, UniformWorkloadAgreesEverywhere) {
  util::pcg64 gen(test::seed(105));
  const std::vector<request> stream =
      workload::uniform(gen, stream_config_for(500, 0.5));
  replay_and_compare(stream, "uniform", 106);
}

TEST(DifferentialReplay, SequentialScanAgreesEverywhere) {
  // A pure-write burst seeds the dataset, then a strided scan reads it
  // back (the sequential generator emits reads only).
  util::pcg64 gen(test::seed(107));
  std::vector<request> stream =
      workload::uniform(gen, stream_config_for(150, 1.0));
  const std::vector<request> scan =
      workload::sequential(stream_config_for(300, 0.0), /*stride=*/7);
  stream.insert(stream.end(), scan.begin(), scan.end());
  replay_and_compare(stream, "sequential", 108);
}

}  // namespace
}  // namespace horam
