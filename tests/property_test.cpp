// Property and stress tests across module boundaries: deep consistency
// audits under random operation mixes, cross-checks between independent
// implementations of the same function, and statistical properties of
// the security-relevant distributions.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "analysis/pattern_audit.h"
#include "core/controller.h"
#include "core/storage_layer.h"
#include "crypto/chacha20.h"
#include "shuffle/bitonic.h"
#include "sim/profiles.h"
#include "util/rng.h"
#include "workload/generators.h"

#include "test_support.h"

namespace horam {
namespace {

using oram::block_id;
using oram::dummy_block_id;
using oram::evicted_block;
using oram::op_kind;

// ------------------------------------- storage layer deep consistency

class StorageLayerStress
    : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(ShuffleCadence, StorageLayerStress,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST_P(StorageLayerStress, ConsistentAfterRandomOperationMix) {
  const std::uint32_t cadence = GetParam();
  sim::block_device disk(sim::hdd_paper());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(test::seed(8000 + cadence));
  oram::access_trace trace;

  horam_config config;
  config.block_count = 256;
  config.memory_blocks = 64;
  config.payload_bytes = 16;
  config.seal = false;
  config.shuffle_every_periods = cadence;
  config.partition_slack = 1.4;
  storage_layer layer(config, disk, cpu, rng, &trace, nullptr);
  layer.check_consistency();

  util::pcg64 driver(test::seed(9000 + cadence));
  std::unordered_map<block_id, bool> cached;
  std::uint64_t period = 0;
  std::uint64_t loads_this_period = 0;
  std::vector<evicted_block> in_memory;
  for (int step = 0; step < 400; ++step) {
    const block_id id = util::uniform_below(driver, 256);
    if (layer.in_storage(id)) {
      in_memory.push_back(evicted_block{id, layer.load_block(id).payload});
    } else {
      const auto result = layer.dummy_load();
      if (result.id != dummy_block_id) {
        in_memory.push_back(evicted_block{result.id, result.payload});
      }
    }
    if (++loads_this_period >= config.period_loads()) {
      std::vector<evicted_block> overflow;
      layer.shuffle_period(std::move(in_memory), period++, overflow);
      in_memory = std::move(overflow);
      loads_this_period = 0;
      layer.check_consistency();
    }
  }
  layer.check_consistency();
}

// -------------------------------------------- RNG / cipher cross-checks

TEST(CrossCheck, ChaChaRngMatchesRawKeystream) {
  // chacha_rng must produce exactly the ChaCha20 keystream of its
  // (key, stream-nonce) pair — no hidden state drift.
  crypto::chacha_key key{};
  key[0] = 0xab;
  crypto::chacha_rng rng(key, /*stream=*/0);

  crypto::chacha_nonce nonce{};  // stream 0 -> zero nonce
  std::array<std::uint8_t, 64> block;
  crypto::chacha20_block(key, 0, nonce, block);
  for (int word = 0; word < 8; ++word) {
    std::uint64_t expected = 0;
    for (int b = 0; b < 8; ++b) {
      expected |= static_cast<std::uint64_t>(
                      block[static_cast<std::size_t>(8 * word + b)])
                  << (8 * b);
    }
    EXPECT_EQ(rng.next_u64(), expected) << "word " << word;
  }
}

TEST(CrossCheck, UniformBelowMatchesRejectionSampler) {
  // Lemire reduction must agree in distribution with plain rejection
  // sampling: compare bucket histograms from the same seed space.
  constexpr std::uint64_t bound = 7;
  constexpr int draws = 70000;
  util::pcg64 a(test::seed(10)), b(test::seed(10));
  std::array<int, bound> lemire{}, rejection{};
  for (int i = 0; i < draws; ++i) {
    lemire[util::uniform_below(a, bound)]++;
    // Rejection sampler on an independent stream.
    std::uint64_t v = 0;
    do {
      v = b.next_u64() >> 32;  // 32-bit values; bias negligible
    } while (v >= (0xffffffffULL / bound) * bound);
    rejection[v % bound]++;
  }
  for (std::uint64_t k = 0; k < bound; ++k) {
    EXPECT_NEAR(lemire[k], rejection[k], 700) << "bucket " << k;
  }
}

// ------------------------------------------ distributional properties

TEST(Distribution, StorageLoadsAreUniformOverSlots) {
  // Aggregated over many periods, the first storage read of each
  // period should be uniform across partitions (chi-square).
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(test::seed(11));
  oram::access_trace trace;
  horam_config config;
  config.block_count = 1024;
  config.memory_blocks = 64;
  config.payload_bytes = 8;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng, &trace);
  util::pcg64 wl(test::seed(12));
  workload::stream_config stream;
  stream.request_count = 6000;
  stream.block_count = 1024;
  stream.payload_bytes = 8;
  ctrl.run(workload::uniform(wl, stream));

  const std::uint64_t spp =
      ctrl.storage().geometry().slots_per_partition();
  std::vector<std::uint64_t> per_partition(
      ctrl.storage().geometry().partition_count, 0);
  for (const auto& event : trace.events()) {
    if (event.kind == oram::event_kind::storage_read_slot) {
      ++per_partition[event.a / spp];
    }
  }
  const double chi2 = analysis::chi_square_uniform(per_partition);
  EXPECT_LT(chi2, analysis::chi_square_threshold(per_partition.size() -
                                                 1));
}

TEST(Distribution, BitonicTouchCountIsSizeDeterministic) {
  // Network size is the only input that may influence the touch count.
  for (const std::uint64_t n : {5ULL, 12ULL, 100ULL, 333ULL}) {
    std::uint64_t counts[3] = {0, 0, 0};
    for (int trial = 0; trial < 3; ++trial) {
      util::pcg64 rng(test::seed(static_cast<std::uint64_t>(trial) * 7919 + n));
      std::vector<std::uint8_t> records(n * 8);
      shuffle::shuffle_stats stats;
      shuffle::bitonic_shuffle(rng, records, 8, &stats);
      counts[trial] = stats.touch_ops;
    }
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(counts[1], counts[2]);
    EXPECT_EQ(counts[0], shuffle::bitonic_compare_exchange_count(n));
  }
}

// ------------------------------------------------ controller accounting

TEST(Accounting, BusyTimesNeverExceedWallTime) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(test::seed(13));
  horam_config config;
  config.block_count = 512;
  config.memory_blocks = 64;
  config.payload_bytes = 16;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng);
  util::pcg64 wl(test::seed(14));
  workload::stream_config stream;
  stream.request_count = 3000;
  stream.block_count = 512;
  stream.payload_bytes = 16;
  ctrl.run(workload::hotspot(wl, stream));

  const controller_stats& stats = ctrl.stats();
  // Each device's busy time is bounded by wall time (single device,
  // serial operations).
  EXPECT_LE(stats.io_busy, stats.total_time);
  EXPECT_LE(stats.memory_busy, stats.total_time);
  // The two lanes plus CPU account for at least the access-period time
  // (overlap means their sum can exceed wall time).
  EXPECT_GE(stats.io_busy + stats.memory_busy + stats.cpu_busy,
            stats.access_time);
}

TEST(Accounting, AsyncDebtNeverMakesRunsSlowerThanForeground) {
  const auto total_with = [](shuffle_policy policy) {
    sim::block_device disk(sim::hdd_paper());
    sim::block_device memory(sim::dram_ddr4());
    const sim::cpu_model cpu(sim::cpu_aesni());
    util::pcg64 rng(test::seed(15));
    horam_config config;
    config.block_count = 512;
    config.memory_blocks = 64;
    config.payload_bytes = 16;
    config.seal = false;
    config.shuffle = policy;
    controller ctrl(config, disk, memory, cpu, rng);
    util::pcg64 wl(test::seed(16));
    workload::stream_config stream;
    stream.request_count = 4000;
    stream.block_count = 512;
    stream.payload_bytes = 16;
    ctrl.run(workload::uniform(wl, stream));
    return ctrl.now();
  };
  // Deferring writes can only help or break even, never hurt.
  EXPECT_LE(total_with(shuffle_policy::async_writeback),
            total_with(shuffle_policy::foreground));
}

TEST(Accounting, CompletionTimesAreMonotonePerBlockProgramOrder) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(test::seed(17));
  horam_config config;
  config.block_count = 128;
  config.memory_blocks = 32;
  config.payload_bytes = 8;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng);

  // Several requests to the same block must complete in program order
  // (the scheduler scans the ROB in order).
  std::vector<request> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(request{op_kind::read, 7, 0, {}});
    batch.push_back(request{op_kind::read, 9, 0, {}});
  }
  std::vector<request_result> results;
  ctrl.run(batch, &results);
  for (std::size_t i = 2; i < results.size(); ++i) {
    EXPECT_GE(results[i].completion_time, results[i - 2].completion_time)
        << "request " << i;
  }
}

}  // namespace
}  // namespace horam
