// Tests for the block codec, the position map and the stash — the
// common layer the ORAM constructions share — plus fault injection
// through a store (tampered records must surface as crypto errors, not
// silent corruption).
#include <gtest/gtest.h>

#include "oram/common/block_codec.h"
#include "oram/common/position_map.h"
#include "oram/common/stash.h"
#include "sim/profiles.h"
#include "storage/block_store.h"

namespace horam::oram {
namespace {

// ----------------------------------------------------------- codec

class CodecSealModes : public ::testing::TestWithParam<bool> {};
INSTANTIATE_TEST_SUITE_P(Modes, CodecSealModes, ::testing::Bool());

TEST_P(CodecSealModes, RoundTripRealBlock) {
  block_codec codec(32, GetParam(), 5);
  std::vector<std::uint8_t> payload(32);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::vector<std::uint8_t> record(codec.record_bytes());
  codec.encode(123456789, payload, record);
  std::vector<std::uint8_t> out(32);
  EXPECT_EQ(codec.decode(record, out), 123456789u);
  EXPECT_EQ(out, payload);
}

TEST_P(CodecSealModes, DummyRoundTrip) {
  block_codec codec(32, GetParam(), 6);
  std::vector<std::uint8_t> record(codec.record_bytes());
  codec.encode_dummy(record);
  std::vector<std::uint8_t> out(32);
  EXPECT_EQ(codec.decode(record, out), dummy_block_id);
}

TEST_P(CodecSealModes, ShortPayloadIsZeroPadded) {
  block_codec codec(32, GetParam(), 7);
  const std::vector<std::uint8_t> partial(10, 0xee);
  std::vector<std::uint8_t> record(codec.record_bytes());
  codec.encode(9, partial, record);
  std::vector<std::uint8_t> out(32);
  codec.decode(record, out);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], 0xee);
  }
  for (std::size_t i = 10; i < 32; ++i) {
    EXPECT_EQ(out[i], 0);
  }
}

TEST(Codec, RecordSizeAccountsForSealing) {
  block_codec plain(32, false, 1);
  block_codec sealed(32, true, 1);
  EXPECT_EQ(plain.record_bytes(), 8u + 32u);
  EXPECT_EQ(sealed.record_bytes(), 8u + 32u + crypto::seal_overhead);
}

TEST(Codec, SealedRecordsOfSameBlockDiffer) {
  // Unlinkability: re-encoding the same (id, payload) yields a fresh
  // ciphertext every time.
  block_codec codec(32, true, 2);
  const std::vector<std::uint8_t> payload(32, 0x42);
  std::vector<std::uint8_t> a(codec.record_bytes());
  std::vector<std::uint8_t> b(codec.record_bytes());
  codec.encode(1, payload, a);
  codec.encode(1, payload, b);
  EXPECT_NE(a, b);
}

TEST(Codec, PlainDecodeNeedsNoAllocation) {
  // Smoke test for the bench fast path: decoding an unsealed record
  // must not throw and must not read past record_bytes.
  block_codec codec(16, false, 3);
  std::vector<std::uint8_t> record(codec.record_bytes() + 64, 0xaa);
  codec.encode(77, std::vector<std::uint8_t>(16, 1), record);
  std::vector<std::uint8_t> out(16);
  EXPECT_EQ(codec.decode(record, out), 77u);
}

TEST(Codec, DifferentKeySeedsCannotDecodeEachOther) {
  block_codec alice(32, true, 100);
  block_codec mallory(32, true, 101);
  std::vector<std::uint8_t> record(alice.record_bytes());
  alice.encode(5, std::vector<std::uint8_t>(32, 5), record);
  std::vector<std::uint8_t> out(32);
  EXPECT_THROW(mallory.decode(record, out), crypto::crypto_error);
}

// --------------------------------------------- fault injection e2e

TEST(FaultInjection, TamperedStoreRecordIsRejectedOnRead) {
  sim::block_device device(sim::dram_ddr4());
  block_codec codec(32, true, 9);
  storage::block_store store(device, 0, 8, codec.record_bytes(),
                             codec.record_bytes());
  std::vector<std::uint8_t> record(codec.record_bytes());
  codec.encode(3, std::vector<std::uint8_t>(32, 3), record);
  store.write(2, record);

  // Bit rot / adversarial modification in untrusted storage.
  store.corrupt(2, 15, 0x40);

  std::vector<std::uint8_t> read_back(codec.record_bytes());
  store.read(2, read_back);
  std::vector<std::uint8_t> out(32);
  EXPECT_THROW(codec.decode(read_back, out), crypto::crypto_error);
}

TEST(FaultInjection, EveryByteOfTheRecordIsProtected) {
  sim::block_device device(sim::dram_ddr4());
  block_codec codec(16, true, 10);
  storage::block_store store(device, 0, 1, codec.record_bytes(),
                             codec.record_bytes());
  std::vector<std::uint8_t> record(codec.record_bytes());
  codec.encode(1, std::vector<std::uint8_t>(16, 1), record);

  for (std::size_t byte = 0; byte < codec.record_bytes(); ++byte) {
    store.write(0, record);
    store.corrupt(0, byte, 0x01);
    std::vector<std::uint8_t> read_back(codec.record_bytes());
    store.read(0, read_back);
    std::vector<std::uint8_t> out(16);
    EXPECT_THROW(codec.decode(read_back, out), crypto::crypto_error)
        << "byte " << byte << " not protected";
  }
}

// ------------------------------------------------------ position map

TEST(PositionMap, AssignLookupRemove) {
  position_map map(100);
  EXPECT_FALSE(map.contains(5));
  map.assign(5, 17);
  EXPECT_TRUE(map.contains(5));
  EXPECT_EQ(map.leaf_of(5), 17u);
  map.assign(5, 3);
  EXPECT_EQ(map.leaf_of(5), 3u);
  map.remove(5);
  EXPECT_FALSE(map.contains(5));
  EXPECT_THROW(static_cast<void>(map.leaf_of(5)), contract_error);
}

TEST(PositionMap, BoundsChecked) {
  position_map map(10);
  EXPECT_THROW(static_cast<void>(map.contains(10)), contract_error);
  EXPECT_THROW(map.assign(10, 0), contract_error);
}

TEST(PositionMap, SizeAndClear) {
  position_map map(50);
  for (block_id id = 0; id < 20; ++id) {
    map.assign(id, id);
  }
  EXPECT_EQ(map.size(), 20u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
}

TEST(PositionMap, MemoryBytesMatchesPaperFigure) {
  // Figure 4-1 annotates "Position map (4MB)": 2^19 entries * 8 B.
  position_map map(1 << 19);
  EXPECT_EQ(map.memory_bytes(), (1ULL << 19) * 8);
}

// ------------------------------------------------------------- stash

TEST(Stash, PutGetEraseAndPeak) {
  stash s;
  EXPECT_FALSE(s.contains(1));
  s.put(1, 10, std::vector<std::uint8_t>{1, 2, 3});
  s.put(2, 20, std::vector<std::uint8_t>{4});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(1).leaf, 10u);
  EXPECT_EQ(s.at(1).payload, (std::vector<std::uint8_t>{1, 2, 3}));
  s.erase(1);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.peak_size(), 2u);  // peak survives erase
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.peak_size(), 2u);
}

TEST(Stash, PutOverwritesInPlace) {
  stash s;
  s.put(7, 1, std::vector<std::uint8_t>{1});
  s.put(7, 2, std::vector<std::uint8_t>{2});
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.at(7).leaf, 2u);
  EXPECT_EQ(s.at(7).payload[0], 2);
}

}  // namespace
}  // namespace horam::oram
