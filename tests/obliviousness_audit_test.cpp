// Statistical obliviousness audit: the access traces of all six
// backends are checked for (a) uniformity of the bus-visible positions
// they touch and (b) workload-independence of the position
// distribution under the async service scheduler. Negative controls
// prove the tests have the power to catch a leaky trace.
//
// What "position" means per scheme:
//   * partitioned / sqrt / partition — the storage slot of every read
//     (uniform without replacement within a period by construction);
//   * path — the leaf of every path access (buckets are hit with the
//     fixed, non-uniform marginal any tree walk induces, so the
//     uniformity claim lives at the leaf level; the bucket stream is
//     still checked for workload-independence);
//   * ring — the leaf of every online path read (uniformity), plus the
//     in-bucket slot index of every chosen slot, which exposes the
//     per-bucket permutation: its distribution must not depend on the
//     workload (real hits and dummy covers must blend);
//   * hier — the level-local offset of every batched probe: real hits
//     and dummy ranks alike are outputs of the epoch's secret
//     permutation at never-repeated inputs, so each level's probe
//     stream must look like draws without replacement from its slot
//     range, on every level and regardless of the workload.
//
// All randomness derives from the logged HORAM_TEST_SEED
// (tests/test_support.h): a CI failure reproduces locally by exporting
// the logged value.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/obliviousness.h"
#include "horam.h"
#include "test_support.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 32;
constexpr std::size_t kPayload = 16;

// ----------------------------------------------------- primitives

TEST(ObliviousnessPrimitives, FoldHistogramCoversEdgesExactly) {
  const std::vector<std::uint64_t> samples = {0, 1, 9, 5, 9, 0};
  const std::vector<std::uint64_t> counts =
      analysis::fold_histogram(samples, /*universe=*/10, /*cells=*/5);
  // cell = sample * 5 / 10: {0,1,0} -> 0, {5} -> 2, {9,9} -> 4.
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{3, 0, 1, 0, 2}));
  EXPECT_THROW(analysis::fold_histogram(samples, 9, 5), contract_error);
}

TEST(ObliviousnessPrimitives, KsAcceptsUniformSamples) {
  util::pcg64 rng(test::seed(201));
  std::vector<std::uint64_t> samples(4000);
  for (auto& sample : samples) {
    sample = util::uniform_below(rng, 1000);
  }
  const double d = analysis::ks_uniform_statistic(samples, 1000);
  EXPECT_LE(d, analysis::ks_one_sample_threshold(samples.size()));
}

TEST(ObliviousnessPrimitives, KsRejectsSkewedSamples) {
  util::pcg64 rng(test::seed(202));
  std::vector<std::uint64_t> samples(4000);
  for (auto& sample : samples) {
    // Quadratic skew towards low values.
    const std::uint64_t a = util::uniform_below(rng, 1000);
    const std::uint64_t b = util::uniform_below(rng, 1000);
    sample = std::min(a, b);
  }
  const double d = analysis::ks_uniform_statistic(samples, 1000);
  EXPECT_GT(d, analysis::ks_one_sample_threshold(samples.size()));
}

TEST(ObliviousnessPrimitives, TwoSampleKsSeparatesShiftedStreams) {
  util::pcg64 rng(test::seed(203));
  std::vector<std::uint64_t> a(3000);
  std::vector<std::uint64_t> b(2000);
  for (auto& sample : a) {
    sample = util::uniform_below(rng, 1000);
  }
  for (auto& sample : b) {
    sample = util::uniform_below(rng, 1000);
  }
  EXPECT_LE(analysis::ks_two_sample_statistic(a, b),
            analysis::ks_two_sample_threshold(a.size(), b.size()));
  for (auto& sample : b) {
    sample = sample / 2;  // compress into the lower half
  }
  EXPECT_GT(analysis::ks_two_sample_statistic(a, b),
            analysis::ks_two_sample_threshold(a.size(), b.size()));
}

TEST(ObliviousnessPrimitives, HomogeneityZeroForIdenticalHistograms) {
  const std::vector<std::uint64_t> counts = {5, 9, 7, 3};
  EXPECT_DOUBLE_EQ(analysis::chi_square_homogeneity(counts, counts), 0.0);
}

// ----------------------------------------------- negative controls

// The raw *request address* stream of a hotspot workload is exactly
// the thing an ORAM must hide; the audit must reject it loudly.
TEST(ObliviousnessNegativeControl, HotspotAddressesFailUniformity) {
  util::pcg64 gen(test::seed(211));
  workload::stream_config config;
  config.request_count = 3000;
  config.block_count = kBlocks;
  config.payload_bytes = kPayload;
  const std::vector<request> stream =
      workload::hotspot(gen, config, 0.8, 0.1);
  std::vector<std::uint64_t> addresses;
  addresses.reserve(stream.size());
  for (const request& req : stream) {
    addresses.push_back(req.id);
  }
  const analysis::uniformity_report report =
      analysis::audit_uniformity(addresses, kBlocks);
  EXPECT_FALSE(report.passed());
  EXPECT_FALSE(report.chi_ok);
}

TEST(ObliviousnessNegativeControl, DifferentWorkloadAddressesFailEquality) {
  util::pcg64 gen(test::seed(212));
  workload::stream_config config;
  config.request_count = 3000;
  config.block_count = kBlocks;
  config.payload_bytes = kPayload;
  const std::vector<request> hot = workload::hotspot(gen, config, 0.9, 0.05);
  const std::vector<request> flat = workload::uniform(gen, config);
  std::vector<std::uint64_t> a;
  std::vector<std::uint64_t> b;
  for (const request& req : hot) {
    a.push_back(req.id);
  }
  for (const request& req : flat) {
    b.push_back(req.id);
  }
  const analysis::equality_report report =
      analysis::audit_distribution_equality(a, b, kBlocks);
  EXPECT_FALSE(report.passed());
}

// ------------------------------------------- per-backend uniformity

/// Hand-drives a backend through `periods` full access periods (the
/// controller's cadence: period_loads loads, then a whole-hot-set
/// evict-shuffle) with the trace recording the adversary's view.
void drive_backend(oram_backend& backend, const horam_config& config,
                   util::random_source& driver, std::uint64_t periods) {
  std::map<block_id, std::vector<std::uint8_t>> cached;
  for (std::uint64_t period = 0; period < periods; ++period) {
    for (std::uint64_t cycle = 0; cycle < config.period_loads(); ++cycle) {
      const bool want_real = util::bernoulli(driver, 0.6);
      const block_id target = util::uniform_below(driver, kBlocks);
      oram_backend::load_result load;
      if (want_real && backend.in_storage(target)) {
        load = backend.load_block(target);
      } else {
        load = backend.dummy_load();
      }
      if (load.id != oram::dummy_block_id) {
        cached[load.id] = std::move(load.payload);
      }
    }
    std::vector<oram::evicted_block> evicted;
    for (auto& [id, payload] : cached) {
      evicted.push_back(oram::evicted_block{id, std::move(payload)});
    }
    cached.clear();
    std::vector<oram::evicted_block> overflow;
    (void)backend.shuffle_period(std::move(evicted), period, overflow);
    for (oram::evicted_block& block : overflow) {
      cached.emplace(block.id, std::move(block.payload));
    }
  }
}

/// The scheme-appropriate (positions, universe) pair for a uniformity
/// audit, extracted from the trace of a directly driven backend.
struct position_stream {
  std::vector<std::uint64_t> positions;
  std::uint64_t universe = 0;
};

void uniform_positions_of(const oram_backend& backend,
                          const oram::access_trace& trace,
                          position_stream& stream) {
  if (const auto* path =
          dynamic_cast<const oram::path_backend*>(&backend)) {
    // Filter to the backend tree's leaf universe: with map recursion
    // active the trace also carries the (smaller) map ORAM trees.
    stream.universe = path->tree().config().leaf_count;
    stream.positions = analysis::path_access_leaves(trace, stream.universe);
    return;
  }
  if (const auto* partitioned =
          dynamic_cast<const storage_layer*>(&backend)) {
    // Reads only ever touch the main regions (full-shuffle mode), which
    // sit strided inside the partition-major layout: normalise to a
    // gapless [0, partitions * main_capacity) universe.
    const storage::partition_geometry& geometry = partitioned->geometry();
    for (const std::uint64_t slot :
         analysis::storage_read_positions(trace)) {
      const std::uint64_t partition =
          slot / geometry.slots_per_partition();
      const std::uint64_t code = slot % geometry.slots_per_partition();
      ASSERT_LT(code, geometry.main_capacity)
          << "full-shuffle read touched an append slot";
      stream.positions.push_back(partition * geometry.main_capacity +
                                 code);
    }
    stream.universe =
        geometry.partition_count * geometry.main_capacity;
    return;
  }
  if (const auto* sqrt_store =
          dynamic_cast<const oram::sqrt_backend*>(&backend)) {
    stream.positions = analysis::storage_read_positions(trace);
    stream.universe = sqrt_store->total_slots();
    return;
  }
  if (const auto* ring = dynamic_cast<const oram::ring_backend*>(&backend)) {
    // Like path: the uniformity claim lives at the leaf level (slot
    // reads within a bucket follow the secret permutation, audited
    // separately for workload-independence below).
    stream.universe = ring->tree().config().leaf_count;
    stream.positions = analysis::path_access_leaves(trace, stream.universe);
    return;
  }
  if (const auto* hier = dynamic_cast<const oram::hier_backend*>(&backend)) {
    // Every storage_read_slot is one per-level probe. Levels have
    // different slot counts, so the streams cannot share one axis;
    // audit the bottom level (largest, probed by every access while
    // active) as level-local offsets. The per-level variant below
    // covers the rest.
    const std::uint32_t bottom = hier->level_count();
    const std::uint64_t base = hier->level_base(bottom);
    const std::uint64_t slots = hier->level_slot_count(bottom);
    for (const std::uint64_t slot :
         analysis::storage_read_positions(trace)) {
      if (slot >= base && slot < base + slots) {
        stream.positions.push_back(slot - base);
      }
    }
    stream.universe = slots;
    return;
  }
  const auto* partition =
      dynamic_cast<const oram::partition_backend*>(&backend);
  ASSERT_NE(partition, nullptr);
  stream.positions = analysis::storage_read_positions(trace);
  stream.universe = partition->geometry().total_slots();
}

class BackendUniformity : public ::testing::TestWithParam<backend_kind> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendUniformity, ::testing::ValuesIn(all_backend_kinds),
    [](const ::testing::TestParamInfo<backend_kind>& info) {
      return std::string(backend_name(info.param));
    });

TEST_P(BackendUniformity, BusPositionsAreUniform) {
  sim::block_device device{sim::hdd_paper()};
  sim::block_device map_device{sim::dram_ddr4()};
  const sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng(test::seed(221));
  oram::access_trace trace;

  horam_config config;
  config.block_count = kBlocks;
  config.memory_blocks = kMemoryBlocks;
  config.payload_bytes = kPayload;
  const std::unique_ptr<oram_backend> backend =
      make_backend(GetParam(), config, device, cpu, rng, &trace,
                   /*filler=*/nullptr, &map_device);

  util::pcg64 driver(test::seed(223));
  drive_backend(*backend, config, driver, /*periods=*/60);

  position_stream stream;
  uniform_positions_of(*backend, trace, stream);
  ASSERT_GT(stream.positions.size(), 500u);
  const analysis::uniformity_report report =
      analysis::audit_uniformity(stream.positions, stream.universe);
  EXPECT_TRUE(report.passed())
      << backend_name(GetParam()) << ": chi2 " << report.chi_square
      << " (<= " << report.chi_threshold << "), ks " << report.ks
      << " (<= " << report.ks_threshold << ") over " << report.samples
      << " samples";
}

// With map recursion forced on, the trace interleaves three leaf
// universes (backend tree + two map levels). The filtered stream must
// still audit uniform; the naive unfiltered mixture must fail — which
// is why path_access_leaves takes the universe filter.
TEST(BackendUniformity, PathLeavesStayUniformUnderMapRecursion) {
  sim::block_device device{sim::hdd_paper()};
  sim::block_device map_device{sim::dram_ddr4()};
  const sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng(test::seed(227));
  oram::access_trace trace;

  horam_config config;
  config.block_count = kBlocks;
  config.memory_blocks = kMemoryBlocks;
  config.payload_bytes = kPayload;
  config.map_entries_per_block = 8;
  config.map_direct_threshold = 8;
  oram::path_backend backend(config, device, cpu, rng, &trace,
                             /*filler=*/nullptr, &map_device);
  ASSERT_GE(backend.map().level_count(), 2u);

  util::pcg64 driver(test::seed(229));
  drive_backend(backend, config, driver, /*periods=*/60);

  const std::uint64_t universe = backend.tree().config().leaf_count;
  const std::vector<std::uint64_t> filtered =
      analysis::path_access_leaves(trace, universe);
  ASSERT_GT(filtered.size(), 500u);
  EXPECT_TRUE(analysis::audit_uniformity(filtered, universe).passed());

  const std::vector<std::uint64_t> mixture =
      analysis::path_access_leaves(trace);
  EXPECT_GT(mixture.size(), filtered.size());
  EXPECT_FALSE(analysis::audit_uniformity(mixture, universe).passed());
}

// --------------------- workload independence (async service stack)

/// Builds a traced service over `kind` and drives `stream` through two
/// tenant sessions with genuine async interleaving (bursts of
/// admissions between scheduler pumps).
oram::access_trace run_service_workload(backend_kind kind,
                                        const std::vector<request>& stream,
                                        std::uint64_t machine_salt) {
  service svc = client_builder()
                    .blocks(kBlocks)
                    .memory_blocks(kMemoryBlocks)
                    .payload_bytes(kPayload)
                    .backend(kind)
                    .seed(test::seed(machine_salt))
                    .trace(true)
                    .build_service();
  session alice = svc.open_session();
  session bob = svc.open_session();
  std::size_t submitted = 0;
  for (const request& req : stream) {
    session& target = (submitted % 2 == 0) ? alice : bob;
    if (req.op == op_kind::write) {
      (void)target.async_write(req.id, req.write_data);
    } else {
      (void)target.async_read(req.id);
    }
    if (++submitted % 64 == 0) {
      (void)svc.step();
    }
  }
  svc.run_until_idle();
  return *svc.underlying().trace();
}

class BackendWorkloadIndependence
    : public ::testing::TestWithParam<backend_kind> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendWorkloadIndependence,
    ::testing::ValuesIn(all_backend_kinds),
    [](const ::testing::TestParamInfo<backend_kind>& info) {
      return std::string(backend_name(info.param));
    });

// Two very different request streams — a concentrated hotspot and a
// uniform sweep — must induce storage position streams drawn from one
// distribution. Sample *counts* legitimately differ (the cacheable
// interface trades hit-rate-dependent trace length for speed, §4.1);
// the distribution of touched positions must not.
TEST_P(BackendWorkloadIndependence, StoragePositionsMatchAcrossWorkloads) {
  workload::stream_config config;
  config.request_count = 1500;
  config.block_count = kBlocks;
  config.write_fraction = 0.3;
  config.payload_bytes = kPayload;

  util::pcg64 gen_a(test::seed(231));
  util::pcg64 gen_b(test::seed(233));
  const std::vector<request> hot =
      workload::hotspot(gen_a, config, /*hot_probability=*/0.9,
                        /*hot_region_fraction=*/0.05);
  const std::vector<request> flat = workload::uniform(gen_b, config);

  const oram::access_trace trace_a =
      run_service_workload(GetParam(), hot, 235);
  const oram::access_trace trace_b =
      run_service_workload(GetParam(), flat, 237);

  const std::vector<std::uint64_t> positions_a =
      analysis::storage_read_positions(trace_a);
  const std::vector<std::uint64_t> positions_b =
      analysis::storage_read_positions(trace_b);
  ASSERT_GT(positions_a.size(), 200u);
  ASSERT_GT(positions_b.size(), 200u);

  const std::uint64_t universe =
      std::max(*std::max_element(positions_a.begin(), positions_a.end()),
               *std::max_element(positions_b.begin(), positions_b.end())) +
      1;
  const analysis::equality_report report =
      analysis::audit_distribution_equality(positions_a, positions_b,
                                            universe);
  EXPECT_TRUE(report.passed())
      << backend_name(GetParam()) << ": ks " << report.ks << " (<= "
      << report.ks_threshold << "), chi2 " << report.chi_square
      << " (<= " << report.chi_threshold << ") over " << report.samples_a
      << " vs " << report.samples_b << " samples";
}

// Ring-specific: the in-bucket slot index of every online slot read is
// the adversary's view of the per-bucket permutation. A real hit reads
// the target's permuted slot, a cover reads a random unread dummy —
// if the two had different index distributions, a hotspot workload
// (many real hits on few blocks) would be distinguishable from a
// uniform sweep. Audit the index streams of both workloads for
// equality.
TEST(RingObliviousness, PermutedSlotIndicesAreWorkloadIndependent) {
  workload::stream_config config;
  config.request_count = 1500;
  config.block_count = kBlocks;
  config.write_fraction = 0.3;
  config.payload_bytes = kPayload;

  util::pcg64 gen_a(test::seed(241));
  util::pcg64 gen_b(test::seed(243));
  const std::vector<request> hot =
      workload::hotspot(gen_a, config, /*hot_probability=*/0.9,
                        /*hot_region_fraction=*/0.05);
  const std::vector<request> flat = workload::uniform(gen_b, config);

  const oram::access_trace trace_a =
      run_service_workload(backend_kind::ring, hot, 245);
  const oram::access_trace trace_b =
      run_service_workload(backend_kind::ring, flat, 247);

  // At this universe the recursive map resolves directly from trusted
  // memory, so every storage_read_slot event is a ring tree online
  // read; fold the global slot down to its in-bucket index.
  const horam_config defaults;
  const std::uint64_t slots_per_bucket =
      defaults.ring_bucket_size + defaults.ring_spare_slots;
  std::vector<std::uint64_t> indices_a;
  std::vector<std::uint64_t> indices_b;
  for (const std::uint64_t slot : analysis::storage_read_positions(trace_a)) {
    indices_a.push_back(slot % slots_per_bucket);
  }
  for (const std::uint64_t slot : analysis::storage_read_positions(trace_b)) {
    indices_b.push_back(slot % slots_per_bucket);
  }
  ASSERT_GT(indices_a.size(), 500u);
  ASSERT_GT(indices_b.size(), 500u);

  const analysis::equality_report report =
      analysis::audit_distribution_equality(indices_a, indices_b,
                                            slots_per_bucket);
  EXPECT_TRUE(report.passed())
      << "ring slot indices: ks " << report.ks << " (<= "
      << report.ks_threshold << "), chi2 " << report.chi_square << " (<= "
      << report.chi_threshold << ") over " << report.samples_a << " vs "
      << report.samples_b << " samples";
}

// Hier-specific: the probe stream of EVERY level — not just the
// bottom one the generic audit covers — must look uniform over that
// level's slot range. Real hits (index-named slots) and dummy covers
// (next unused permuted rank) have to blend: a distinguishable level
// stream would leak which level a request's target resides on.
TEST(HierObliviousness, PerLevelProbePositionsAreUniform) {
  sim::block_device device{sim::hdd_paper()};
  const sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng(test::seed(251));
  oram::access_trace trace;

  horam_config config;
  config.block_count = kBlocks;
  config.memory_blocks = kMemoryBlocks;
  config.payload_bytes = kPayload;
  oram::hier_backend backend(config, device, cpu, rng, &trace,
                             /*filler=*/nullptr);

  util::pcg64 driver(test::seed(253));
  drive_backend(backend, config, driver, /*periods=*/120);

  const std::vector<std::uint64_t> positions =
      analysis::storage_read_positions(trace);
  std::uint64_t audited_levels = 0;
  for (std::uint32_t level = 1; level <= backend.level_count(); ++level) {
    const std::uint64_t base = backend.level_base(level);
    const std::uint64_t slots = backend.level_slot_count(level);
    std::vector<std::uint64_t> offsets;
    for (const std::uint64_t slot : positions) {
      if (slot >= base && slot < base + slots) {
        offsets.push_back(slot - base);
      }
    }
    if (offsets.size() < 500) {
      continue;  // a rarely active level has no statistical power
    }
    ++audited_levels;
    const analysis::uniformity_report report =
        analysis::audit_uniformity(offsets, slots);
    EXPECT_TRUE(report.passed())
        << "hier level " << level << ": chi2 " << report.chi_square
        << " (<= " << report.chi_threshold << "), ks " << report.ks
        << " (<= " << report.ks_threshold << ") over " << report.samples
        << " samples";
  }
  EXPECT_GE(audited_levels, 2u)
      << "the drive never lit up enough levels to audit";
}

// Hier-specific two-workload audit, the per-level analogue of the
// ring slot-index check: fold every probe to (level, offset) on a
// common axis and require the hotspot and uniform streams to be
// indistinguishable — the real/dummy blend must hold level by level,
// not just in the bottom-level aggregate.
TEST(HierObliviousness, LevelProbeStreamsAreWorkloadIndependent) {
  workload::stream_config config;
  config.request_count = 1500;
  config.block_count = kBlocks;
  config.write_fraction = 0.3;
  config.payload_bytes = kPayload;

  util::pcg64 gen_a(test::seed(261));
  util::pcg64 gen_b(test::seed(263));
  const std::vector<request> hot =
      workload::hotspot(gen_a, config, /*hot_probability=*/0.9,
                        /*hot_region_fraction=*/0.05);
  const std::vector<request> flat = workload::uniform(gen_b, config);

  const oram::access_trace trace_a =
      run_service_workload(backend_kind::hier, hot, 265);
  const oram::access_trace trace_b =
      run_service_workload(backend_kind::hier, flat, 267);

  // The global slot already encodes (level, offset) — levels are laid
  // out contiguously — so the raw position streams audit directly.
  const std::vector<std::uint64_t> positions_a =
      analysis::storage_read_positions(trace_a);
  const std::vector<std::uint64_t> positions_b =
      analysis::storage_read_positions(trace_b);
  ASSERT_GT(positions_a.size(), 500u);
  ASSERT_GT(positions_b.size(), 500u);

  const std::uint64_t universe =
      std::max(*std::max_element(positions_a.begin(), positions_a.end()),
               *std::max_element(positions_b.begin(), positions_b.end())) +
      1;
  const analysis::equality_report report =
      analysis::audit_distribution_equality(positions_a, positions_b,
                                            universe);
  EXPECT_TRUE(report.passed())
      << "hier level probes: ks " << report.ks << " (<= "
      << report.ks_threshold << "), chi2 " << report.chi_square << " (<= "
      << report.chi_threshold << ") over " << report.samples_a << " vs "
      << report.samples_b << " samples";
}

}  // namespace
}  // namespace horam
