// Tests for the workload generators, trace serialisation, the paper's
// closed-form model (§5.1 — including the exact Table 5-1 numbers) and
// the pattern auditor's ability to detect planted violations.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "analysis/pattern_audit.h"
#include "analysis/theoretical.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/trace_io.h"

namespace horam {
namespace {

using oram::op_kind;

// ----------------------------------------------------------- workloads

workload::stream_config small_stream() {
  workload::stream_config c;
  c.request_count = 20000;
  c.block_count = 1000;
  c.write_fraction = 0.25;
  c.payload_bytes = 16;
  return c;
}

TEST(Workload, HotspotConcentratesRequests) {
  util::pcg64 rng(60);
  const auto stream = workload::hotspot(rng, small_stream(), 0.8, 0.1);
  ASSERT_EQ(stream.size(), 20000u);
  // The hot region holds 100 blocks; >= ~80% of requests land on some
  // 100-block window. Count id frequencies.
  std::map<std::uint64_t, int> counts;
  for (const auto& req : stream) {
    ASSERT_LT(req.id, 1000u);
    ++counts[req.id];
  }
  // Top-100 ids should absorb ~80% + 0.2*10% = 82% of requests.
  std::vector<int> freq;
  for (const auto& [id, count] : counts) {
    freq.push_back(count);
  }
  std::sort(freq.rbegin(), freq.rend());
  int top100 = 0;
  for (int i = 0; i < 100 && i < static_cast<int>(freq.size()); ++i) {
    top100 += freq[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(static_cast<double>(top100) / 20000.0, 0.82, 0.03);
}

TEST(Workload, WriteFractionHonoured) {
  util::pcg64 rng(61);
  const auto stream = workload::uniform(rng, small_stream());
  int writes = 0;
  for (const auto& req : stream) {
    if (req.op == op_kind::write) {
      ++writes;
      EXPECT_EQ(req.write_data.size(), 16u);
    } else {
      EXPECT_TRUE(req.write_data.empty());
    }
  }
  EXPECT_NEAR(writes / 20000.0, 0.25, 0.02);
}

TEST(Workload, UniformCoversTheSpace) {
  util::pcg64 rng(62);
  workload::stream_config c = small_stream();
  c.block_count = 100;
  const auto stream = workload::uniform(rng, c);
  std::set<std::uint64_t> ids;
  for (const auto& req : stream) {
    ids.insert(req.id);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(Workload, ZipfIsSkewed) {
  util::pcg64 rng(63);
  const auto stream = workload::zipf(rng, small_stream(), 0.99);
  std::map<std::uint64_t, int> counts;
  for (const auto& req : stream) {
    ++counts[req.id];
  }
  std::vector<int> freq;
  for (const auto& [id, count] : counts) {
    freq.push_back(count);
  }
  std::sort(freq.rbegin(), freq.rend());
  // The most popular block dwarfs the median.
  EXPECT_GT(freq[0], 50 * std::max(1, freq[freq.size() / 2]));
}

TEST(Workload, SequentialWrapsAround) {
  workload::stream_config c = small_stream();
  c.request_count = 10;
  c.block_count = 4;
  const auto stream = workload::sequential(c, 3);
  const std::vector<std::uint64_t> expected = {0, 3, 2, 1, 0,
                                               3, 2, 1, 0, 3};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, expected[i]) << i;
  }
}

TEST(Workload, PayloadForIsDeterministic) {
  EXPECT_EQ(workload::payload_for(5, 9, 32),
            workload::payload_for(5, 9, 32));
  EXPECT_NE(workload::payload_for(5, 9, 32),
            workload::payload_for(5, 10, 32));
  EXPECT_NE(workload::payload_for(6, 9, 32),
            workload::payload_for(5, 9, 32));
}

TEST(Workload, GeneratorsAreSeedDeterministic) {
  util::pcg64 a(64), b(64);
  const auto s1 = workload::hotspot(a, small_stream());
  const auto s2 = workload::hotspot(b, small_stream());
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    ASSERT_EQ(s1[i].id, s2[i].id);
    ASSERT_EQ(s1[i].op, s2[i].op);
  }
}

TEST(TraceIo, RoundTrip) {
  util::pcg64 rng(65);
  workload::stream_config c = small_stream();
  c.request_count = 50;
  const auto stream = workload::uniform(rng, c);
  std::stringstream buffer;
  workload::save_trace(buffer, stream);
  const auto loaded = workload::load_trace(buffer, 16);
  ASSERT_EQ(loaded.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded[i].id, stream[i].id);
    EXPECT_EQ(loaded[i].op, stream[i].op);
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  std::stringstream buffer("X,12,0\n");
  EXPECT_THROW(workload::load_trace(buffer, 16), std::runtime_error);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream buffer("# header\n\nR,7,2\n");
  const auto loaded = workload::load_trace(buffer, 16);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].id, 7u);
  EXPECT_EQ(loaded[0].user, 2u);
}

// ------------------------------------------------------- theory (§5.1)

TEST(Theory, AverageCMatchesPaper) {
  // §5.2.1: stages {1, 3, 5} with fractions {0.2, 0.13, 0.67} -> 3.94.
  const double c = analysis::average_c({1, 3, 5}, {0.20, 0.13, 0.67});
  EXPECT_NEAR(c, 3.94, 0.01);
}

TEST(Theory, PathLevelMatchesTable51) {
  // 1 GB data (N = 2^20 blocks of 1 KB), 128 MB memory (n = 2^17):
  // total levels 16 + 4 = 20 by Eq 5-2 (the paper writes log2(n/Z)=16
  // using Z=2... our formula gives 15 + 4; assert the storage part,
  // which the overhead model actually uses, is exactly 4).
  const double total = analysis::path_level(1 << 17, 1 << 20, 4);
  const double storage_part = std::log2(2.0 * (1 << 20) / (1 << 17));
  EXPECT_DOUBLE_EQ(storage_part, 4.0);
  EXPECT_NEAR(total, 15.0 + 4.0, 1e-9);
}

TEST(Theory, PathOramIoMatchesTable51) {
  // Table 5-1 baseline: 16 KB reads + 16 KB writes per request = 16
  // blocks each way with Z=4 and 4 storage levels.
  const auto io = analysis::path_oram_io_per_request(1 << 20, 1 << 17, 4);
  EXPECT_DOUBLE_EQ(io.reads, 16.0);
  EXPECT_DOUBLE_EQ(io.writes, 16.0);
}

TEST(Theory, HoramIoMatchesEq54) {
  // Eq 5-4 at N = 2^20, n = 2^17, c = 4:
  // reads = 1 + 2(N-n)/(nc) = 1 + 2*(917504)/(524288) = 4.5
  // writes = 2N/(nc) = 4.
  const auto io = analysis::horam_io_per_request(1 << 20, 1 << 17, 4);
  EXPECT_DOUBLE_EQ(io.reads, 4.5);
  EXPECT_DOUBLE_EQ(io.writes, 4.0);
}

TEST(Theory, RequestsPerPeriodMatchesEq55) {
  // Eq 5-5: n*c/2 = 131072 * 4 / 2 = 262,144.
  EXPECT_EQ(analysis::requests_per_period(1 << 17, 4.0), 262144u);
}

TEST(Theory, PeriodOverheadMatchesTable51) {
  const auto overhead =
      analysis::horam_period_overhead(1 << 20, 1 << 17, 4.0, 1024);
  EXPECT_DOUBLE_EQ(overhead.access_read_kb, 1.0);
  EXPECT_DOUBLE_EQ(overhead.shuffle_read_gb, 0.875);
  EXPECT_DOUBLE_EQ(overhead.shuffle_write_gb, 1.0);
  EXPECT_DOUBLE_EQ(overhead.average_read_kb, 4.5);
  EXPECT_DOUBLE_EQ(overhead.average_write_kb, 4.0);
}

TEST(Theory, GainGrowsWithC) {
  const double g1 = analysis::theoretical_gain(8, 1, 4, 1.0, 1.0);
  const double g4 = analysis::theoretical_gain(8, 4, 4, 1.0, 1.0);
  const double g16 = analysis::theoretical_gain(8, 16, 4, 1.0, 1.0);
  EXPECT_LT(g1, g4);
  EXPECT_LT(g4, g16);
}

TEST(Theory, GainShrinksWithStorageRatio) {
  const double near = analysis::theoretical_gain(2, 4, 4, 1.0, 1.0);
  const double far = analysis::theoretical_gain(64, 4, 4, 1.0, 1.0);
  EXPECT_GT(near, far);
}

TEST(Theory, BestCaseGainInPaperRange) {
  // "The best performance is 12 times or 16 times faster": high c,
  // small N/n, with the measured 2:1 read/write asymmetry.
  const double best =
      analysis::theoretical_gain(2, 16, 4, 102.7e6, 55.2e6);
  EXPECT_GT(best, 10.0);
  EXPECT_LT(best, 18.0);
}

// ------------------------------------------------------------- auditor

TEST(Audit, ChiSquareFlagsSkewedHistograms) {
  std::vector<std::uint64_t> uniform(16, 1000);
  EXPECT_LT(analysis::chi_square_uniform(uniform),
            analysis::chi_square_threshold(15));
  std::vector<std::uint64_t> skewed(16, 10);
  skewed[3] = 10000;
  EXPECT_GT(analysis::chi_square_uniform(skewed),
            analysis::chi_square_threshold(15));
}

analysis::audit_config tiny_audit() {
  analysis::audit_config c;
  c.partition_count = 4;
  c.slots_per_partition = 8;
  c.main_capacity = 8;
  c.leaf_count = 0;  // skip leaf testing
  c.expect_single_read_per_cycle = true;
  return c;
}

TEST(Audit, CleanTracePasses) {
  oram::access_trace trace;
  trace.record(oram::event_kind::cycle_begin, 0, 2);
  trace.record(oram::event_kind::storage_read_slot, 3);
  trace.record(oram::event_kind::memory_path_access, 0);
  trace.record(oram::event_kind::memory_path_access, 1);
  trace.record(oram::event_kind::cycle_begin, 1, 2);
  trace.record(oram::event_kind::storage_read_slot, 17);
  trace.record(oram::event_kind::memory_path_access, 2);
  trace.record(oram::event_kind::memory_path_access, 0);
  const auto report = analysis::audit_trace(trace, tiny_audit());
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.cycles, 2u);
  EXPECT_EQ(report.storage_reads, 2u);
}

TEST(Audit, DetectsRepeatedSlotRead) {
  oram::access_trace trace;
  trace.record(oram::event_kind::cycle_begin, 0, 1);
  trace.record(oram::event_kind::storage_read_slot, 5);
  trace.record(oram::event_kind::memory_path_access, 0);
  trace.record(oram::event_kind::cycle_begin, 1, 1);
  trace.record(oram::event_kind::storage_read_slot, 5);  // leak!
  trace.record(oram::event_kind::memory_path_access, 0);
  const auto report = analysis::audit_trace(trace, tiny_audit());
  ASSERT_FALSE(report.passed());
  EXPECT_NE(report.violations[0].find("read twice"), std::string::npos);
}

TEST(Audit, RewriteReArmsSlot) {
  oram::access_trace trace;
  trace.record(oram::event_kind::cycle_begin, 0, 1);
  trace.record(oram::event_kind::storage_read_slot, 5);
  trace.record(oram::event_kind::memory_path_access, 0);
  trace.record(oram::event_kind::shuffle_begin, 0);
  trace.record(oram::event_kind::storage_write_sweep, 0, 8);
  trace.record(oram::event_kind::cycle_begin, 1, 1);
  trace.record(oram::event_kind::storage_read_slot, 5);  // fresh again
  trace.record(oram::event_kind::memory_path_access, 0);
  EXPECT_TRUE(analysis::audit_trace(trace, tiny_audit()).passed());
}

TEST(Audit, DetectsWrongGroupSize) {
  oram::access_trace trace;
  trace.record(oram::event_kind::cycle_begin, 0, 3);
  trace.record(oram::event_kind::storage_read_slot, 1);
  trace.record(oram::event_kind::memory_path_access, 0);  // only 1 of 3
  trace.record(oram::event_kind::cycle_begin, 1, 3);
  trace.record(oram::event_kind::storage_read_slot, 2);
  trace.record(oram::event_kind::memory_path_access, 0);
  trace.record(oram::event_kind::memory_path_access, 1);
  trace.record(oram::event_kind::memory_path_access, 2);
  const auto report = analysis::audit_trace(trace, tiny_audit());
  ASSERT_FALSE(report.passed());
  EXPECT_NE(report.violations[0].find("path accesses"),
            std::string::npos);
}

TEST(Audit, DetectsMissingLoad) {
  oram::access_trace trace;
  trace.record(oram::event_kind::cycle_begin, 0, 1);
  trace.record(oram::event_kind::memory_path_access, 0);
  trace.record(oram::event_kind::cycle_begin, 1, 1);
  trace.record(oram::event_kind::storage_read_slot, 1);
  trace.record(oram::event_kind::memory_path_access, 0);
  const auto report = analysis::audit_trace(trace, tiny_audit());
  ASSERT_FALSE(report.passed());
  EXPECT_NE(report.violations[0].find("no storage load"),
            std::string::npos);
}

TEST(Audit, DetectsCrossPartitionReads) {
  analysis::audit_config config = tiny_audit();
  config.expect_single_read_per_cycle = false;
  oram::access_trace trace;
  trace.record(oram::event_kind::cycle_begin, 0, 1);
  trace.record(oram::event_kind::storage_read_slot, 1);   // partition 0
  trace.record(oram::event_kind::storage_read_slot, 9);   // partition 1!
  trace.record(oram::event_kind::memory_path_access, 0);
  const auto report = analysis::audit_trace(trace, config);
  ASSERT_FALSE(report.passed());
  EXPECT_NE(report.violations[0].find("multiple partitions"),
            std::string::npos);
}

TEST(Audit, DetectsIncompletePartitionRewrite) {
  oram::access_trace trace;
  trace.record(oram::event_kind::shuffle_begin, 0);
  trace.record(oram::event_kind::shuffle_partition, 1);
  trace.record(oram::event_kind::storage_write_sweep, 8, 4);  // half only
  const auto report = analysis::audit_trace(trace, tiny_audit());
  ASSERT_FALSE(report.passed());
  EXPECT_NE(report.violations[0].find("full main region"),
            std::string::npos);
}

}  // namespace
}  // namespace horam
