// Tests for the ROB table and the secure scheduler's planning logic
// (§4.2): stage selection, prefetch window, hit/miss grouping, dummy
// padding.
#include <gtest/gtest.h>

#include <set>

#include "core/rob_table.h"
#include "core/scheduler.h"

namespace horam {
namespace {

using oram::block_id;

// --------------------------------------------------------------- ROB

TEST(RobTable, FifoOrderAndRemoval) {
  rob_table rob;
  rob.push(10);
  rob.push(11);
  rob.push(12);
  EXPECT_EQ(rob.size(), 3u);
  EXPECT_EQ(rob.at(0).request_index, 10u);
  rob.remove(1);
  EXPECT_EQ(rob.size(), 2u);
  EXPECT_EQ(rob.at(1).request_index, 12u);
}

TEST(RobTable, LoadingFlags) {
  rob_table rob;
  rob.push(0);
  rob.push(1);
  rob.at(1).loading = true;
  EXPECT_TRUE(rob.at(1).loading);
  rob.clear_loading_flags();
  EXPECT_FALSE(rob.at(1).loading);
}

TEST(RobTable, BoundsChecked) {
  rob_table rob;
  EXPECT_THROW(static_cast<void>(rob.at(0)), contract_error);
  EXPECT_THROW(rob.remove(0), contract_error);
}

// ---------------------------------------------------------- scheduler

/// Builds a ROB whose entry k requests block `ids[k]`.
rob_table make_rob(const std::vector<block_id>& ids) {
  rob_table rob;
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    rob.push(i);
  }
  return rob;
}

cycle_plan plan_for(const scheduler& sched, rob_table& rob,
                    const std::vector<block_id>& ids,
                    const std::set<block_id>& resident,
                    std::uint64_t loads_done = 0) {
  return sched.plan(
      rob, loads_done, [&](std::uint64_t index) { return ids[index]; },
      [&](block_id id) { return resident.contains(id); });
}

TEST(Scheduler, StageBoundaries) {
  // Paper stages: c=1 for 20%, c=3 for 13%, c=5 for 67% of 100 loads.
  scheduler sched({{1, 0.20}, {3, 0.13}, {5, 0.67}}, 100, 3);
  EXPECT_EQ(sched.group_size(0), 1u);
  EXPECT_EQ(sched.group_size(19), 1u);
  EXPECT_EQ(sched.group_size(20), 3u);
  EXPECT_EQ(sched.group_size(32), 3u);
  EXPECT_EQ(sched.group_size(33), 5u);
  EXPECT_EQ(sched.group_size(99), 5u);
  // Wraps at the period boundary (next period restarts at stage 1).
  EXPECT_EQ(sched.group_size(100), 1u);
  EXPECT_EQ(sched.group_size(133), 5u);
}

TEST(Scheduler, WindowExceedsGroupSize) {
  scheduler sched({{1, 0.2}, {5, 0.8}}, 100, 3);
  EXPECT_GT(sched.window(0), sched.group_size(0));
  EXPECT_GT(sched.window(50), sched.group_size(50));
  EXPECT_EQ(sched.window(50), 5u * 3u + 1u);  // d = factor*c + 1
}

TEST(Scheduler, PicksFirstMissAndEarliestHits) {
  scheduler sched({{2, 1.0}}, 100, 4);
  const std::vector<block_id> ids = {5, 6, 7, 8, 9};
  rob_table rob = make_rob(ids);
  // 5 and 7 resident; 6 is the first miss.
  const cycle_plan plan = plan_for(sched, rob, ids, {5, 7, 9});
  ASSERT_TRUE(plan.miss_position.has_value());
  EXPECT_EQ(*plan.miss_position, 1u);
  ASSERT_EQ(plan.hit_positions.size(), 2u);
  EXPECT_EQ(plan.hit_positions[0], 0u);
  EXPECT_EQ(plan.hit_positions[1], 2u);
  EXPECT_EQ(plan.dummy_hits, 0u);
}

TEST(Scheduler, PadsDummiesWhenHitsScarce) {
  scheduler sched({{3, 1.0}}, 100, 2);
  const std::vector<block_id> ids = {1, 2};
  rob_table rob = make_rob(ids);
  const cycle_plan plan = plan_for(sched, rob, ids, {1});
  EXPECT_EQ(plan.hit_positions.size(), 1u);
  EXPECT_EQ(plan.dummy_hits, 2u);
  EXPECT_FALSE(plan.dummy_miss());
  EXPECT_EQ(*plan.miss_position, 1u);
}

TEST(Scheduler, DummyMissWhenAllResident) {
  scheduler sched({{2, 1.0}}, 100, 3);
  const std::vector<block_id> ids = {1, 2, 3};
  rob_table rob = make_rob(ids);
  const cycle_plan plan = plan_for(sched, rob, ids, {1, 2, 3});
  EXPECT_TRUE(plan.dummy_miss());
  EXPECT_EQ(plan.hit_positions.size(), 2u);
}

TEST(Scheduler, EmptyRobIsAllDummies) {
  scheduler sched({{4, 1.0}}, 100, 3);
  const std::vector<block_id> ids;
  rob_table rob;
  const cycle_plan plan = plan_for(sched, rob, ids, {});
  EXPECT_TRUE(plan.dummy_miss());
  EXPECT_EQ(plan.hit_positions.size(), 0u);
  EXPECT_EQ(plan.dummy_hits, 4u);
}

TEST(Scheduler, OnlyOneMissPerCycle) {
  scheduler sched({{2, 1.0}}, 100, 5);
  const std::vector<block_id> ids = {1, 2, 3, 4};
  rob_table rob = make_rob(ids);
  const cycle_plan plan = plan_for(sched, rob, ids, {});  // all miss
  ASSERT_TRUE(plan.miss_position.has_value());
  EXPECT_EQ(*plan.miss_position, 0u);
  EXPECT_EQ(plan.hit_positions.size(), 0u);
  EXPECT_EQ(plan.dummy_hits, 2u);
}

TEST(Scheduler, SkipsLoadingEntries) {
  scheduler sched({{2, 1.0}}, 100, 5);
  const std::vector<block_id> ids = {1, 2, 3};
  rob_table rob = make_rob(ids);
  rob.at(0).loading = true;  // miss already in flight
  const cycle_plan plan = plan_for(sched, rob, ids, {3});
  ASSERT_TRUE(plan.miss_position.has_value());
  EXPECT_EQ(*plan.miss_position, 1u);  // next miss, not the loading one
  ASSERT_EQ(plan.hit_positions.size(), 1u);
  EXPECT_EQ(plan.hit_positions[0], 2u);
}

TEST(Scheduler, WindowLimitsTheScan) {
  scheduler sched({{1, 1.0}}, 100, 1);  // window = 1*1 + 1 = 2
  const std::vector<block_id> ids = {1, 2, 3, 4};
  rob_table rob = make_rob(ids);
  // Hits exist only beyond the window; they must not be found.
  const cycle_plan plan = plan_for(sched, rob, ids, {3, 4});
  EXPECT_EQ(plan.hit_positions.size(), 0u);
  EXPECT_EQ(plan.dummy_hits, 1u);
  EXPECT_EQ(*plan.miss_position, 0u);
}

TEST(Scheduler, PrefetchingFindsMissDeepInWindow) {
  // The Figure 4-2 behaviour: with d > c the scheduler reaches past
  // the head-of-queue hits to schedule the next miss early.
  scheduler sched({{3, 1.0}}, 100, 3);  // window 10
  const std::vector<block_id> ids = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  rob_table rob = make_rob(ids);
  const cycle_plan plan =
      plan_for(sched, rob, ids, {1, 2, 3, 4, 5, 6, 8, 9});
  ASSERT_TRUE(plan.miss_position.has_value());
  EXPECT_EQ(*plan.miss_position, 6u);  // id 7, position 6
  EXPECT_EQ(plan.hit_positions.size(), 3u);
}

TEST(Scheduler, DuplicateMissIdsScheduleOnce) {
  scheduler sched({{2, 1.0}}, 100, 5);
  const std::vector<block_id> ids = {9, 9, 9};
  rob_table rob = make_rob(ids);
  const cycle_plan plan = plan_for(sched, rob, ids, {});
  EXPECT_EQ(*plan.miss_position, 0u);
  EXPECT_EQ(plan.hit_positions.size(), 0u);  // others wait for the load
}

TEST(Scheduler, RejectsBadConfiguration) {
  EXPECT_THROW(scheduler({}, 100, 3), contract_error);
  EXPECT_THROW(scheduler({{1, 1.0}}, 0, 3), contract_error);
  EXPECT_THROW(scheduler({{1, 1.0}}, 100, 0), contract_error);
}

class SchedulerStageSweep
    : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(GroupSizes, SchedulerStageSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST_P(SchedulerStageSweep, GroupNeverExceedsC) {
  const std::uint32_t c = GetParam();
  scheduler sched({{c, 1.0}}, 1000, 3);
  std::vector<block_id> ids(64);
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    ids[i] = i;
  }
  rob_table rob = make_rob(ids);
  std::set<block_id> resident(ids.begin(), ids.end());
  const cycle_plan plan = plan_for(sched, rob, ids, resident);
  EXPECT_EQ(plan.c, c);
  EXPECT_LE(plan.hit_positions.size(), c);
  EXPECT_EQ(plan.hit_positions.size() + plan.dummy_hits, c);
}

}  // namespace
}  // namespace horam
