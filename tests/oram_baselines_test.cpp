// Tests for the square-root and partition ORAM baselines: functional
// correctness against shadow maps, protocol invariants (read-once
// slots, reshuffle cadence), and cost shape.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "oram/partition/partition_oram.h"
#include "oram/sqrt/sqrt_oram.h"
#include "sim/profiles.h"
#include "util/rng.h"

namespace horam::oram {
namespace {

// ------------------------------------------------------------ sqrt ORAM

struct sqrt_fixture {
  sim::block_device disk{sim::hdd_paper()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{17};
  access_trace trace;

  sqrt_oram_config config(std::uint64_t n) {
    sqrt_oram_config c;
    c.block_count = n;
    c.payload_bytes = 16;
    c.seal = true;
    return c;
  }
};

TEST(SqrtOram, DefaultsDeriveSqrtParameters) {
  sqrt_fixture fx;
  sqrt_oram oram(fx.config(100), fx.disk, fx.cpu, fx.rng, nullptr);
  EXPECT_EQ(oram.total_slots(), 110u);  // N + ceil(sqrt(N))
}

TEST(SqrtOram, WriteThenReadAcrossReshuffles) {
  sqrt_fixture fx;
  sqrt_oram oram(fx.config(64), fx.disk, fx.cpu, fx.rng, nullptr);
  std::vector<std::uint8_t> data(16, 0x21);
  oram.access(op_kind::write, 13, data, {});
  // Drive far past several reshuffle periods (period = 8).
  for (int i = 0; i < 50; ++i) {
    oram.access(op_kind::read, static_cast<block_id>(i % 64), {}, {});
  }
  std::vector<std::uint8_t> out(16);
  oram.access(op_kind::read, 13, {}, out);
  EXPECT_EQ(out, data);
  EXPECT_GT(oram.stats().reshuffles, 4u);
}

TEST(SqrtOram, ShadowMapDifferentialTest) {
  sqrt_fixture fx;
  sqrt_oram oram(fx.config(50), fx.disk, fx.cpu, fx.rng, nullptr);
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(18);
  for (int step = 0; step < 1500; ++step) {
    const block_id id = util::uniform_below(driver, 50);
    if (util::bernoulli(driver, 0.4)) {
      std::vector<std::uint8_t> data(16,
                                     static_cast<std::uint8_t>(step));
      oram.access(op_kind::write, id, data, {});
      shadow[id] = data;
    } else {
      std::vector<std::uint8_t> out(16);
      oram.access(op_kind::read, id, {}, out);
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(16, 0);
      ASSERT_EQ(out, expected) << "step " << step;
    }
  }
}

TEST(SqrtOram, OneStorageReadPerAccess) {
  sqrt_fixture fx;
  sqrt_oram oram(fx.config(64), fx.disk, fx.cpu, fx.rng, &fx.trace);
  for (int i = 0; i < 8; ++i) {  // exactly one period, no reshuffle
    oram.access(op_kind::read, 5, {}, {});
  }
  std::uint64_t reads = 0;
  for (const trace_event& event : fx.trace.events()) {
    reads += event.kind == event_kind::storage_read_slot ? 1 : 0;
  }
  EXPECT_EQ(reads, 8u);
}

TEST(SqrtOram, SlotsNeverRepeatWithinPeriod) {
  // The defining square-root ORAM invariant: within one period all
  // touched slots are distinct (repeats would correlate with hits).
  sqrt_fixture fx;
  sqrt_oram oram(fx.config(64), fx.disk, fx.cpu, fx.rng, &fx.trace);
  for (int period = 0; period < 6; ++period) {
    fx.trace.clear();
    for (int i = 0; i < 8; ++i) {
      // Repeatedly hammering one block maximises shelter hits.
      oram.access(op_kind::read, 7, {}, {});
    }
    std::set<std::uint64_t> slots;
    for (const trace_event& event : fx.trace.events()) {
      if (event.kind == event_kind::storage_read_slot) {
        EXPECT_TRUE(slots.insert(event.a).second)
            << "slot " << event.a << " repeated in period " << period;
      }
    }
  }
}

TEST(SqrtOram, ReshuffleCadenceMatchesPeriod) {
  sqrt_fixture fx;
  sqrt_oram_config config = fx.config(64);
  config.period = 4;
  sqrt_oram oram(config, fx.disk, fx.cpu, fx.rng, nullptr);
  for (int i = 0; i < 20; ++i) {
    oram.access(op_kind::read, static_cast<block_id>(i % 64), {}, {});
  }
  EXPECT_EQ(oram.stats().reshuffles, 5u);
}

TEST(SqrtOram, PeriodCannotExceedDummies) {
  sqrt_fixture fx;
  sqrt_oram_config config = fx.config(64);
  config.dummy_count = 4;
  config.period = 5;
  EXPECT_THROW(sqrt_oram(config, fx.disk, fx.cpu, fx.rng, nullptr),
               contract_error);
}

TEST(SqrtOram, ShelterPeakBoundedByPeriod) {
  sqrt_fixture fx;
  sqrt_oram oram(fx.config(100), fx.disk, fx.cpu, fx.rng, nullptr);
  util::pcg64 driver(19);
  for (int i = 0; i < 500; ++i) {
    oram.access(op_kind::read, util::uniform_below(driver, 100), {}, {});
  }
  EXPECT_LE(oram.stats().shelter_peak, 10u);  // period = 10
}

// ------------------------------------------------------- partition ORAM

struct partition_fixture {
  sim::block_device disk{sim::hdd_paper()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{23};
  access_trace trace;

  partition_oram_config config(std::uint64_t n) {
    partition_oram_config c;
    c.block_count = n;
    c.payload_bytes = 16;
    c.seal = true;
    return c;
  }
};

TEST(PartitionOram, GeometryIsSqrtish) {
  partition_fixture fx;
  partition_oram oram(fx.config(100), fx.disk, fx.cpu, fx.rng, nullptr);
  EXPECT_EQ(oram.partition_count(), 10u);
  EXPECT_GE(oram.partition_capacity(), 10u);  // slack >= 1
}

TEST(PartitionOram, ShadowMapDifferentialTest) {
  partition_fixture fx;
  partition_oram oram(fx.config(100), fx.disk, fx.cpu, fx.rng, nullptr);
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(24);
  for (int step = 0; step < 2000; ++step) {
    const block_id id = util::uniform_below(driver, 100);
    if (util::bernoulli(driver, 0.4)) {
      std::vector<std::uint8_t> data(16,
                                     static_cast<std::uint8_t>(step));
      oram.access(op_kind::write, id, data, {});
      shadow[id] = data;
    } else {
      std::vector<std::uint8_t> out(16);
      oram.access(op_kind::read, id, {}, out);
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(16, 0);
      ASSERT_EQ(out, expected) << "step " << step;
    }
  }
  EXPECT_GT(oram.stats().evictions, 0u);
}

TEST(PartitionOram, OneSlotReadPerAccess) {
  partition_fixture fx;
  partition_oram oram(fx.config(64), fx.disk, fx.cpu, fx.rng, &fx.trace);
  for (int i = 0; i < 10; ++i) {
    oram.access(op_kind::read, 3, {}, {});  // mostly stash hits
  }
  std::uint64_t slot_reads = 0;
  for (const trace_event& event : fx.trace.events()) {
    slot_reads += event.kind == event_kind::storage_read_slot ? 1 : 0;
  }
  EXPECT_EQ(slot_reads, 10u);  // dummies cover the stash hits
}

TEST(PartitionOram, SlotsNeverRepeatBetweenShuffles) {
  partition_fixture fx;
  partition_oram oram(fx.config(64), fx.disk, fx.cpu, fx.rng, &fx.trace);
  // Track per-slot reads; a write sweep (partition shuffle) resets.
  std::map<std::uint64_t, int> since_refresh;
  util::pcg64 driver(25);
  for (int i = 0; i < 500; ++i) {
    oram.access(op_kind::read, util::uniform_below(driver, 64), {}, {});
  }
  const std::uint64_t capacity = oram.partition_capacity();
  for (const trace_event& event : fx.trace.events()) {
    if (event.kind == event_kind::storage_read_slot) {
      EXPECT_EQ(++since_refresh[event.a], 1) << "slot " << event.a;
    } else if (event.kind == event_kind::storage_write_sweep) {
      for (std::uint64_t s = event.a; s < event.a + event.b; ++s) {
        since_refresh.erase(s);
      }
    }
    (void)capacity;
  }
}

TEST(PartitionOram, EvictionCadence) {
  partition_fixture fx;
  partition_oram_config config = fx.config(64);
  config.eviction_batch = 5;
  partition_oram oram(config, fx.disk, fx.cpu, fx.rng, nullptr);
  for (int i = 0; i < 50; ++i) {
    oram.access(op_kind::read, static_cast<block_id>(i % 64), {}, {});
  }
  EXPECT_EQ(oram.stats().evictions, 10u);
}

TEST(PartitionOram, StashDrainsThroughEvictions) {
  partition_fixture fx;
  partition_oram_config config = fx.config(100);
  config.eviction_batch = 4;
  partition_oram oram(config, fx.disk, fx.cpu, fx.rng, nullptr);
  util::pcg64 driver(26);
  for (int i = 0; i < 1000; ++i) {
    oram.access(op_kind::read, util::uniform_below(driver, 100), {}, {});
  }
  // Evictions keep pushing the stash out; the peak stays modest.
  EXPECT_LT(oram.stats().stash_peak, 40u);
}

TEST(PartitionOram, ShuffleCostIsSequential) {
  partition_fixture fx;
  partition_oram_config config = fx.config(256);
  config.eviction_batch = 1;  // shuffle on every access
  partition_oram oram(config, fx.disk, fx.cpu, fx.rng, nullptr);
  fx.disk.reset_stats();
  oram.access(op_kind::read, 0, {}, {});
  // The per-access shuffle streams one partition: expect sequential
  // read + write sweeps to dominate the op count.
  const auto& stats = fx.disk.stats();
  EXPECT_GE(stats.sequential_read_ops + stats.sequential_write_ops, 0u);
  EXPECT_LE(stats.read_ops, 4u);   // slot read + partition sweep (+pad)
  EXPECT_LE(stats.write_ops, 2u);  // partition write sweep
}

}  // namespace
}  // namespace horam::oram
