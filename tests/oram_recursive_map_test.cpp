// Tests for the recursive position map extension and path_oram's
// one-access read-modify-write.
#include <gtest/gtest.h>

#include <map>

#include "oram/path/recursive_position_map.h"
#include "sim/profiles.h"
#include "util/rng.h"

namespace horam::oram {
namespace {

struct fixture {
  sim::block_device memory{sim::dram_ddr4()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{311};
  access_trace trace;

  recursive_map_config config(std::uint64_t universe,
                              std::uint64_t epb = 16,
                              std::uint64_t threshold = 64) {
    recursive_map_config c;
    c.universe = universe;
    c.entries_per_block = epb;
    c.direct_threshold = threshold;
    c.seal = true;
    return c;
  }
};

// ----------------------------------------------------- rmw primitive

TEST(PathOramRmw, SingleAccessReadModifyWrite) {
  fixture fx;
  path_oram_config config;
  config.leaf_count = 16;
  config.bucket_size = 4;
  config.payload_bytes = 16;
  config.id_universe = 64;
  config.seal = true;
  path_oram oram(config, fx.memory, nullptr, fx.cpu, fx.rng, nullptr);

  oram.access(op_kind::write, 5, std::vector<std::uint8_t>(16, 1), {});
  const auto& stats_before = oram.stats();
  const std::uint64_t accesses_before = stats_before.real_accesses;

  std::uint8_t seen = 0;
  oram.access_rmw(5, [&](std::span<std::uint8_t> payload) {
    seen = payload[0];
    payload[0] = 9;
  });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(oram.stats().real_accesses, accesses_before + 1);

  std::vector<std::uint8_t> out(16);
  oram.access(op_kind::read, 5, {}, out);
  EXPECT_EQ(out[0], 9);
}

TEST(PathOramRmw, AbsentBlockMaterialisesZeroed) {
  fixture fx;
  path_oram_config config;
  config.leaf_count = 8;
  config.bucket_size = 4;
  config.payload_bytes = 8;
  config.id_universe = 32;
  config.seal = false;
  path_oram oram(config, fx.memory, nullptr, fx.cpu, fx.rng, nullptr);
  std::uint8_t seen = 0xff;
  oram.access_rmw(3, [&](std::span<std::uint8_t> payload) {
    seen = payload[0];
  });
  EXPECT_EQ(seen, 0);
  EXPECT_TRUE(oram.contains(3));
}

// ------------------------------------------------------ recursion

TEST(RecursiveMap, DegeneratesToDirectVectorBelowThreshold) {
  fixture fx;
  recursive_position_map map(fx.config(50, 16, 64), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  EXPECT_EQ(map.level_count(), 0u);
  std::optional<leaf_id> out;
  const cost_split cost = map.lookup(7, out);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(cost.total(), 0);
}

TEST(RecursiveMap, BuildsExpectedLevelCount) {
  fixture fx;
  // 65,536 entries / 16 per block = 4,096 -> 256 -> 16 (<= 64 stop).
  recursive_position_map map(fx.config(65536, 16, 64), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  EXPECT_EQ(map.level_count(), 3u);
  EXPECT_LE(map.trusted_bytes(), 64u * 8u);
}

TEST(RecursiveMap, LookupPaysOneRoundTripPerLevel) {
  fixture fx;
  // 65,536 / 16 per block = 4,096 -> 256 -> 16 (<= 64 stop): 3 ORAM
  // levels. Each level's path access is one dependent exchange — the
  // deeper block address comes out of the shallower block's payload —
  // so a walk of k levels must count exactly k device round trips.
  recursive_position_map map(fx.config(65536, 16, 64), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  ASSERT_EQ(map.level_count(), 3u);
  fx.memory.reset_stats();
  std::optional<leaf_id> out;
  map.lookup(7, out);
  EXPECT_EQ(fx.memory.stats().round_trips, map.level_count());
}

TEST(RecursiveMap, AssignLookupRemoveRoundTrip) {
  fixture fx;
  recursive_position_map map(fx.config(4096, 16, 32), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  std::optional<leaf_id> out;
  map.lookup(100, out);
  EXPECT_FALSE(out.has_value());
  map.assign(100, 42);
  map.lookup(100, out);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 42u);
  map.assign(100, 7);
  map.lookup(100, out);
  EXPECT_EQ(*out, 7u);
  map.remove(100);
  map.lookup(100, out);
  EXPECT_FALSE(out.has_value());
}

TEST(RecursiveMap, PackedNeighboursDoNotInterfere) {
  fixture fx;
  recursive_position_map map(fx.config(4096, 16, 32), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  // Ids 32..47 share one packed level-0 block.
  for (block_id id = 32; id < 48; ++id) {
    map.assign(id, id * 10);
  }
  for (block_id id = 32; id < 48; ++id) {
    std::optional<leaf_id> out;
    map.lookup(id, out);
    ASSERT_TRUE(out.has_value()) << "id " << id;
    EXPECT_EQ(*out, id * 10) << "id " << id;
  }
}

TEST(RecursiveMap, DifferentialAgainstStdMap) {
  fixture fx;
  recursive_position_map map(fx.config(2048, 8, 16), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  std::map<block_id, leaf_id> shadow;
  util::pcg64 driver(312);
  for (int step = 0; step < 500; ++step) {
    const block_id id = util::uniform_below(driver, 2048);
    const int action = static_cast<int>(util::uniform_below(driver, 3));
    if (action == 0) {
      const leaf_id leaf = util::uniform_below(driver, 1 << 20);
      map.assign(id, leaf);
      shadow[id] = leaf;
    } else if (action == 1) {
      map.remove(id);
      shadow.erase(id);
    } else {
      std::optional<leaf_id> out;
      map.lookup(id, out);
      if (shadow.contains(id)) {
        ASSERT_TRUE(out.has_value()) << "step " << step;
        ASSERT_EQ(*out, shadow[id]) << "step " << step;
      } else {
        ASSERT_FALSE(out.has_value()) << "step " << step;
      }
    }
  }
}

TEST(RecursiveMap, CostGrowsWithLevels) {
  fixture fx;
  recursive_position_map shallow(fx.config(2048, 16, 2048), fx.memory,
                                 fx.cpu, fx.rng, nullptr);
  recursive_position_map deep(fx.config(65536, 16, 64), fx.memory,
                              fx.cpu, fx.rng, nullptr);
  std::optional<leaf_id> out;
  const cost_split c_shallow = shallow.lookup(1, out);
  const cost_split c_deep = deep.lookup(1, out);
  EXPECT_EQ(c_shallow.total(), 0);  // direct vector
  EXPECT_GT(c_deep.total(), 0);
  EXPECT_EQ(deep.level_count(), 3u);
}

TEST(RecursiveMap, TrustedMemoryShrinksGeometrically) {
  fixture fx;
  // Flat map for 2^16 blocks: 512 KB. Recursion: <= 512 B residue.
  recursive_position_map map(fx.config(65536, 16, 64), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  EXPECT_LE(map.trusted_bytes(), 512u);
  EXPECT_GT(map.oram_bytes(), 0u);
}

class RecursiveMapSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(EntriesPerBlock, RecursiveMapSweep,
                         ::testing::Values(2, 4, 8, 32, 128));

TEST_P(RecursiveMapSweep, RoundTripAcrossPackings) {
  const std::uint64_t epb = GetParam();
  fixture fx;
  recursive_position_map map(fx.config(1024, epb, 8), fx.memory, fx.cpu,
                             fx.rng, nullptr);
  for (block_id id = 0; id < 64; ++id) {
    map.assign(id, id + 1000);
  }
  for (block_id id = 0; id < 64; ++id) {
    std::optional<leaf_id> out;
    map.lookup(id, out);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, id + 1000);
  }
}

}  // namespace
}  // namespace horam::oram
