// Tests for the H-ORAM storage layer: loads, dummy loads with
// prefetching, unaccessed-slot accounting, the group-and-partition
// shuffle, and the partial-shuffle append/masking machinery.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "core/storage_layer.h"
#include "sim/profiles.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;
using oram::dummy_block_id;
using oram::evicted_block;

struct fixture {
  sim::block_device disk{sim::hdd_paper()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{31};
  oram::access_trace trace;

  horam_config config(std::uint64_t n = 256, std::uint64_t memory = 32,
                      std::uint32_t shuffle_every = 1) {
    horam_config c;
    c.block_count = n;
    c.memory_blocks = memory;
    c.payload_bytes = 16;
    c.seal = true;
    c.shuffle_every_periods = shuffle_every;
    return c;
  }

  storage_layer make(const horam_config& c,
                     bool with_filler = true) {
    static const std::function<void(block_id, std::span<std::uint8_t>)>
        filler = [](block_id id, std::span<std::uint8_t> out) {
          out[0] = static_cast<std::uint8_t>(id);
          out[1] = static_cast<std::uint8_t>(id >> 8);
        };
    return storage_layer(c, disk, cpu, rng, &trace,
                         with_filler ? &filler : nullptr);
  }
};

TEST(StorageLayer, GeometryCoversDataset) {
  fixture fx;
  const horam_config c = fx.config(256, 32);
  storage_layer layer = fx.make(c);
  const auto& g = layer.geometry();
  EXPECT_EQ(g.partition_count, 16u);  // sqrt(256)
  EXPECT_GE(g.partition_count * g.main_capacity, 256u);
  EXPECT_EQ(layer.unaccessed_slot_count(),
            g.partition_count * g.main_capacity);
}

TEST(StorageLayer, LoadBlockReturnsFilledPayload) {
  fixture fx;
  storage_layer layer = fx.make(fx.config());
  EXPECT_TRUE(layer.in_storage(42));
  const auto result = layer.load_block(42);
  EXPECT_EQ(result.id, 42u);
  EXPECT_EQ(result.payload[0], 42);
  EXPECT_GT(result.cost.io, 0);
  EXPECT_FALSE(layer.in_storage(42));  // now cached
}

TEST(StorageLayer, LoadBlockTwiceIsAContractViolation) {
  fixture fx;
  storage_layer layer = fx.make(fx.config());
  layer.load_block(7);
  EXPECT_THROW(layer.load_block(7), contract_error);
}

TEST(StorageLayer, LoadsConsumeUnaccessedSlots) {
  fixture fx;
  storage_layer layer = fx.make(fx.config());
  const std::uint64_t before = layer.unaccessed_slot_count();
  layer.load_block(1);
  layer.dummy_load();
  EXPECT_EQ(layer.unaccessed_slot_count(), before - 2);
}

TEST(StorageLayer, DummyLoadPrefetchesLiveBlocks) {
  fixture fx;
  // Slack 1.0-ish: most slots are live, so dummy loads usually find
  // real blocks and cache them.
  horam_config c = fx.config(256, 32);
  c.partition_slack = 1.0;
  storage_layer layer = fx.make(c);
  std::uint64_t prefetched = 0;
  for (int i = 0; i < 64; ++i) {
    const auto result = layer.dummy_load();
    if (result.id != dummy_block_id) {
      ++prefetched;
      EXPECT_FALSE(layer.in_storage(result.id));
      EXPECT_EQ(result.payload[0],
                static_cast<std::uint8_t>(result.id));
    }
  }
  EXPECT_EQ(prefetched, layer.stats().prefetched_blocks);
  EXPECT_GT(prefetched, 32u);  // most slots are live
}

TEST(StorageLayer, SlotReadsNeverRepeatWithinPeriod) {
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64));
  std::set<std::uint64_t> slots;
  util::pcg64 driver(32);
  for (int i = 0; i < 100; ++i) {
    fx.trace.clear();
    if (util::bernoulli(driver, 0.5)) {
      const block_id id = util::uniform_below(driver, 256);
      if (layer.in_storage(id)) {
        layer.load_block(id);
      } else {
        layer.dummy_load();
      }
    } else {
      layer.dummy_load();
    }
    for (const auto& event : fx.trace.events()) {
      if (event.kind == oram::event_kind::storage_read_slot) {
        EXPECT_TRUE(slots.insert(event.a).second)
            << "slot " << event.a << " read twice";
      }
    }
  }
}

TEST(StorageLayer, ShuffleRestoresSlotPools) {
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64));
  std::vector<evicted_block> evicted;
  for (int i = 0; i < 32; ++i) {
    const auto result = layer.dummy_load();
    if (result.id != dummy_block_id) {
      evicted.push_back(evicted_block{result.id, result.payload});
    }
  }
  const std::uint64_t total =
      layer.geometry().partition_count * layer.geometry().main_capacity;
  EXPECT_LT(layer.unaccessed_slot_count(), total);
  std::vector<evicted_block> overflow;
  layer.shuffle_period(std::move(evicted), 0, overflow);
  EXPECT_TRUE(overflow.empty());
  EXPECT_EQ(layer.unaccessed_slot_count(), total);
}

TEST(StorageLayer, ShuffleKeepsEveryBlockReachable) {
  // Load half the dataset, shuffle it back, then verify every block is
  // loadable with its payload intact.
  fixture fx;
  storage_layer layer = fx.make(fx.config(64, 16));
  std::unordered_map<block_id, std::vector<std::uint8_t>> cached;
  for (block_id id = 0; id < 32; ++id) {
    cached[id] = layer.load_block(id).payload;
  }
  std::vector<evicted_block> evicted;
  for (auto& [id, payload] : cached) {
    evicted.push_back(evicted_block{id, payload});
  }
  std::vector<evicted_block> overflow;
  const shuffle_cost cost =
      layer.shuffle_period(std::move(evicted), 0, overflow);
  EXPECT_TRUE(overflow.empty());
  EXPECT_GT(cost.io_read, 0);
  EXPECT_GT(cost.io_write, 0);

  for (block_id id = 0; id < 64; ++id) {
    ASSERT_TRUE(layer.in_storage(id)) << "id " << id;
    const auto result = layer.load_block(id);
    EXPECT_EQ(result.payload[0], static_cast<std::uint8_t>(id));
  }
}

TEST(StorageLayer, ShuffleIsSequentialOnDisk) {
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64));
  fx.disk.reset_stats();
  std::vector<evicted_block> overflow;
  layer.shuffle_period({}, 0, overflow);
  const auto& stats = fx.disk.stats();
  // One streaming read + one streaming write per partition.
  EXPECT_EQ(stats.read_ops, layer.geometry().partition_count);
  EXPECT_EQ(stats.write_ops, layer.geometry().partition_count);
  EXPECT_EQ(layer.stats().partitions_shuffled,
            layer.geometry().partition_count);
}

TEST(StorageLayer, FullShuffleRelocatesBlocks) {
  // After a full shuffle, evicted blocks land in fresh uniformly random
  // partitions: with 32 blocks over 16 partitions, the probability all
  // return to one partition is negligible.
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64));
  std::vector<evicted_block> evicted;
  for (block_id id = 100; id < 132; ++id) {
    evicted.push_back(evicted_block{id, layer.load_block(id).payload});
  }
  std::vector<evicted_block> overflow;
  layer.shuffle_period(std::move(evicted), 0, overflow);
  fx.trace.clear();
  std::set<std::uint64_t> partitions;
  for (block_id id = 100; id < 132; ++id) {
    layer.load_block(id);
  }
  for (const auto& event : fx.trace.events()) {
    if (event.kind == oram::event_kind::storage_read_slot) {
      partitions.insert(event.a /
                        layer.geometry().slots_per_partition());
    }
  }
  EXPECT_GT(partitions.size(), 4u);
}

// -------------------------------------------------- partial shuffling

TEST(StorageLayerPartial, OnlyDuePartitionsAreShuffled) {
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64, /*shuffle_every=*/4));
  std::vector<evicted_block> overflow;
  layer.shuffle_period({}, 0, overflow);
  EXPECT_EQ(layer.stats().partitions_shuffled,
            layer.geometry().partition_count / 4);
}

TEST(StorageLayerPartial, EvictedBlocksAppendAndStayReachable) {
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64, /*shuffle_every=*/4));
  std::vector<evicted_block> evicted;
  for (block_id id = 0; id < 24; ++id) {
    evicted.push_back(evicted_block{id, layer.load_block(id).payload});
  }
  std::vector<evicted_block> overflow;
  layer.shuffle_period(std::move(evicted), 0, overflow);
  EXPECT_GT(layer.stats().append_segments, 0u);
  for (block_id id = 0; id < 24; ++id) {
    if (overflow.end() != std::find_if(overflow.begin(), overflow.end(),
                                       [&](const evicted_block& b) {
                                         return b.id == id;
                                       })) {
      continue;  // kept in the shelter
    }
    ASSERT_TRUE(layer.in_storage(id));
    const auto result = layer.load_block(id);
    EXPECT_EQ(result.payload[0], static_cast<std::uint8_t>(id));
  }
}

TEST(StorageLayerPartial, MaskingReadsMatchPendingSegments) {
  fixture fx;
  // Masking reads draw on dead (dummy) slots; give the tiny test
  // partitions enough slack to supply them for a full period.
  horam_config cfg = fx.config(256, 64, /*shuffle_every=*/4);
  cfg.partition_slack = 1.5;
  storage_layer layer = fx.make(cfg);
  // Period 0: evict a few blocks so non-due partitions carry segments.
  std::vector<evicted_block> evicted;
  for (block_id id = 0; id < 24; ++id) {
    evicted.push_back(evicted_block{id, layer.load_block(id).payload});
  }
  std::vector<evicted_block> overflow;
  layer.shuffle_period(std::move(evicted), 0, overflow);

  // Loads from partitions with one pending segment must do 2 reads.
  // Stay within one period's load budget (n/2 = 32): masking draws on
  // the partitions' dead slots, which the next shuffle replenishes.
  const std::uint64_t masks_before = layer.stats().masking_reads;
  std::uint64_t loads_with_pending = 0;
  for (block_id id = 24; id < 24 + 32; ++id) {
    if (!layer.in_storage(id)) {
      continue;
    }
    fx.trace.clear();
    layer.load_block(id);
    std::uint64_t reads = 0;
    std::set<std::uint64_t> partitions;
    for (const auto& event : fx.trace.events()) {
      if (event.kind == oram::event_kind::storage_read_slot) {
        ++reads;
        partitions.insert(event.a /
                          layer.geometry().slots_per_partition());
      }
    }
    EXPECT_EQ(partitions.size(), 1u);  // masks stay in the partition
    const std::uint64_t pending =
        layer.pending_segments(*partitions.begin());
    EXPECT_EQ(reads, 1 + pending);
    loads_with_pending += pending > 0 ? 1 : 0;
  }
  EXPECT_GT(loads_with_pending, 0u);
  EXPECT_GT(layer.stats().masking_reads, masks_before);
}

TEST(StorageLayerPartial, RoundRobinCoversAllPartitionsEventually) {
  fixture fx;
  storage_layer layer = fx.make(fx.config(256, 64, /*shuffle_every=*/4));
  std::vector<evicted_block> overflow;
  for (std::uint64_t period = 0; period < 4; ++period) {
    layer.shuffle_period({}, period, overflow);
  }
  EXPECT_EQ(layer.stats().partitions_shuffled,
            layer.geometry().partition_count);
}

TEST(StorageLayerPartial, DifferentialWorkloadAcrossPeriods) {
  // Mixed loads + partial shuffles across many periods; every block
  // must keep its identity-tagged payload.
  fixture fx;
  storage_layer layer = fx.make(fx.config(64, 16, /*shuffle_every=*/2));
  util::pcg64 driver(33);
  std::unordered_map<block_id, std::vector<std::uint8_t>> in_memory;
  for (std::uint64_t period = 0; period < 6; ++period) {
    for (int load = 0; load < 8; ++load) {
      const block_id id = util::uniform_below(driver, 64);
      if (layer.in_storage(id)) {
        in_memory[id] = layer.load_block(id).payload;
      } else {
        const auto result = layer.dummy_load();
        if (result.id != dummy_block_id) {
          in_memory[result.id] = result.payload;
        }
      }
    }
    std::vector<evicted_block> evicted;
    for (auto& [id, payload] : in_memory) {
      evicted.push_back(evicted_block{id, std::move(payload)});
    }
    in_memory.clear();
    std::vector<evicted_block> overflow;
    layer.shuffle_period(std::move(evicted), period, overflow);
    for (auto& block : overflow) {
      in_memory.emplace(block.id, std::move(block.payload));
    }
  }
  // Verify every block: either in storage with the right payload, or
  // carried in the overflow shelter.
  for (block_id id = 0; id < 64; ++id) {
    if (in_memory.contains(id)) {
      EXPECT_EQ(in_memory[id][0], static_cast<std::uint8_t>(id));
    } else {
      ASSERT_TRUE(layer.in_storage(id)) << "id " << id;
      EXPECT_EQ(layer.load_block(id).payload[0],
                static_cast<std::uint8_t>(id));
    }
  }
}

}  // namespace
}  // namespace horam
