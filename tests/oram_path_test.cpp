// Tests for the Path ORAM implementation: functional correctness
// against a shadow map, stash behaviour, obliviousness of the bus
// pattern, eviction and reset, bulk initialisation, and the memory/
// storage level split of the tree-top-cache baseline.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "analysis/pattern_audit.h"
#include "oram/path/path_oram.h"
#include "sim/profiles.h"
#include "util/rng.h"

namespace horam::oram {
namespace {

struct fixture {
  sim::block_device memory{sim::dram_ddr4()};
  sim::block_device disk{sim::hdd_paper()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{99};
  access_trace trace;

  path_oram_config config(std::uint64_t leaves,
                          std::uint32_t memory_levels =
                              std::numeric_limits<std::uint32_t>::max()) {
    path_oram_config c;
    c.leaf_count = leaves;
    c.bucket_size = 4;
    c.payload_bytes = 16;
    c.id_universe = 1024;
    c.memory_levels = memory_levels;
    c.seal = true;
    return c;
  }
};

std::vector<std::uint8_t> payload_of(std::uint8_t tag) {
  return std::vector<std::uint8_t>(16, tag);
}

TEST(PathOram, Geometry) {
  fixture fx;
  path_oram oram(fx.config(64), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  EXPECT_EQ(oram.level_count(), 7u);           // log2(64) + 1
  EXPECT_EQ(oram.bucket_count(), 127u);        // 2*64 - 1
  EXPECT_EQ(oram.capacity_blocks(), 508u);     // Z = 4
  EXPECT_EQ(oram.resident_blocks(), 0u);
}

TEST(PathOram, RejectsNonPowerOfTwoLeaves) {
  fixture fx;
  EXPECT_THROW(path_oram(fx.config(48), fx.memory, nullptr, fx.cpu,
                         fx.rng, nullptr),
               contract_error);
}

TEST(PathOram, WriteThenRead) {
  fixture fx;
  path_oram oram(fx.config(16), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  const auto data = payload_of(0x42);
  oram.access(op_kind::write, 7, data, {});
  std::vector<std::uint8_t> out(16);
  oram.access(op_kind::read, 7, {}, out);
  EXPECT_EQ(out, data);
}

TEST(PathOram, UnwrittenBlocksReadAsZeros) {
  fixture fx;
  path_oram oram(fx.config(16), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  std::vector<std::uint8_t> out(16, 0xff);
  oram.access(op_kind::read, 3, {}, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0));
  EXPECT_TRUE(oram.contains(3));  // materialised by the touch
}

TEST(PathOram, ShadowMapDifferentialTest) {
  // Random reads/writes against a std::map shadow; every read must
  // return the latest write.
  fixture fx;
  path_oram oram(fx.config(64), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(7);
  for (int step = 0; step < 3000; ++step) {
    const block_id id = util::uniform_below(driver, 200);
    if (util::bernoulli(driver, 0.4)) {
      auto data = payload_of(static_cast<std::uint8_t>(step));
      data[1] = static_cast<std::uint8_t>(id);
      oram.access(op_kind::write, id, data, {});
      shadow[id] = data;
    } else {
      std::vector<std::uint8_t> out(16);
      oram.access(op_kind::read, id, {}, out);
      const auto it = shadow.find(id);
      const std::vector<std::uint8_t> expected =
          it != shadow.end() ? it->second : std::vector<std::uint8_t>(16, 0);
      ASSERT_EQ(out, expected) << "step " << step << " id " << id;
    }
  }
}

TEST(PathOram, StashStaysBounded) {
  // Standard Path ORAM property: with Z = 4 the stash stays small.
  fixture fx;
  path_oram oram(fx.config(128), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  util::pcg64 driver(8);
  for (int step = 0; step < 5000; ++step) {
    oram.access(op_kind::write, util::uniform_below(driver, 256),
                payload_of(1), {});
  }
  EXPECT_LT(oram.stash_ref().peak_size(), 64u);
}

TEST(PathOram, RepeatedAccessNeverRepeatsLeaf) {
  // Remap-before-read: consecutive accesses to the same block follow
  // independently drawn paths.
  fixture fx;
  path_oram oram(fx.config(256), fx.memory, nullptr, fx.cpu, fx.rng,
                 &fx.trace);
  oram.access(op_kind::write, 1, payload_of(1), {});
  fx.trace.clear();
  std::vector<leaf_id> leaves;
  for (int i = 0; i < 200; ++i) {
    oram.access(op_kind::read, 1, {}, {});
  }
  for (const trace_event& event : fx.trace.events()) {
    if (event.kind == event_kind::memory_path_access) {
      leaves.push_back(event.a);
    }
  }
  ASSERT_EQ(leaves.size(), 200u);
  // With 256 leaves, 200 draws hitting a fixed leaf every time has
  // probability ~(1/256)^199; count distinct values instead.
  std::set<leaf_id> distinct(leaves.begin(), leaves.end());
  EXPECT_GT(distinct.size(), 100u);
}

TEST(PathOram, DummyAccessIndistinguishableShape) {
  // Dummy and real accesses emit the same event shape: one path access
  // plus level_count bucket reads and writes.
  fixture fx;
  path_oram oram(fx.config(16), fx.memory, nullptr, fx.cpu, fx.rng,
                 &fx.trace);
  oram.access(op_kind::write, 5, payload_of(5), {});
  const auto shape_of = [&](auto&& action) {
    fx.trace.clear();
    action();
    std::map<event_kind, int> shape;
    for (const trace_event& event : fx.trace.events()) {
      ++shape[event.kind];
    }
    return shape;
  };
  const auto real = shape_of([&] {
    oram.access(op_kind::read, 5, {}, {});
  });
  const auto dummy = shape_of([&] { oram.dummy_access(); });
  EXPECT_EQ(real, dummy);
}

TEST(PathOram, LeafDistributionUniform) {
  fixture fx;
  path_oram oram(fx.config(32), fx.memory, nullptr, fx.cpu, fx.rng,
                 &fx.trace);
  for (int i = 0; i < 4000; ++i) {
    oram.dummy_access();
  }
  std::vector<std::uint64_t> counts(32, 0);
  for (const trace_event& event : fx.trace.events()) {
    if (event.kind == event_kind::memory_path_access) {
      ++counts[event.a];
    }
  }
  const double chi2 = analysis::chi_square_uniform(counts);
  EXPECT_LT(chi2, analysis::chi_square_threshold(31));
}

TEST(PathOram, InstallThenAccess) {
  fixture fx;
  path_oram oram(fx.config(16), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  oram.install(9, payload_of(0x77));
  EXPECT_TRUE(oram.contains(9));
  EXPECT_EQ(oram.resident_blocks(), 1u);
  std::vector<std::uint8_t> out(16);
  oram.access(op_kind::read, 9, {}, out);
  EXPECT_EQ(out, payload_of(0x77));
  EXPECT_THROW(oram.install(9, payload_of(1)), contract_error);
}

TEST(PathOram, EvictAllReturnsEveryResidentBlock) {
  fixture fx;
  path_oram oram(fx.config(64), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  std::unordered_map<block_id, std::vector<std::uint8_t>> expected;
  util::pcg64 driver(9);
  for (int i = 0; i < 100; ++i) {
    const block_id id = util::uniform_below(driver, 500);
    auto data = payload_of(static_cast<std::uint8_t>(i));
    oram.access(op_kind::write, id, data, {});
    expected[id] = data;
  }
  // Park some blocks in the stash via install too.
  oram.install(900, payload_of(0xaa));
  expected[900] = payload_of(0xaa);

  std::vector<evicted_block> evicted;
  oram.evict_all(evicted);
  EXPECT_EQ(evicted.size(), expected.size());
  for (const evicted_block& block : evicted) {
    ASSERT_TRUE(expected.contains(block.id)) << "id " << block.id;
    EXPECT_EQ(block.payload, expected.at(block.id));
  }
  EXPECT_EQ(oram.resident_blocks(), 0u);
  EXPECT_EQ(oram.stash_ref().size(), 0u);
}

TEST(PathOram, EvictionOrderIsShuffled) {
  // Evicted blocks come out in random order, not insertion order.
  fixture fx;
  path_oram oram(fx.config(64), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  for (block_id id = 0; id < 64; ++id) {
    oram.install(id, payload_of(static_cast<std::uint8_t>(id)));
  }
  std::vector<evicted_block> evicted;
  oram.evict_all(evicted);
  ASSERT_EQ(evicted.size(), 64u);
  bool sorted = true;
  for (std::size_t i = 1; i < evicted.size(); ++i) {
    sorted = sorted && evicted[i - 1].id < evicted[i].id;
  }
  EXPECT_FALSE(sorted);  // probability 1/64! of a false failure
}

TEST(PathOram, ResetClearsState) {
  fixture fx;
  path_oram oram(fx.config(16), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  oram.access(op_kind::write, 2, payload_of(2), {});
  oram.reset();
  EXPECT_EQ(oram.resident_blocks(), 0u);
  EXPECT_FALSE(oram.contains(2));
  std::vector<std::uint8_t> out(16, 1);
  oram.access(op_kind::read, 2, {}, out);
  EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0));  // data gone
}

TEST(PathOram, InitializeFullPlacesEveryBlock) {
  fixture fx;
  path_oram oram(fx.config(64), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  oram.initialize_full(200, [](block_id id, std::span<std::uint8_t> out) {
    out[0] = static_cast<std::uint8_t>(id);
    out[1] = static_cast<std::uint8_t>(id >> 8);
  });
  EXPECT_EQ(oram.resident_blocks(), 200u);
  util::pcg64 driver(10);
  for (int i = 0; i < 100; ++i) {
    const block_id id = util::uniform_below(driver, 200);
    std::vector<std::uint8_t> out(16);
    oram.access(op_kind::read, id, {}, out);
    EXPECT_EQ(out[0], static_cast<std::uint8_t>(id));
    EXPECT_EQ(out[1], static_cast<std::uint8_t>(id >> 8));
  }
}

TEST(PathOram, TamperedTreeRecordDetected) {
  // Integrity: flipping a bit of any record makes the next decode of
  // that bucket throw.
  fixture fx;
  path_oram oram(fx.config(4), fx.memory, nullptr, fx.cpu, fx.rng,
                 nullptr);
  oram.access(op_kind::write, 1, payload_of(1), {});
  // No public mutation API (by design); validate via the codec directly.
  block_codec codec(16, true, 123);
  std::vector<std::uint8_t> record(codec.record_bytes());
  codec.encode(1, payload_of(1), record);
  record[10] ^= 1;
  std::vector<std::uint8_t> out(16);
  EXPECT_THROW(codec.decode(record, out), crypto::crypto_error);
}

// ------------------------------------------------- tree-top-cache split

TEST(PathOramSplit, LanesChargeTheRightDevices) {
  fixture fx;
  // 7 levels, top 3 in memory, bottom 4 on disk.
  path_oram oram(fx.config(64, /*memory_levels=*/3), fx.memory, &fx.disk,
                 fx.cpu, fx.rng, nullptr);
  fx.memory.reset_stats();
  fx.disk.reset_stats();
  const cost_split cost = oram.access(op_kind::write, 1, payload_of(1), {});
  EXPECT_GT(cost.memory, 0);
  EXPECT_GT(cost.io, 0);
  EXPECT_GT(cost.cpu, 0);
  // 3 memory buckets + 4 disk buckets, read and written once each.
  EXPECT_EQ(fx.memory.stats().read_ops, 3u);
  EXPECT_EQ(fx.memory.stats().write_ops, 3u);
  EXPECT_EQ(fx.disk.stats().read_ops, 4u);
  EXPECT_EQ(fx.disk.stats().write_ops, 4u);
}

TEST(PathOramSplit, IoDominatesWithHdd) {
  fixture fx;
  path_oram oram(fx.config(64, 3), fx.memory, &fx.disk, fx.cpu, fx.rng,
                 nullptr);
  const cost_split cost = oram.access(op_kind::write, 1, payload_of(1), {});
  EXPECT_GT(cost.io, 10 * cost.memory);
}

TEST(PathOramSplit, NeedsDiskWhenDeeperThanMemory) {
  fixture fx;
  EXPECT_THROW(path_oram(fx.config(64, 3), fx.memory, nullptr, fx.cpu,
                         fx.rng, nullptr),
               contract_error);
}

TEST(PathOramSplit, CorrectnessWithSplit) {
  fixture fx;
  path_oram oram(fx.config(32, 2), fx.memory, &fx.disk, fx.cpu, fx.rng,
                 nullptr);
  std::map<block_id, std::uint8_t> shadow;
  util::pcg64 driver(11);
  for (int step = 0; step < 1000; ++step) {
    const block_id id = util::uniform_below(driver, 100);
    if (util::bernoulli(driver, 0.5)) {
      const auto tag = static_cast<std::uint8_t>(step);
      oram.access(op_kind::write, id, payload_of(tag), {});
      shadow[id] = tag;
    } else if (shadow.contains(id)) {
      std::vector<std::uint8_t> out(16);
      oram.access(op_kind::read, id, {}, out);
      ASSERT_EQ(out[0], shadow[id]) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace horam::oram
