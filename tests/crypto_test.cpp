// Unit tests for src/crypto: ChaCha20 against RFC 8439 vectors, SipHash
// against the reference-implementation vectors, sealing round trips and
// tamper detection, CSPRNG behaviour.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>

#include "crypto/chacha20.h"
#include "crypto/seal.h"
#include "crypto/siphash.h"

namespace horam::crypto {
namespace {

chacha_key rfc_key() {
  chacha_key key;
  for (int i = 0; i < 32; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 section 2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:
  // 00:00:00:00, counter 1.
  const chacha_key key = rfc_key();
  const chacha_nonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                              0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::array<std::uint8_t, 64> block;
  chacha20_block(key, 1, nonce, block);

  constexpr std::uint8_t expected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  EXPECT_EQ(std::memcmp(block.data(), expected, 64), 0);
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  // RFC 8439 section 2.4.2.
  const chacha_key key = rfc_key();
  const chacha_nonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                              0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(plaintext.begin(), plaintext.end());
  chacha20_xor(key, nonce, 1, data);

  constexpr std::uint8_t expected_head[16] = {
      0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80,
      0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d, 0x69, 0x81};
  ASSERT_GE(data.size(), 16u);
  EXPECT_EQ(std::memcmp(data.data(), expected_head, 16), 0);

  constexpr std::uint8_t expected_tail[8] = {0x8e, 0xed, 0xf2, 0x78,
                                             0x5e, 0x42, 0x87, 0x4d};
  EXPECT_EQ(std::memcmp(data.data() + data.size() - 8, expected_tail, 8),
            0);
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  const chacha_key key = rfc_key();
  const chacha_nonce nonce{};
  std::vector<std::uint8_t> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const std::vector<std::uint8_t> original = data;
  chacha20_xor(key, nonce, 0, data);
  EXPECT_NE(data, original);
  chacha20_xor(key, nonce, 0, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, DifferentCountersProduceDifferentBlocks) {
  const chacha_key key = rfc_key();
  const chacha_nonce nonce{};
  std::array<std::uint8_t, 64> a, b;
  chacha20_block(key, 0, nonce, a);
  chacha20_block(key, 1, nonce, b);
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

// SipHash-2-4 reference vectors (Aumasson & Bernstein reference code):
// key = 000102...0f, message = first n bytes of 00 01 02 ...
TEST(SipHash, ReferenceVectors) {
  siphash_key key;
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> message;
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL, 0x74f839c593dc67fdULL, 0x0d6c8009d9a94f5aULL,
      0x85676696d7fb7e2dULL, 0xcf2794e0277187b7ULL, 0x18765564cd99a68dULL,
      0xcbc9466e58fee3ceULL, 0xab0200f58b01d137ULL, 0x93f5f5799a932462ULL};
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(siphash24(key, message), expected[n]) << "length " << n;
    message.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, U64ConvenienceMatchesByteForm) {
  siphash_key key{};
  key[0] = 0xaa;
  const std::uint64_t value = 0x0123456789abcdefULL;
  std::array<std::uint8_t, 8> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  EXPECT_EQ(siphash24_u64(key, value), siphash24(key, bytes));
}

TEST(SipHash, KeyMatters) {
  siphash_key a{}, b{};
  b[15] = 1;
  std::vector<std::uint8_t> message{1, 2, 3};
  EXPECT_NE(siphash24(a, message), siphash24(b, message));
}

// ----------------------------------------------------------------- seal

TEST(Seal, RoundTrip) {
  block_sealer sealer(derive_seal_keys(1));
  std::vector<std::uint8_t> plaintext(100);
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    plaintext[i] = static_cast<std::uint8_t>(i * 3);
  }
  const auto sealed = sealer.seal(plaintext);
  EXPECT_EQ(sealed.size(), plaintext.size() + seal_overhead);
  EXPECT_EQ(sealer.open(sealed), plaintext);
}

TEST(Seal, SameplaintextSealsDiffer) {
  // Fresh nonces make repeated seals of identical data unlinkable —
  // the property H-ORAM's re-encrypting write-backs rely on.
  block_sealer sealer(derive_seal_keys(2));
  const std::vector<std::uint8_t> plaintext(64, 0x5a);
  const auto first = sealer.seal(plaintext);
  const auto second = sealer.seal(plaintext);
  EXPECT_NE(first, second);
  EXPECT_EQ(sealer.open(first), plaintext);
  EXPECT_EQ(sealer.open(second), plaintext);
}

TEST(Seal, TamperedCiphertextRejected) {
  block_sealer sealer(derive_seal_keys(3));
  const std::vector<std::uint8_t> plaintext(32, 1);
  auto sealed = sealer.seal(plaintext);
  sealed[14] ^= 0x01;  // flip one ciphertext bit
  EXPECT_THROW(sealer.open(sealed), crypto_error);
}

TEST(Seal, TamperedMacRejected) {
  block_sealer sealer(derive_seal_keys(4));
  auto sealed = sealer.seal(std::vector<std::uint8_t>(32, 2));
  sealed.back() ^= 0x80;  // flip one MAC bit
  EXPECT_THROW(sealer.open(sealed), crypto_error);
}

TEST(Seal, TamperedNonceRejected) {
  block_sealer sealer(derive_seal_keys(5));
  auto sealed = sealer.seal(std::vector<std::uint8_t>(32, 3));
  sealed[0] ^= 0x01;  // nonce is MACed too
  EXPECT_THROW(sealer.open(sealed), crypto_error);
}

TEST(Seal, TruncatedBufferRejected) {
  block_sealer sealer(derive_seal_keys(6));
  EXPECT_THROW(sealer.open(std::vector<std::uint8_t>(seal_overhead - 1)),
               crypto_error);
}

TEST(Seal, WrongKeyRejected) {
  block_sealer alice(derive_seal_keys(7));
  block_sealer mallory(derive_seal_keys(8));
  const auto sealed = alice.seal(std::vector<std::uint8_t>(16, 9));
  EXPECT_THROW(mallory.open(sealed), crypto_error);
}

TEST(Seal, EmptyishAndLargePayloads) {
  block_sealer sealer(derive_seal_keys(9));
  for (const std::size_t size : {1u, 63u, 64u, 65u, 4096u}) {
    std::vector<std::uint8_t> plaintext(size, 0xcd);
    EXPECT_EQ(sealer.open(sealer.seal(plaintext)), plaintext)
        << "payload size " << size;
  }
}

// --------------------------------------------------------------- csprng

TEST(ChaChaRng, DeterministicPerSeed) {
  chacha_rng a(std::uint64_t{11}), b(std::uint64_t{11});
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(ChaChaRng, StreamsIndependent) {
  chacha_rng a(std::uint64_t{11}, 0), b(std::uint64_t{11}, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(ChaChaRng, BitsLookBalanced) {
  chacha_rng rng(std::uint64_t{12});
  std::uint64_t ones = 0;
  constexpr int words = 10000;
  for (int i = 0; i < words; ++i) {
    ones += static_cast<std::uint64_t>(__builtin_popcountll(rng.next_u64()));
  }
  const double fraction =
      static_cast<double>(ones) / (64.0 * static_cast<double>(words));
  EXPECT_NEAR(fraction, 0.5, 0.005);
}

TEST(DeriveSealKeys, DistinctSeedsDistinctKeys) {
  const seal_keys a = derive_seal_keys(100);
  const seal_keys b = derive_seal_keys(101);
  EXPECT_NE(a.encryption_key, b.encryption_key);
  EXPECT_NE(a.mac_key, b.mac_key);
}

}  // namespace
}  // namespace horam::crypto
