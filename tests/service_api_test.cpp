// Tests of the asynchronous multi-tenant service facade: tickets and
// sessions, fairness policies (round-robin, weighted-share, custom),
// access-control grants and admission-queue limits at the facade,
// run_until_idle() semantics, per-tenant statistics, warm-up exclusion
// via reset_stats(), builder diagnostics, and obliviousness of the bus
// trace under asynchronously interleaved multi-tenant workloads.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "analysis/pattern_audit.h"
#include "horam.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;

constexpr std::size_t kPayload = 16;

client_builder small_builder() {
  return client_builder()
      .blocks(256)
      .memory_blocks(32)
      .payload_bytes(kPayload)
      .seed(99);
}

std::vector<std::uint8_t> tagged(std::uint8_t tag) {
  return std::vector<std::uint8_t>(kPayload, tag);
}

// ----------------------------------------------------------- tickets

TEST(ServiceApi, WriteReadRoundTripViaTickets) {
  service svc = small_builder().build_service();
  session user = svc.open_session();

  ticket w = user.async_write(5, tagged(0xab));
  ticket r = user.async_read(5);
  EXPECT_FALSE(w.ready());
  EXPECT_EQ(svc.pending(), 2u);

  svc.run_until_idle();
  ASSERT_TRUE(w.ready());
  ASSERT_TRUE(r.ready());
  EXPECT_TRUE(w.result().payload.empty());  // writes carry no payload
  EXPECT_EQ(r.result().payload, tagged(0xab));
  EXPECT_GT(r.result().latency, 0);
  EXPECT_LE(r.result().sim_time, svc.now());
  EXPECT_EQ(r.tenant(), user.tenant());
  EXPECT_NE(w.id(), r.id());
}

TEST(ServiceApi, TicketResultPumpsTheService) {
  service svc = small_builder().build_service();
  session user = svc.open_session();
  ticket w = user.async_write(9, tagged(0x42));
  ticket r = user.async_read(9);
  // No explicit step()/run_until_idle(): result() is a blocking get
  // that pumps the scheduler itself.
  EXPECT_EQ(r.result().payload, tagged(0x42));
  EXPECT_TRUE(w.ready());
  EXPECT_TRUE(svc.idle());
}

TEST(ServiceApi, TicketsReportLatencyAndCompletionTime) {
  service svc = small_builder().build_service();
  session user = svc.open_session();
  // All submitted at virtual time 0, so latency == completion sim_time.
  std::vector<ticket> tickets;
  for (block_id id = 0; id < 20; ++id) {
    tickets.push_back(user.async_read(id));
  }
  svc.run_until_idle();
  sim::sim_time previous = 0;
  for (ticket& t : tickets) {
    const ticket_result& r = t.result();
    EXPECT_EQ(r.latency, r.sim_time);
    EXPECT_GE(r.sim_time, previous);  // FIFO within one tenant
    EXPECT_LE(r.sim_time, svc.now());
    previous = r.sim_time;
  }
}

TEST(ServiceApi, EmptyTicketsAreInvalid) {
  ticket empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
  EXPECT_THROW((void)empty.result(), contract_error);
  EXPECT_THROW((void)empty.id(), contract_error);
}

TEST(ServiceApi, ShadowMapThroughService) {
  service svc = small_builder().build_service();
  session user = svc.open_session();
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(7);
  for (int step = 0; step < 400; ++step) {
    const block_id id = util::uniform_below(driver, 256);
    if (util::bernoulli(driver, 0.4)) {
      const auto data = tagged(static_cast<std::uint8_t>(step));
      (void)user.async_write(id, data).result();
      shadow[id] = data;
    } else {
      ticket t = user.async_read(id);
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      ASSERT_EQ(t.result().payload, expected) << "step " << step;
    }
  }
  EXPECT_GT(svc.stats().periods, 3u);  // crossed shuffle periods
}

// ------------------------------------------------- scheduling / pump

TEST(ServiceApi, StepReturnsFalseWhenIdle) {
  service svc = small_builder().build_service();
  session user = svc.open_session();
  EXPECT_FALSE(svc.step());
  (void)user.async_read(3);
  EXPECT_TRUE(svc.step());
  EXPECT_FALSE(svc.step());
  EXPECT_TRUE(svc.idle());
}

TEST(ServiceApi, RunUntilIdleDrainsEveryTenant) {
  service svc = small_builder().build_service();
  std::vector<session> users;
  std::vector<ticket> tickets;
  util::pcg64 gen(11);
  for (int u = 0; u < 3; ++u) {
    users.push_back(svc.open_session());
  }
  for (session& user : users) {
    for (int i = 0; i < 50; ++i) {
      tickets.push_back(
          user.async_read(util::uniform_below(gen, 256)));
    }
  }
  svc.run_until_idle();
  EXPECT_EQ(svc.pending(), 0u);
  EXPECT_TRUE(svc.idle());
  for (ticket& t : tickets) {
    EXPECT_TRUE(t.ready());
  }
  for (const session& user : users) {
    EXPECT_EQ(user.stats().completed, 50u);
    EXPECT_EQ(user.pending(), 0u);
  }
}

TEST(ServiceApi, SessionsGetDistinctTenantsAndQueues) {
  service svc = small_builder().build_service();
  session alice = svc.open_session();
  session bob = svc.open_session();
  EXPECT_NE(alice.tenant(), bob.tenant());
  EXPECT_EQ(svc.tenant_count(), 2u);
  (void)alice.async_read(1);
  (void)alice.async_read(2);
  (void)bob.async_read(3);
  EXPECT_EQ(alice.pending(), 2u);
  EXPECT_EQ(bob.pending(), 1u);
  EXPECT_EQ(svc.pending(), 3u);
  svc.run_until_idle();
}

// ----------------------------------------------------------- fairness

TEST(ServiceApi, RoundRobinKeepsLatenciesBalanced) {
  service svc = small_builder()
                    .fairness(fairness_kind::round_robin)
                    .build_service();
  EXPECT_EQ(svc.policy_name(), "round-robin");
  std::vector<session> users;
  util::pcg64 gen(13);
  for (int u = 0; u < 4; ++u) {
    users.push_back(svc.open_session());
  }
  for (session& user : users) {
    for (int i = 0; i < 100; ++i) {
      (void)user.async_read(util::uniform_below(gen, 256));
    }
  }
  svc.run_until_idle();
  sim::sim_time lo = users[0].stats().mean_latency();
  sim::sim_time hi = lo;
  for (const session& user : users) {
    const tenant_stats ts = user.stats();
    EXPECT_EQ(ts.completed, 100u);
    lo = std::min(lo, ts.mean_latency());
    hi = std::max(hi, ts.mean_latency());
  }
  EXPECT_GT(lo, 0);
  EXPECT_LT(hi, 3 * lo);  // round-robin fairness
}

TEST(ServiceApi, WeightedShareMatchesWeightsWithinTolerance) {
  service svc = small_builder()
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  EXPECT_EQ(svc.policy_name(), "weighted-share");
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  std::vector<session> users;
  util::pcg64 gen(17);
  for (const double w : weights) {
    users.push_back(svc.open_session(w));
  }
  // Deep backlogs so no queue empties while we measure.
  for (session& user : users) {
    for (int i = 0; i < 1000; ++i) {
      (void)user.async_read(util::uniform_below(gen, 256));
    }
  }
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(svc.step());
  }
  std::uint64_t total = 0;
  for (const session& user : users) {
    ASSERT_GT(user.stats().completed, 0u);  // no tenant starves
    ASSERT_GT(user.pending(), 0u);          // backlog never emptied
    total += user.stats().completed;
  }
  const double weight_sum = 7.0;
  for (std::size_t u = 0; u < users.size(); ++u) {
    const double observed =
        static_cast<double>(users[u].stats().completed) /
        static_cast<double>(total);
    const double expected = weights[u] / weight_sum;
    EXPECT_NEAR(observed, expected, 0.20 * expected)
        << "tenant " << u << " share off its weight";
  }
  svc.run_until_idle();
}

TEST(ServiceApi, WeightedShareNeverStarvesLightTenants) {
  service svc = small_builder()
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  session light = svc.open_session(1.0);
  session heavy = svc.open_session(16.0);
  util::pcg64 gen(19);
  for (int i = 0; i < 500; ++i) {
    (void)light.async_read(util::uniform_below(gen, 256));
    (void)heavy.async_read(util::uniform_below(gen, 256));
  }
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(svc.step());
  }
  EXPECT_GT(light.stats().completed, 0u);
  EXPECT_GT(heavy.stats().completed, light.stats().completed);
  svc.run_until_idle();
}

TEST(ServiceApi, WeightedShareLateJoinerDoesNotMonopolize) {
  service svc = small_builder()
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  session early = svc.open_session(1.0);
  util::pcg64 gen(29);
  // The early tenant banks a long service history alone...
  for (int i = 0; i < 300; ++i) {
    (void)early.async_read(util::uniform_below(gen, 256));
  }
  svc.run_until_idle();
  svc.reset_stats();

  // ...then an equal-weight tenant joins with a deep backlog. The WFQ
  // start-tag clamp means the joiner must share from the first round
  // instead of monopolizing until its lifetime count catches up.
  session late = svc.open_session(1.0);
  for (int i = 0; i < 500; ++i) {
    (void)early.async_read(util::uniform_below(gen, 256));
    (void)late.async_read(util::uniform_below(gen, 256));
  }
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(svc.step());
  }
  const std::uint64_t early_done = early.stats().completed;
  const std::uint64_t late_done = late.stats().completed;
  ASSERT_GT(early_done, 0u) << "early tenant starved by the late joiner";
  ASSERT_GT(late_done, 0u);
  const double early_share =
      static_cast<double>(early_done) /
      static_cast<double>(early_done + late_done);
  EXPECT_NEAR(early_share, 0.5, 0.15);
  svc.run_until_idle();
}

TEST(ServiceApi, WeightedShareVeteranNotStarvedAfterGlobalIdle) {
  service svc = small_builder()
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  session veteran = svc.open_session(1.0);
  util::pcg64 gen(47);
  // The veteran banks a long service history, then the system drains
  // to a fully idle state.
  for (int i = 0; i < 400; ++i) {
    (void)veteran.async_read(util::uniform_below(gen, 256));
  }
  svc.run_until_idle();
  svc.reset_stats();

  // A brand-new tenant enqueues FIRST after the idle moment (so no
  // other lane is backlogged at its admission), then the veteran
  // returns. The virtual clock persists across the idle period, so the
  // newcomer cannot ride its zero lifetime count to a monopoly.
  session newcomer = svc.open_session(1.0);
  for (int i = 0; i < 500; ++i) {
    (void)newcomer.async_read(util::uniform_below(gen, 256));
  }
  for (int i = 0; i < 500; ++i) {
    (void)veteran.async_read(util::uniform_below(gen, 256));
  }
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(svc.step());
  }
  const std::uint64_t veteran_done = veteran.stats().completed;
  const std::uint64_t newcomer_done = newcomer.stats().completed;
  ASSERT_GT(veteran_done, 0u) << "veteran starved after global idle";
  ASSERT_GT(newcomer_done, 0u);
  const double veteran_share =
      static_cast<double>(veteran_done) /
      static_cast<double>(veteran_done + newcomer_done);
  EXPECT_NEAR(veteran_share, 0.5, 0.15);
  svc.run_until_idle();
}

TEST(ServiceApi, FairnessPoliciesSelectableByName) {
  EXPECT_EQ(fairness_by_name("round-robin"), fairness_kind::round_robin);
  EXPECT_EQ(fairness_by_name("weighted-share"),
            fairness_kind::weighted_share);
  EXPECT_EQ(fairness_name(fairness_kind::round_robin), "round-robin");
  EXPECT_EQ(fairness_name(fairness_kind::weighted_share),
            "weighted-share");
  EXPECT_THROW((void)fairness_by_name("fifo"), contract_error);

  // The built policy reports the same name the builder was given.
  for (const std::string_view name : {"round-robin", "weighted-share"}) {
    service svc = small_builder().fairness(name).build_service();
    EXPECT_EQ(svc.policy_name(), name);
  }
}

TEST(ServiceApi, UnfinishedTicketOutlivingServiceThrows) {
  ticket orphan;
  {
    service svc = small_builder().build_service();
    session user = svc.open_session();
    ticket done = user.async_read(1);
    orphan = user.async_read(2);
    (void)svc.step();  // completes both in one round
    EXPECT_EQ(done.result().latency, done.result().sim_time);
    // Re-admit one and drop every service/session handle before it
    // runs: tickets hold the machine weakly, so it is torn down.
    orphan = user.async_read(3);
  }
  EXPECT_FALSE(orphan.ready());
  EXPECT_THROW((void)orphan.result(), contract_error);
}

TEST(ServiceApi, CustomFairnessPolicyIsPluggable) {
  // Longest-queue-first: a policy the library does not ship, injected
  // through the builder's factory hook.
  class longest_queue_policy final : public fairness_policy {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "longest-queue";
    }
    [[nodiscard]] std::size_t pick(
        std::span<const tenant_lane> lanes) override {
      std::size_t best = 0;
      for (std::size_t i = 1; i < lanes.size(); ++i) {
        if (lanes[i].queued > lanes[best].queued) {
          best = i;
        }
      }
      return best;
    }
  };
  service svc = small_builder()
                    .fairness([] {
                      return std::unique_ptr<fairness_policy>(
                          new longest_queue_policy);
                    })
                    .build_service();
  EXPECT_EQ(svc.policy_name(), "longest-queue");
  session a = svc.open_session();
  session b = svc.open_session();
  for (int i = 0; i < 10; ++i) {
    (void)a.async_read(i);
  }
  (void)b.async_read(200);
  svc.run_until_idle();
  EXPECT_EQ(a.stats().completed, 10u);
  EXPECT_EQ(b.stats().completed, 1u);
}

// ------------------------------------------- grants & admission queue

TEST(ServiceApi, GrantsRejectAtAdmissionWithoutTrace) {
  service svc = small_builder().trace(true).build_service();
  session alice = svc.open_session();
  session bob = svc.open_session();
  svc.grant(alice.tenant(), user_grant{0, 128});
  svc.grant(bob.tenant(), user_grant{128, 256});

  (void)alice.async_read(5);
  (void)bob.async_read(200);
  svc.run_until_idle();

  const std::size_t events_before = svc.underlying().trace()->size();
  const std::uint64_t cycles_before = svc.stats().cycles;
  EXPECT_THROW((void)bob.async_read(5), access_denied);
  EXPECT_THROW((void)alice.async_write(128, tagged(1)), access_denied);
  // The denial happened at admission: nothing was queued, nothing ran,
  // nothing appeared on the bus.
  EXPECT_EQ(svc.pending(), 0u);
  EXPECT_EQ(svc.underlying().trace()->size(), events_before);
  EXPECT_EQ(svc.stats().cycles, cycles_before);

  // Within-grant traffic still flows.
  EXPECT_EQ(alice.async_read(127).result().payload,
            std::vector<std::uint8_t>(kPayload, 0));
}

TEST(ServiceApi, UngrantedTenantsAreUnrestricted) {
  service svc = small_builder().build_service();
  session restricted = svc.open_session();
  session open = svc.open_session();
  svc.grant(restricted.tenant(), user_grant{0, 10});
  EXPECT_THROW((void)restricted.async_read(250), access_denied);
  EXPECT_NO_THROW((void)open.async_read(250));
  svc.run_until_idle();
}

TEST(ServiceApi, QueueDepthLimitRejectsOverflow) {
  service svc = small_builder().max_queue_depth(4).build_service();
  session user = svc.open_session();
  for (block_id id = 0; id < 4; ++id) {
    (void)user.async_read(id);
  }
  try {
    (void)user.async_read(4);
    FAIL() << "expected queue_overflow";
  } catch (const queue_overflow& e) {
    EXPECT_EQ(e.tenant, user.tenant());
    EXPECT_EQ(e.depth, 4u);
  }
  EXPECT_EQ(user.pending(), 4u);
  // Draining frees capacity; admission works again.
  svc.run_until_idle();
  EXPECT_NO_THROW((void)user.async_read(4));
  svc.run_until_idle();

  // The limit is per tenant: a second tenant admits independently.
  session other = svc.open_session();
  for (block_id id = 0; id < 4; ++id) {
    (void)other.async_read(id);
  }
  EXPECT_THROW((void)other.async_read(9), queue_overflow);
  svc.run_until_idle();
}

TEST(ServiceApi, OutOfRangeIdsAreRejectedAtAdmission) {
  service svc = small_builder().build_service();
  session user = svc.open_session();
  EXPECT_THROW((void)user.async_read(256), contract_error);
  EXPECT_EQ(svc.pending(), 0u);
}

// -------------------------------------------------------------- stats

TEST(ServiceApi, TenantStatsSumToControllerAggregate) {
  service svc = small_builder().build_service();
  std::vector<session> users;
  util::pcg64 gen(23);
  const std::vector<int> counts = {40, 80, 120};
  for (const int count : counts) {
    session user = svc.open_session();
    for (int i = 0; i < count; ++i) {
      (void)user.async_read(util::uniform_below(gen, 256));
    }
    users.push_back(user);
  }
  svc.run_until_idle();

  std::uint64_t completed = 0;
  std::uint64_t submitted = 0;
  for (std::uint32_t t = 0; t < svc.tenant_count(); ++t) {
    const tenant_stats ts = svc.tenant_stats(t);
    completed += ts.completed;
    submitted += ts.submitted;
    EXPECT_LE(ts.mean_latency(), ts.max_latency);
    EXPECT_LE(ts.max_latency, svc.now());
    EXPECT_GT(ts.throughput, 0.0);
  }
  EXPECT_EQ(completed, svc.stats().requests);
  EXPECT_EQ(submitted, svc.stats().requests);
}

TEST(ServiceApi, ResetStatsExcludesWarmup) {
  service svc = small_builder().build_service();
  session user = svc.open_session();
  for (block_id id = 0; id < 60; ++id) {
    (void)user.async_read(id);
  }
  svc.run_until_idle();
  EXPECT_EQ(svc.stats().requests, 60u);
  const sim::sim_time warmup_end = svc.now();

  svc.reset_stats();
  EXPECT_EQ(svc.stats().requests, 0u);
  EXPECT_EQ(user.stats().completed, 0u);

  for (block_id id = 0; id < 25; ++id) {
    (void)user.async_read(id);
  }
  svc.run_until_idle();
  EXPECT_EQ(svc.stats().requests, 25u);
  EXPECT_EQ(user.stats().completed, 25u);
  // total_time restarted at the reset, not at machine boot.
  EXPECT_EQ(svc.stats().total_time, svc.now() - warmup_end);
}

// -------------------------------------------------- builder contracts

TEST(ServiceApi, BuilderNamesMissingBlocks) {
  try {
    (void)client_builder().payload_bytes(16).memory_blocks(32).build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("blocks() not set"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServiceApi, BuilderNamesMissingPayloadBytes) {
  try {
    (void)client_builder().blocks(256).memory_blocks(32).build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("payload_bytes() not set"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServiceApi, BuilderNamesMissingMemorySetting) {
  try {
    (void)client_builder().blocks(256).payload_bytes(16).build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(
        std::string(e.what()).find("memory_blocks() or cache_ratio()"),
        std::string::npos)
        << e.what();
  }
}

TEST(ServiceApi, BuilderNamesUndersizedMemory) {
  try {
    (void)client_builder()
        .blocks(256)
        .payload_bytes(16)
        .memory_blocks(4)  // < one bucket pair (2 * Z = 8)
        .build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("bucket"), std::string::npos)
        << e.what();
  }
}

TEST(ServiceApi, BuilderNamesOversizedMemory) {
  try {
    (void)client_builder()
        .blocks(64)
        .payload_bytes(16)
        .memory_blocks(256)
        .build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("memory_blocks()"),
              std::string::npos)
        << e.what();
  }
}

// ----------------------------------------------------- obliviousness

/// Drives `svc` with one multi-tenant workload shape and returns the
/// observable bus trace. Requests are admitted in bursts interleaved
/// with scheduler pumping, so the trace reflects genuine asynchronous
/// cross-tenant operation rather than one pre-built batch.
const oram::access_trace& run_traced_workload(service& svc, bool split,
                                              std::uint64_t seed) {
  session a = svc.open_session();
  session b = svc.open_session();
  util::pcg64 gen(seed);
  const std::uint64_t n = svc.config().block_count;
  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 50; ++i) {
      if (split) {
        // Disjoint hot halves per tenant.
        (void)a.async_read(util::uniform_below(gen, n / 2));
        (void)b.async_read(n / 2 + util::uniform_below(gen, n / 2));
      } else {
        // Both tenants uniform over the full range, write-heavy.
        (void)a.async_write(util::uniform_below(gen, n),
                            std::vector<std::uint8_t>(kPayload, 0x77));
        (void)b.async_read(util::uniform_below(gen, n));
      }
    }
    (void)svc.step();
    (void)svc.step();
  }
  svc.run_until_idle();
  return *svc.underlying().trace();
}

analysis::audit_report audit_service_trace(service& svc,
                                           const oram::access_trace& t) {
  analysis::audit_config audit;
  const storage::partition_geometry& geometry =
      svc.underlying().ctrl().storage().geometry();
  audit.partition_count = geometry.partition_count;
  audit.slots_per_partition = geometry.slots_per_partition();
  audit.main_capacity = geometry.main_capacity;
  audit.leaf_count =
      svc.underlying().ctrl().memory_tree().config().leaf_count;
  audit.expect_single_read_per_cycle = true;
  return analysis::audit_trace(t, audit);
}

std::vector<std::uint64_t> group_size_sequence(
    const oram::access_trace& t) {
  std::vector<std::uint64_t> cs;
  for (const oram::trace_event& event : t.events()) {
    if (event.kind == oram::event_kind::cycle_begin) {
      cs.push_back(event.b);
    }
  }
  return cs;
}

// ------------------------------------------------- sharded service

client_builder sharded_builder(std::uint32_t shards) {
  return client_builder()
      .blocks(512)
      .memory_blocks(128)
      .payload_bytes(kPayload)
      .shards(shards)
      .seed(101);
}

TEST(ServiceApi, ShardedServiceRoundTripsTickets) {
  // The whole ticket/session contract must survive the engine fanning
  // requests across 4 shards: payload correctness against a shadow map,
  // monotone global completion times, latency = completion - admission.
  service svc = sharded_builder(4).build_service();
  session user = svc.open_session();
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(31);
  for (int step = 0; step < 250; ++step) {
    const block_id id = util::uniform_below(driver, 512);
    if (util::bernoulli(driver, 0.4)) {
      const auto data = tagged(static_cast<std::uint8_t>(step));
      (void)user.async_write(id, data).result();
      shadow[id] = data;
    } else {
      ticket t = user.async_read(id);
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      ASSERT_EQ(t.result().payload, expected) << "step " << step;
      EXPECT_LE(t.result().sim_time, svc.now());
      EXPECT_GT(t.result().latency, 0);
    }
  }
  EXPECT_TRUE(svc.idle());
  EXPECT_EQ(svc.stats().requests, 250u);
}

TEST(ServiceApi, ShardedServiceDrainsBackloggedTenants) {
  service svc = sharded_builder(4).build_service();
  std::vector<session> users;
  std::vector<ticket> tickets;
  util::pcg64 gen(37);
  for (int u = 0; u < 3; ++u) {
    users.push_back(svc.open_session());
  }
  for (session& user : users) {
    for (int i = 0; i < 80; ++i) {
      tickets.push_back(user.async_read(util::uniform_below(gen, 512)));
    }
  }
  EXPECT_EQ(svc.pending(), 240u);
  svc.run_until_idle();
  EXPECT_TRUE(svc.idle());
  EXPECT_EQ(svc.pending(), 0u);
  for (ticket& t : tickets) {
    EXPECT_TRUE(t.ready());
  }
  std::uint64_t completed = 0;
  for (const session& user : users) {
    EXPECT_EQ(user.stats().completed, 80u);
    completed += user.stats().completed;
  }
  EXPECT_EQ(completed, svc.stats().requests);
}

TEST(ServiceApi, ShardedBacklogOnOneHotShardStaysBounded) {
  // Every request hits one block, so all traffic PRF-routes to a single
  // shard that drains only round_cap() per round. The scheduler must
  // count the engine's backlog against its pop budget, or the in-engine
  // queue (which no admission limit guards) would grow without bound.
  service svc = sharded_builder(4).build_service();
  session user = svc.open_session();
  for (int i = 0; i < 3000; ++i) {
    (void)user.async_read(7);
  }
  const engine& eng = svc.underlying().eng();
  for (int round = 0; round < 25; ++round) {
    ASSERT_TRUE(svc.step());
    EXPECT_LE(eng.pending(), eng.round_budget()) << "round " << round;
  }
  svc.run_until_idle();
  EXPECT_EQ(user.stats().completed, 3000u);
}

// -------------------------------- fairness edge cases under the engine

TEST(ServiceApi, WeightZeroTenantIsRejected) {
  service svc = sharded_builder(4)
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  EXPECT_THROW((void)svc.open_session(0.0), contract_error);
  EXPECT_THROW((void)svc.open_session(-1.0), contract_error);
  // The rejected registrations left no tenant behind.
  EXPECT_EQ(svc.tenant_count(), 0u);
  session ok = svc.open_session(1.0);
  (void)ok.async_read(1);
  svc.run_until_idle();
  EXPECT_EQ(ok.stats().completed, 1u);
}

TEST(ServiceApi, WeightedShareJoinerMidRoundUnderShards) {
  // A tenant joins *mid-round* — between two step() calls, while the
  // veteran's requests are still fanning out across 4 shards. The WFQ
  // start-tag clamp must hold under the engine exactly as it does over
  // one controller: neither side monopolizes from the join onward.
  service svc = sharded_builder(4)
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  session veteran = svc.open_session(1.0);
  util::pcg64 gen(41);
  for (int i = 0; i < 2000; ++i) {
    (void)veteran.async_read(util::uniform_below(gen, 512));
  }
  // Partial service: requests are in flight inside the engine when the
  // joiner arrives.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(svc.step());
  }
  const std::uint64_t veteran_head_start = veteran.stats().completed;

  session joiner = svc.open_session(1.0);
  for (int i = 0; i < 2000; ++i) {
    (void)joiner.async_read(util::uniform_below(gen, 512));
  }
  for (int round = 0; round < 12; ++round) {
    ASSERT_TRUE(svc.step());
  }
  const std::uint64_t veteran_done =
      veteran.stats().completed - veteran_head_start;
  const std::uint64_t joiner_done = joiner.stats().completed;
  ASSERT_GT(veteran_done, 0u) << "veteran starved by the mid-round joiner";
  ASSERT_GT(joiner_done, 0u) << "joiner starved by the veteran";
  const double joiner_share =
      static_cast<double>(joiner_done) /
      static_cast<double>(veteran_done + joiner_done);
  EXPECT_NEAR(joiner_share, 0.5, 0.15);
  svc.run_until_idle();
}

TEST(ServiceApi, WeightedShareTracksWeightsAcrossShards) {
  // The §5.3.2 proportional-share property must survive the fan-out:
  // completions (delivered by the engine's completion-ordering layer)
  // still converge to the weight ratios.
  service svc = sharded_builder(4)
                    .fairness(fairness_kind::weighted_share)
                    .build_service();
  const std::vector<double> weights = {1.0, 3.0};
  std::vector<session> users;
  util::pcg64 gen(43);
  for (const double w : weights) {
    users.push_back(svc.open_session(w));
  }
  for (session& user : users) {
    for (int i = 0; i < 1500; ++i) {
      (void)user.async_read(util::uniform_below(gen, 512));
    }
  }
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(svc.step());
  }
  std::uint64_t total = 0;
  for (const session& user : users) {
    ASSERT_GT(user.stats().completed, 0u);
    ASSERT_GT(user.pending(), 0u);  // backlog never emptied
    total += user.stats().completed;
  }
  const double heavy_share =
      static_cast<double>(users[1].stats().completed) /
      static_cast<double>(total);
  EXPECT_NEAR(heavy_share, 0.75, 0.12);
  svc.run_until_idle();
}

TEST(ServiceApi, AsyncInterleavingTraceIsWorkloadIndependent) {
  // Two services, identical machines; two very different multi-tenant
  // workloads with the same per-tenant request counts. The adversary's
  // view must not distinguish them: both traces pass the obliviousness
  // audit, and the observable cycle structure (the group-size schedule,
  // the one-load-plus-c-paths shape) is identical as a distribution.
  service svc_a = small_builder().trace(true).build_service();
  service svc_b = small_builder().trace(true).build_service();
  const oram::access_trace& trace_a =
      run_traced_workload(svc_a, /*split=*/true, 41);
  const oram::access_trace& trace_b =
      run_traced_workload(svc_b, /*split=*/false, 43);

  const analysis::audit_report report_a =
      audit_service_trace(svc_a, trace_a);
  const analysis::audit_report report_b =
      audit_service_trace(svc_b, trace_b);
  for (const std::string& violation : report_a.violations) {
    ADD_FAILURE() << "workload A: " << violation;
  }
  for (const std::string& violation : report_b.violations) {
    ADD_FAILURE() << "workload B: " << violation;
  }
  EXPECT_TRUE(report_a.leaf_uniformity_ok);
  EXPECT_TRUE(report_b.leaf_uniformity_ok);

  // The per-cycle group-size schedule is a deterministic function of
  // the stage configuration, not of the workload: the two traces agree
  // cycle for cycle over their common prefix.
  const std::vector<std::uint64_t> cs_a = group_size_sequence(trace_a);
  const std::vector<std::uint64_t> cs_b = group_size_sequence(trace_b);
  const std::size_t common = std::min(cs_a.size(), cs_b.size());
  ASSERT_GT(common, 100u);
  for (std::size_t i = 0; i < common; ++i) {
    ASSERT_EQ(cs_a[i], cs_b[i]) << "cycle " << i;
  }

  // Event-mix distributions match: both runs service the same request
  // count, and the per-cycle averages of every observable event kind
  // agree within a few percent (the tail-cycle remainder).
  EXPECT_EQ(report_a.cycles, report_a.storage_reads);
  EXPECT_EQ(report_b.cycles, report_b.storage_reads);
  const double paths_per_cycle_a =
      static_cast<double>(report_a.path_accesses) /
      static_cast<double>(report_a.cycles);
  const double paths_per_cycle_b =
      static_cast<double>(report_b.path_accesses) /
      static_cast<double>(report_b.cycles);
  EXPECT_NEAR(paths_per_cycle_a, paths_per_cycle_b,
              0.05 * paths_per_cycle_a);
}

}  // namespace
}  // namespace horam
