// Unit tests for src/util: math helpers, RNG, Fenwick tree, table
// rendering, contracts.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "util/contracts.h"
#include "util/fenwick.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace horam::util {
namespace {

// ---------------------------------------------------------------- math

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_THROW(floor_log2(0), contract_error);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_THROW(ceil_div(5, 0), contract_error);
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(16), 4u);
  EXPECT_EQ(isqrt(1ULL << 40), 1ULL << 20);
}

TEST(Math, IsqrtExhaustiveSmall) {
  for (std::uint64_t v = 0; v < 10000; ++v) {
    const std::uint64_t r = isqrt(v);
    EXPECT_LE(r * r, v);
    EXPECT_GT((r + 1) * (r + 1), v);
  }
}

TEST(Math, IsqrtCeil) {
  EXPECT_EQ(isqrt_ceil(16), 4u);
  EXPECT_EQ(isqrt_ceil(17), 5u);
  EXPECT_EQ(isqrt_ceil(65536), 256u);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  pcg64 a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DistinctSeedsDiffer) {
  pcg64 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DistinctStreamsDiffer) {
  pcg64 a(7, 1), b(7, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformBelowRespectsBound) {
  pcg64 rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(uniform_below(rng, bound), bound);
    }
  }
  EXPECT_THROW(uniform_below(rng, 0), contract_error);
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  pcg64 rng(2);
  constexpr std::uint64_t bound = 10;
  constexpr int draws = 100000;
  std::vector<int> histogram(bound, 0);
  for (int i = 0; i < draws; ++i) {
    ++histogram[uniform_below(rng, bound)];
  }
  // Each bin expects 10,000 +- ~300 (3 sigma ~ 285).
  for (const int count : histogram) {
    EXPECT_NEAR(count, draws / static_cast<int>(bound), 600);
  }
}

TEST(Rng, UniformInClosedRange) {
  pcg64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = uniform_in(rng, 5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  pcg64 rng(4);
  int successes = 0;
  constexpr int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    successes += bernoulli(rng, 0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(successes) / trials, 0.3, 0.01);
}

TEST(Rng, RandomPermutationIsPermutation) {
  pcg64 rng(5);
  const auto perm = random_permutation(rng, 100);
  std::set<std::uint64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationUniformityChiSquare) {
  // All 24 permutations of 4 elements should be equally likely.
  pcg64 rng(6);
  std::map<std::vector<std::uint64_t>, int> counts;
  constexpr int trials = 24000;
  for (int t = 0; t < trials; ++t) {
    counts[random_permutation(rng, 4)]++;
  }
  EXPECT_EQ(counts.size(), 24u);
  double chi2 = 0.0;
  const double expected = trials / 24.0;
  for (const auto& [perm, count] : counts) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  // dof = 23; mean 23, sigma ~6.8; 64 is far beyond 5 sigma.
  EXPECT_LT(chi2, 64.0);
}

// ------------------------------------------------------------- fenwick

TEST(Fenwick, PrefixSums) {
  fenwick_tree tree(8);
  for (std::size_t i = 0; i < 8; ++i) {
    tree.add(i, static_cast<std::int64_t>(i + 1));  // 1..8
  }
  EXPECT_EQ(tree.prefix_sum(0), 0);
  EXPECT_EQ(tree.prefix_sum(1), 1);
  EXPECT_EQ(tree.prefix_sum(4), 10);
  EXPECT_EQ(tree.prefix_sum(8), 36);
  EXPECT_EQ(tree.total(), 36);
}

TEST(Fenwick, UpdatesPropagate) {
  fenwick_tree tree(5);
  tree.add(2, 10);
  tree.add(2, -4);
  EXPECT_EQ(tree.total(), 6);
  EXPECT_EQ(tree.prefix_sum(2), 0);
  EXPECT_EQ(tree.prefix_sum(3), 6);
}

TEST(Fenwick, FindByOffset) {
  fenwick_tree tree(4);
  tree.add(0, 2);  // offsets 0,1
  tree.add(1, 0);  // empty
  tree.add(2, 3);  // offsets 2,3,4
  tree.add(3, 1);  // offset 5
  EXPECT_EQ(tree.find_by_offset(0), 0u);
  EXPECT_EQ(tree.find_by_offset(1), 0u);
  EXPECT_EQ(tree.find_by_offset(2), 2u);
  EXPECT_EQ(tree.find_by_offset(4), 2u);
  EXPECT_EQ(tree.find_by_offset(5), 3u);
  EXPECT_THROW(static_cast<void>(tree.find_by_offset(6)), contract_error);
  EXPECT_THROW(static_cast<void>(tree.find_by_offset(-1)), contract_error);
}

TEST(Fenwick, FindByOffsetMatchesLinearScan) {
  pcg64 rng(7);
  fenwick_tree tree(37);  // non-power-of-two size
  std::vector<std::int64_t> weights(37, 0);
  for (std::size_t i = 0; i < 37; ++i) {
    const auto w = static_cast<std::int64_t>(uniform_below(rng, 5));
    weights[i] = w;
    tree.add(i, w);
  }
  for (std::int64_t offset = 0; offset < tree.total(); ++offset) {
    std::int64_t remaining = offset;
    std::size_t expected = 0;
    while (remaining >= weights[expected]) {
      remaining -= weights[expected];
      ++expected;
    }
    EXPECT_EQ(tree.find_by_offset(offset), expected) << "offset " << offset;
  }
}

// --------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns) {
  text_table table({"A", "Metric"});
  table.add_row({"1", "x"});
  table.add_row({"22", "yy"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| A  | Metric |"), std::string::npos);
  EXPECT_NE(text.find("| 22 | yy     |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  text_table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  text_table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), contract_error);
}

TEST(Table, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(64ULL * 1024 * 1024), "64 MB");
  EXPECT_EQ(format_bytes(1024ULL * 1024 * 1024), "1 GB");
  EXPECT_EQ(format_bytes(1920ULL * 1024 * 1024), "1.875 GB");
}

TEST(Table, FormatTime) {
  EXPECT_EQ(format_time_ns(500), "500 ns");
  EXPECT_EQ(format_time_ns(77000), "77 us");
  EXPECT_EQ(format_time_ns(1290 * 1000000LL), "1.29 s");
}

TEST(Table, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(262144), "262,144");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

// ----------------------------------------------------------- contracts

TEST(Contracts, ThrowWithMessage) {
  try {
    expects(false, "the reason");
    FAIL() << "expects did not throw";
  } catch (const contract_error& error) {
    EXPECT_NE(std::string(error.what()).find("the reason"),
              std::string::npos);
  }
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_THROW(ensures(false, "x"), contract_error);
  EXPECT_THROW(invariant(false, "x"), contract_error);
}

}  // namespace
}  // namespace horam::util
