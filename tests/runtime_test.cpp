// Tests of the real-thread runtime (src/runtime/ + the engine's
// threaded execution path): mailbox and worker_pool unit semantics,
// SipHash per-shard seed derivation, and the load-bearing determinism
// guarantee — for a fixed seed the threaded runtime must be bit-for-bit
// identical to the single-threaded sim machine in results, clocks,
// stats, router counters and per-shard bus traces, across every
// backend, shard count and shuffle policy (only wall-clock may differ).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "horam.h"
#include "runtime/mailbox.h"
#include "runtime/worker_pool.h"
#include "test_support.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;
using runtime::mailbox;
using runtime::worker_pool;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 64;
constexpr std::size_t kPayload = 16;

client_builder base_builder(std::uint32_t shards,
                            std::uint64_t seed_salt = 61) {
  return client_builder()
      .blocks(kBlocks)
      .memory_blocks(kMemoryBlocks)
      .payload_bytes(kPayload)
      .shards(shards)
      .seed(test::seed(seed_salt));
}

/// Deterministic mixed read/write stream (reads dominate so hit rates
/// stay interesting; writes carry tagged payloads so data round-trips
/// are checked too).
std::vector<request> make_stream(std::size_t count, std::uint64_t salt) {
  util::pcg64 rng(test::seed(salt));
  std::vector<request> stream(count);
  for (std::size_t i = 0; i < count; ++i) {
    stream[i].id = util::uniform_below(rng, kBlocks);
    if (util::bernoulli(rng, 0.25)) {
      stream[i].op = oram::op_kind::write;
      stream[i].write_data.assign(
          kPayload, static_cast<std::uint8_t>(stream[i].id ^ i));
    } else {
      stream[i].op = oram::op_kind::read;
    }
  }
  return stream;
}

void expect_results_equal(const std::vector<request_result>& sim,
                          const std::vector<request_result>& thr) {
  ASSERT_EQ(sim.size(), thr.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim[i].completion_time, thr[i].completion_time)
        << "request " << i;
    EXPECT_EQ(sim[i].hit, thr[i].hit) << "request " << i;
    EXPECT_EQ(sim[i].read_data, thr[i].read_data) << "request " << i;
  }
}

/// Field-by-field equality of the aggregated controller stats; the
/// latency histogram has no operator==, so it is compared through its
/// streaming accessors.
void expect_stats_equal(const controller_stats& a,
                        const controller_stats& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.real_loads, b.real_loads);
  EXPECT_EQ(a.dummy_loads, b.dummy_loads);
  EXPECT_EQ(a.dummy_path_accesses, b.dummy_path_accesses);
  EXPECT_EQ(a.periods, b.periods);
  EXPECT_EQ(a.shuffle_slices, b.shuffle_slices);
  EXPECT_EQ(a.access_time, b.access_time);
  EXPECT_EQ(a.shuffle_time, b.shuffle_time);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.io_busy, b.io_busy);
  EXPECT_EQ(a.memory_busy, b.memory_busy);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);
  EXPECT_EQ(a.io_load_time, b.io_load_time);
  EXPECT_EQ(a.shuffle_stall_time, b.shuffle_stall_time);
  EXPECT_EQ(a.request_latency.count(), b.request_latency.count());
  EXPECT_EQ(a.request_latency.max(), b.request_latency.max());
  EXPECT_EQ(a.request_latency.p50(), b.request_latency.p50());
  EXPECT_EQ(a.request_latency.p95(), b.request_latency.p95());
  EXPECT_EQ(a.request_latency.p99(), b.request_latency.p99());
}

void expect_router_stats_equal(const engine_stats& a,
                               const engine_stats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.real_requests, b.real_requests);
  EXPECT_EQ(a.pad_requests, b.pad_requests);
  EXPECT_EQ(a.pad_hits, b.pad_hits);
  EXPECT_EQ(a.pad_misses, b.pad_misses);
}

/// Bit-for-bit comparison of every shard's observable bus trace.
void expect_traces_equal(const engine& sim_eng, const engine& thr_eng) {
  ASSERT_EQ(sim_eng.shard_count(), thr_eng.shard_count());
  for (std::uint32_t s = 0; s < sim_eng.shard_count(); ++s) {
    const oram::access_trace* a = sim_eng.shard_trace(s);
    const oram::access_trace* b = thr_eng.shard_trace(s);
    ASSERT_EQ(a != nullptr, b != nullptr) << "shard " << s;
    if (a == nullptr) {
      continue;
    }
    ASSERT_EQ(a->size(), b->size()) << "shard " << s;
    for (std::size_t i = 0; i < a->size(); ++i) {
      ASSERT_EQ(a->events()[i].kind, b->events()[i].kind)
          << "shard " << s << " event " << i;
      ASSERT_EQ(a->events()[i].a, b->events()[i].a)
          << "shard " << s << " event " << i;
      ASSERT_EQ(a->events()[i].b, b->events()[i].b)
          << "shard " << s << " event " << i;
    }
  }
}

// ------------------------------------------------------- mailbox units

TEST(Mailbox, FifoOrder) {
  mailbox<int> box(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(box.push(i));
  }
  EXPECT_EQ(box.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, CapacityBlocksProducerUntilConsumed) {
  mailbox<int> box(2);
  std::atomic<int> delivered{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(box.push(i));
      delivered.fetch_add(1);
    }
  });
  int out = -1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(box.pop(out));
    EXPECT_EQ(out, i);
    // Bounded: the producer can never run more than capacity ahead of
    // the consumer (it has popped i+1 items, so at most i+1+2 pushed).
    EXPECT_LE(delivered.load(), i + 1 + 2);
  }
  producer.join();
  EXPECT_EQ(delivered.load(), 6);
}

TEST(Mailbox, CloseDrainsThenRefuses) {
  mailbox<int> box(8);
  EXPECT_TRUE(box.push(1));
  EXPECT_TRUE(box.push(2));
  box.close();
  EXPECT_TRUE(box.closed());
  EXPECT_FALSE(box.push(3));  // refused after close
  // Queued items survive the close and drain in order.
  int out = -1;
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(box.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(box.pop(out));  // closed AND drained
  box.close();                 // idempotent
}

TEST(Mailbox, CloseWakesBlockedConsumer) {
  mailbox<int> box(4);
  std::thread consumer([&] {
    int out = -1;
    EXPECT_FALSE(box.pop(out));  // parked until close, then drained
  });
  box.close();
  consumer.join();
}

TEST(Mailbox, TryVariantsNeverBlock) {
  mailbox<int> box(2);
  EXPECT_FALSE(box.try_pop().has_value());
  EXPECT_TRUE(box.try_push(10));
  EXPECT_TRUE(box.try_push(11));
  EXPECT_FALSE(box.try_push(12));  // full
  const std::optional<int> first = box.try_pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 10);
  box.close();
  EXPECT_FALSE(box.try_push(13));  // closed
  EXPECT_EQ(box.capacity(), 2u);
}

TEST(Mailbox, MultiProducerDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  mailbox<int> box(8);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.push(p * kPerProducer + i));
      }
    });
  }
  std::set<int> seen;
  int out = -1;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_TRUE(box.pop(out));
    EXPECT_TRUE(seen.insert(out).second) << "duplicate " << out;
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), kProducers * kPerProducer - 1);
}

TEST(Mailbox, ZeroCapacityIsRejected) {
  EXPECT_THROW(mailbox<int>(0), contract_error);
}

// --------------------------------------------------- worker_pool units

TEST(WorkerPool, ExecutesPostedJobs) {
  std::atomic<int> counter{0};
  worker_pool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(pool.post(static_cast<std::size_t>(i) % pool.size(),
                          [&counter] { counter.fetch_add(1); }));
  }
  pool.stop();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(pool.executed(), 10u);
}

TEST(WorkerPool, SameWorkerRunsJobsInPostingOrder) {
  // One worker, so the vector needs no lock: exactly one thread ever
  // touches it — the same confinement argument the engine makes for
  // per-shard state.
  std::vector<int> order;
  worker_pool pool(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.post(0, [&order, i] { order.push_back(i); }));
  }
  pool.stop();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(WorkerPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> counter{0};
  {
    worker_pool pool(1, /*queue_capacity=*/128);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.post(0, [&counter] { counter.fetch_add(1); }));
    }
    // No explicit stop: destruction must finish every queued job.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(WorkerPool, StopIsIdempotentAndRefusesLatePosts) {
  worker_pool pool(2);
  pool.stop();
  pool.stop();
  EXPECT_FALSE(pool.post(0, [] {}));
  EXPECT_EQ(pool.executed(), 0u);
}

TEST(WorkerPool, ValidatesArguments) {
  EXPECT_THROW(worker_pool(0), contract_error);
  worker_pool pool(1);
  EXPECT_THROW(pool.post(1, [] {}), contract_error);
}

// ------------------------------------- per-shard seed derivation (PRF)

TEST(ShardSeeds, DistinctAcrossShardsAndDomains) {
  const std::uint64_t route = test::seed(62);
  const std::uint64_t seed = test::seed(63);
  std::set<std::uint64_t> seen;
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    for (std::uint32_t domain = 0; domain < 2; ++domain) {
      const std::uint64_t derived =
          engine::derive_shard_seed(route, seed, shard, domain);
      EXPECT_TRUE(seen.insert(derived).second)
          << "shard " << shard << " domain " << domain
          << " collided with an earlier stream";
      // Stable: the derivation is a pure function.
      EXPECT_EQ(derived,
                engine::derive_shard_seed(route, seed, shard, domain));
    }
  }
}

TEST(ShardSeeds, AdjacentBaseSeedsCannotAliasNeighbouringShards) {
  // The old sequential scheme (seed + c * shard) made shard s under
  // seed k identical to shard s-1 under seed k + c — two "independent"
  // machines sharing an RNG stream. The PRF derivation must not.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t route = test::seed(64);
  const std::uint64_t seed = test::seed(65);
  for (std::uint32_t s = 1; s < 8; ++s) {
    EXPECT_NE(engine::derive_shard_seed(route, seed, s, 0),
              engine::derive_shard_seed(route, seed + kGolden, s - 1, 0))
        << "shard " << s;
    EXPECT_NE(engine::derive_shard_seed(route, seed, s, 0),
              engine::derive_shard_seed(route, seed + 1, s, 0))
        << "shard " << s;
  }
}

TEST(ShardSeeds, RouteKeySelectsTheStreamFamily) {
  const std::uint64_t seed = test::seed(66);
  int moved = 0;
  for (std::uint32_t s = 0; s < 8; ++s) {
    moved += engine::derive_shard_seed(1, seed, s, 0) !=
                     engine::derive_shard_seed(2, seed, s, 0)
                 ? 1
                 : 0;
  }
  EXPECT_EQ(moved, 8);  // a fresh PRF key re-keys every stream
}

// --------------------------------------------- builder / engine wiring

TEST(RuntimeApi, PolicyNamesRoundTrip) {
  ASSERT_EQ(runtime_policy_names().size(),
            std::size(all_runtime_policies));
  for (const runtime_policy policy : all_runtime_policies) {
    EXPECT_EQ(runtime_policy_by_name(runtime_policy_name(policy)), policy);
  }
  EXPECT_EQ(runtime_policy_name(runtime_policy::sim), "sim");
  EXPECT_EQ(runtime_policy_name(runtime_policy::threaded), "threaded");
  EXPECT_THROW((void)runtime_policy_by_name("florb"), contract_error);
}

TEST(RuntimeApi, BuilderDiagnostics) {
  try {
    (void)base_builder(4).threads(0);
    FAIL() << "threads(0) must throw";
  } catch (const contract_error& error) {
    EXPECT_NE(std::string(error.what()).find("threads()"),
              std::string::npos)
        << "diagnostic should name the setter: " << error.what();
  }
  EXPECT_THROW((void)base_builder(4).runtime("florb"), contract_error);
  EXPECT_NO_THROW((void)base_builder(4).runtime("threaded").build());
  EXPECT_NO_THROW((void)base_builder(4).runtime("sim").build());
}

TEST(RuntimeApi, WorkerThreadsAccessorAndClamping) {
  // Sim runtime: no pool.
  EXPECT_EQ(base_builder(4).build().eng().worker_threads(), 0u);
  // Single shard: pure pass-through, no pool even when threaded.
  EXPECT_EQ(base_builder(1).threads(4).build().eng().worker_threads(), 0u);
  // Default thread count: one per shard.
  EXPECT_EQ(base_builder(4)
                .runtime(runtime_policy::threaded)
                .build()
                .eng()
                .worker_threads(),
            4u);
  // Explicit counts clamp to the shard count.
  EXPECT_EQ(base_builder(4).threads(8).build().eng().worker_threads(), 4u);
  EXPECT_EQ(base_builder(4).threads(2).build().eng().worker_threads(), 2u);
  // The config records what was asked for.
  const client threaded = base_builder(4).threads(2).build();
  EXPECT_EQ(threaded.config().runtime, runtime_policy::threaded);
  EXPECT_EQ(threaded.config().worker_threads, 2u);
}

// ------------------------------- determinism grid: threaded == sim

struct grid_point {
  backend_kind kind;
  std::uint32_t shards;
  shuffle_policy shuffle;
};

class ThreadedDeterminism : public ::testing::TestWithParam<grid_point> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, ThreadedDeterminism,
    ::testing::ValuesIn([] {
      std::vector<grid_point> grid;
      for (const backend_kind kind : all_backend_kinds) {
        for (const std::uint32_t shards : {1u, 4u, 8u}) {
          for (const shuffle_policy shuffle :
               {shuffle_policy::foreground, shuffle_policy::incremental}) {
            grid.push_back(grid_point{kind, shards, shuffle});
          }
        }
      }
      return grid;
    }()),
    [](const ::testing::TestParamInfo<grid_point>& info) {
      std::string name(backend_name(info.param.kind));
      name += "_" + std::to_string(info.param.shards) + "shards_";
      name += info.param.shuffle == shuffle_policy::foreground
                  ? "foreground"
                  : "incremental";
      return name;
    });

client grid_client(const grid_point& p, runtime_policy runtime) {
  client_builder builder = base_builder(p.shards, 67)
                               .backend(p.kind)
                               .shuffle(p.shuffle)
                               .trace(true)
                               .runtime(runtime);
  if (p.shuffle == shuffle_policy::incremental) {
    builder.shuffle_slice_budget(1'000'000);  // bounded: real slicing
  }
  return builder.build();
}

/// The load-bearing property: with a fixed seed the threaded runtime is
/// bit-for-bit the sim machine — same per-request results, same virtual
/// clock, same aggregate and router stats, same per-shard bus traces.
TEST_P(ThreadedDeterminism, TraceAndStatsBitForBit) {
  client sim_oram = grid_client(GetParam(), runtime_policy::sim);
  client thr_oram = grid_client(GetParam(), runtime_policy::threaded);

  // Open-loop batch (run/drain path).
  const std::vector<request> batch = make_stream(96, 68);
  std::vector<request_result> sim_results;
  std::vector<request_result> thr_results;
  sim_oram.run(batch, &sim_results);
  thr_oram.run(batch, &thr_results);
  expect_results_equal(sim_results, thr_results);

  // Closed-loop incremental pump (submit/drain path).
  const std::vector<request> second = make_stream(64, 69);
  sim_oram.submit(second);
  thr_oram.submit(second);
  sim_oram.drain(&sim_results);
  thr_oram.drain(&thr_results);
  expect_results_equal(sim_results, thr_results);

  EXPECT_EQ(sim_oram.now(), thr_oram.now());
  expect_stats_equal(sim_oram.stats(), thr_oram.stats());
  expect_router_stats_equal(sim_oram.eng().router_stats(),
                            thr_oram.eng().router_stats());
  EXPECT_EQ(sim_oram.eng().round_log(), thr_oram.eng().round_log());
  expect_traces_equal(sim_oram.eng(), thr_oram.eng());
}

/// Worker counts that do not divide the shard count exercise the
/// s % threads pinning (several shards per worker, uneven split).
TEST(ThreadedRuntime, NonDivisorWorkerCountStaysDeterministic) {
  client sim_oram = base_builder(8, 70).build();
  client thr_oram = base_builder(8, 70).threads(3).build();
  ASSERT_EQ(thr_oram.eng().worker_threads(), 3u);

  const std::vector<request> batch = make_stream(120, 71);
  std::vector<request_result> sim_results;
  std::vector<request_result> thr_results;
  sim_oram.run(batch, &sim_results);
  thr_oram.run(batch, &thr_results);
  expect_results_equal(sim_results, thr_results);
  EXPECT_EQ(sim_oram.now(), thr_oram.now());
  expect_stats_equal(sim_oram.stats(), thr_oram.stats());
}

/// Token-by-token parity of the incremental round API: the tenant
/// scheduler pumps exactly this surface, so identical completion
/// streams here mean the whole service layer carries over unchanged.
TEST(ThreadedRuntime, StepRoundCompletionStreamMatchesSim) {
  client sim_oram = base_builder(4, 72).build();
  client thr_oram = base_builder(4, 72).threads(4).build();
  EXPECT_EQ(sim_oram.eng().round_budget(), thr_oram.eng().round_budget());

  const std::vector<request> stream = make_stream(80, 73);
  for (const request& req : stream) {
    EXPECT_EQ(sim_oram.eng().submit(req), thr_oram.eng().submit(req));
  }

  using completion_record = std::tuple<std::uint64_t, sim::sim_time, bool>;
  std::vector<completion_record> sim_seen;
  std::vector<completion_record> thr_seen;
  const auto collect = [](std::vector<completion_record>& into) {
    return [&into](std::uint64_t token, request_result&& result) {
      into.emplace_back(token, result.completion_time, result.hit);
    };
  };
  while (sim_oram.eng().step_round(collect(sim_seen))) {
    ASSERT_TRUE(thr_oram.eng().step_round(collect(thr_seen)));
    EXPECT_EQ(sim_oram.pending(), thr_oram.pending());
    ASSERT_EQ(sim_seen, thr_seen);  // same tokens, same order
  }
  EXPECT_FALSE(thr_oram.eng().step_round(collect(thr_seen)));
  EXPECT_EQ(sim_seen.size(), stream.size());
  EXPECT_EQ(sim_oram.eng().round_log(), thr_oram.eng().round_log());
}

/// Stats merge + reset under threads: resetting mid-run must zero the
/// same counters in both runtimes and both must resume identically.
TEST(ThreadedRuntime, ResetStatsUnderThreadsMatchesSim) {
  client sim_oram = base_builder(4, 74).build();
  client thr_oram = base_builder(4, 74).threads(4).build();

  sim_oram.run(make_stream(64, 75));
  thr_oram.run(make_stream(64, 75));
  sim_oram.reset_stats();
  thr_oram.reset_stats();
  EXPECT_EQ(sim_oram.stats().requests, 0u);
  EXPECT_EQ(thr_oram.stats().requests, 0u);
  EXPECT_EQ(thr_oram.eng().router_stats().rounds, 0u);
  EXPECT_TRUE(thr_oram.eng().round_log().empty());

  const std::vector<request> after = make_stream(48, 76);
  std::vector<request_result> sim_results;
  std::vector<request_result> thr_results;
  sim_oram.run(after, &sim_results);
  thr_oram.run(after, &thr_results);
  expect_results_equal(sim_results, thr_results);
  expect_stats_equal(sim_oram.stats(), thr_oram.stats());
  expect_router_stats_equal(sim_oram.eng().router_stats(),
                            thr_oram.eng().router_stats());
}

/// The multi-tenant service pumps the engine through the same surface
/// in both runtimes: per-tenant stats must agree exactly.
TEST(ThreadedRuntime, ServiceLayerMatchesSim) {
  const auto build = [](runtime_policy runtime) {
    return base_builder(4, 77).runtime(runtime).build_service();
  };
  service sim_svc = build(runtime_policy::sim);
  service thr_svc = build(runtime_policy::threaded);
  EXPECT_EQ(thr_svc.underlying().eng().worker_threads(), 4u);

  const auto drive = [](service& svc) {
    session alice = svc.open_session();
    session bob = svc.open_session(2.0);
    std::vector<ticket> tickets;
    util::pcg64 rng(test::seed(78));
    for (int i = 0; i < 40; ++i) {
      const block_id id = util::uniform_below(rng, kBlocks);
      session& who = (i % 2 == 0) ? alice : bob;
      if (util::bernoulli(rng, 0.3)) {
        const std::vector<std::uint8_t> data(
            kPayload, static_cast<std::uint8_t>(i));
        tickets.push_back(who.async_write(id, data));
      } else {
        tickets.push_back(who.async_read(id));
      }
    }
    svc.run_until_idle();
    return tickets;
  };
  std::vector<ticket> sim_tickets = drive(sim_svc);
  std::vector<ticket> thr_tickets = drive(thr_svc);

  ASSERT_EQ(sim_tickets.size(), thr_tickets.size());
  for (std::size_t i = 0; i < sim_tickets.size(); ++i) {
    const ticket_result& a = sim_tickets[i].result();
    const ticket_result& b = thr_tickets[i].result();
    EXPECT_EQ(a.payload, b.payload) << "ticket " << i;
    EXPECT_EQ(a.latency, b.latency) << "ticket " << i;
    EXPECT_EQ(a.sim_time, b.sim_time) << "ticket " << i;
    EXPECT_EQ(a.hit, b.hit) << "ticket " << i;
  }
  EXPECT_EQ(sim_svc.now(), thr_svc.now());
  for (std::uint32_t tenant = 0; tenant < sim_svc.tenant_count();
       ++tenant) {
    const tenant_stats a = sim_svc.tenant_stats(tenant);
    const tenant_stats b = thr_svc.tenant_stats(tenant);
    EXPECT_EQ(a.submitted, b.submitted) << "tenant " << tenant;
    EXPECT_EQ(a.completed, b.completed) << "tenant " << tenant;
    EXPECT_EQ(a.total_latency, b.total_latency) << "tenant " << tenant;
    EXPECT_EQ(a.max_latency, b.max_latency) << "tenant " << tenant;
    EXPECT_EQ(a.latency.p99(), b.latency.p99()) << "tenant " << tenant;
  }
  expect_stats_equal(sim_svc.stats(), thr_svc.stats());
}

/// Same machine, different runtimes, interleaved lifetimes: engines are
/// independent, so a threaded client dying mid-scope must not disturb a
/// sibling (worker lifecycle: graceful drain on destruction).
TEST(ThreadedRuntime, EngineTeardownIsClean) {
  client outer = base_builder(4, 79).threads(2).build();
  std::vector<request_result> outer_results;
  {
    client inner = base_builder(4, 79).threads(4).build();
    inner.run(make_stream(32, 80));
    // inner's pool joins here with jobs drained.
  }
  outer.run(make_stream(32, 80), &outer_results);
  EXPECT_EQ(outer_results.size(), 32u);
}

}  // namespace
}  // namespace horam
