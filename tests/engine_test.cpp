// Tests of the sharded ORAM engine (core/engine.h): PRF routing and id
// translation, shards(1) bit-for-bit equivalence with the historical
// single-controller machine, conformance/replay across shard counts
// {1, 2, 4, 8} and every backend, data-independent padded round shapes,
// per-shard bus-distribution workload independence, cross-shard stats
// aggregation (controller_stats::operator+= / aggregate()), the
// reset_stats() lane-counter regression, and backend_names().
#include <gtest/gtest.h>

#include <deque>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/obliviousness.h"
#include "horam.h"
#include "test_support.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 64;
constexpr std::size_t kPayload = 16;

client_builder engine_builder(std::uint32_t shards,
                              std::uint64_t seed_salt = 31) {
  return client_builder()
      .blocks(kBlocks)
      .memory_blocks(kMemoryBlocks)
      .payload_bytes(kPayload)
      .shards(shards)
      .seed(test::seed(seed_salt));
}

std::vector<std::uint8_t> tagged(std::uint8_t tag) {
  return std::vector<std::uint8_t>(kPayload, tag);
}

// ------------------------------------------------------------- routing

TEST(EngineRouting, PrfPartitionsTheBlockSpace) {
  client oram = engine_builder(4).build();
  const engine& eng = oram.eng();
  ASSERT_EQ(eng.shard_count(), 4u);

  // Every id routes to exactly one shard, translations are consistent,
  // and the shard_blocks lists partition the global id space.
  std::set<block_id> seen;
  for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
    const std::span<const block_id> blocks = eng.shard_blocks(s);
    EXPECT_GT(blocks.size(), 0u) << "shard " << s << " owns no blocks";
    EXPECT_EQ(eng.shard(s).config().block_count, blocks.size());
    for (std::size_t local = 0; local < blocks.size(); ++local) {
      const block_id global = blocks[local];
      EXPECT_EQ(eng.shard_of(global), s);
      EXPECT_EQ(eng.shard_local_id(global), local);
      EXPECT_TRUE(seen.insert(global).second)
          << "block " << global << " owned by two shards";
    }
  }
  EXPECT_EQ(seen.size(), kBlocks);

  // The keyed PRF balances the stripe: no shard is pathologically fat.
  for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
    EXPECT_LT(eng.shard_blocks(s).size(), kBlocks / 2);
  }

  // Routing is a pure function of the config, not of machine state.
  client other = engine_builder(4).build();
  for (block_id id = 0; id < kBlocks; ++id) {
    EXPECT_EQ(other.eng().shard_of(id), eng.shard_of(id));
  }

  // The router reports its id-translation tables as control memory.
  client single = engine_builder(1).build();
  EXPECT_GT(oram.control_memory_bytes(), single.control_memory_bytes());
  EXPECT_THROW((void)eng.shard_of(kBlocks), contract_error);
}

TEST(EngineRouting, SingleShardIsIdentity) {
  client oram = engine_builder(1).build();
  const engine& eng = oram.eng();
  ASSERT_EQ(eng.shard_count(), 1u);
  for (block_id id = 0; id < kBlocks; id += 17) {
    EXPECT_EQ(eng.shard_of(id), 0u);
    EXPECT_EQ(eng.shard_local_id(id), id);
  }
  EXPECT_TRUE(eng.shard_blocks(0).empty());  // identity mapping
}

TEST(EngineRouting, RouteKeyChangesTheStripe) {
  client a = engine_builder(4).build();
  client b = engine_builder(4)
                 .config_tweak([](horam_config& c) {
                   c.route_key_seed ^= 0x5eedULL;
                 })
                 .build();
  std::uint64_t moved = 0;
  for (block_id id = 0; id < kBlocks; ++id) {
    moved += a.eng().shard_of(id) != b.eng().shard_of(id) ? 1 : 0;
  }
  EXPECT_GT(moved, kBlocks / 2);  // ~3/4 expected under a fresh key
}

// -------------------------------------- shards(1) exact pass-through

/// The engine with one shard must reproduce the historical
/// single-controller machine bit for bit: same completion times, same
/// counters, same bus trace, under an identical manually wired machine.
TEST(EngineCompat, SingleShardMatchesBareControllerBitForBit) {
  const std::uint64_t seed = test::seed(33);

  // Manually assembled machine, exactly as the pre-engine facade did.
  sim::block_device storage{sim::hdd_paper()};
  sim::block_device memory{sim::dram_ddr4()};
  const sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng(seed);
  oram::access_trace trace;
  horam_config config;
  config.block_count = kBlocks;
  config.memory_blocks = kMemoryBlocks;
  config.payload_bytes = kPayload;
  std::unique_ptr<oram_backend> backend =
      make_backend(backend_kind::partitioned, config, storage, cpu, rng,
                   &trace, nullptr, &memory);
  controller bare(config, std::move(backend), memory, cpu, rng, &trace);

  client sharded = engine_builder(1, 33).trace(true).build();

  util::pcg64 workload(test::seed(34));
  std::vector<request> stream;
  for (int i = 0; i < 400; ++i) {
    request req;
    req.op = util::bernoulli(workload, 0.3) ? oram::op_kind::write
                                            : oram::op_kind::read;
    req.id = util::uniform_below(workload, kBlocks);
    if (req.op == oram::op_kind::write) {
      req.write_data = tagged(static_cast<std::uint8_t>(i));
    }
    stream.push_back(std::move(req));
  }

  std::vector<request_result> bare_results;
  std::vector<request_result> sharded_results;
  bare.run(stream, &bare_results);
  sharded.run(stream, &sharded_results);

  ASSERT_EQ(bare_results.size(), sharded_results.size());
  for (std::size_t i = 0; i < bare_results.size(); ++i) {
    EXPECT_EQ(bare_results[i].completion_time,
              sharded_results[i].completion_time)
        << "request " << i;
    EXPECT_EQ(bare_results[i].hit, sharded_results[i].hit);
    EXPECT_EQ(bare_results[i].read_data, sharded_results[i].read_data);
  }
  EXPECT_EQ(bare.now(), sharded.now());

  const controller_stats& a = bare.stats();
  const controller_stats& b = sharded.stats();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.real_loads, b.real_loads);
  EXPECT_EQ(a.dummy_loads, b.dummy_loads);
  EXPECT_EQ(a.periods, b.periods);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.io_busy, b.io_busy);
  EXPECT_EQ(a.memory_busy, b.memory_busy);
  EXPECT_EQ(a.cpu_busy, b.cpu_busy);

  const oram::access_trace* sharded_trace = sharded.trace();
  ASSERT_NE(sharded_trace, nullptr);
  ASSERT_EQ(trace.size(), sharded_trace->size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.events()[i].kind, sharded_trace->events()[i].kind)
        << "event " << i;
    EXPECT_EQ(trace.events()[i].a, sharded_trace->events()[i].a);
    EXPECT_EQ(trace.events()[i].b, sharded_trace->events()[i].b);
  }
}

// --------------------------- conformance across the shard/backend grid

struct grid_point {
  std::uint32_t shards;
  backend_kind backend;
};

class EngineConformance : public ::testing::TestWithParam<grid_point> {};

INSTANTIATE_TEST_SUITE_P(
    ShardsByBackend, EngineConformance,
    ::testing::ValuesIn([] {
      std::vector<grid_point> grid;
      for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        for (const backend_kind kind : all_backend_kinds) {
          grid.push_back(grid_point{shards, kind});
        }
      }
      return grid;
    }()),
    [](const ::testing::TestParamInfo<grid_point>& info) {
      return std::string(backend_name(info.param.backend)) + "_x" +
             std::to_string(info.param.shards);
    });

/// Differential replay against a std::map oracle: payload correctness
/// must survive routing, padding and per-shard shuffle periods.
TEST_P(EngineConformance, ShadowMapReplay) {
  client oram = engine_builder(GetParam().shards)
                    .backend(GetParam().backend)
                    .build();
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(test::seed(35 + GetParam().shards));
  // Single-op rounds cost a full padded round per shard (that is the
  // point), so scale the step count down as the grid widens to keep
  // sanitizer runs affordable; shard periods are short (memory splits),
  // so even 75 steps cross several shuffle periods everywhere.
  const int steps = 600 / static_cast<int>(2 * GetParam().shards);
  for (int step = 0; step < steps; ++step) {
    const block_id id = util::uniform_below(driver, kBlocks);
    if (util::bernoulli(driver, 0.4)) {
      const auto data = tagged(static_cast<std::uint8_t>(step));
      oram.write(id, data);
      shadow[id] = data;
    } else {
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      ASSERT_EQ(oram.read(id), expected)
          << "step " << step << " id " << id;
    }
  }
  for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
    ASSERT_NO_THROW(oram.eng().shard(s).backend().check_consistency())
        << "shard " << s;
    EXPECT_GT(oram.eng().shard(s).stats().periods, 0u) << "shard " << s;
  }
}

/// The batch and incremental APIs agree with the oracle too (routing
/// survives the submit()/drain() path and results come back in
/// submission order).
TEST_P(EngineConformance, SubmitDrainKeepsSubmissionOrder) {
  client oram = engine_builder(GetParam().shards)
                    .backend(GetParam().backend)
                    .build();
  // Tag every block, then read them all back through one drain.
  for (block_id id = 0; id < 64; ++id) {
    oram.write(id, tagged(static_cast<std::uint8_t>(id)));
  }
  std::vector<request> reads(64);
  for (block_id id = 0; id < 64; ++id) {
    reads[id].op = oram::op_kind::read;
    reads[id].id = 63 - id;  // reversed, to catch order bugs
  }
  oram.submit(reads);
  EXPECT_EQ(oram.pending(), 64u);
  std::vector<request_result> results;
  oram.drain(&results);
  ASSERT_EQ(results.size(), 64u);
  for (block_id id = 0; id < 64; ++id) {
    EXPECT_EQ(results[id].read_data,
              tagged(static_cast<std::uint8_t>(63 - id)))
        << "result " << id;
  }
  EXPECT_EQ(oram.pending(), 0u);
}

// ------------------------------------------- padded round obliviousness

/// Drives one sharded client with a workload and returns its round log.
std::deque<std::vector<std::uint32_t>> round_shape_for(
    client& oram, bool hotspot, std::uint64_t seed) {
  util::pcg64 gen(seed);
  std::vector<request> stream(600);
  for (request& req : stream) {
    req.op = oram::op_kind::read;
    req.id = hotspot ? util::uniform_below(gen, kBlocks / 16)
                     : util::uniform_below(gen, kBlocks);
  }
  oram.run(stream);
  return oram.eng().round_log();
}

TEST(EngineObliviousness, RoundShapesAreWorkloadIndependent) {
  // Two identically configured 4-shard machines, two very different
  // workloads (a 1/16th hotspot vs a uniform sweep) of the same length:
  // every round executes exactly round_cap() slots on every shard, so
  // the per-round bus shape carries no bucket-size information. (The
  // *number* of rounds is trace length, which — like the hit-rate-
  // dependent trace length of the cacheable interface itself — is the
  // one quantity allowed to vary.)
  client a = engine_builder(4, 36).build();
  client b = engine_builder(4, 36).build();
  const auto shape_a = round_shape_for(a, /*hotspot=*/true, test::seed(37));
  const auto shape_b = round_shape_for(b, /*hotspot=*/false,
                                       test::seed(38));
  const std::uint32_t cap = a.eng().round_cap();
  ASSERT_GT(cap, 0u);
  EXPECT_EQ(b.eng().round_cap(), cap);

  ASSERT_GT(shape_a.size(), 0u);
  ASSERT_GT(shape_b.size(), 0u);
  for (const auto* log : {&shape_a, &shape_b}) {
    for (std::size_t round = 0; round < log->size(); ++round) {
      ASSERT_EQ((*log)[round].size(), 4u);
      for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_EQ((*log)[round][s], cap)
            << "round " << round << " shard " << s;
      }
    }
  }
}

TEST(EngineObliviousness, RoundCapIsConfigurableAndPublic) {
  // The cap derives from the scheduler geometry by default and can be
  // pinned explicitly; the scheduler hands the engine shard_count * cap
  // requests per pump round.
  client pinned = engine_builder(4)
                      .config_tweak([](horam_config& c) {
                        c.shard_round_cap = 10;
                      })
                      .build();
  EXPECT_EQ(pinned.eng().round_cap(), 10u);
  EXPECT_EQ(pinned.eng().round_budget(), 40u);

  client derived = engine_builder(4).build();
  EXPECT_GT(derived.eng().round_cap(), 0u);
  EXPECT_EQ(derived.eng().round_budget(),
            4u * derived.eng().round_cap());
}

/// Per-shard storage position stream of one traced run.
std::vector<std::uint64_t> shard_positions(const client& oram,
                                           std::uint32_t shard) {
  const oram::access_trace* trace = oram.eng().shard_trace(shard);
  EXPECT_NE(trace, nullptr);
  return analysis::storage_read_positions(*trace);
}

TEST(EngineObliviousness, PerShardPositionStreamsAreWorkloadIndependent) {
  // Same two-workload experiment, now auditing each shard's observable
  // storage positions: the streams must be draws from one distribution
  // (two-sample KS + chi-square homogeneity) even though the workloads
  // have completely different shard skews.
  client a = engine_builder(4, 39).trace(true).build();
  client b = engine_builder(4, 39).trace(true).build();
  const auto drive = [](client& oram, bool hotspot, std::uint64_t seed) {
    util::pcg64 gen(seed);
    std::vector<request> stream(2400);
    for (request& req : stream) {
      req.op = oram::op_kind::read;
      req.id = hotspot ? util::uniform_below(gen, kBlocks / 16)
                       : util::uniform_below(gen, kBlocks);
    }
    oram.run(stream);
  };
  drive(a, /*hotspot=*/true, test::seed(40));
  drive(b, /*hotspot=*/false, test::seed(41));

  for (std::uint32_t s = 0; s < 4; ++s) {
    const std::vector<std::uint64_t> pos_a = shard_positions(a, s);
    const std::vector<std::uint64_t> pos_b = shard_positions(b, s);
    ASSERT_GT(pos_a.size(), 100u) << "shard " << s;
    ASSERT_GT(pos_b.size(), 100u) << "shard " << s;
    const storage::partition_geometry& geometry =
        a.eng().shard(s).storage().geometry();
    const std::uint64_t universe =
        geometry.partition_count * geometry.slots_per_partition();
    const analysis::equality_report report =
        analysis::audit_distribution_equality(pos_a, pos_b, universe);
    EXPECT_TRUE(report.passed())
        << "shard " << s << ": ks " << report.ks << " (<= "
        << report.ks_threshold << "), chi2 " << report.chi_square
        << " (<= " << report.chi_threshold << ")";
  }
}

// ------------------------------------------------- stats & aggregation

TEST(EngineStats, ControllerStatsAccumulate) {
  controller_stats a;
  a.requests = 10;
  a.hits = 6;
  a.misses = 4;
  a.cycles = 12;
  a.io_busy = 100;
  a.total_time = 500;
  controller_stats b;
  b.requests = 5;
  b.hits = 1;
  b.misses = 4;
  b.cycles = 7;
  b.io_busy = 50;
  b.total_time = 300;

  controller_stats sum = a;
  sum += b;
  EXPECT_EQ(sum.requests, 15u);
  EXPECT_EQ(sum.hits, 7u);
  EXPECT_EQ(sum.misses, 8u);
  EXPECT_EQ(sum.cycles, 19u);
  EXPECT_EQ(sum.io_busy, 150);
  EXPECT_EQ(sum.total_time, 800);

  const controller_stats parts[] = {a, b};
  const controller_stats agg = aggregate(parts);
  EXPECT_EQ(agg.requests, sum.requests);
  EXPECT_EQ(agg.cycles, sum.cycles);
  EXPECT_EQ(agg.io_busy, sum.io_busy);
}

TEST(EngineStats, AggregateExcludesPaddingAndSumsShards) {
  client oram = engine_builder(4, 42).build();
  util::pcg64 gen(test::seed(43));
  std::vector<request> stream(200);
  for (request& req : stream) {
    req.op = oram::op_kind::read;
    req.id = util::uniform_below(gen, kBlocks);
  }
  oram.run(stream);

  const engine& eng = oram.eng();
  const engine_stats& router = eng.router_stats();
  EXPECT_EQ(router.real_requests, 200u);
  EXPECT_GT(router.pad_requests, 0u);  // skewed buckets force padding
  EXPECT_EQ(router.pad_hits + router.pad_misses, router.pad_requests);

  // Application-level request counters; raw resource counters.
  const controller_stats& total = oram.stats();
  EXPECT_EQ(total.requests, 200u);
  EXPECT_EQ(total.hits + total.misses, 200u);
  std::uint64_t cycles = 0;
  std::uint64_t raw_requests = 0;
  for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
    cycles += eng.shard(s).stats().cycles;
    raw_requests += eng.shard(s).stats().requests;
  }
  EXPECT_EQ(total.cycles, cycles);
  EXPECT_EQ(raw_requests, router.real_requests + router.pad_requests);

  // The wall clock is the parallel-lane window, not the lane-time sum.
  sim::sim_time lane_time = 0;
  for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
    lane_time += eng.shard(s).stats().total_time;
  }
  EXPECT_EQ(total.total_time, oram.now());
  EXPECT_LT(total.total_time, lane_time);
}

/// Satellite regression: reset_stats() must clear every lane counter —
/// every controller_stats field on every shard, the router counters,
/// the round log and both device lanes.
TEST(EngineStats, ResetStatsClearsEveryLaneCounter) {
  for (const bool coalescing : {false, true}) {
  for (const std::uint32_t shards : {1u, 4u}) {
    client oram = engine_builder(shards, 44).coalescing(coalescing).build();
    util::pcg64 gen(test::seed(45));
    std::vector<request> stream(150);
    for (request& req : stream) {
      req.op = oram::op_kind::read;
      // Duplicates ensure the coalescer counters go nonzero when on.
      req.id = util::uniform_below(gen, kBlocks / 8);
    }
    oram.run(stream);
    ASSERT_GT(oram.stats().requests, 0u);
    if (coalescing) {
      ASSERT_GT(oram.eng().router_stats().coalesced_requests, 0u);
    }

    oram.reset_stats();

    const auto expect_zero = [&](const controller_stats& s,
                                 const std::string& which) {
      EXPECT_EQ(s.requests, 0u) << which;
      EXPECT_EQ(s.hits, 0u) << which;
      EXPECT_EQ(s.misses, 0u) << which;
      EXPECT_EQ(s.cycles, 0u) << which;
      EXPECT_EQ(s.real_loads, 0u) << which;
      EXPECT_EQ(s.dummy_loads, 0u) << which;
      EXPECT_EQ(s.dummy_path_accesses, 0u) << which;
      EXPECT_EQ(s.periods, 0u) << which;
      EXPECT_EQ(s.access_time, 0) << which;
      EXPECT_EQ(s.shuffle_time, 0) << which;
      EXPECT_EQ(s.total_time, 0) << which;
      EXPECT_EQ(s.io_busy, 0) << which;
      EXPECT_EQ(s.memory_busy, 0) << which;
      EXPECT_EQ(s.cpu_busy, 0) << which;
      EXPECT_EQ(s.io_load_time, 0) << which;
      EXPECT_EQ(s.shuffle_device_round_trips, 0u) << which;
    };
    expect_zero(oram.stats(), "aggregate, " + std::to_string(shards));
    for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
      const std::string which =
          "shard " + std::to_string(s) + "/" + std::to_string(shards);
      expect_zero(oram.eng().shard(s).stats(), which);
      EXPECT_EQ(oram.eng().shard_storage(s).stats().total_ops(), 0u)
          << which;
      EXPECT_EQ(oram.eng().shard_memory(s).stats().total_ops(), 0u)
          << which;
      // round_trips is not part of total_ops(): check it explicitly on
      // both device lanes of every shard.
      EXPECT_EQ(oram.eng().shard_storage(s).stats().round_trips, 0u)
          << which;
      EXPECT_EQ(oram.eng().shard_memory(s).stats().round_trips, 0u)
          << which;
    }
    EXPECT_EQ(oram.eng().router_stats().rounds, 0u);
    EXPECT_EQ(oram.eng().router_stats().pad_requests, 0u);
    EXPECT_EQ(oram.eng().router_stats().physical_accesses, 0u);
    EXPECT_EQ(oram.eng().router_stats().coalesced_requests, 0u);
    EXPECT_TRUE(oram.eng().round_log().empty());

    // The next window measures fresh traffic from the reset epoch.
    oram.run(stream);
    EXPECT_EQ(oram.stats().requests, stream.size());
    EXPECT_GT(oram.stats().total_time, 0);
  }
  }
}

/// The online/shuffle round-trip split: a shard's
/// shuffle_device_round_trips is the shuffle machinery's share of that
/// lane's device round trips, so online (total minus shuffle) plus the
/// shuffle share must reconstruct the device counter — per lane and
/// through the aggregate's operator+=.
TEST(EngineStats, RoundTripSplitSumsToDeviceTotal) {
  for (const char* backend : {"path", "hier"}) {
    for (const std::uint32_t shards : {1u, 4u}) {
      client oram = engine_builder(shards, 47).backend(backend).build();
      util::pcg64 gen(test::seed(48));
      std::vector<request> stream(400);
      for (request& req : stream) {
        req.op = oram::op_kind::read;
        req.id = util::uniform_below(gen, kBlocks);
      }
      oram.run(stream);

      std::uint64_t device_total = 0;
      std::uint64_t shuffle_total = 0;
      for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
        const std::string which = std::string(backend) + ", shard " +
                                  std::to_string(s) + "/" +
                                  std::to_string(shards);
        const std::uint64_t lane =
            oram.eng().shard_storage(s).stats().round_trips;
        const std::uint64_t shuffle =
            oram.eng().shard(s).stats().shuffle_device_round_trips;
        EXPECT_LE(shuffle, lane) << which;
        device_total += lane;
        shuffle_total += shuffle;
      }
      EXPECT_EQ(oram.stats().shuffle_device_round_trips, shuffle_total);
      // Enough random traffic that both halves of the split are live:
      // shuffles fired, and the access rounds touched the device.
      EXPECT_GT(shuffle_total, 0u) << backend;
      EXPECT_GT(device_total, shuffle_total) << backend;
    }
  }
}

// ----------------------------------------------- scaling & performance

TEST(EngineScaling, FourShardsBeatOneOnBackloggedBatches) {
  // Deterministic virtual-time speedup: four parallel device lanes must
  // finish a deep uniform batch well faster than one (this is the
  // engine's whole reason to exist; the bench sweeps it wider).
  std::vector<request> stream(600);
  util::pcg64 gen(test::seed(46));
  for (request& req : stream) {
    req.op = oram::op_kind::read;
    req.id = util::uniform_below(gen, kBlocks);
  }

  client one = engine_builder(1, 47).build();
  client four = engine_builder(4, 47).build();
  one.run(stream);
  four.run(stream);
  EXPECT_LT(four.stats().total_time, one.stats().total_time);
}

// ------------------------------------------------------- backend names

TEST(BackendNames, CanonicalListRoundTrips) {
  const std::span<const std::string_view> names = backend_names();
  ASSERT_EQ(names.size(), std::size(all_backend_kinds));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(backend_by_name(names[i]), all_backend_kinds[i]);
    EXPECT_EQ(backend_name(all_backend_kinds[i]), names[i]);
  }
  // Aliases still parse; junk still throws.
  EXPECT_EQ(backend_by_name("horam"), backend_kind::partitioned);
  EXPECT_EQ(backend_by_name("path-oram"), backend_kind::path);
  EXPECT_THROW((void)backend_by_name("florb"), contract_error);
}

// -------------------------------------------------- builder diagnostics

TEST(EngineBuilder, NamesBadShardSettings) {
  try {
    (void)engine_builder(0).build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("shards()"), std::string::npos)
        << e.what();
  }
  try {
    // 64 memory blocks / 16 shards = 4 < one bucket pair (8).
    (void)engine_builder(16).build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("shards()"), std::string::npos)
        << e.what();
  }
}

TEST(EngineBuilder, NamesUnknownBackend) {
  try {
    (void)engine_builder(1).backend("florb").build();
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("backend()"), std::string::npos)
        << e.what();
  }
  // The named setter accepts every canonical name.
  for (const std::string_view name : backend_names()) {
    EXPECT_NO_THROW((void)engine_builder(1).backend(name).build());
  }
}

}  // namespace
}  // namespace horam
