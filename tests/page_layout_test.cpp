// Tests of the page-packed bucket layout (storage/page_layout) and its
// integration into the Path ORAM storage lane: pure addressing math
// (group geometry, slot-permutation bijectivity, non-power-of-two
// bucket sizes, truncated last groups), the valid_bit_tree, the
// storage_layout name registry and builder diagnostics, flat/page
// behavioural equivalence, the default == layout("flat") bit-for-bit
// grid across backends x shards x shuffle policies, the device-op
// reduction the layout exists for, valid-bit read skipping on fresh
// trees, and the obliviousness audits: sweep positions and valid-bit
// occupancy are workload-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/obliviousness.h"
#include "horam.h"
#include "oram/path/path_backend.h"
#include "oram/path/path_oram.h"
#include "sim/profiles.h"
#include "test_support.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 64;
constexpr std::size_t kPayload = 16;

// ------------------------------------------------------ addressing math

storage::page_layout_config geometry(std::uint32_t total_levels,
                                     std::uint32_t first_level,
                                     std::uint32_t bucket_size,
                                     std::uint64_t block_bytes,
                                     std::uint64_t page_bytes) {
  storage::page_layout_config config;
  config.total_levels = total_levels;
  config.first_level = first_level;
  config.bucket_size = bucket_size;
  config.logical_block_bytes = block_bytes;
  config.page_bytes = page_bytes;
  return config;
}

TEST(PageLayoutMath, GroupGeometry) {
  // 16 KB pages of 4 KB buckets: 4 buckets/page, so h = floor(log2 5)
  // = 2. Seven levels split into groups of heights 2, 2, 2, 1.
  const storage::page_layout layout(geometry(7, 0, 4, 1024, 16384));
  EXPECT_EQ(layout.group_levels(), 2u);
  ASSERT_EQ(layout.group_count(), 4u);
  const std::uint32_t heights[] = {2, 2, 2, 1};
  const std::uint32_t tops[] = {0, 2, 4, 6};
  const std::uint64_t segments[] = {1, 4, 16, 64};
  const std::uint64_t buckets[] = {3, 3, 3, 1};
  for (std::uint32_t g = 0; g < 4; ++g) {
    EXPECT_EQ(layout.group_height(g), heights[g]) << "group " << g;
    EXPECT_EQ(layout.group_top_level(g), tops[g]) << "group " << g;
    EXPECT_EQ(layout.segment_count(g), segments[g]) << "group " << g;
    EXPECT_EQ(layout.segment_buckets(g), buckets[g]) << "group " << g;
    EXPECT_EQ(layout.segment_records(g), buckets[g] * 4) << "group " << g;
  }
  // Segments partition the buckets: the footprint matches flat exactly.
  EXPECT_EQ(layout.total_slots(), 127u * 4u);
}

TEST(PageLayoutMath, NonPowerOfTwoBucketSize) {
  // Z = 3 with 1000-byte blocks: 16384 / 3000 = 5 buckets per page,
  // h = floor(log2 6) = 2; 6 levels = 3 full groups, 63 buckets total.
  const storage::page_layout layout(geometry(6, 0, 3, 1000, 16384));
  EXPECT_EQ(layout.group_levels(), 2u);
  ASSERT_EQ(layout.group_count(), 3u);
  EXPECT_EQ(layout.total_slots(), 63u * 3u);
}

TEST(PageLayoutMath, TinyPageDegeneratesToOneBucketSegments) {
  // A page below one bucket still floors h at 1: segments hold a
  // single bucket each (the flat op pattern, different slot order).
  const storage::page_layout layout(geometry(5, 0, 4, 1024, 512));
  EXPECT_EQ(layout.group_levels(), 1u);
  ASSERT_EQ(layout.group_count(), 5u);
  for (std::uint32_t g = 0; g < 5; ++g) {
    EXPECT_EQ(layout.segment_buckets(g), 1u) << "group " << g;
    EXPECT_EQ(layout.segment_count(g), std::uint64_t{1} << g);
  }
  EXPECT_EQ(layout.total_slots(), 31u * 4u);
}

TEST(PageLayoutMath, TruncatedLastGroupIsAPartialPage) {
  // 5 levels with h = 2: the last group covers one level only.
  const storage::page_layout layout(geometry(5, 0, 4, 1024, 16384));
  ASSERT_EQ(layout.group_count(), 3u);
  EXPECT_EQ(layout.group_height(2), 1u);
  EXPECT_EQ(layout.segment_buckets(2), 1u);
  EXPECT_EQ(layout.segment_count(2), 16u);
}

TEST(PageLayoutMath, MemorySplitShiftsTheFirstGroup) {
  // Levels 0-2 in memory: groups start at level 3, covering the 120
  // storage-resident buckets of a 7-level tree.
  const storage::page_layout layout(geometry(7, 3, 4, 1024, 16384));
  ASSERT_EQ(layout.group_count(), 2u);
  EXPECT_EQ(layout.group_top_level(0), 3u);
  EXPECT_EQ(layout.group_top_level(1), 5u);
  EXPECT_EQ(layout.segment_count(0), 8u);
  EXPECT_EQ(layout.segment_count(1), 32u);
  EXPECT_EQ(layout.total_slots(), 120u * 4u);
}

TEST(PageLayoutMath, SlotPermutationIsABijection) {
  // Every storage-resident bucket maps to a distinct Z-aligned slot
  // range; together they tile [0, total_slots) exactly — the page
  // layout is a pure permutation of the flat footprint.
  const storage::page_layout layout(geometry(7, 2, 4, 1024, 16384));
  const std::uint32_t z = 4;
  std::set<std::uint64_t> firsts;
  std::uint64_t buckets = 0;
  for (std::uint32_t level = 2; level < 7; ++level) {
    for (std::uint64_t pos = 0; pos < (std::uint64_t{1} << level); ++pos) {
      const std::uint64_t first = layout.bucket_first_slot(level, pos);
      EXPECT_LT(first, layout.total_slots());
      EXPECT_EQ(first % z, 0u) << "level " << level << " pos " << pos;
      firsts.insert(first);
      ++buckets;

      // Cross-check against the segment decomposition.
      const storage::segment_ref seg = layout.segment_of(level, pos);
      EXPECT_EQ(layout.segment_first_slot(seg) +
                    layout.bucket_index_in_segment(level, pos) * z,
                first);
      EXPECT_LT(layout.bucket_index_in_segment(level, pos),
                layout.segment_buckets(seg.group));
    }
  }
  EXPECT_EQ(firsts.size(), buckets);
  EXPECT_EQ(buckets * z, layout.total_slots());
}

TEST(PageLayoutMath, PathSegmentsCoverEveryPathBucket) {
  const storage::page_layout layout(geometry(7, 1, 4, 1024, 16384));
  const std::uint32_t leaf_level = 6;
  for (std::uint64_t leaf = 0; leaf < 64; ++leaf) {
    for (std::uint32_t level = 1; level <= leaf_level; ++level) {
      const std::uint64_t pos = leaf >> (leaf_level - level);
      const storage::segment_ref seg = layout.segment_of(level, pos);
      const storage::segment_ref on_path =
          layout.path_segment(seg.group, leaf);
      EXPECT_EQ(on_path.group, seg.group)
          << "leaf " << leaf << " level " << level;
      EXPECT_EQ(on_path.index, seg.index)
          << "leaf " << leaf << " level " << level;
    }
  }
}

TEST(ValidBitTree, SetTestClearAndCount) {
  storage::valid_bit_tree bits(130);  // spans three 64-bit words
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.valid_count(), 0u);
  EXPECT_FALSE(bits.test(0));
  bits.set(0);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.valid_count(), 2u);
  bits.set(129);  // double-set counts once
  EXPECT_EQ(bits.valid_count(), 2u);
  EXPECT_GT(bits.memory_bytes(), 0u);
  bits.clear();
  EXPECT_EQ(bits.valid_count(), 0u);
  EXPECT_FALSE(bits.test(0));
}

// ------------------------------------------- name registry and builder

TEST(StorageLayoutNames, RoundTrip) {
  const std::span<const std::string_view> names = storage_layout_names();
  ASSERT_EQ(names.size(), std::size(all_storage_layouts));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(storage_layout_name(all_storage_layouts[i]), names[i]);
    EXPECT_EQ(storage_layout_by_name(names[i]), all_storage_layouts[i]);
  }
  EXPECT_THROW((void)storage_layout_by_name("bogus"), contract_error);
}

client_builder layout_builder(backend_kind kind, std::uint32_t shards,
                              std::uint64_t seed_salt) {
  return client_builder()
      .blocks(kBlocks)
      .memory_blocks(kMemoryBlocks)
      .payload_bytes(kPayload)
      .backend(kind)
      .shards(shards)
      .seed(test::seed(seed_salt));
}

TEST(StorageLayoutNames, BuilderParsesNamesAndNamesTheSetter) {
  client oram = layout_builder(backend_kind::path, 1, 301)
                    .layout("page")
                    .build();
  EXPECT_EQ(oram.config().layout, storage::storage_layout::page);

  try {
    (void)layout_builder(backend_kind::path, 1, 301).layout("bogus");
    FAIL() << "unknown layout name must throw";
  } catch (const contract_error& error) {
    EXPECT_NE(std::string(error.what()).find("layout()"),
              std::string::npos)
        << "diagnostic must name the setter: " << error.what();
  }
  EXPECT_THROW(
      (void)layout_builder(backend_kind::path, 1, 301).page_bytes(0),
      contract_error);
}

// --------------------------------------------------- behaviour parity

std::vector<request> mixed_stream(std::uint64_t count, double write_frac,
                                  std::uint64_t seed) {
  util::pcg64 rng(seed);
  std::vector<request> stream;
  stream.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    request req;
    req.op = util::bernoulli(rng, write_frac) ? op_kind::write
                                              : op_kind::read;
    req.id = util::uniform_below(rng, kBlocks);
    if (req.op == op_kind::write) {
      req.write_data.assign(kPayload, static_cast<std::uint8_t>(i));
    }
    stream.push_back(std::move(req));
  }
  return stream;
}

TEST(PageLayoutBehavior, PageMatchesFlatResults) {
  // Same machine seed, same stream: the page layout changes transfer
  // granularity only, never what a read returns.
  client flat = layout_builder(backend_kind::path, 1, 303).build();
  client page = layout_builder(backend_kind::path, 1, 303)
                    .layout(storage::storage_layout::page)
                    .build();
  const std::vector<request> stream =
      mixed_stream(400, 0.35, test::seed(304));
  std::vector<request_result> flat_results;
  std::vector<request_result> page_results;
  flat.run(stream, &flat_results);
  page.run(stream, &page_results);

  ASSERT_EQ(flat_results.size(), page_results.size());
  for (std::size_t i = 0; i < flat_results.size(); ++i) {
    EXPECT_EQ(flat_results[i].read_data, page_results[i].read_data)
        << "request " << i;
  }
  ASSERT_NO_THROW(flat.backend().check_consistency());
  ASSERT_NO_THROW(page.backend().check_consistency());
}

struct layout_grid_point {
  backend_kind backend;
  std::uint32_t shards;
  shuffle_policy shuffle;
};

class DefaultLayoutIsFlat
    : public ::testing::TestWithParam<layout_grid_point> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsByShardsByShuffle, DefaultLayoutIsFlat,
    ::testing::ValuesIn([] {
      std::vector<layout_grid_point> grid;
      for (const backend_kind kind : all_backend_kinds) {
        for (const std::uint32_t shards : {1u, 4u}) {
          for (const shuffle_policy policy :
               {shuffle_policy::foreground, shuffle_policy::incremental}) {
            grid.push_back(layout_grid_point{kind, shards, policy});
          }
        }
      }
      return grid;
    }()),
    [](const ::testing::TestParamInfo<layout_grid_point>& info) {
      return std::string(backend_name(info.param.backend)) + "_x" +
             std::to_string(info.param.shards) + "_" +
             std::string(shuffle_policy_name(info.param.shuffle));
    });

// The default-constructed machine must be the flat machine bit for bit:
// identical results, clocks and per-shard bus traces. Guards the config
// default against drift — flat is the seed machine every prior PR's
// numbers were taken on.
TEST_P(DefaultLayoutIsFlat, TracesMatchBitForBit) {
  const auto [kind, shards, policy] = GetParam();
  client implicit = layout_builder(kind, shards, 305)
                        .shuffle(policy)
                        .trace(true)
                        .build();
  client explicit_flat = layout_builder(kind, shards, 305)
                             .shuffle(policy)
                             .layout("flat")
                             .trace(true)
                             .build();

  const std::vector<request> stream =
      mixed_stream(300, 0.3, test::seed(306));
  std::vector<request_result> implicit_results;
  std::vector<request_result> flat_results;
  implicit.run(stream, &implicit_results);
  explicit_flat.run(stream, &flat_results);

  ASSERT_EQ(implicit_results.size(), flat_results.size());
  for (std::size_t i = 0; i < implicit_results.size(); ++i) {
    EXPECT_EQ(implicit_results[i].completion_time,
              flat_results[i].completion_time)
        << "request " << i;
    EXPECT_EQ(implicit_results[i].read_data, flat_results[i].read_data);
  }
  EXPECT_EQ(implicit.now(), explicit_flat.now());

  for (std::uint32_t s = 0; s < shards; ++s) {
    const oram::access_trace* a = implicit.eng().shard_trace(s);
    const oram::access_trace* b = explicit_flat.eng().shard_trace(s);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->size(), b->size()) << "shard " << s;
    for (std::size_t i = 0; i < a->size(); ++i) {
      ASSERT_EQ(a->events()[i].kind, b->events()[i].kind)
          << "shard " << s << " event " << i;
      ASSERT_EQ(a->events()[i].a, b->events()[i].a);
      ASSERT_EQ(a->events()[i].b, b->events()[i].b);
    }
  }
}

// The page layout is a tree-bucket concept: backends without a bucket
// tree on the storage lane (sqrt, partition) must ignore layout(page)
// entirely — identical results, clocks and bus traces vs flat. Guards
// against the knob silently perturbing a scheme it doesn't apply to.
class PageLayoutInert : public ::testing::TestWithParam<backend_kind> {};

INSTANTIATE_TEST_SUITE_P(
    NonTreeBackends, PageLayoutInert,
    ::testing::Values(backend_kind::sqrt, backend_kind::partition),
    [](const ::testing::TestParamInfo<backend_kind>& info) {
      return std::string(backend_name(info.param));
    });

TEST_P(PageLayoutInert, PageTraceMatchesFlatBitForBit) {
  const backend_kind kind = GetParam();
  client flat = layout_builder(kind, 1, 317)
                    .layout("flat")
                    .trace(true)
                    .build();
  client page = layout_builder(kind, 1, 317)
                    .layout("page")
                    .trace(true)
                    .build();

  const std::vector<request> stream =
      mixed_stream(300, 0.3, test::seed(318));
  std::vector<request_result> flat_results;
  std::vector<request_result> page_results;
  flat.run(stream, &flat_results);
  page.run(stream, &page_results);

  ASSERT_EQ(flat_results.size(), page_results.size());
  for (std::size_t i = 0; i < flat_results.size(); ++i) {
    EXPECT_EQ(flat_results[i].completion_time,
              page_results[i].completion_time)
        << "request " << i;
    EXPECT_EQ(flat_results[i].read_data, page_results[i].read_data);
  }
  EXPECT_EQ(flat.now(), page.now());

  const oram::access_trace* a = flat.eng().shard_trace(0);
  const oram::access_trace* b = page.eng().shard_trace(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ(a->events()[i].kind, b->events()[i].kind) << "event " << i;
    ASSERT_EQ(a->events()[i].a, b->events()[i].a);
    ASSERT_EQ(a->events()[i].b, b->events()[i].b);
  }
}

// ------------------------------------------------ device-op reduction

std::uint64_t device_ops(client& oram) {
  std::uint64_t ops = 0;
  for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
    const sim::io_stats& stats = oram.eng().shard_storage(s).stats();
    ops += stats.read_ops + stats.write_ops;
  }
  return ops;
}

TEST(PageLayoutBehavior, PageStrictlyReducesDeviceOpsOnHdd) {
  // The acceptance criterion of the layout: on the paper's seek-bound
  // HDD profile the page machine issues strictly fewer storage-device
  // operations than the flat machine for the same stream.
  const std::vector<request> stream =
      mixed_stream(400, 0.3, test::seed(308));
  std::uint64_t ops_by_layout[2] = {0, 0};
  for (const storage::storage_layout layout : all_storage_layouts) {
    client oram = layout_builder(backend_kind::path, 1, 307)
                      .logical_block_bytes(1024)
                      .storage_profile(sim::hdd_paper())
                      .layout(layout)
                      .build();
    oram.run(stream, nullptr);
    ops_by_layout[static_cast<std::size_t>(layout)] = device_ops(oram);

    const auto* backend =
        dynamic_cast<const oram::path_backend*>(&oram.backend());
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->tree().layout(), layout);
    if (layout == storage::storage_layout::page) {
      ASSERT_NE(backend->tree().page_geometry(), nullptr);
      EXPECT_GT(backend->tree().page_geometry()->group_levels(), 1u)
          << "16 KB pages must pack more than one level per segment";
      EXPECT_GT(backend->tree().valid_bucket_count(), 0u);
    } else {
      EXPECT_EQ(backend->tree().valid_bucket_count(), 0u);
    }
  }
  const std::uint64_t flat_ops = ops_by_layout[static_cast<std::size_t>(
      storage::storage_layout::flat)];
  const std::uint64_t page_ops = ops_by_layout[static_cast<std::size_t>(
      storage::storage_layout::page)];
  EXPECT_GT(flat_ops, 0u);
  EXPECT_LT(page_ops, flat_ops)
      << "page layout must strictly reduce device operations";
}

// ------------------------------------------- valid-bit read skipping

oram::path_oram_config split_config(std::uint64_t leaves,
                                    std::uint32_t memory_levels,
                                    storage::storage_layout layout) {
  oram::path_oram_config config;
  config.leaf_count = leaves;
  config.bucket_size = 4;
  config.payload_bytes = kPayload;
  config.id_universe = 1024;
  config.memory_levels = memory_levels;
  config.seal = true;
  config.layout = layout;
  return config;
}

TEST(PageLayoutBehavior, FreshTreeSkipsEveryDeviceRead) {
  // A never-written tree is all dummies, which the valid bits prove
  // without touching the device: the first access costs zero storage
  // reads and exactly one segment write per touched group.
  sim::block_device memory(sim::dram_ddr4());
  sim::block_device disk(sim::hdd_paper());
  sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(test::seed(309));
  oram::path_oram oram(
      split_config(64, 3, storage::storage_layout::page), memory, &disk,
      cpu, rng, nullptr);
  const storage::page_layout* geometry = oram.page_geometry();
  ASSERT_NE(geometry, nullptr);
  EXPECT_EQ(disk.stats().write_ops, 0u)
      << "page-mode reset must not touch the device";
  disk.reset_stats();

  const std::vector<std::uint8_t> data(kPayload, 0x42);
  oram.access(op_kind::write, 7, data, {});
  EXPECT_EQ(disk.stats().read_ops, 0u)
      << "all segments invalid: every read must be skipped";
  EXPECT_EQ(disk.stats().write_ops, geometry->group_count())
      << "write-back pays one op per touched group";

  std::uint64_t expected_valid = 0;
  for (std::uint32_t g = 0; g < geometry->group_count(); ++g) {
    expected_valid += geometry->segment_buckets(g);
  }
  EXPECT_EQ(oram.valid_bucket_count(), expected_valid);

  // Later accesses read at most the valid segments back.
  oram.access(op_kind::read, 7, {}, std::span<std::uint8_t>{});
  EXPECT_LE(disk.stats().read_ops, geometry->group_count());
  ASSERT_NO_THROW(oram.check_consistency());
}

// -------------------------------------------------- obliviousness

/// Drives `count` accesses with ids drawn by `next_id` through a
/// page-layout split tree and returns its trace plus final occupancy.
struct driven_tree {
  oram::access_trace trace;
  std::uint64_t valid_buckets = 0;
};

template <typename NextId>
driven_tree drive_page_tree(std::uint64_t machine_salt,
                            std::uint64_t count, NextId&& next_id) {
  driven_tree out;
  sim::block_device memory(sim::dram_ddr4());
  sim::block_device disk(sim::hdd_paper());
  sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(test::seed(machine_salt));
  oram::path_oram oram(
      split_config(64, 2, storage::storage_layout::page), memory, &disk,
      cpu, rng, &out.trace);
  const std::vector<std::uint8_t> data(kPayload, 0x5a);
  for (std::uint64_t i = 0; i < count; ++i) {
    oram.access(op_kind::write, next_id(i), data, {});
  }
  out.valid_buckets = oram.valid_bucket_count();
  return out;
}

// Two very different id streams — uniform over 200 blocks vs hammering
// 8 hot blocks — must induce (a) sweep-position streams drawn from one
// distribution and (b) statistically identical valid-bit occupancy:
// both are functions of uniform leaf draws only, never of which ids the
// workload touches.
TEST(PageLayoutObliviousness, SweepsAndOccupancyAreWorkloadIndependent) {
  constexpr std::uint64_t kAccesses = 1500;
  util::pcg64 uniform_ids(test::seed(311));
  util::pcg64 hot_ids(test::seed(312));
  const driven_tree uniform = drive_page_tree(
      313, kAccesses,
      [&](std::uint64_t) { return util::uniform_below(uniform_ids, 200); });
  const driven_tree hot = drive_page_tree(
      314, kAccesses,
      [&](std::uint64_t) { return util::uniform_below(hot_ids, 8); });

  for (const oram::event_kind kind :
       {oram::event_kind::storage_read_sweep,
        oram::event_kind::storage_write_sweep}) {
    const std::vector<std::uint64_t> a =
        analysis::storage_sweep_positions(uniform.trace, kind);
    const std::vector<std::uint64_t> b =
        analysis::storage_sweep_positions(hot.trace, kind);
    ASSERT_GT(a.size(), 500u);
    ASSERT_GT(b.size(), 500u);
    const std::uint64_t universe =
        std::max(*std::max_element(a.begin(), a.end()),
                 *std::max_element(b.begin(), b.end())) +
        1;
    const analysis::equality_report report =
        analysis::audit_distribution_equality(a, b, universe);
    EXPECT_TRUE(report.passed())
        << "sweep kind " << static_cast<int>(kind) << ": ks "
        << report.ks << " (<= " << report.ks_threshold << "), chi2 "
        << report.chi_square << " (<= " << report.chi_threshold << ")";
  }

  // Occupancy: after this many accesses both trees have marked nearly
  // the same bucket count valid (exact equality is not required — the
  // two machines draw independent leaves — but the distributions are
  // identical, so the counts land within a few percent).
  EXPECT_GT(uniform.valid_buckets, 0u);
  const double ratio = static_cast<double>(uniform.valid_buckets) /
                       static_cast<double>(hot.valid_buckets);
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

// Page mode must never fall back to per-bucket storage events: the
// device-visible stream is sweeps only (memory levels keep their own
// bucket events).
TEST(PageLayoutObliviousness, PageModeEmitsSweepsNotSlotEvents) {
  util::pcg64 ids(test::seed(315));
  const driven_tree run = drive_page_tree(316, 200, [&](std::uint64_t) {
    return util::uniform_below(ids, 100);
  });
  EXPECT_TRUE(analysis::storage_read_positions(run.trace).empty());
  EXPECT_FALSE(
      analysis::storage_sweep_positions(
          run.trace, oram::event_kind::storage_write_sweep)
          .empty());
}

}  // namespace
}  // namespace horam
