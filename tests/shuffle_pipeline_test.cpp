// Tests of the deamortized shuffle pipeline: the latency_histogram
// primitive, shuffle_policy_names() as the single source of policy
// names, the incremental-with-unbounded-budget == foreground
// bit-for-bit invariant across all four backends at shards {1, 4},
// bounded-budget correctness (staged blocks stay readable/writable
// while a job is in flight), controller_stats histogram merge /
// reset-on-every-lane regressions, the tenant-level latency
// distribution, the p99 tail-latency win, and the obliviousness audits
// of slice boundaries and slice contents under two distinct workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/obliviousness.h"
#include "horam.h"
#include "oram/path/path_backend.h"
#include "test_support.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 64;
constexpr std::size_t kPayload = 16;

client_builder pipeline_builder(backend_kind kind, std::uint32_t shards,
                                std::uint64_t seed_salt = 51) {
  return client_builder()
      .blocks(kBlocks)
      .memory_blocks(kMemoryBlocks)
      .payload_bytes(kPayload)
      .backend(kind)
      .shards(shards)
      .seed(test::seed(seed_salt));
}

std::vector<request> mixed_stream(std::uint64_t count, double write_frac,
                                  std::uint64_t seed) {
  util::pcg64 rng(seed);
  std::vector<request> stream;
  stream.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    request req;
    req.op = util::bernoulli(rng, write_frac) ? oram::op_kind::write
                                              : oram::op_kind::read;
    req.id = util::uniform_below(rng, kBlocks);
    if (req.op == oram::op_kind::write) {
      req.write_data.assign(kPayload, static_cast<std::uint8_t>(i));
    }
    stream.push_back(std::move(req));
  }
  return stream;
}

// ------------------------------------------------- latency histogram

TEST(LatencyHistogram, SmallValuesAreExact) {
  sim::latency_histogram h;
  for (sim::sim_time v = 0; v < 16; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.max(), 15);
  EXPECT_EQ(h.quantile(0.5), 7);
  EXPECT_EQ(h.quantile(1.0), 15);
  EXPECT_EQ(h.p99(), 15);
}

TEST(LatencyHistogram, QuantilesBoundTheSamplesTightly) {
  util::pcg64 rng(test::seed(52));
  std::vector<sim::sim_time> values;
  sim::latency_histogram h;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<sim::sim_time>(
        util::uniform_below(rng, 1'000'000'000) + 1);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    const sim::sim_time exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const sim::sim_time reported = h.quantile(q);
    // Conservative upper bound within the bucket's 12.5% resolution
    // (plus sampling slack between the two quantile conventions).
    EXPECT_GE(reported, exact * 95 / 100) << "q=" << q;
    EXPECT_LE(reported, exact * 115 / 100 + 16) << "q=" << q;
  }
  EXPECT_EQ(h.max(), values.back());
  EXPECT_EQ(h.quantile(1.0), values.back());
}

TEST(LatencyHistogram, MergeAndResetBehave) {
  sim::latency_histogram a;
  sim::latency_histogram b;
  a.record(100);
  a.record(200);
  b.record(1'000'000);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 1'000'000);
  EXPECT_LT(a.p50(), 1000);
  EXPECT_EQ(a.quantile(1.0), 1'000'000);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0);
  EXPECT_EQ(a.p99(), 0);
}

// ----------------------------------------------- policy name registry

TEST(ShufflePolicyNames, RoundTripAndAliases) {
  const std::span<const std::string_view> names = shuffle_policy_names();
  ASSERT_EQ(names.size(), std::size(all_shuffle_policies));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(shuffle_policy_name(all_shuffle_policies[i]), names[i]);
    EXPECT_EQ(shuffle_policy_by_name(names[i]), all_shuffle_policies[i]);
  }
  EXPECT_EQ(shuffle_policy_by_name("async_writeback"),
            shuffle_policy::async_writeback);
  EXPECT_THROW((void)shuffle_policy_by_name("bogus"), contract_error);
}

TEST(ShufflePolicyNames, BuilderParsesNamesAndNamesTheSetter) {
  client oram = pipeline_builder(backend_kind::partitioned, 1)
                    .shuffle("incremental")
                    .shuffle_slice_budget(0)
                    .build();
  EXPECT_EQ(oram.config().shuffle, shuffle_policy::incremental);

  try {
    (void)pipeline_builder(backend_kind::partitioned, 1).shuffle("bogus");
    FAIL() << "unknown policy name must throw";
  } catch (const contract_error& error) {
    EXPECT_NE(std::string(error.what()).find("shuffle()"),
              std::string::npos)
        << "diagnostic must name the setter: " << error.what();
  }
  EXPECT_THROW(
      (void)pipeline_builder(backend_kind::partitioned, 1)
          .shuffle_slice_budget(-1),
      contract_error);
}

// ------------- incremental(unbounded budget) == foreground, bit for bit

struct policy_grid_point {
  backend_kind backend;
  std::uint32_t shards;
};

class IncrementalUnbounded
    : public ::testing::TestWithParam<policy_grid_point> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsByShards, IncrementalUnbounded,
    ::testing::ValuesIn([] {
      std::vector<policy_grid_point> grid;
      for (const backend_kind kind : all_backend_kinds) {
        for (const std::uint32_t shards : {1u, 4u}) {
          grid.push_back(policy_grid_point{kind, shards});
        }
      }
      return grid;
    }()),
    [](const ::testing::TestParamInfo<policy_grid_point>& info) {
      return std::string(backend_name(info.param.backend)) + "_x" +
             std::to_string(info.param.shards);
    });

TEST_P(IncrementalUnbounded, MatchesForegroundBitForBit) {
  const auto [kind, shards] = GetParam();
  client foreground = pipeline_builder(kind, shards, 53)
                          .shuffle(shuffle_policy::foreground)
                          .trace(true)
                          .build();
  client incremental = pipeline_builder(kind, shards, 53)
                           .shuffle("incremental")
                           .shuffle_slice_budget(0)  // unbounded
                           .trace(true)
                           .build();

  const std::vector<request> stream =
      mixed_stream(350, 0.3, test::seed(54));
  std::vector<request_result> fg_results;
  std::vector<request_result> inc_results;
  foreground.run(stream, &fg_results);
  incremental.run(stream, &inc_results);

  ASSERT_EQ(fg_results.size(), inc_results.size());
  for (std::size_t i = 0; i < fg_results.size(); ++i) {
    EXPECT_EQ(fg_results[i].completion_time,
              inc_results[i].completion_time)
        << "request " << i;
    EXPECT_EQ(fg_results[i].hit, inc_results[i].hit);
    EXPECT_EQ(fg_results[i].read_data, inc_results[i].read_data);
  }
  EXPECT_EQ(foreground.now(), incremental.now());
  EXPECT_EQ(foreground.stats().periods, incremental.stats().periods);
  EXPECT_EQ(incremental.stats().shuffle_slices, 0u)
      << "unbounded budget must never defer slices";

  for (std::uint32_t s = 0; s < shards; ++s) {
    const oram::access_trace* fg_trace = foreground.eng().shard_trace(s);
    const oram::access_trace* inc_trace = incremental.eng().shard_trace(s);
    ASSERT_NE(fg_trace, nullptr);
    ASSERT_NE(inc_trace, nullptr);
    ASSERT_EQ(fg_trace->size(), inc_trace->size()) << "shard " << s;
    for (std::size_t i = 0; i < fg_trace->size(); ++i) {
      EXPECT_EQ(fg_trace->events()[i].kind, inc_trace->events()[i].kind)
          << "shard " << s << " event " << i;
      EXPECT_EQ(fg_trace->events()[i].a, inc_trace->events()[i].a);
      EXPECT_EQ(fg_trace->events()[i].b, inc_trace->events()[i].b);
    }
  }
}

// --------------------------- bounded budgets: correctness under slices

class IncrementalBounded : public ::testing::TestWithParam<backend_kind> {
};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IncrementalBounded,
    ::testing::ValuesIn(std::begin(all_backend_kinds),
                        std::end(all_backend_kinds)),
    [](const ::testing::TestParamInfo<backend_kind>& info) {
      return std::string(backend_name(info.param));
    });

/// A tiny budget forces many slices per period (and period-boundary
/// stalls), maximising the time requests interleave with an in-flight
/// job; every read must still return the latest write.
TEST_P(IncrementalBounded, StagedBlocksStayCoherent) {
  const backend_kind kind = GetParam();
  client oram = pipeline_builder(kind, 1, 55)
                    .shuffle(shuffle_policy::incremental)
                    .shuffle_slice_budget(1)  // one unit per slice
                    .build();

  util::pcg64 rng(test::seed(56));
  std::map<block_id, std::vector<std::uint8_t>> reference;
  const std::vector<request> stream =
      mixed_stream(400, 0.5, test::seed(57));
  std::vector<request_result> results;
  oram.run(stream, &results);
  ASSERT_EQ(results.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const request& req = stream[i];
    if (req.op == oram::op_kind::write) {
      reference[req.id] = req.write_data;
    } else {
      const auto it = reference.find(req.id);
      const std::vector<std::uint8_t> expected =
          it != reference.end() ? it->second
                                : std::vector<std::uint8_t>(kPayload, 0);
      EXPECT_EQ(results[i].read_data, expected) << "request " << i;
    }
  }

  const controller_stats& stats = oram.stats();
  EXPECT_GT(stats.periods, 2u);
  if (kind == backend_kind::partitioned || kind == backend_kind::path ||
      kind == backend_kind::ring || kind == backend_kind::hier) {
    // Native stepped jobs: a one-unit budget splits every period into
    // many slices.
    EXPECT_GT(stats.shuffle_slices, stats.periods);
  } else {
    // Default monolithic adapter: exactly one (full-size) slice per
    // deferred period — correct, just not deamortized.
    EXPECT_EQ(stats.shuffle_slices, stats.periods);
  }
  EXPECT_EQ(stats.request_latency.count(), stats.requests);
  oram.backend().check_consistency();
}

TEST(IncrementalBounded, ShardsShuffleWhileSiblingsServe) {
  client oram = pipeline_builder(backend_kind::partitioned, 4, 58)
                    .shuffle(shuffle_policy::incremental)
                    .shuffle_slice_budget(1)
                    .build();
  engine& eng = oram.eng();

  util::pcg64 rng(test::seed(59));
  bool overlapped = false;
  std::uint64_t completions = 0;
  std::uint64_t submitted = 0;
  const engine::completion on_complete =
      [&](std::uint64_t, request_result&&) { ++completions; };
  while (submitted < 2000 || eng.pending() > 0) {
    for (std::uint64_t k = 0; k < eng.round_budget() && submitted < 2000;
         ++k, ++submitted) {
      request req;
      req.op = oram::op_kind::read;
      req.id = util::uniform_below(rng, kBlocks);
      (void)eng.submit(std::move(req));
    }
    if (!eng.step_round(on_complete)) {
      break;
    }
    // The deamortization claim for the engine: some shard is mid-
    // shuffle while the machine as a whole keeps serving requests.
    std::uint32_t in_flight = 0;
    for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
      in_flight += eng.shard(s).shuffle_in_flight() ? 1 : 0;
    }
    if (in_flight > 0 && in_flight < eng.shard_count() &&
        eng.pending() > 0) {
      overlapped = true;
    }
  }
  EXPECT_EQ(completions, 2000u);
  EXPECT_TRUE(overlapped)
      << "no round ever had a shuffling shard next to serving shards";
  controller_stats total;
  for (std::uint32_t s = 0; s < eng.shard_count(); ++s) {
    total += eng.shard(s).stats();
  }
  EXPECT_GT(total.shuffle_slices, 0u);
}

/// Contract test of the default monolithic adapter, driven directly
/// (through the controller its single slice completes within the
/// creating cycle, so the staging accessors only matter to direct
/// callers): staged blocks are visible and write-through before the
/// step, the lifecycle expects() fire, and the write lands on storage.
TEST(IncrementalBounded, DefaultAdapterStagesAndWritesThrough) {
  sim::block_device device{sim::hdd_paper()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{test::seed(72)};
  horam_config config;
  config.block_count = kBlocks;
  config.memory_blocks = kMemoryBlocks;
  config.payload_bytes = kPayload;
  std::unique_ptr<oram_backend> backend =
      make_backend(backend_kind::sqrt, config, device, cpu, rng, nullptr,
                   nullptr);

  // Pull two blocks into the "cache" so they become the hot set.
  std::vector<oram::evicted_block> evicted;
  for (const block_id id : {block_id{3}, block_id{9}}) {
    oram_backend::load_result load = backend->load_block(id);
    evicted.push_back(oram::evicted_block{id, std::move(load.payload)});
  }

  std::unique_ptr<shuffle_job> job =
      backend->begin_shuffle(std::move(evicted), 0);
  EXPECT_FALSE(job->done());
  EXPECT_TRUE(job->holds(3));
  EXPECT_TRUE(job->holds(9));
  EXPECT_FALSE(job->holds(4));
  EXPECT_EQ(job->staged(4), nullptr);
  std::vector<std::uint8_t>* staged = job->staged(9);
  ASSERT_NE(staged, nullptr);
  staged->assign(kPayload, 0xEE);  // write-through into the job

  EXPECT_THROW(job->finish(evicted), contract_error);  // before done()
  const shuffle_cost cost = job->step(1);  // monolithic: one full slice
  EXPECT_GT(cost.total(), 0);
  EXPECT_TRUE(job->done());
  EXPECT_EQ(job->staged(9), nullptr);  // placed back on storage
  EXPECT_FALSE(job->holds(3));
  EXPECT_THROW((void)job->step(1), contract_error);  // after done()

  std::vector<oram::evicted_block> overflow;
  job->finish(overflow);
  EXPECT_TRUE(overflow.empty());  // sqrt never overflows
  EXPECT_THROW(job->finish(overflow), contract_error);  // twice

  // The staged write survived the shuffle.
  EXPECT_TRUE(backend->in_storage(9));
  const oram_backend::load_result back = backend->load_block(9);
  EXPECT_EQ(back.payload, std::vector<std::uint8_t>(kPayload, 0xEE));
  backend->check_consistency();
}

// ---------------------- stats plumbing: merge / aggregate / reset

TEST(ShuffleStatsRegression, OperatorPlusMergesHistogramsAndCounters) {
  controller_stats a;
  controller_stats b;
  a.request_latency.record(100);
  a.request_latency.record(200);
  a.shuffle_slices = 3;
  a.shuffle_stall_time = 10;
  b.request_latency.record(1'000'000);
  b.shuffle_slices = 4;
  b.shuffle_stall_time = 20;

  controller_stats sum = a;
  sum += b;
  EXPECT_EQ(sum.request_latency.count(), 3u);
  EXPECT_EQ(sum.request_latency.max(), 1'000'000);
  EXPECT_EQ(sum.request_latency.quantile(1.0), 1'000'000);
  EXPECT_LT(sum.request_latency.p50(), 1000);
  EXPECT_EQ(sum.shuffle_slices, 7u);
  EXPECT_EQ(sum.shuffle_stall_time, 30);

  const controller_stats parts[] = {a, b};
  const controller_stats agg = aggregate(parts);
  EXPECT_EQ(agg.request_latency.count(), 3u);
  EXPECT_EQ(agg.request_latency.max(), 1'000'000);
  EXPECT_EQ(agg.shuffle_slices, 7u);
  EXPECT_EQ(agg.shuffle_stall_time, 30);
}

TEST(ShuffleStatsRegression, ResetClearsLatencyHistogramsOnEveryLane) {
  client oram = pipeline_builder(backend_kind::partitioned, 4, 60)
                    .shuffle(shuffle_policy::incremental)
                    .shuffle_slice_budget(1)
                    .build();
  const std::vector<request> stream =
      mixed_stream(300, 0.2, test::seed(61));
  oram.run(stream, nullptr);

  EXPECT_GT(oram.stats().request_latency.count(), 0u);
  for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
    EXPECT_GT(oram.eng().shard(s).stats().request_latency.count(), 0u)
        << "shard " << s;
  }

  oram.reset_stats();
  EXPECT_EQ(oram.stats().request_latency.count(), 0u);
  EXPECT_EQ(oram.stats().request_latency.max(), 0);
  for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
    const controller_stats& lane = oram.eng().shard(s).stats();
    EXPECT_EQ(lane.request_latency.count(), 0u) << "shard " << s;
    EXPECT_EQ(lane.shuffle_slices, 0u) << "shard " << s;
    EXPECT_EQ(lane.shuffle_stall_time, 0) << "shard " << s;
  }

  // The window restarts cleanly: new traffic repopulates every lane.
  // The controller-level histogram is resource-level — it includes the
  // router's padding requests — so compare against the raw lane
  // counters, not the application-level requests field.
  oram.run(stream, nullptr);
  std::uint64_t raw_requests = 0;
  for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
    raw_requests += oram.eng().shard(s).stats().requests;
  }
  EXPECT_EQ(oram.stats().request_latency.count(), raw_requests);
  EXPECT_GE(raw_requests, oram.stats().requests);
}

TEST(ShuffleStatsRegression, TenantStatsCarryTheLatencyDistribution) {
  service svc = pipeline_builder(backend_kind::partitioned, 1, 62)
                    .shuffle(shuffle_policy::incremental)
                    .shuffle_slice_budget(1)
                    .build_service();
  session alice = svc.open_session();
  session bob = svc.open_session();

  util::pcg64 rng(test::seed(63));
  std::vector<ticket> tickets;
  for (int i = 0; i < 120; ++i) {
    session& who = i % 2 == 0 ? alice : bob;
    tickets.push_back(
        who.async_read(util::uniform_below(rng, kBlocks)));
  }
  svc.run_until_idle();

  for (const std::uint32_t tenant : {0u, 1u}) {
    const tenant_stats ts = svc.tenant_stats(tenant);
    EXPECT_EQ(ts.latency.count(), ts.completed);
    EXPECT_EQ(ts.latency.max(), ts.max_latency);
    EXPECT_GE(ts.latency.p99(), ts.latency.p50());
    EXPECT_GE(ts.mean_latency(), ts.latency.p50() / 2);
  }
  for (ticket& t : tickets) {
    EXPECT_TRUE(t.ready());
    // Per-ticket latency is bounded by its tenant's recorded maximum
    // and by the completion timestamp (submission never precedes 0).
    const ticket_result& r = t.result();
    EXPECT_GT(r.sim_time, 0);
    EXPECT_GE(r.latency, 0);
    EXPECT_LE(r.latency, r.sim_time);
    EXPECT_LE(r.latency, svc.tenant_stats(t.tenant()).max_latency);
  }

  svc.reset_stats();
  EXPECT_EQ(svc.tenant_stats(0).latency.count(), 0u);
  EXPECT_EQ(svc.tenant_stats(1).latency.count(), 0u);
}

// ------------------------------------------------ the tail-latency win

TEST(ShuffleTailLatency, BoundedBudgetCutsP99VersusForeground) {
  const std::vector<request> stream =
      mixed_stream(900, 0.2, test::seed(64));

  client foreground = pipeline_builder(backend_kind::partitioned, 1, 65)
                          .shuffle(shuffle_policy::foreground)
                          .build();
  foreground.run(stream, nullptr);
  const controller_stats fg = foreground.stats();
  ASSERT_GT(fg.periods, 2u);

  // The no-stall budget: the measured mean burst spread over the
  // period's rounds (public quantities only).
  const sim::sim_time b0 = std::max<sim::sim_time>(
      1, fg.shuffle_time / static_cast<sim::sim_time>(fg.periods) /
             static_cast<sim::sim_time>(kMemoryBlocks / 2));

  client incremental = pipeline_builder(backend_kind::partitioned, 1, 65)
                           .shuffle(shuffle_policy::incremental)
                           .shuffle_slice_budget(b0)
                           .build();
  incremental.run(stream, nullptr);
  const controller_stats inc = incremental.stats();

  EXPECT_GT(inc.shuffle_slices, 0u);
  EXPECT_LT(inc.request_latency.p99(), fg.request_latency.p99())
      << "incremental p99 " << inc.request_latency.p99()
      << " vs foreground " << fg.request_latency.p99();
  EXPECT_LT(inc.request_latency.max(), fg.request_latency.max());
}

// --------------------- obliviousness: slice boundaries and contents

/// Per-period slice shapes extracted from a trace: for every period,
/// the sequence of (cycle-into-period, partitions-in-slice) pairs.
struct slice_shape {
  std::vector<std::uint64_t> boundary_cycles;   // slice start positions
  std::vector<std::uint64_t> partition_counts;  // partitions per slice
};

std::vector<slice_shape> extract_slice_shapes(
    const oram::access_trace& trace) {
  std::vector<slice_shape> periods;
  slice_shape current;
  bool period_open = false;
  std::uint64_t cycles_into_period = 0;
  bool in_slice = false;
  std::uint64_t slice_partitions = 0;
  const auto close_slice = [&] {
    if (in_slice) {
      current.partition_counts.push_back(slice_partitions);
      in_slice = false;
    }
  };
  for (const oram::trace_event& event : trace.events()) {
    switch (event.kind) {
      case oram::event_kind::period_begin:
        close_slice();
        if (period_open) {
          periods.push_back(std::move(current));
          current = slice_shape{};
        }
        period_open = true;
        cycles_into_period = 0;
        break;
      case oram::event_kind::cycle_begin:
        close_slice();
        ++cycles_into_period;
        break;
      case oram::event_kind::shuffle_slice:
        close_slice();
        in_slice = true;
        slice_partitions = 0;
        current.boundary_cycles.push_back(cycles_into_period);
        break;
      case oram::event_kind::shuffle_partition:
        if (in_slice) {
          ++slice_partitions;
        }
        break;
      default:
        break;
    }
  }
  // The trailing period is dropped: its job may still be in flight
  // when the request stream ends, truncating the slice sequence.
  return periods;
}

TEST(ShuffleSliceObliviousness, PartitionedSliceShapeIsWorkloadFree) {
  // Two deliberately different workloads: uniform vs a hot 5% region.
  const auto run_with = [&](double hot_probability,
                            std::uint64_t workload_salt) {
    client oram = pipeline_builder(backend_kind::partitioned, 1, 66)
                      .shuffle(shuffle_policy::incremental)
                      .shuffle_slice_budget(1)
                      .trace(true)
                      .build();
    util::pcg64 rng(test::seed(workload_salt));
    std::vector<request> stream;
    for (int i = 0; i < 700; ++i) {
      request req;
      req.op = oram::op_kind::read;
      req.id = util::bernoulli(rng, hot_probability)
                   ? util::uniform_below(rng, kBlocks / 20)
                   : util::uniform_below(rng, kBlocks);
      stream.push_back(std::move(req));
    }
    oram.run(stream, nullptr);
    return extract_slice_shapes(*oram.trace());
  };

  const std::vector<slice_shape> uniform = run_with(0.0, 67);
  const std::vector<slice_shape> hotspot = run_with(0.9, 68);
  ASSERT_GT(uniform.size(), 1u);
  ASSERT_GT(hotspot.size(), 1u);

  // Strong form: the partitioned slice schedule is a pure function of
  // the configuration — every period's boundary/size vectors are
  // identical within and across workloads.
  for (const auto* shapes : {&uniform, &hotspot}) {
    for (const slice_shape& period : *shapes) {
      EXPECT_EQ(period.boundary_cycles, (*shapes)[0].boundary_cycles);
      EXPECT_EQ(period.partition_counts, (*shapes)[0].partition_counts);
    }
  }
  EXPECT_EQ(uniform[0].boundary_cycles, hotspot[0].boundary_cycles);
  EXPECT_EQ(uniform[0].partition_counts, hotspot[0].partition_counts);

  // Statistical form (the audit machinery the satellite asks for):
  // pooled slice boundaries and sizes are distribution-identical.
  std::vector<std::uint64_t> bounds_a;
  std::vector<std::uint64_t> bounds_b;
  std::vector<std::uint64_t> sizes_a;
  std::vector<std::uint64_t> sizes_b;
  std::uint64_t universe = 1;
  for (const slice_shape& period : uniform) {
    bounds_a.insert(bounds_a.end(), period.boundary_cycles.begin(),
                    period.boundary_cycles.end());
    sizes_a.insert(sizes_a.end(), period.partition_counts.begin(),
                   period.partition_counts.end());
  }
  for (const slice_shape& period : hotspot) {
    bounds_b.insert(bounds_b.end(), period.boundary_cycles.begin(),
                    period.boundary_cycles.end());
    sizes_b.insert(sizes_b.end(), period.partition_counts.begin(),
                   period.partition_counts.end());
  }
  for (const auto* samples : {&bounds_a, &bounds_b, &sizes_a, &sizes_b}) {
    for (const std::uint64_t v : *samples) {
      universe = std::max(universe, v + 1);
    }
  }
  const analysis::equality_report boundaries =
      analysis::audit_distribution_equality(bounds_a, bounds_b, universe);
  EXPECT_TRUE(boundaries.passed())
      << "slice boundary timing leaked: ks=" << boundaries.ks
      << " chi=" << boundaries.chi_square;
  const analysis::equality_report sizes =
      analysis::audit_distribution_equality(sizes_a, sizes_b, universe);
  EXPECT_TRUE(sizes.passed())
      << "slice sizes leaked: ks=" << sizes.ks
      << " chi=" << sizes.chi_square;
}

TEST(ShuffleSliceObliviousness, PathSliceContentsAreWorkloadFree) {
  // Leaves touched by in-slice drain accesses must stay uniform and
  // distribution-identical across two distinct workloads.
  const auto run_with = [&](double hot_probability,
                            std::uint64_t workload_salt,
                            std::uint64_t& leaf_universe_out) {
    client oram = pipeline_builder(backend_kind::path, 1, 69)
                      .shuffle(shuffle_policy::incremental)
                      .shuffle_slice_budget(1)
                      .trace(true)
                      .build();
    const auto* backend =
        dynamic_cast<const oram::path_backend*>(&oram.backend());
    EXPECT_NE(backend, nullptr);
    leaf_universe_out = backend->tree().config().leaf_count;
    util::pcg64 rng(test::seed(workload_salt));
    std::vector<request> stream;
    for (int i = 0; i < 1400; ++i) {
      request req;
      req.op = oram::op_kind::read;
      req.id = util::bernoulli(rng, hot_probability)
                   ? util::uniform_below(rng, kBlocks / 20)
                   : util::uniform_below(rng, kBlocks);
      stream.push_back(std::move(req));
    }
    oram.run(stream, nullptr);

    // In-slice path accesses of the backend tree (the drain traffic).
    std::vector<std::uint64_t> leaves;
    bool in_slice = false;
    for (const oram::trace_event& event : oram.trace()->events()) {
      switch (event.kind) {
        case oram::event_kind::shuffle_slice:
          in_slice = true;
          break;
        case oram::event_kind::cycle_begin:
        case oram::event_kind::period_begin:
          in_slice = false;
          break;
        case oram::event_kind::memory_path_access:
          if (in_slice && event.b == leaf_universe_out) {
            leaves.push_back(event.a);
          }
          break;
        default:
          break;
      }
    }
    return leaves;
  };

  std::uint64_t universe_a = 0;
  std::uint64_t universe_b = 0;
  const std::vector<std::uint64_t> leaves_a = run_with(0.0, 70, universe_a);
  const std::vector<std::uint64_t> leaves_b = run_with(0.9, 71, universe_b);
  ASSERT_EQ(universe_a, universe_b);
  ASSERT_GT(leaves_a.size(), 100u);
  ASSERT_GT(leaves_b.size(), 60u);  // the hot workload shuffles less

  const analysis::uniformity_report uniform_a =
      analysis::audit_uniformity(leaves_a, universe_a);
  EXPECT_TRUE(uniform_a.passed())
      << "slice drain leaves not uniform: chi=" << uniform_a.chi_square
      << " ks=" << uniform_a.ks;
  const analysis::uniformity_report uniform_b =
      analysis::audit_uniformity(leaves_b, universe_b);
  EXPECT_TRUE(uniform_b.passed());
  const analysis::equality_report equality =
      analysis::audit_distribution_equality(leaves_a, leaves_b,
                                            universe_a);
  EXPECT_TRUE(equality.passed())
      << "slice contents leaked the workload: ks=" << equality.ks
      << " chi=" << equality.chi_square;
}

}  // namespace
}  // namespace horam
