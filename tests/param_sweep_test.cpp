// Parameterised property sweeps across the dimensions the rest of the
// suite holds fixed: Path ORAM bucket size Z and payload size,
// square-root ORAM dummy/period geometry, Melbourne quotas, device
// profile properties, and end-to-end H-ORAM bucket-size variation.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/controller.h"
#include "oram/path/path_oram.h"
#include "oram/sqrt/sqrt_oram.h"
#include "shuffle/melbourne.h"
#include "sim/profiles.h"
#include "util/rng.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

// ------------------------------------------- path ORAM: Z and payload

class PathOramZSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Geometries, PathOramZSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u, 6u, 8u),
                       ::testing::Values(std::size_t{8},
                                         std::size_t{64},
                                         std::size_t{256})));

TEST_P(PathOramZSweep, DifferentialCorrectnessAndStashBound) {
  const auto [z, payload_bytes] = GetParam();
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(1000 + z);

  oram::path_oram_config config;
  config.leaf_count = 64;
  config.bucket_size = z;
  config.payload_bytes = payload_bytes;
  config.id_universe = 256;
  config.seal = (z % 2) == 0;  // exercise both codec modes
  oram::path_oram oram(config, memory, nullptr, cpu, rng, nullptr);

  std::map<block_id, std::uint8_t> shadow;
  util::pcg64 driver(2000 + z);
  // Keep the working set well under capacity for small Z.
  const std::uint64_t universe = std::min<std::uint64_t>(
      256, oram.capacity_blocks() / 2);
  for (int step = 0; step < 1200; ++step) {
    const block_id id = util::uniform_below(driver, universe);
    if (util::bernoulli(driver, 0.5)) {
      const auto tag = static_cast<std::uint8_t>(step);
      oram.access(op_kind::write, id,
                  std::vector<std::uint8_t>(payload_bytes, tag), {});
      shadow[id] = tag;
    } else if (shadow.contains(id)) {
      std::vector<std::uint8_t> out(payload_bytes);
      oram.access(op_kind::read, id, {}, out);
      ASSERT_EQ(out[0], shadow[id])
          << "Z=" << z << " payload=" << payload_bytes << " step "
          << step;
    }
  }
  // Stash bound degrades as Z shrinks; Z=2 needs the loosest bound.
  const std::size_t bound = z >= 4 ? 64 : 160;
  EXPECT_LT(oram.stash_ref().peak_size(), bound) << "Z=" << z;
}

// -------------------------------------------- sqrt ORAM geometry sweep

class SqrtGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(Geometries, SqrtGeometry,
                         ::testing::Combine(::testing::Values(16u, 64u,
                                                              100u),
                                            ::testing::Values(2u, 8u,
                                                              16u)));

TEST_P(SqrtGeometry, CorrectAcrossDummyAndPeriodChoices) {
  const auto [n, period] = GetParam();
  sim::block_device disk(sim::hdd_paper());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(3000 + n + period);

  oram::sqrt_oram_config config;
  config.block_count = n;
  config.dummy_count = period;  // minimum legal: one dummy per hit
  config.period = period;
  config.payload_bytes = 16;
  config.seal = false;
  oram::sqrt_oram oram(config, disk, cpu, rng, nullptr);

  std::map<block_id, std::uint8_t> shadow;
  util::pcg64 driver(4000 + n);
  for (int step = 0; step < 600; ++step) {
    const block_id id = util::uniform_below(driver, n);
    if (util::bernoulli(driver, 0.5)) {
      const auto tag = static_cast<std::uint8_t>(step);
      oram.access(op_kind::write, id,
                  std::vector<std::uint8_t>(16, tag), {});
      shadow[id] = tag;
    } else if (shadow.contains(id)) {
      std::vector<std::uint8_t> out(16);
      oram.access(op_kind::read, id, {}, out);
      ASSERT_EQ(out[0], shadow[id]) << "n=" << n << " T=" << period;
    }
  }
  EXPECT_GT(oram.stats().reshuffles, 0u);
}

// -------------------------------------------------- melbourne quotas

class MelbourneQuota : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Quotas, MelbourneQuota,
                         ::testing::Values(4, 6, 10, 16));

TEST_P(MelbourneQuota, ShuffleSucceedsAcrossQuotas) {
  const std::uint64_t quota = GetParam();
  constexpr std::uint64_t n = 128;
  sim::block_device device(sim::dram_ddr4());
  const shuffle::melbourne_config config{.message_quota = quota,
                                         .max_retries = 128};
  storage::block_store input(device, 0, n, 16, 16);
  storage::block_store scratch(
      device, n * 16, shuffle::melbourne_scratch_records(n, config), 16,
      16);
  storage::block_store output(
      device,
      (n + shuffle::melbourne_scratch_records(n, config)) * 16, n, 16,
      16);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> record(16,
                                     static_cast<std::uint8_t>(i));
    input.write(i, record);
  }
  util::pcg64 rng(5000 + quota);
  const auto result =
      shuffle::melbourne_shuffle(input, scratch, output, rng, config);
  ASSERT_TRUE(shuffle::is_permutation(result.pi));
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(output.peek(result.pi[i])[0],
              static_cast<std::uint8_t>(i));
  }
  // Smaller quotas retry more; all must eventually succeed.
  if (quota >= 10) {
    EXPECT_EQ(result.stats.retries, 0u);
  }
}

// ------------------------------------------------ device properties

class DeviceProfiles
    : public ::testing::TestWithParam<sim::device_profile> {};

INSTANTIATE_TEST_SUITE_P(All, DeviceProfiles,
                         ::testing::Values(sim::hdd_paper(),
                                           sim::hdd_7200_raw(),
                                           sim::ssd_sata(), sim::nvme(),
                                           sim::dram_ddr4()),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST_P(DeviceProfiles, SequentialNeverSlowerThanRandom) {
  sim::block_device random_device(GetParam());
  sim::block_device seq_device(GetParam());
  sim::sim_time random_total = 0;
  sim::sim_time seq_total = 0;
  for (int i = 0; i < 64; ++i) {
    random_total += random_device.read(
        static_cast<std::uint64_t>(i) * 1000003 * 4096, 4096);
    seq_total +=
        seq_device.read(static_cast<std::uint64_t>(i) * 4096, 4096);
  }
  EXPECT_LE(seq_total, random_total);
}

TEST_P(DeviceProfiles, CostScalesWithSize) {
  sim::block_device a(GetParam());
  sim::block_device b(GetParam());
  EXPECT_LT(a.read(0, 4096), b.read(0, 1 << 20));
}

// --------------------------------------- H-ORAM bucket-size variation

class HoramZSweep : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(BucketSizes, HoramZSweep,
                         ::testing::Values(2u, 4u, 8u));

TEST_P(HoramZSweep, EndToEndCorrectness) {
  const std::uint32_t z = GetParam();
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(6000 + z);

  horam_config config;
  config.block_count = 256;
  config.memory_blocks = 64;
  config.bucket_size = z;
  config.payload_bytes = 16;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng);

  std::map<block_id, std::uint8_t> shadow;
  util::pcg64 driver(7000 + z);
  for (int step = 0; step < 800; ++step) {
    const block_id id = util::uniform_below(driver, 256);
    if (util::bernoulli(driver, 0.4)) {
      const auto tag = static_cast<std::uint8_t>(step);
      ctrl.write(id, std::vector<std::uint8_t>(16, tag));
      shadow[id] = tag;
    } else if (shadow.contains(id)) {
      ASSERT_EQ(ctrl.read(id)[0], shadow[id]) << "Z=" << z;
    }
  }
  EXPECT_GT(ctrl.stats().periods, 0u);
}

}  // namespace
}  // namespace horam
