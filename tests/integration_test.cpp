// Cross-module integration tests: H-ORAM against the baseline ORAMs on
// identical virtual machines, cost-shape properties the paper's
// argument depends on, file-backed trace round trips, and edge /
// degenerate configurations.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/controller.h"
#include "oram/partition/partition_oram.h"
#include "oram/sqrt/sqrt_oram.h"
#include "sim/buffer_cache.h"
#include "sim/profiles.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/trace_io.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

// ------------------------------------------------ cost-shape checks

TEST(CostShapes, HoramHitsCostLessIoThanSqrtAccesses) {
  // The core pitch: square-root ORAM pays one storage read per access,
  // always; H-ORAM pays one storage read per *cycle* but services c
  // requests with it.
  sim::block_device horam_disk(sim::hdd_paper());
  sim::block_device horam_memory(sim::dram_ddr4());
  sim::block_device sqrt_disk(sim::hdd_paper());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng_a(81), rng_b(82);

  horam_config config;
  config.block_count = 1024;
  config.memory_blocks = 128;
  config.payload_bytes = 32;
  config.seal = false;
  controller horam_ctrl(config, horam_disk, horam_memory, cpu, rng_a);

  oram::sqrt_oram_config sqrt_config;
  sqrt_config.block_count = 1024;
  sqrt_config.payload_bytes = 32;
  sqrt_config.seal = false;
  oram::sqrt_oram sqrt(sqrt_config, sqrt_disk, cpu, rng_b, nullptr);

  // Same hot workload on both.
  util::pcg64 wl(83);
  workload::stream_config stream;
  stream.request_count = 2000;
  stream.block_count = 1024;
  stream.payload_bytes = 32;
  const auto requests = workload::hotspot(wl, stream, 0.8, 0.05);

  horam_ctrl.run(requests);
  for (const request& req : requests) {
    sqrt.access(req.op, req.id, req.write_data, {});
  }
  // Storage reads: H-ORAM one per cycle; sqrt one per request.
  EXPECT_LT(horam_ctrl.stats().cycles, 2000u);
  EXPECT_GE(sqrt.stats().accesses, 2000u);
}

TEST(CostShapes, HoramAccessPeriodIoIsOneBlockPerCycle) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(84);
  horam_config config;
  config.block_count = 1024;
  config.memory_blocks = 128;
  config.payload_bytes = 32;
  config.logical_block_bytes = 1024;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng);

  // Fewer requests than a period: no shuffle, so all storage traffic
  // is loads — exactly cycles * 1 KB read, nothing written.
  std::vector<request> batch;
  for (block_id id = 0; id < 40; ++id) {
    batch.push_back(request{op_kind::read, id, 0, {}});
  }
  ctrl.run(batch);
  EXPECT_EQ(ctrl.stats().periods, 0u);
  EXPECT_EQ(disk.stats().bytes_read, ctrl.stats().cycles * 1024);
  EXPECT_EQ(disk.stats().bytes_written, 0u);
}

TEST(CostShapes, ShuffleTrafficIsOverwhelminglySequential) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(85);
  horam_config config;
  config.block_count = 4096;
  config.memory_blocks = 256;
  config.payload_bytes = 32;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng);

  util::pcg64 wl(86);
  workload::stream_config stream;
  stream.request_count = 2000;
  stream.block_count = 4096;
  stream.payload_bytes = 32;
  ctrl.run(workload::uniform(wl, stream));
  ASSERT_GT(ctrl.stats().periods, 0u);

  // Writes only happen in shuffles, and partitions are streamed: the
  // per-op payload must be large (whole partitions, not single blocks).
  const auto& io = disk.stats();
  ASSERT_GT(io.write_ops, 0u);
  EXPECT_GT(io.bytes_written / io.write_ops,
            10 * config.logical_block_bytes == 0
                ? 10 * (config.payload_bytes + 8)
                : 10 * (config.payload_bytes + 8));
}

TEST(CostShapes, PartitionOramShufflesMoreOftenButSmaller) {
  // §2.1.4 vs §4.3: partition ORAM shuffles one partition every v
  // accesses; H-ORAM batches a whole period then shuffles everything.
  sim::block_device disk(sim::hdd_paper());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(87);
  oram::partition_oram_config config;
  config.block_count = 1024;
  config.payload_bytes = 32;
  config.seal = false;
  oram::partition_oram oram(config, disk, cpu, rng, nullptr);
  util::pcg64 driver(88);
  for (int i = 0; i < 500; ++i) {
    oram.access(op_kind::read, util::uniform_below(driver, 1024), {}, {});
  }
  EXPECT_GT(oram.stats().evictions, 10u);  // many small shuffles
}

// ------------------------------------------------- page-cache effect

TEST(BufferCacheIntegration, CacheExplainsThesisLatencies) {
  // A raw 7200 RPM disk costs ~8.5 ms per random read; behind a big
  // LRU page cache, repeated touches cost microseconds — this is why
  // the thesis's measured "HDD" latencies are far below seek time.
  sim::block_device raw(sim::hdd_7200_raw());
  sim::buffer_cache cache(raw, {.page_size = 4096,
                                .capacity_pages = 1 << 14,
                                .hit_time = 2000});
  const sim::sim_time cold = cache.read(123456789, 1024);
  const sim::sim_time warm = cache.read(123456789, 1024);
  EXPECT_GT(cold, 8 * util::milliseconds);
  EXPECT_LT(warm, 10 * util::microseconds);
}

// ------------------------------------------------- trace file round trip

TEST(TraceFiles, SaveAndReplayFromDisk) {
  util::pcg64 rng(89);
  workload::stream_config stream;
  stream.request_count = 200;
  stream.block_count = 512;
  stream.write_fraction = 0.3;
  stream.payload_bytes = 16;
  const auto original = workload::hotspot(rng, stream);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "horam_trace_test.csv";
  {
    std::ofstream out(path);
    workload::save_trace(out, original);
  }
  std::ifstream in(path);
  const auto loaded = workload::load_trace(in, 16);
  std::filesystem::remove(path);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded[i].id, original[i].id);
    ASSERT_EQ(loaded[i].op, original[i].op);
  }

  // Replaying the loaded trace gives identical scheduling statistics.
  const auto run_stats = [](const std::vector<request>& batch) {
    sim::block_device disk(sim::hdd_paper());
    sim::block_device memory(sim::dram_ddr4());
    const sim::cpu_model cpu(sim::cpu_aesni());
    util::pcg64 seed(90);
    horam_config config;
    config.block_count = 512;
    config.memory_blocks = 64;
    config.payload_bytes = 16;
    config.seal = false;
    controller ctrl(config, disk, memory, cpu, seed);
    ctrl.run(batch);
    return std::pair(ctrl.stats().cycles, ctrl.now());
  };
  EXPECT_EQ(run_stats(original).first, run_stats(loaded).first);
}

// -------------------------------------------------------- edge cases

TEST(EdgeCases, SmallestViableHoram) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(91);
  horam_config config;
  config.block_count = 32;
  config.memory_blocks = 8;  // period = 4 loads
  config.payload_bytes = 8;
  config.seal = true;
  controller ctrl(config, disk, memory, cpu, rng);
  for (block_id id = 0; id < 32; ++id) {
    ctrl.write(id, std::vector<std::uint8_t>(8, static_cast<std::uint8_t>(
                                                    id)));
  }
  for (block_id id = 0; id < 32; ++id) {
    EXPECT_EQ(ctrl.read(id)[0], static_cast<std::uint8_t>(id));
  }
  EXPECT_GT(ctrl.stats().periods, 2u);
}

TEST(EdgeCases, MemoryAsLargeAsDatasetIsRejected) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(92);
  horam_config config;
  config.block_count = 64;
  config.memory_blocks = 128;  // n/2 >= N: storage pointless
  config.payload_bytes = 8;
  EXPECT_THROW(controller(config, disk, memory, cpu, rng),
               contract_error);
}

TEST(EdgeCases, RequestOutsideUniverseIsRejected) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(93);
  horam_config config;
  config.block_count = 64;
  config.memory_blocks = 16;
  config.payload_bytes = 8;
  controller ctrl(config, disk, memory, cpu, rng);
  EXPECT_THROW(ctrl.read(64), contract_error);
}

TEST(EdgeCases, OversizedWriteIsRejected) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(94);
  horam_config config;
  config.block_count = 64;
  config.memory_blocks = 16;
  config.payload_bytes = 8;
  controller ctrl(config, disk, memory, cpu, rng);
  EXPECT_THROW(ctrl.write(1, std::vector<std::uint8_t>(9, 0)),
               contract_error);
}

TEST(EdgeCases, EmptyBatchIsANoOp) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(95);
  horam_config config;
  config.block_count = 64;
  config.memory_blocks = 16;
  config.payload_bytes = 8;
  controller ctrl(config, disk, memory, cpu, rng);
  std::vector<request> empty;
  ctrl.run(empty);
  EXPECT_EQ(ctrl.stats().cycles, 0u);
  EXPECT_EQ(ctrl.now(), 0);
}

TEST(EdgeCases, RepeatedBatchesAccumulateTime) {
  sim::block_device disk(sim::hdd_paper());
  sim::block_device memory(sim::dram_ddr4());
  const sim::cpu_model cpu(sim::cpu_aesni());
  util::pcg64 rng(96);
  horam_config config;
  config.block_count = 128;
  config.memory_blocks = 16;
  config.payload_bytes = 8;
  config.seal = false;
  controller ctrl(config, disk, memory, cpu, rng);
  std::vector<request> batch{request{op_kind::read, 5, 0, {}}};
  ctrl.run(batch);
  const sim::sim_time after_first = ctrl.now();
  ctrl.run(batch);
  EXPECT_GT(ctrl.now(), after_first);
}

}  // namespace
}  // namespace horam
