// Shared test machinery: one reproducible seed for every randomized
// test RNG.
//
// All randomized tests derive their generators from a single base
// seed, logged once per test binary. By default the base seed is a
// fixed constant, so CI runs are deterministic; exporting
// HORAM_TEST_SEED=<n> (any strtoull format) reruns the whole binary
// under a different seed — which is how a statistical-test failure
// seen in a CI log is reproduced locally: copy the logged value.
#ifndef HORAM_TESTS_TEST_SUPPORT_H
#define HORAM_TESTS_TEST_SUPPORT_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace horam::test {

/// Base seed shared by every randomized test in the binary; logged on
/// first use so failures are reproducible from the CI log.
inline std::uint64_t seed() {
  static const std::uint64_t value = [] {
    std::uint64_t s = 0x484f52414d2019ULL;  // default: fixed constant
    if (const char* env = std::getenv("HORAM_TEST_SEED");
        env != nullptr && *env != '\0') {
      s = std::strtoull(env, nullptr, 0);
    }
    std::fprintf(stderr,
                 "[test_support] HORAM_TEST_SEED=%llu (export it to "
                 "reproduce this run)\n",
                 static_cast<unsigned long long>(s));
    return s;
  }();
  return value;
}

/// Derived stream seed: distinct salts give independent deterministic
/// generators under the same base seed.
inline std::uint64_t seed(std::uint64_t salt) {
  return seed() ^ (salt * 0x9e3779b97f4a7c15ULL);
}

}  // namespace horam::test

#endif  // HORAM_TESTS_TEST_SUPPORT_H
