// Tests for the Ring ORAM tree: extract/install correctness under a
// shadow oracle, the unread-dummy invariant behind the one-slot-per-
// bucket reads, early reshuffles, deterministic evictions, the XOR
// read mode's bit-for-bit agreement with per-slot reads, and bulk
// initialisation — plus backend-level detail (recursive map agreement,
// drain bounds, builder knobs) through the public facade.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "horam.h"
#include "oram/ring/ring_oram.h"
#include "test_support.h"

namespace horam::oram {
namespace {

struct fixture {
  sim::block_device device{sim::dram_ddr4()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{test::seed(301)};
  access_trace trace;

  /// Deliberately tight defaults (S = 3, A = 4) so short tests still
  /// cross early reshuffles and scheduled evictions.
  ring_oram_config config(std::uint64_t leaves, std::uint32_t z = 4,
                          std::uint32_t s = 3, std::uint32_t a = 4) const {
    ring_oram_config c;
    c.leaf_count = leaves;
    c.real_slots = z;
    c.spare_slots = s;
    c.eviction_rate = a;
    c.payload_bytes = 16;
    c.id_universe = 1024;
    c.seal = true;
    return c;
  }
};

std::vector<std::uint8_t> payload_of(std::uint8_t tag) {
  return std::vector<std::uint8_t>(16, tag);
}

TEST(RingOram, Geometry) {
  fixture fx;
  ring_oram oram(fx.config(16), fx.device, fx.cpu, fx.rng, nullptr);
  EXPECT_EQ(oram.level_count(), 5u);        // log2(16) + 1
  EXPECT_EQ(oram.bucket_count(), 31u);      // 2*16 - 1
  EXPECT_EQ(oram.slots_per_bucket(), 7u);   // Z + S = 4 + 3
  EXPECT_EQ(oram.capacity_blocks(), 124u);  // 31 * Z
  EXPECT_EQ(oram.total_slots(), 217u);      // 31 * 7
  EXPECT_EQ(oram.resident_blocks(), 0u);
  EXPECT_NO_THROW(oram.check_consistency());
}

TEST(RingOram, RejectsNonPowerOfTwoLeaves) {
  fixture fx;
  EXPECT_THROW(
      ring_oram(fx.config(48), fx.device, fx.cpu, fx.rng, nullptr),
      contract_error);
}

TEST(RingOram, InstallThenExtractRoundTrips) {
  fixture fx;
  ring_oram oram(fx.config(16), fx.device, fx.cpu, fx.rng, nullptr);
  oram.install(9, payload_of(0x77));
  EXPECT_TRUE(oram.contains(9));
  EXPECT_EQ(oram.resident_blocks(), 1u);
  EXPECT_THROW(oram.install(9, payload_of(1)), contract_error);

  std::vector<std::uint8_t> out(16);
  oram.extract(9, out);
  EXPECT_EQ(out, payload_of(0x77));
  EXPECT_FALSE(oram.contains(9));
  EXPECT_EQ(oram.resident_blocks(), 0u);
  EXPECT_THROW(oram.extract(9, out), contract_error);
  EXPECT_NO_THROW(oram.check_consistency());
}

// A freshly installed block shelters in the stash; extracting it must
// serve from trusted memory under an all-dummy cover path read — even
// when that read triggers the eviction schedule mid-extract.
TEST(RingOram, ExtractFromStashSurvivesScheduledEviction) {
  fixture fx;
  // A = 1: every path read runs an eviction, so the stash-sheltered
  // target would be swept into the tree mid-call if the order between
  // serving and the cover read were wrong.
  ring_oram oram(fx.config(16, 4, 3, 1), fx.device, fx.cpu, fx.rng,
                 nullptr);
  for (int round = 0; round < 32; ++round) {
    const block_id id = static_cast<block_id>(round);
    oram.install(id, payload_of(static_cast<std::uint8_t>(round + 1)));
    std::vector<std::uint8_t> out(16);
    oram.extract(id, out);
    EXPECT_EQ(out, payload_of(static_cast<std::uint8_t>(round + 1)));
  }
  EXPECT_GT(oram.stats().evictions, 0u);
  EXPECT_NO_THROW(oram.check_consistency());
}

TEST(RingOram, ShadowDifferentialUnderReshufflesAndEvictions) {
  // Extract-verify-reinstall cycles against a shadow map, with tight
  // S and A so the run crosses many early reshuffles and scheduled
  // evictions; every extract must return the latest installed payload.
  fixture fx;
  ring_oram oram(fx.config(16), fx.device, fx.cpu, fx.rng, nullptr);
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(test::seed(303));
  for (block_id id = 0; id < 60; ++id) {
    auto data = payload_of(static_cast<std::uint8_t>(id));
    oram.install(id, data);
    shadow[id] = std::move(data);
  }
  std::vector<std::uint8_t> out(16);
  for (int step = 0; step < 1500; ++step) {
    if (util::bernoulli(driver, 0.2)) {
      oram.dummy_access();
      continue;
    }
    const block_id id = util::uniform_below(driver, 60);
    oram.extract(id, out);
    ASSERT_EQ(out, shadow[id]) << "step " << step << " id " << id;
    auto data = payload_of(static_cast<std::uint8_t>(step));
    data[1] = static_cast<std::uint8_t>(id);
    oram.install(id, data);
    shadow[id] = std::move(data);
  }
  EXPECT_GT(oram.stats().early_reshuffles, 0u);
  EXPECT_GT(oram.stats().evictions, 0u);
  EXPECT_NO_THROW(oram.check_consistency());
}

TEST(RingOram, XorOffMatchesXorOnByteForByte) {
  // The XOR mode changes only what crosses the bus, not which slots
  // are chosen or what the client recovers: two trees driven by
  // identically seeded randomness must produce identical payloads and
  // identical traces, with the XOR tree issuing far fewer device reads.
  fixture fx;
  sim::block_device device_a{sim::dram_ddr4()};
  sim::block_device device_b{sim::dram_ddr4()};
  util::pcg64 rng_a{test::seed(305)};
  util::pcg64 rng_b{test::seed(305)};
  access_trace trace_a;
  access_trace trace_b;
  // Roomier S and A than the fixture default: range sweeps (reshuffles
  // and evictions) cost the same in both modes, so keeping them rare
  // preserves the online read-op contrast the last assertion checks.
  ring_oram_config config_on = fx.config(16, 4, 10, 8);
  config_on.xor_reads = true;
  ring_oram_config config_off = config_on;
  config_off.xor_reads = false;

  ring_oram with_xor(config_on, device_a, fx.cpu, rng_a, &trace_a);
  ring_oram without(config_off, device_b, fx.cpu, rng_b, &trace_b);

  util::pcg64 driver(test::seed(307));
  std::vector<std::uint8_t> out_a(16);
  std::vector<std::uint8_t> out_b(16);
  for (block_id id = 0; id < 40; ++id) {
    const auto data = payload_of(static_cast<std::uint8_t>(id + 1));
    with_xor.install(id, data);
    without.install(id, data);
  }
  for (int step = 0; step < 400; ++step) {
    const block_id id = util::uniform_below(driver, 40);
    if (with_xor.contains(id)) {
      with_xor.extract(id, out_a);
      without.extract(id, out_b);
      ASSERT_EQ(out_a, out_b) << "step " << step;
      with_xor.install(id, out_a);
      without.install(id, out_b);
    } else {
      with_xor.dummy_access();
      without.dummy_access();
    }
  }

  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    ASSERT_EQ(trace_a.events()[i].kind, trace_b.events()[i].kind)
        << "event " << i;
    ASSERT_EQ(trace_a.events()[i].a, trace_b.events()[i].a);
    ASSERT_EQ(trace_a.events()[i].b, trace_b.events()[i].b);
  }
  // Each online path read costs 1 op combined vs level_count ops split.
  EXPECT_LT(device_a.stats().read_ops, device_b.stats().read_ops / 2);
  EXPECT_NO_THROW(with_xor.check_consistency());
  EXPECT_NO_THROW(without.check_consistency());
}

TEST(RingOram, DummyAndRealAccessesShareBusShape) {
  // With S and A large enough that neither schedule fires, a real
  // extract and a dummy access emit exactly the same event shape: one
  // path access plus one slot read per level.
  fixture fx;
  ring_oram oram(fx.config(16, 4, 100, 100000), fx.device, fx.cpu, fx.rng,
                 &fx.trace);
  oram.install(5, payload_of(5));
  oram.force_evict();  // place it in the tree so the extract reads a slot

  const auto shape_of = [&](auto&& action) {
    fx.trace.clear();
    action();
    std::map<event_kind, int> shape;
    for (const trace_event& event : fx.trace.events()) {
      ++shape[event.kind];
    }
    return shape;
  };
  std::vector<std::uint8_t> out(16);
  const auto real = shape_of([&] { oram.extract(5, out); });
  const auto dummy = shape_of([&] { oram.dummy_access(); });
  EXPECT_EQ(real, dummy);
  ASSERT_EQ(real.size(), 2u);
  EXPECT_EQ(real.at(event_kind::memory_path_access), 1);
  EXPECT_EQ(real.at(event_kind::storage_read_slot),
            static_cast<int>(oram.level_count()));
}

TEST(RingOram, TightSpareBudgetForcesEarlyReshuffles) {
  // S = 2 exhausts a bucket's dummies after two touches; the reshuffle
  // must re-arm every bucket before its spares run dry (the audit
  // rejects any bucket resting at read_count >= S).
  fixture fx;
  ring_oram oram(fx.config(8, 4, 2, 100000), fx.device, fx.cpu, fx.rng,
                 nullptr);
  for (int i = 0; i < 300; ++i) {
    oram.dummy_access();
  }
  EXPECT_GT(oram.stats().early_reshuffles, 0u);
  EXPECT_NO_THROW(oram.check_consistency());
}

TEST(RingOram, ForceEvictDrainsTheStash) {
  fixture fx;
  ring_oram oram(fx.config(16, 4, 25, 100000), fx.device, fx.cpu, fx.rng,
                 nullptr);
  for (block_id id = 0; id < 48; ++id) {
    oram.install(id, payload_of(static_cast<std::uint8_t>(id)));
  }
  EXPECT_EQ(oram.stash_ref().size(), 48u);
  for (int i = 0; i < 32; ++i) {
    oram.force_evict();
  }
  // Two reverse-lex sweeps of 16 leaves place everything that fits.
  EXPECT_LE(oram.stash_ref().size(), 2u * 4u);
  EXPECT_EQ(oram.resident_blocks(), 48u);  // residency is unchanged
  EXPECT_NO_THROW(oram.check_consistency());
}

TEST(RingOram, InitializeFullPlacesAndRoundTripsEveryBlock) {
  fixture fx;
  ring_oram oram(fx.config(16), fx.device, fx.cpu, fx.rng, nullptr);
  std::vector<leaf_id> leaves;
  oram.initialize_full(
      100,
      [](block_id id, std::span<std::uint8_t> out) {
        out[0] = static_cast<std::uint8_t>(id);
        out[1] = static_cast<std::uint8_t>(id >> 8);
      },
      &leaves);
  EXPECT_EQ(oram.resident_blocks(), 100u);
  ASSERT_EQ(leaves.size(), 100u);
  for (block_id id = 0; id < 100; ++id) {
    EXPECT_EQ(leaves[id], oram.leaf_of(id));
  }
  EXPECT_NO_THROW(oram.check_consistency());

  std::set<block_id> visited;
  oram.for_each_resident(
      [&](block_id id, leaf_id leaf, std::span<const std::uint8_t> payload) {
        EXPECT_EQ(leaf, leaves[id]);
        EXPECT_EQ(payload[0], static_cast<std::uint8_t>(id));
        visited.insert(id);
      });
  EXPECT_EQ(visited.size(), 100u);

  std::vector<std::uint8_t> out(16);
  for (block_id id = 0; id < 100; ++id) {
    oram.extract(id, out);
    ASSERT_EQ(out[0], static_cast<std::uint8_t>(id)) << "id " << id;
    ASSERT_EQ(out[1], static_cast<std::uint8_t>(id >> 8));
  }
  EXPECT_EQ(oram.resident_blocks(), 0u);
}

TEST(RingOram, InitializeFullOverflowShelteredInStash) {
  // Packing a tiny tree to capacity overflows the greedy placement
  // whenever the random leaf draw is lopsided (a 2-leaf, Z = 1 tree
  // overflows with probability 1/4 per build); the remainder must land
  // in the stash and stay extractable. Rebuild until a lopsided draw
  // shows up — 64 balanced draws in a row is a ~1e-8 event.
  fixture fx;
  for (int attempt = 0; attempt < 64; ++attempt) {
    ring_oram oram(fx.config(2, /*z=*/1, /*s=*/2), fx.device, fx.cpu,
                   fx.rng, nullptr);
    const std::uint64_t count = oram.capacity_blocks();  // 3 * 1 = 3
    oram.initialize_full(count,
                         [](block_id id, std::span<std::uint8_t> out) {
                           out[0] = static_cast<std::uint8_t>(id + 1);
                         });
    EXPECT_EQ(oram.resident_blocks(), count);
    EXPECT_NO_THROW(oram.check_consistency());
    const bool overflowed = oram.stash_ref().size() > 0;
    std::vector<std::uint8_t> out(16);
    for (block_id id = 0; id < count; ++id) {
      oram.extract(id, out);
      ASSERT_EQ(out[0], static_cast<std::uint8_t>(id + 1)) << "id " << id;
    }
    if (overflowed) {
      return;
    }
  }
  FAIL() << "no build overflowed into the stash across 64 attempts";
}

// ------------------------------------------------- ring-backend detail

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 32;
constexpr std::size_t kPayload = 16;

struct rig {
  sim::block_device device{sim::hdd_paper()};
  sim::block_device map_device{sim::dram_ddr4()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{test::seed(311)};

  horam_config config() const {
    horam_config c;
    c.block_count = kBlocks;
    c.memory_blocks = kMemoryBlocks;
    c.payload_bytes = kPayload;
    c.seal = true;
    return c;
  }
};

// Deep recursion forced via the config knobs: the recursive map chain
// gains real ORAM levels and still agrees with the ring tree's own
// position map at every audit.
TEST(RingBackendDetail, ForcedRecursionAgreesWithTreeUnderStress) {
  rig fx;
  horam_config config = fx.config();
  config.map_entries_per_block = 8;
  config.map_direct_threshold = 4;
  ring_backend backend(config, fx.device, fx.cpu, fx.rng,
                       /*trace=*/nullptr, /*filler=*/nullptr,
                       &fx.map_device);
  EXPECT_GE(backend.map().level_count(), 2u);
  EXPECT_LT(backend.map().trusted_bytes(), 8 * kBlocks);

  util::pcg64 driver(test::seed(313));
  std::map<block_id, std::vector<std::uint8_t>> cached;
  for (std::uint64_t period = 0; period < 3; ++period) {
    for (std::uint64_t cycle = 0; cycle < fx.config().period_loads();
         ++cycle) {
      const block_id target = util::uniform_below(driver, kBlocks);
      if (backend.in_storage(target)) {
        const auto load = backend.load_block(target);
        cached[load.id] = load.payload;
      } else {
        (void)backend.dummy_load();
      }
    }
    std::vector<evicted_block> evicted;
    for (auto& [id, payload] : cached) {
      evicted.push_back(evicted_block{id, std::move(payload)});
    }
    cached.clear();
    std::vector<evicted_block> overflow;
    (void)backend.shuffle_period(std::move(evicted), period, overflow);
    EXPECT_TRUE(overflow.empty());
    ASSERT_NO_THROW(backend.check_consistency()) << "period " << period;
  }
}

// After a full shuffle period the drain has pushed the stash back to a
// small constant: the tree, not trusted memory, holds the dataset.
TEST(RingBackendDetail, ShuffleDrainReturnsStashToConstantSize) {
  rig fx;
  ring_backend backend(fx.config(), fx.device, fx.cpu, fx.rng,
                       /*trace=*/nullptr, /*filler=*/nullptr,
                       &fx.map_device);
  util::pcg64 driver(test::seed(317));

  std::vector<evicted_block> evicted;
  for (std::uint64_t i = 0; i < fx.config().period_loads(); ++i) {
    const block_id target = util::uniform_below(driver, kBlocks);
    if (backend.in_storage(target)) {
      const auto load = backend.load_block(target);
      evicted.push_back(evicted_block{load.id, load.payload});
    } else {
      (void)backend.dummy_load();
    }
  }
  std::vector<evicted_block> overflow;
  (void)backend.shuffle_period(std::move(evicted), 0, overflow);
  EXPECT_TRUE(overflow.empty());
  EXPECT_GT(backend.last_drain_evictions(), 0u);
  EXPECT_LE(backend.tree().stash_ref().size(),
            2u * fx.config().ring_bucket_size);
  ASSERT_NO_THROW(backend.check_consistency());
}

// The facade's (Z, S, A) knobs reach the tree, including sizes with no
// power-of-two relationship to anything.
TEST(RingBackendDetail, FacadeGeometryKnobsReachTheTree) {
  client oram = client_builder()
                    .blocks(200)
                    .memory_blocks(30)
                    .payload_bytes(8)
                    .backend(backend_kind::ring)
                    .ring_bucket_size(5)
                    .ring_spare_slots(4)
                    .ring_eviction_rate(3)
                    .seed(test::seed(331))
                    .build();
  const std::vector<std::uint8_t> data(8, 0x5A);
  oram.write(3, data);
  EXPECT_EQ(oram.read(3), data);
  EXPECT_NO_THROW(oram.backend().check_consistency());
}

TEST(RingBackendDetail, FacadeClientRoundTripsWithXorOff) {
  client oram = client_builder()
                    .blocks(kBlocks)
                    .memory_blocks(kMemoryBlocks)
                    .payload_bytes(kPayload)
                    .backend("ring-oram")
                    .ring_xor("off")
                    .seed(test::seed(337))
                    .build();
  EXPECT_EQ(oram.kind(), backend_kind::ring);
  util::pcg64 driver(test::seed(339));
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  for (int step = 0; step < 200; ++step) {
    const block_id id = util::uniform_below(driver, kBlocks);
    if (util::bernoulli(driver, 0.5)) {
      std::vector<std::uint8_t> data(kPayload,
                                     static_cast<std::uint8_t>(step));
      oram.write(id, data);
      shadow[id] = std::move(data);
    } else {
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      ASSERT_EQ(oram.read(id), expected) << "step " << step;
    }
  }
  EXPECT_NO_THROW(oram.backend().check_consistency());
}

TEST(RingBackendDetail, BuilderRejectsDegenerateKnobs) {
  EXPECT_THROW(client_builder().ring_bucket_size(0), contract_error);
  EXPECT_THROW(client_builder().ring_spare_slots(0), contract_error);
  EXPECT_THROW(client_builder().ring_eviction_rate(0), contract_error);
  EXPECT_THROW(client_builder().ring_xor("sometimes"), contract_error);
}

}  // namespace
}  // namespace horam::oram
