// Tests of the round-scoped request-coalescing subsystem
// (src/coalesce/): round_table merge semantics (read-read, read-after-
// write forwarding, last-writer-wins write combining, fetch-before-
// write promotion, prefix capacity), fan-out delivery, differential
// shadow-map correctness across the backend x shard grid, the
// coalescing(off) trace-equality grid (backends x shards x shuffle
// policies x runtimes, with a bare-controller reference for the
// single-shard cells), sim-vs-threaded bit-for-bit parity with
// coalescing on, per-tenant FIFO completion order when one physical
// access retires tickets from several tenants, obliviousness (round
// shape at the public cap; zipfian-vs-uniform per-shard bus
// distribution equality), stats semantics (physical_accesses /
// coalesced_requests / ios_per_logical_request, the trusted-memory-hit
// add-back, reset_stats), and the builder's named setter diagnostics.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/obliviousness.h"
#include "coalesce/coalescer.h"
#include "horam.h"
#include "test_support.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace horam {
namespace {

using oram::block_id;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 64;
constexpr std::size_t kPayload = 16;

client_builder coalesce_builder(std::uint32_t shards,
                                std::uint64_t seed_salt = 71) {
  return client_builder()
      .blocks(kBlocks)
      .memory_blocks(kMemoryBlocks)
      .payload_bytes(kPayload)
      .shards(shards)
      .seed(test::seed(seed_salt));
}

std::vector<std::uint8_t> tagged(std::uint8_t tag) {
  return std::vector<std::uint8_t>(kPayload, tag);
}

request read_of(block_id id) {
  request req;
  req.id = id;
  return req;
}

request write_of(block_id id, std::uint8_t tag) {
  request req;
  req.op = oram::op_kind::write;
  req.id = id;
  req.write_data = tagged(tag);
  return req;
}

// ----------------------------------------------- round_table semantics

TEST(CoalesceTable, ReadReadMergesIntoOnePhysicalAccess) {
  coalesce::round_table table(8);
  table.add(1, read_of(5));
  table.add(2, read_of(5));
  EXPECT_EQ(table.groups(), 1u);
  EXPECT_EQ(table.members(), 2u);
  EXPECT_EQ(table.merged(), 1u);

  const std::vector<coalesce::group> groups = table.take();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].physical.op, oram::op_kind::read);
  EXPECT_FALSE(groups[0].physical.fetch_before_write);
  ASSERT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[0].members[0].tag, 1u);
  EXPECT_EQ(groups[0].members[1].tag, 2u);
  EXPECT_EQ(groups[0].members[1].source, coalesce::member_source::physical);
  EXPECT_EQ(table.groups(), 0u);  // take() empties the table
  EXPECT_EQ(table.members(), 0u);
}

TEST(CoalesceTable, ReadAfterWriteForwardsTheWrittenData) {
  coalesce::round_table table(8);
  table.add(1, write_of(9, 0xaa));
  table.add(2, read_of(9));
  const std::vector<coalesce::group> groups = table.take();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].physical.op, oram::op_kind::write);
  // The write opened the group, so nobody needs the pre-write payload.
  EXPECT_FALSE(groups[0].physical.fetch_before_write);
  ASSERT_EQ(groups[0].members.size(), 2u);
  EXPECT_EQ(groups[0].members[0].source, coalesce::member_source::write);
  EXPECT_EQ(groups[0].members[1].source,
            coalesce::member_source::forwarded);
  EXPECT_EQ(groups[0].members[1].forward_data, tagged(0xaa));
}

TEST(CoalesceTable, LastWriterWinsCombinesWrites) {
  coalesce::round_table table(8);
  table.add(1, write_of(3, 0x11));
  table.add(2, write_of(3, 0x22));
  table.add(3, read_of(3));
  const std::vector<coalesce::group> groups = table.take();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].physical.write_data, tagged(0x22));
  ASSERT_EQ(groups[0].members.size(), 3u);
  EXPECT_EQ(groups[0].members[1].source, coalesce::member_source::write);
  // The read rides the final combined write, by serial semantics.
  EXPECT_EQ(groups[0].members[2].forward_data, tagged(0x22));
}

TEST(CoalesceTable, WritePromotesAReadGroupToFetchBeforeWrite) {
  coalesce::round_table table(8);
  table.add(1, read_of(7));
  table.add(2, write_of(7, 0x33));
  table.add(3, read_of(7));
  const std::vector<coalesce::group> groups = table.take();
  ASSERT_EQ(groups.size(), 1u);
  // One physical access serves everyone: a read-modify-write returns
  // the pre-write payload for the early reader and applies the write.
  EXPECT_EQ(groups[0].physical.op, oram::op_kind::write);
  EXPECT_TRUE(groups[0].physical.fetch_before_write);
  EXPECT_EQ(groups[0].physical.write_data, tagged(0x33));
  ASSERT_EQ(groups[0].members.size(), 3u);
  EXPECT_EQ(groups[0].members[0].source, coalesce::member_source::physical);
  EXPECT_EQ(groups[0].members[2].source,
            coalesce::member_source::forwarded);
  EXPECT_EQ(groups[0].members[2].forward_data, tagged(0x33));
}

TEST(CoalesceTable, PrefixCapacityAdmitsMergesButNotNewGroups) {
  coalesce::round_table table(2);
  EXPECT_TRUE(table.admits(1));
  table.add(1, read_of(1));
  table.add(2, read_of(2));
  // The cap counts distinct blocks: merges stay admissible, a third
  // group does not.
  EXPECT_TRUE(table.admits(1));
  EXPECT_TRUE(table.admits(2));
  EXPECT_FALSE(table.admits(3));
  table.add(3, read_of(2));
  EXPECT_EQ(table.groups(), 2u);
  EXPECT_EQ(table.merged(), 1u);
  EXPECT_THROW(table.add(4, read_of(3)), contract_error);
}

TEST(CoalesceTable, FanOutDeliversPerMemberResults) {
  coalesce::round_table table(8);
  table.add(10, read_of(4));   // opener: physical read
  table.add(11, write_of(4, 0x55));
  table.add(12, read_of(4));   // served from the forwarded write
  std::vector<coalesce::group> groups = table.take();
  ASSERT_EQ(groups.size(), 1u);

  request_result physical;
  physical.completion_time = 1000;
  physical.hit = false;
  physical.read_data = tagged(0x99);  // the pre-write payload

  // Two groups' completion times: merged members complete at the round
  // frontier of their pop moment (order_hint), here group 0 itself.
  const sim::sim_time group_times[] = {1000};
  std::vector<std::pair<std::uint64_t, request_result>> delivered;
  coalesce::fan_out(std::move(groups[0]), std::move(physical), group_times,
                    kPayload,
                    [&](std::uint64_t tag, request_result&& result) {
                      delivered.emplace_back(tag, std::move(result));
                    });

  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0].first, 10u);
  EXPECT_EQ(delivered[0].second.read_data, tagged(0x99));
  EXPECT_FALSE(delivered[0].second.hit);  // opener keeps the real outcome
  EXPECT_EQ(delivered[1].first, 11u);
  EXPECT_TRUE(delivered[1].second.read_data.empty());  // writes: no payload
  EXPECT_TRUE(delivered[1].second.hit);  // absorbed = trusted-memory hit
  EXPECT_EQ(delivered[2].first, 12u);
  EXPECT_EQ(delivered[2].second.read_data, tagged(0x55));
  EXPECT_TRUE(delivered[2].second.hit);
  for (const auto& [tag, result] : delivered) {
    EXPECT_EQ(result.completion_time, 1000) << "tag " << tag;
  }
}

TEST(CoalesceTable, OrderHintTracksTheRoundFrontier) {
  coalesce::round_table table(8);
  table.add(1, read_of(1));  // group 0
  table.add(2, read_of(2));  // group 1
  table.add(3, read_of(1));  // merges into group 0 AFTER group 1 opened
  std::vector<coalesce::group> groups = table.take();
  ASSERT_EQ(groups.size(), 2u);
  ASSERT_EQ(groups[0].members.size(), 2u);
  // The merged member completes at group 1's time (the frontier at its
  // pop moment), not group 0's — per-tenant FIFO across blocks.
  EXPECT_EQ(groups[0].members[1].order_hint, 1u);

  request_result physical;
  physical.completion_time = 100;
  const sim::sim_time group_times[] = {100, 250};
  sim::sim_time merged_time = 0;
  coalesce::fan_out(std::move(groups[0]), std::move(physical), group_times,
                    kPayload,
                    [&](std::uint64_t tag, request_result&& result) {
                      if (tag == 3) {
                        merged_time = result.completion_time;
                      }
                    });
  EXPECT_EQ(merged_time, 250);
}

// ------------------------------- differential correctness (shadow map)

struct coalesce_grid_point {
  backend_kind backend;
  std::uint32_t shards;
};

class CoalesceConformance
    : public ::testing::TestWithParam<coalesce_grid_point> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsByShards, CoalesceConformance,
    ::testing::ValuesIn([] {
      std::vector<coalesce_grid_point> grid;
      for (const backend_kind kind : all_backend_kinds) {
        for (const std::uint32_t shards : {1u, 4u}) {
          grid.push_back(coalesce_grid_point{kind, shards});
        }
      }
      return grid;
    }()),
    [](const ::testing::TestParamInfo<coalesce_grid_point>& info) {
      return std::string(backend_name(info.param.backend)) + "_x" +
             std::to_string(info.param.shards);
    });

/// Serial-semantics oracle: duplicate-heavy traffic through coalesced
/// rounds must read exactly what a serial machine would have read.
TEST_P(CoalesceConformance, ShadowReplayThroughSubmitAndDrain) {
  client oram = coalesce_builder(GetParam().shards)
                    .backend(GetParam().backend)
                    .coalescing(true)
                    .build();
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(test::seed(72 + GetParam().shards));

  // Hot-set traffic over 8 blocks (plus a uniform tail) so rounds
  // genuinely merge: reads, writes, and read-after-write in one batch.
  const int chunks = 10;
  const int chunk_size = 24;
  std::uint8_t stamp = 0;
  for (int chunk = 0; chunk < chunks; ++chunk) {
    std::vector<request> batch;
    std::vector<std::vector<std::uint8_t>> expected;
    for (int i = 0; i < chunk_size; ++i) {
      const block_id id = util::bernoulli(driver, 0.75)
                              ? util::uniform_below(driver, 8)
                              : util::uniform_below(driver, kBlocks);
      if (util::bernoulli(driver, 0.4)) {
        request req = write_of(id, ++stamp);
        shadow[id] = req.write_data;
        expected.emplace_back();  // writes return no payload
        batch.push_back(std::move(req));
      } else {
        expected.push_back(shadow.contains(id)
                               ? shadow[id]
                               : std::vector<std::uint8_t>(kPayload, 0));
        batch.push_back(read_of(id));
      }
    }
    oram.submit(batch);
    std::vector<request_result> results;
    oram.drain(&results);
    ASSERT_EQ(results.size(), batch.size());
    for (int i = 0; i < chunk_size; ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(i)].read_data,
                expected[static_cast<std::size_t>(i)])
          << "chunk " << chunk << " entry " << i;
    }
  }

  // The hot set actually coalesced, and the identity holds.
  const engine_stats& router = oram.eng().router_stats();
  EXPECT_EQ(router.real_requests,
            static_cast<std::uint64_t>(chunks * chunk_size));
  EXPECT_GT(router.coalesced_requests, 0u);
  EXPECT_EQ(router.physical_accesses + router.coalesced_requests,
            router.real_requests);
  for (std::uint32_t s = 0; s < oram.eng().shard_count(); ++s) {
    ASSERT_NO_THROW(oram.eng().shard(s).backend().check_consistency())
        << "shard " << s;
  }
}

// ------------------------------------ coalescing(off) bit-for-bit grid

struct off_grid_point {
  backend_kind backend;
  std::uint32_t shards;
  shuffle_policy shuffle;
  runtime_policy runtime;
};

class CoalesceOffGrid : public ::testing::TestWithParam<off_grid_point> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsByShardsByPolicies, CoalesceOffGrid,
    ::testing::ValuesIn([] {
      std::vector<off_grid_point> grid;
      for (const backend_kind kind : all_backend_kinds) {
        for (const std::uint32_t shards : {1u, 4u}) {
          for (const shuffle_policy shuffle :
               {shuffle_policy::foreground, shuffle_policy::incremental}) {
            for (const runtime_policy runtime :
                 {runtime_policy::sim, runtime_policy::threaded}) {
              grid.push_back(off_grid_point{kind, shards, shuffle, runtime});
            }
          }
        }
      }
      return grid;
    }()),
    [](const ::testing::TestParamInfo<off_grid_point>& info) {
      return std::string(backend_name(info.param.backend)) + "_x" +
             std::to_string(info.param.shards) + "_" +
             std::string(shuffle_policy_name(info.param.shuffle)) + "_" +
             std::string(runtime_policy_name(info.param.runtime));
    });

std::vector<request> off_grid_stream(std::uint64_t seed) {
  util::pcg64 gen(seed);
  std::vector<request> stream;
  for (int i = 0; i < 200; ++i) {
    request req;
    req.op = util::bernoulli(gen, 0.3) ? oram::op_kind::write
                                       : oram::op_kind::read;
    // Duplicate-heavy, so an accidentally-armed coalescer would merge
    // (and visibly diverge) rather than degenerate to singletons.
    req.id = util::bernoulli(gen, 0.5) ? util::uniform_below(gen, 8)
                                       : util::uniform_below(gen, kBlocks);
    if (req.op == oram::op_kind::write) {
      req.write_data = tagged(static_cast<std::uint8_t>(i));
    }
    stream.push_back(std::move(req));
  }
  return stream;
}

void expect_same_traces(const client& a, const client& b) {
  for (std::uint32_t s = 0; s < a.eng().shard_count(); ++s) {
    const oram::access_trace* ta = a.eng().shard_trace(s);
    const oram::access_trace* tb = b.eng().shard_trace(s);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    ASSERT_EQ(ta->size(), tb->size()) << "shard " << s;
    for (std::size_t i = 0; i < ta->size(); ++i) {
      ASSERT_EQ(ta->events()[i].kind, tb->events()[i].kind)
          << "shard " << s << " event " << i;
      ASSERT_EQ(ta->events()[i].a, tb->events()[i].a)
          << "shard " << s << " event " << i;
      ASSERT_EQ(ta->events()[i].b, tb->events()[i].b)
          << "shard " << s << " event " << i;
    }
  }
}

/// coalescing(off) — the default — must be bit-for-bit the machine that
/// never heard of coalescing: identical results, stats, latency
/// histograms and per-shard bus traces across the whole grid; the
/// single-shard sim cells additionally check against a manually wired
/// bare controller (the historical, engine-free machine).
TEST_P(CoalesceOffGrid, OffIsBitForBitTheNonCoalescingMachine) {
  const auto build = [&](bool touch_setter) {
    client_builder builder = coalesce_builder(GetParam().shards, 73)
                                 .backend(GetParam().backend)
                                 .shuffle(GetParam().shuffle)
                                 .runtime(GetParam().runtime)
                                 .trace(true);
    if (touch_setter) {
      builder.coalescing("off");
    }
    return builder.build();
  };
  client off = build(/*touch_setter=*/true);
  client untouched = build(/*touch_setter=*/false);
  EXPECT_FALSE(off.config().coalescing);

  const std::vector<request> stream = off_grid_stream(test::seed(74));
  std::vector<request_result> off_results;
  std::vector<request_result> untouched_results;
  off.run(stream, &off_results);
  untouched.run(stream, &untouched_results);

  ASSERT_EQ(off_results.size(), untouched_results.size());
  for (std::size_t i = 0; i < off_results.size(); ++i) {
    ASSERT_EQ(off_results[i].completion_time,
              untouched_results[i].completion_time)
        << "request " << i;
    ASSERT_EQ(off_results[i].hit, untouched_results[i].hit);
    ASSERT_EQ(off_results[i].read_data, untouched_results[i].read_data);
  }
  const controller_stats& sa = off.stats();
  const controller_stats& sb = untouched.stats();
  EXPECT_EQ(sa.requests, sb.requests);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.total_time, sb.total_time);
  EXPECT_EQ(sa.io_busy, sb.io_busy);
  EXPECT_EQ(sa.request_latency.count(), sb.request_latency.count());
  EXPECT_EQ(sa.request_latency.p99(), sb.request_latency.p99());
  EXPECT_EQ(off.eng().router_stats().coalesced_requests, 0u);
  expect_same_traces(off, untouched);

  if (GetParam().shards == 1 &&
      GetParam().runtime == runtime_policy::sim) {
    // The engine-free reference: a bare controller wired exactly as the
    // pre-engine facade did it.
    sim::block_device storage{sim::hdd_paper()};
    sim::block_device memory{sim::dram_ddr4()};
    const sim::cpu_model cpu{sim::cpu_aesni()};
    util::pcg64 rng(test::seed(73));
    oram::access_trace trace;
    horam_config config;
    config.block_count = kBlocks;
    config.memory_blocks = kMemoryBlocks;
    config.payload_bytes = kPayload;
    config.shuffle = GetParam().shuffle;
    std::unique_ptr<oram_backend> backend =
        make_backend(GetParam().backend, config, storage, cpu, rng,
                     &trace, nullptr, &memory);
    controller bare(config, std::move(backend), memory, cpu, rng, &trace);
    std::vector<request_result> bare_results;
    bare.run(stream, &bare_results);
    ASSERT_EQ(bare_results.size(), off_results.size());
    for (std::size_t i = 0; i < bare_results.size(); ++i) {
      ASSERT_EQ(bare_results[i].completion_time,
                off_results[i].completion_time)
          << "request " << i;
      ASSERT_EQ(bare_results[i].read_data, off_results[i].read_data);
    }
    const oram::access_trace* off_trace = off.eng().shard_trace(0);
    ASSERT_NE(off_trace, nullptr);
    ASSERT_EQ(trace.size(), off_trace->size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(trace.events()[i].kind, off_trace->events()[i].kind)
          << "event " << i;
      ASSERT_EQ(trace.events()[i].a, off_trace->events()[i].a);
      ASSERT_EQ(trace.events()[i].b, off_trace->events()[i].b);
    }
  }
}

// --------------------------- sim vs threaded parity with coalescing ON

TEST(CoalesceRuntimeParity, ThreadedMatchesSimBitForBit) {
  // The round tables are built by the coordinator before lane fan-out,
  // so the threaded runtime must replay the sim machine exactly —
  // results, stats, router counters and per-shard traces — with
  // coalescing on.
  const auto drive = [](runtime_policy runtime,
                        std::vector<request_result>* results) {
    client oram = coalesce_builder(4, 75)
                      .coalescing(true)
                      .runtime(runtime)
                      .trace(true)
                      .build();
    workload::stream_config wl;
    wl.request_count = 240;
    wl.block_count = kBlocks;
    wl.write_fraction = 0.3;
    wl.payload_bytes = kPayload;
    util::pcg64 gen(test::seed(76));
    const std::vector<request> stream =
        workload::hot_set(gen, wl, 0.8, 12);
    for (std::size_t base = 0; base < stream.size(); base += 40) {
      for (std::size_t i = base;
           i < std::min(base + 40, stream.size()); ++i) {
        oram.submit(stream[i]);
      }
      std::vector<request_result> chunk;
      oram.drain(&chunk);
      for (request_result& r : chunk) {
        results->push_back(std::move(r));
      }
    }
    return oram;
  };

  std::vector<request_result> sim_results;
  std::vector<request_result> threaded_results;
  client sim_machine = drive(runtime_policy::sim, &sim_results);
  client threaded_machine =
      drive(runtime_policy::threaded, &threaded_results);

  ASSERT_EQ(sim_results.size(), threaded_results.size());
  for (std::size_t i = 0; i < sim_results.size(); ++i) {
    ASSERT_EQ(sim_results[i].completion_time,
              threaded_results[i].completion_time)
        << "request " << i;
    ASSERT_EQ(sim_results[i].hit, threaded_results[i].hit);
    ASSERT_EQ(sim_results[i].read_data, threaded_results[i].read_data);
  }
  EXPECT_EQ(sim_machine.now(), threaded_machine.now());
  EXPECT_EQ(sim_machine.stats().requests,
            threaded_machine.stats().requests);
  EXPECT_EQ(sim_machine.stats().hits, threaded_machine.stats().hits);
  const engine_stats& ra = sim_machine.eng().router_stats();
  const engine_stats& rb = threaded_machine.eng().router_stats();
  EXPECT_EQ(ra.physical_accesses, rb.physical_accesses);
  EXPECT_EQ(ra.coalesced_requests, rb.coalesced_requests);
  EXPECT_EQ(ra.pad_requests, rb.pad_requests);
  EXPECT_GT(ra.coalesced_requests, 0u);
  expect_same_traces(sim_machine, threaded_machine);
}

// ------------------------- multi-tenant fan-out and per-tenant FIFO

TEST(CoalesceService, OnePhysicalAccessRetiresTicketsAcrossTenants) {
  service svc = coalesce_builder(1, 77).coalescing(true).build_service();
  session alice = svc.open_session();
  session bob = svc.open_session();
  session carol = svc.open_session();

  constexpr block_id kHot = 42;
  ticket seed_write = alice.async_write(kHot, tagged(0x7e));
  svc.run_until_idle();
  (void)seed_write.result();
  svc.reset_stats();

  // Three tenants, one hot block, one scheduling window: the round
  // table must retire all three tickets with a single physical access.
  ticket ta = alice.async_read(kHot);
  ticket tb = bob.async_read(kHot);
  ticket tc = carol.async_read(kHot);
  svc.run_until_idle();
  EXPECT_EQ(ta.result().payload, tagged(0x7e));
  EXPECT_EQ(tb.result().payload, tagged(0x7e));
  EXPECT_EQ(tc.result().payload, tagged(0x7e));

  const engine_stats& router = svc.underlying().eng().router_stats();
  EXPECT_EQ(router.real_requests, 3u);
  EXPECT_EQ(router.physical_accesses, 1u);
  EXPECT_EQ(router.coalesced_requests, 2u);
  // Application-level stats count all three logical requests; the two
  // absorbed members are trusted-memory hits.
  EXPECT_EQ(svc.stats().requests, 3u);
  EXPECT_EQ(svc.stats().hits + svc.stats().misses, 3u);
  EXPECT_GE(svc.stats().hits, 2u);
}

TEST(CoalesceService, PerTenantCompletionOrderIsFifo) {
  service svc = coalesce_builder(1, 78).coalescing(true).build_service();
  std::vector<session> users;
  for (int u = 0; u < 3; ++u) {
    users.push_back(svc.open_session());
  }

  // Interleaved hot/private traffic: merges into earlier groups, new
  // groups after merges, cross-tenant sharing — the shapes that would
  // reorder completions without the order_hint frontier rule.
  util::pcg64 gen(test::seed(79));
  std::vector<std::vector<ticket>> tickets(users.size());
  for (int round = 0; round < 60; ++round) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      const bool hot = util::bernoulli(gen, 0.6);
      const block_id id =
          hot ? util::uniform_below(gen, 4)
              : 16 + static_cast<block_id>(u) * 32 +
                    util::uniform_below(gen, 32);
      if (util::bernoulli(gen, 0.3)) {
        tickets[u].push_back(users[u].async_write(
            id, tagged(static_cast<std::uint8_t>(round))));
      } else {
        tickets[u].push_back(users[u].async_read(id));
      }
    }
  }
  svc.run_until_idle();

  for (std::size_t u = 0; u < users.size(); ++u) {
    sim::sim_time previous = 0;
    for (std::size_t i = 0; i < tickets[u].size(); ++i) {
      const ticket_result& r = tickets[u][i].result();
      EXPECT_GE(r.sim_time, previous)
          << "tenant " << u << " ticket " << i
          << " completed before its predecessor";
      previous = r.sim_time;
    }
  }
  EXPECT_GT(svc.underlying().eng().router_stats().coalesced_requests, 0u);
}

// -------------------------------------------------------- obliviousness

TEST(CoalesceObliviousness, RoundShapeStaysAtThePublicCap) {
  // Coalescing on implies padded rounds on every shard count, single
  // shard included: every logged round executes exactly round_cap()
  // slots per shard no matter how many requests merged.
  for (const std::uint32_t shards : {1u, 4u}) {
    client oram = coalesce_builder(shards, 80).coalescing(true).build();
    workload::stream_config wl;
    wl.request_count = 300;
    wl.block_count = kBlocks;
    util::pcg64 gen(test::seed(81));
    const std::vector<request> stream = workload::zipfian(gen, wl, 1.1);
    for (std::size_t base = 0; base < stream.size(); base += 30) {
      for (std::size_t i = base;
           i < std::min(base + 30, stream.size()); ++i) {
        oram.submit(stream[i]);
      }
      oram.drain(nullptr);
    }

    const std::uint32_t cap = oram.eng().round_cap();
    ASSERT_GT(cap, 0u);
    const auto& log = oram.eng().round_log();
    ASSERT_GT(log.size(), 0u) << shards << " shards";
    for (std::size_t round = 0; round < log.size(); ++round) {
      ASSERT_EQ(log[round].size(), shards);
      for (std::size_t s = 0; s < shards; ++s) {
        ASSERT_EQ(log[round][s], cap)
            << "round " << round << " shard " << s;
      }
    }
    EXPECT_GT(oram.eng().router_stats().coalesced_requests, 0u);
  }
}

TEST(CoalesceObliviousness, RingHotSetCollapsesToOneAccessPerRound) {
  // Coalescing composes with the ring backend: a batch hammering one
  // block retires through a single physical access (one one-slot-per-
  // bucket path read serves every member), while the bus shape stays
  // pinned at the public round cap — the adversary sees identical
  // padded rounds whether 1 or 12 requests merged.
  client oram = coalesce_builder(1, 91)
                    .backend(backend_kind::ring)
                    .coalescing(true)
                    .trace(true)
                    .build();
  constexpr std::uint64_t kRounds = 20;
  constexpr std::uint64_t kBatch = 12;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    const block_id hot = static_cast<block_id>(round % 4);
    for (std::uint64_t i = 0; i < kBatch; ++i) {
      oram.submit(read_of(hot));
    }
    oram.drain(nullptr);
  }

  const engine_stats& router = oram.eng().router_stats();
  EXPECT_EQ(router.real_requests, kRounds * kBatch);
  EXPECT_EQ(router.physical_accesses, kRounds)
      << "each duplicate batch must collapse to one access";
  EXPECT_EQ(router.coalesced_requests, kRounds * (kBatch - 1));

  const std::uint32_t cap = oram.eng().round_cap();
  ASSERT_GT(cap, 0u);
  const auto& log = oram.eng().round_log();
  ASSERT_GT(log.size(), 0u);
  for (std::size_t round = 0; round < log.size(); ++round) {
    ASSERT_EQ(log[round].size(), 1u);
    ASSERT_EQ(log[round][0], cap) << "round " << round;
  }
  ASSERT_NO_THROW(oram.eng().shard(0).backend().check_consistency());
}

TEST(CoalesceObliviousness, SkewIsInvisibleOnPerShardBusTraces) {
  // Zipfian ~1.1 vs uniform of the same length through two identically
  // configured coalescing machines: the per-shard storage position
  // streams must be draws from one distribution (two-sample KS +
  // chi-square homogeneity), even though the zipfian run coalesces
  // heavily and the uniform one barely at all.
  client skewed = coalesce_builder(4, 82).coalescing(true).trace(true).build();
  client flat = coalesce_builder(4, 82).coalescing(true).trace(true).build();
  const auto drive = [](client& oram, bool zipf, std::uint64_t seed) {
    workload::stream_config wl;
    wl.request_count = 2400;
    wl.block_count = kBlocks;
    util::pcg64 gen(seed);
    const std::vector<request> stream =
        zipf ? workload::zipfian(gen, wl, 1.1) : workload::uniform(gen, wl);
    for (std::size_t base = 0; base < stream.size(); base += 60) {
      for (std::size_t i = base;
           i < std::min(base + 60, stream.size()); ++i) {
        oram.submit(stream[i]);
      }
      oram.drain(nullptr);
    }
  };
  drive(skewed, /*zipf=*/true, test::seed(83));
  drive(flat, /*zipf=*/false, test::seed(84));
  EXPECT_GT(skewed.eng().router_stats().coalesced_requests,
            2 * flat.eng().router_stats().coalesced_requests);

  for (std::uint32_t s = 0; s < 4; ++s) {
    const oram::access_trace* trace_a = skewed.eng().shard_trace(s);
    const oram::access_trace* trace_b = flat.eng().shard_trace(s);
    ASSERT_NE(trace_a, nullptr);
    ASSERT_NE(trace_b, nullptr);
    const std::vector<std::uint64_t> pos_a =
        analysis::storage_read_positions(*trace_a);
    const std::vector<std::uint64_t> pos_b =
        analysis::storage_read_positions(*trace_b);
    ASSERT_GT(pos_a.size(), 100u) << "shard " << s;
    ASSERT_GT(pos_b.size(), 100u) << "shard " << s;
    const storage::partition_geometry& geometry =
        skewed.eng().shard(s).storage().geometry();
    const std::uint64_t universe =
        geometry.partition_count * geometry.slots_per_partition();
    const analysis::equality_report report =
        analysis::audit_distribution_equality(pos_a, pos_b, universe);
    EXPECT_TRUE(report.passed())
        << "shard " << s << ": ks " << report.ks << " (<= "
        << report.ks_threshold << "), chi2 " << report.chi_square
        << " (<= " << report.chi_threshold << ")";
  }
}

// ---------------------------------------------------------------- stats

TEST(CoalesceStats, CountersSatisfyTheCoalescingIdentities) {
  client oram = coalesce_builder(1, 85).coalescing(true).build();
  workload::stream_config wl;
  wl.request_count = 200;
  wl.block_count = kBlocks;
  wl.write_fraction = 0.25;
  wl.payload_bytes = kPayload;
  util::pcg64 gen(test::seed(86));
  const std::vector<request> stream = workload::hot_set(gen, wl, 0.9, 8);
  for (std::size_t base = 0; base < stream.size(); base += 25) {
    for (std::size_t i = base; i < std::min(base + 25, stream.size());
         ++i) {
      oram.submit(stream[i]);
    }
    oram.drain(nullptr);
  }

  const engine_stats& router = oram.eng().router_stats();
  EXPECT_EQ(router.real_requests, wl.request_count);
  EXPECT_GT(router.coalesced_requests, 0u);
  EXPECT_LT(router.physical_accesses, router.real_requests);
  EXPECT_EQ(router.physical_accesses + router.coalesced_requests,
            router.real_requests);
  EXPECT_DOUBLE_EQ(router.ios_per_logical_request(),
                   static_cast<double>(router.physical_accesses) /
                       static_cast<double>(router.real_requests));
  EXPECT_LT(router.ios_per_logical_request(), 1.0);

  // Application-level aggregation: every logical request counts, and
  // the absorbed members come back as trusted-memory hits.
  const controller_stats& total = oram.stats();
  EXPECT_EQ(total.requests, wl.request_count);
  EXPECT_EQ(total.hits + total.misses, wl.request_count);
}

TEST(CoalesceStats, OffKeepsPhysicalEqualToLogical) {
  client oram = coalesce_builder(4, 87).build();
  util::pcg64 gen(test::seed(88));
  std::vector<request> stream(120);
  for (request& req : stream) {
    req.id = util::uniform_below(gen, 16);  // duplicates, never merged
  }
  oram.run(stream);
  const engine_stats& router = oram.eng().router_stats();
  EXPECT_EQ(router.real_requests, 120u);
  EXPECT_EQ(router.physical_accesses, 120u);
  EXPECT_EQ(router.coalesced_requests, 0u);
  EXPECT_DOUBLE_EQ(router.ios_per_logical_request(), 1.0);
}

TEST(CoalesceStats, ResetStatsClearsTheCoalescerCounters) {
  client oram = coalesce_builder(4, 89).coalescing(true).build();
  for (block_id id = 0; id < 8; ++id) {
    oram.submit(read_of(id % 2));  // heavy duplication
  }
  oram.drain(nullptr);
  ASSERT_GT(oram.eng().router_stats().coalesced_requests, 0u);

  oram.reset_stats();
  EXPECT_EQ(oram.eng().router_stats().physical_accesses, 0u);
  EXPECT_EQ(oram.eng().router_stats().coalesced_requests, 0u);
  EXPECT_EQ(oram.eng().router_stats().real_requests, 0u);
  EXPECT_DOUBLE_EQ(oram.eng().router_stats().ios_per_logical_request(),
                   0.0);

  // Queue-state accounting must survive the reset: pending slots keep
  // feeding the scheduler pump afterwards.
  oram.submit(read_of(1));
  oram.submit(read_of(1));
  EXPECT_EQ(oram.eng().pending_slots(), 1u);
  oram.drain(nullptr);
  EXPECT_EQ(oram.eng().pending_slots(), 0u);
  EXPECT_EQ(oram.eng().router_stats().real_requests, 2u);
  EXPECT_EQ(oram.eng().router_stats().physical_accesses, 1u);
}

TEST(CoalesceStats, PendingSlotsCountDistinctBlocks) {
  client on = coalesce_builder(4, 90).coalescing(true).build();
  client off = coalesce_builder(4, 90).build();
  for (const block_id id : {5u, 5u, 5u, 9u, 9u, 13u}) {
    on.submit(read_of(id));
    off.submit(read_of(id));
  }
  EXPECT_EQ(on.eng().pending(), 6u);
  EXPECT_EQ(on.eng().pending_slots(), 3u);  // three distinct blocks
  EXPECT_EQ(off.eng().pending_slots(), 6u);  // off: slots == requests
  on.drain(nullptr);
  off.drain(nullptr);
  EXPECT_EQ(on.eng().pending_slots(), 0u);
}

// ------------------------------------------------- builder diagnostics

TEST(CoalesceBuilder, NamedSetterParsesAndNamesItself) {
  EXPECT_TRUE(
      coalesce_builder(1).coalescing("on").build().config().coalescing);
  EXPECT_TRUE(
      coalesce_builder(1).coalescing("true").build().config().coalescing);
  EXPECT_FALSE(
      coalesce_builder(1).coalescing("off").build().config().coalescing);
  EXPECT_FALSE(
      coalesce_builder(1).coalescing("false").build().config().coalescing);
  try {
    (void)coalesce_builder(1).coalescing("maybe");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("coalescing()"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace horam
