// Tests for src/shuffle: permutation helpers, the four shuffle
// algorithms (correctness, obliviousness, uniformity) and their cost
// accounting. Parameterised suites sweep sizes, including non-powers of
// two and degenerate cases.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "shuffle/bitonic.h"
#include "shuffle/cache_shuffle.h"
#include "shuffle/fisher_yates.h"
#include "shuffle/melbourne.h"
#include "shuffle/shuffle.h"
#include "shuffle/waksman.h"
#include "sim/profiles.h"
#include "storage/block_store.h"
#include "util/rng.h"

namespace horam::shuffle {
namespace {

constexpr std::size_t kRecordBytes = 8;

/// Builds n records whose first byte(s) encode their index.
std::vector<std::uint8_t> indexed_records(std::uint64_t n) {
  std::vector<std::uint8_t> records(n * kRecordBytes, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (int b = 0; b < 8; ++b) {
      records[i * kRecordBytes + static_cast<std::uint64_t>(b)] =
          static_cast<std::uint8_t>(i >> (8 * b));
    }
  }
  return records;
}

std::uint64_t record_value(const std::vector<std::uint8_t>& records,
                           std::uint64_t position) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) {
    v |= static_cast<std::uint64_t>(
             records[position * kRecordBytes + static_cast<std::uint64_t>(b)])
         << (8 * b);
  }
  return v;
}

// ------------------------------------------------------------- helpers

TEST(Permutation, IsPermutationDetectsDefects) {
  EXPECT_TRUE(is_permutation({}));
  EXPECT_TRUE(is_permutation({0}));
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 0}));
  EXPECT_FALSE(is_permutation({0, 2}));
  EXPECT_FALSE(is_permutation({3, 0, 1}));
}

TEST(Permutation, InvertRoundTrip) {
  util::pcg64 rng(1);
  const permutation pi = util::random_permutation(rng, 50);
  const permutation inv = invert(pi);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(inv[pi[i]], i);
  }
}

TEST(Permutation, ApplyMovesRecordsToDestinations) {
  auto records = indexed_records(5);
  apply_permutation(records, kRecordBytes, {4, 3, 2, 1, 0});
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(record_value(records, 4 - i), i);
  }
}

TEST(Permutation, ApplyRejectsMismatchedSizes) {
  auto records = indexed_records(4);
  EXPECT_THROW(apply_permutation(records, kRecordBytes, {0, 1, 2}),
               horam::contract_error);
}

// --------------------------------------------- parameterised size sweep

class ShuffleSizes : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, ShuffleSizes,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 33,
                                           64, 100, 127, 128, 255, 500));

TEST_P(ShuffleSizes, FisherYatesIsPermutation) {
  const std::uint64_t n = GetParam();
  util::pcg64 rng(n);
  auto records = indexed_records(n);
  const permutation pi = fisher_yates(rng, records, kRecordBytes);
  ASSERT_TRUE(is_permutation(pi));
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(record_value(records, pi[i]), i);
  }
}

TEST_P(ShuffleSizes, BitonicShuffleIsPermutation) {
  const std::uint64_t n = GetParam();
  util::pcg64 rng(n + 1);
  auto records = indexed_records(n);
  const permutation pi = bitonic_shuffle(rng, records, kRecordBytes);
  ASSERT_TRUE(is_permutation(pi));
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(record_value(records, pi[i]), i);
  }
}

TEST_P(ShuffleSizes, WaksmanRealisesRequestedPermutation) {
  const std::uint64_t n = GetParam();
  util::pcg64 rng(n + 2);
  const permutation target = util::random_permutation(rng, n);
  const waksman_network network = build_waksman(target);
  auto records = indexed_records(n);
  apply_waksman(network, records, kRecordBytes);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(record_value(records, target[i]), i);
  }
}

// ------------------------------------------------------------- bitonic

TEST(Bitonic, NetworkSortsAnyInput) {
  util::pcg64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> values(64);
    for (auto& v : values) {
      v = util::uniform_below(rng, 1000);
    }
    bitonic_network(
        values.size(),
        [&](std::size_t a, std::size_t b) { return values[a] < values[b]; },
        [&](std::size_t a, std::size_t b) {
          std::swap(values[a], values[b]);
        });
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  }
}

TEST(Bitonic, NetworkRequiresPowerOfTwo) {
  EXPECT_THROW(bitonic_network(
                   3, [](std::size_t, std::size_t) { return false; },
                   [](std::size_t, std::size_t) {}),
               horam::contract_error);
}

TEST(Bitonic, TouchSequenceIsDataIndependent) {
  // The pair sequence must be identical for different data and
  // different randomness — this is the obliviousness property.
  const auto collect = [](std::uint64_t seed) {
    util::pcg64 rng(seed);
    auto records = indexed_records(33);
    std::vector<std::pair<std::size_t, std::size_t>> touches;
    bitonic_shuffle(rng, records, kRecordBytes, nullptr,
                    [&](std::size_t a, std::size_t b) {
                      touches.emplace_back(a, b);
                    });
    return touches;
  };
  EXPECT_EQ(collect(1), collect(999));
}

TEST(Bitonic, CompareExchangeCountMatchesFormula) {
  util::pcg64 rng(10);
  for (const std::uint64_t n : {2ULL, 16ULL, 33ULL, 64ULL}) {
    auto records = indexed_records(n);
    shuffle_stats stats;
    bitonic_shuffle(rng, records, kRecordBytes, &stats);
    EXPECT_EQ(stats.touch_ops, bitonic_compare_exchange_count(n))
        << "n = " << n;
  }
}

TEST(Bitonic, CountFormula) {
  EXPECT_EQ(bitonic_compare_exchange_count(1), 0u);
  EXPECT_EQ(bitonic_compare_exchange_count(2), 1u);
  // m = 4: 2 stages -> 3 passes * 2 pairs = 6.
  EXPECT_EQ(bitonic_compare_exchange_count(4), 6u);
  // padding: n = 3 behaves like m = 4.
  EXPECT_EQ(bitonic_compare_exchange_count(3), 6u);
  // m = 8: 3 stages -> 6 passes * 4 pairs = 24.
  EXPECT_EQ(bitonic_compare_exchange_count(8), 24u);
}

TEST(Bitonic, ShuffleUniformity) {
  // n = 4: all 24 permutations should appear ~equally often.
  util::pcg64 rng(11);
  std::map<permutation, int> counts;
  constexpr int trials = 12000;
  for (int t = 0; t < trials; ++t) {
    auto records = indexed_records(4);
    counts[bitonic_shuffle(rng, records, kRecordBytes)]++;
  }
  EXPECT_EQ(counts.size(), 24u);
  const double expected = trials / 24.0;
  double chi2 = 0.0;
  for (const auto& [pi, count] : counts) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, 64.0);  // dof 23; far beyond 5 sigma
}

// ------------------------------------------------------------- waksman

TEST(Waksman, IdentityAndReversal) {
  for (const std::uint64_t n : {2ULL, 8ULL, 16ULL}) {
    permutation identity(n);
    std::iota(identity.begin(), identity.end(), 0ULL);
    auto records = indexed_records(n);
    apply_waksman(build_waksman(identity), records, kRecordBytes);
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(record_value(records, i), i);
    }
    permutation reversal(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      reversal[i] = n - 1 - i;
    }
    records = indexed_records(n);
    apply_waksman(build_waksman(reversal), records, kRecordBytes);
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(record_value(records, n - 1 - i), i);
    }
  }
}

TEST(Waksman, SwitchPositionsDependOnlyOnSize) {
  // Network *shape* is public; only the settings are secret.
  util::pcg64 rng(12);
  const auto shape = [&](const permutation& pi) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> positions;
    for (const waksman_switch& sw : build_waksman(pi).switches) {
      positions.emplace_back(sw.a, sw.b);
    }
    return positions;
  };
  const permutation a = util::random_permutation(rng, 32);
  const permutation b = util::random_permutation(rng, 32);
  EXPECT_EQ(shape(a), shape(b));
}

TEST(Waksman, SwitchCountIsNLogNish) {
  // Benes network on m = 2^k inputs has m*k - m/2... switches; ours
  // includes all of them: count = m*k - m + 1 for the recursive
  // construction with single-switch base case. Just sanity-bound it.
  const permutation pi = invert({5, 3, 7, 1, 0, 2, 6, 4});
  const waksman_network network = build_waksman(pi);
  EXPECT_EQ(network.padded_size, 8u);
  EXPECT_GE(network.switches.size(), 8u * 3u / 2u);
  EXPECT_LE(network.switches.size(), 8u * 3u);
}

TEST(Waksman, ManyRandomPermutations) {
  util::pcg64 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t n = 1 + util::uniform_below(rng, 60);
    const permutation target = util::random_permutation(rng, n);
    auto records = indexed_records(n);
    apply_waksman(build_waksman(target), records, kRecordBytes);
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(record_value(records, target[i]), i)
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(Waksman, RejectsNonPermutation) {
  EXPECT_THROW(build_waksman({0, 0, 1}), horam::contract_error);
}

// --------------------------------------------------- external shuffles

struct external_fixture {
  sim::block_device device{sim::hdd_paper()};
  std::unique_ptr<storage::block_store> input;
  std::unique_ptr<storage::block_store> scratch;
  std::unique_ptr<storage::block_store> output;

  external_fixture(std::uint64_t n, std::uint64_t scratch_records) {
    input = std::make_unique<storage::block_store>(device, 0, n,
                                                   kRecordBytes, 1024);
    scratch = std::make_unique<storage::block_store>(
        device, n * 1024, scratch_records, kRecordBytes, 1024);
    output = std::make_unique<storage::block_store>(
        device, (n + scratch_records) * 1024, n, kRecordBytes, 1024);
    const auto records = indexed_records(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      input->write(i, std::span<const std::uint8_t>(
                          records.data() + i * kRecordBytes, kRecordBytes));
    }
    device.reset_stats();
  }
};

class ExternalShuffleSizes
    : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, ExternalShuffleSizes,
                         ::testing::Values(1, 2, 5, 16, 50, 64, 100, 256));

TEST_P(ExternalShuffleSizes, MelbourneMovesEveryRecord) {
  const std::uint64_t n = GetParam();
  const melbourne_config config{};
  external_fixture fx(n, melbourne_scratch_records(n, config));
  util::pcg64 rng(n + 3);
  const external_shuffle_result result =
      melbourne_shuffle(*fx.input, *fx.scratch, *fx.output, rng, config);
  ASSERT_TRUE(is_permutation(result.pi));
  EXPECT_GT(result.io_time, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(record_value(
                  std::vector<std::uint8_t>(fx.output->peek(result.pi[i]).begin(),
                                            fx.output->peek(result.pi[i]).end()),
                  0),
              i);
  }
}

TEST_P(ExternalShuffleSizes, CacheShuffleMovesEveryRecord) {
  const std::uint64_t n = GetParam();
  cache_shuffle_config config;
  config.client_memory_records = 16;  // force multiple buckets
  external_fixture fx(n, cache_shuffle_scratch_records(n, config));
  util::pcg64 rng(n + 4);
  const external_shuffle_result result =
      cache_shuffle(*fx.input, *fx.scratch, *fx.output, rng, config);
  ASSERT_TRUE(is_permutation(result.pi));
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(record_value(
                  std::vector<std::uint8_t>(fx.output->peek(result.pi[i]).begin(),
                                            fx.output->peek(result.pi[i]).end()),
                  0),
              i);
  }
}

TEST(Melbourne, IoVolumeMatchesQuotaModel) {
  // Phase 1 reads n and writes ~quota*n; phase 2 reads ~quota*n and
  // writes n — the several-passes cost H-ORAM's shuffle avoids.
  constexpr std::uint64_t n = 256;
  const melbourne_config config{.message_quota = 6, .max_retries = 64};
  external_fixture fx(n, melbourne_scratch_records(n, config));
  util::pcg64 rng(20);
  melbourne_shuffle(*fx.input, *fx.scratch, *fx.output, rng, config);
  const auto& stats = fx.device.stats();
  const std::uint64_t block = 1024;
  EXPECT_GE(stats.bytes_read, n * block * (1 + config.message_quota));
  EXPECT_GE(stats.bytes_written, n * block * (1 + config.message_quota));
}

TEST(Melbourne, TinyQuotaEventuallyThrows) {
  constexpr std::uint64_t n = 64;
  const melbourne_config config{.message_quota = 1, .max_retries = 3};
  external_fixture fx(n, melbourne_scratch_records(n, config));
  util::pcg64 rng(21);
  EXPECT_THROW(
      melbourne_shuffle(*fx.input, *fx.scratch, *fx.output, rng, config),
      std::runtime_error);
}

TEST(CacheShuffle, UniformityOverSmallDomain) {
  // n = 4 with forced multi-bucket spraying: all 24 permutations appear.
  cache_shuffle_config config;
  config.client_memory_records = 2;
  std::map<permutation, int> counts;
  constexpr int trials = 6000;
  util::pcg64 rng(22);
  for (int t = 0; t < trials; ++t) {
    external_fixture fx(4, cache_shuffle_scratch_records(4, config));
    counts[cache_shuffle(*fx.input, *fx.scratch, *fx.output, rng, config)
               .pi]++;
  }
  EXPECT_EQ(counts.size(), 24u);
  const double expected = trials / 24.0;
  double chi2 = 0.0;
  for (const auto& [pi, count] : counts) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, 64.0);
}

TEST(CacheShuffle, DegeneratesToInMemoryWithLargeClient) {
  cache_shuffle_config config;
  config.client_memory_records = 1 << 20;
  external_fixture fx(100, cache_shuffle_scratch_records(100, config));
  util::pcg64 rng(23);
  const auto result =
      cache_shuffle(*fx.input, *fx.scratch, *fx.output, rng, config);
  EXPECT_TRUE(is_permutation(result.pi));
  EXPECT_EQ(result.stats.retries, 0u);
}

}  // namespace
}  // namespace horam::shuffle
