// Conformance suite for the pluggable oram_backend interface: every
// implementation (partitioned storage layer, sqrt ORAM, partition ORAM,
// Path ORAM with a recursive position map, Ring ORAM, hierarchical
// ORAM with a succinct index) must satisfy the same
// contract — residency tracking, load/dummy-load semantics,
// shuffle-period merge, payload round-trips, deep consistency audits —
// both driven directly and fronted by the full controller through the
// public client facade.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "horam.h"
#include "test_support.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 32;
constexpr std::size_t kPayload = 16;

struct rig {
  sim::block_device device{sim::hdd_paper()};
  sim::block_device map_device{sim::dram_ddr4()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{test::seed(97)};

  horam_config config() const {
    horam_config c;
    c.block_count = kBlocks;
    c.memory_blocks = kMemoryBlocks;
    c.payload_bytes = kPayload;
    c.seal = true;
    return c;
  }

  std::unique_ptr<oram_backend> make(backend_kind kind) {
    return make_backend(kind, config(), device, cpu, rng,
                        /*trace=*/nullptr, /*filler=*/nullptr,
                        &map_device);
  }
};

std::vector<std::uint8_t> tagged(block_id id, std::uint64_t epoch) {
  std::vector<std::uint8_t> data(kPayload, 0);
  data[0] = static_cast<std::uint8_t>(id);
  data[1] = static_cast<std::uint8_t>(id >> 8);
  data[2] = static_cast<std::uint8_t>(epoch);
  return data;
}

class BackendConformance
    : public ::testing::TestWithParam<backend_kind> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance,
    ::testing::ValuesIn(all_backend_kinds),
    [](const ::testing::TestParamInfo<backend_kind>& info) {
      return std::string(backend_name(info.param));
    });

TEST_P(BackendConformance, InitialStateIsConsistent) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  EXPECT_FALSE(backend->name().empty());
  EXPECT_GT(backend->physical_bytes(), 0u);
  EXPECT_GT(backend->control_memory_bytes(), 0u);
  for (block_id id = 0; id < kBlocks; ++id) {
    EXPECT_TRUE(backend->in_storage(id)) << "block " << id;
  }
  EXPECT_NO_THROW(backend->check_consistency());
}

TEST_P(BackendConformance, LoadMarksCachedAndReturnsPayload) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  const oram_backend::load_result load = backend->load_block(42);
  EXPECT_EQ(load.id, 42u);
  EXPECT_EQ(load.payload, std::vector<std::uint8_t>(kPayload, 0));
  EXPECT_GT(load.cost.io, 0);
  EXPECT_FALSE(backend->in_storage(42));
  EXPECT_EQ(backend->stats().real_loads, 1u);
  EXPECT_NO_THROW(backend->check_consistency());
}

TEST_P(BackendConformance, DummyLoadsAreCountedAndPrefetchesStayCached) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  std::uint64_t prefetched = 0;
  const std::uint64_t period_loads = fx.config().period_loads();
  for (std::uint64_t i = 0; i < period_loads; ++i) {
    const oram_backend::load_result load = backend->dummy_load();
    EXPECT_GT(load.cost.io, 0);
    if (load.id != oram::dummy_block_id) {
      // A prefetch: the block must now count as cached.
      EXPECT_FALSE(backend->in_storage(load.id));
      EXPECT_EQ(load.payload.size(), kPayload);
      ++prefetched;
    }
  }
  EXPECT_EQ(backend->stats().dummy_loads, period_loads);
  EXPECT_EQ(backend->stats().prefetched_blocks, prefetched);
  EXPECT_NO_THROW(backend->check_consistency());
}

// The controller's life cycle, hand-driven: per period issue exactly
// period_loads loads (a mix of real misses and dummies), mutate the hot
// set, hand every cached block to shuffle_period(), audit, repeat —
// then verify all data survived the shuffles byte for byte.
TEST_P(BackendConformance, ShufflePeriodsRoundTripData) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  const std::uint64_t period_loads = fx.config().period_loads();

  std::map<block_id, std::vector<std::uint8_t>> cache;   // the "tree"
  std::map<block_id, std::vector<std::uint8_t>> shadow;  // the oracle
  util::pcg64 driver(test::seed(11));

  for (std::uint64_t period = 0; period < 6; ++period) {
    for (std::uint64_t cycle = 0; cycle < period_loads; ++cycle) {
      const bool want_real = util::bernoulli(driver, 0.6);
      const block_id target = util::uniform_below(driver, kBlocks);
      oram_backend::load_result load;
      if (want_real && backend->in_storage(target)) {
        load = backend->load_block(target);
        ASSERT_EQ(load.id, target);
      } else {
        load = backend->dummy_load();
      }
      if (load.id != oram::dummy_block_id) {
        ASSERT_FALSE(backend->in_storage(load.id));
        // Loads must deliver the last payload the shuffle wrote back.
        const auto expected = shadow.contains(load.id)
                                  ? shadow[load.id]
                                  : std::vector<std::uint8_t>(kPayload, 0);
        ASSERT_EQ(load.payload, expected)
            << backend_name(GetParam()) << " period " << period
            << " block " << load.id;
        cache[load.id] = load.payload;
      }
    }

    // Mutate a slice of the hot set (the application's writes).
    for (auto& [id, payload] : cache) {
      if (util::bernoulli(driver, 0.5)) {
        payload = tagged(id, period);
        shadow[id] = payload;
      }
    }

    // Evict everything cached into the shuffle.
    std::vector<oram::evicted_block> evicted;
    evicted.reserve(cache.size());
    for (auto& [id, payload] : cache) {
      evicted.push_back(oram::evicted_block{id, payload});
    }
    cache.clear();
    std::vector<oram::evicted_block> overflow;
    const shuffle_cost cost =
        backend->shuffle_period(std::move(evicted), period, overflow);
    EXPECT_GE(cost.total(), 0);
    // Overflowed blocks stay "cached" with the controller's shelter.
    for (oram::evicted_block& block : overflow) {
      EXPECT_FALSE(backend->in_storage(block.id));
      cache.emplace(block.id, std::move(block.payload));
    }
    ASSERT_NO_THROW(backend->check_consistency())
        << backend_name(GetParam()) << " period " << period;
  }

  // Every block not sheltered must be back on storage with its data.
  std::uint64_t verified = 0;
  for (const auto& [id, payload] : shadow) {
    if (cache.contains(id)) {
      EXPECT_EQ(cache[id], payload);
      continue;
    }
    ASSERT_TRUE(backend->in_storage(id));
    const oram_backend::load_result load = backend->load_block(id);
    EXPECT_EQ(load.payload, payload) << "block " << id;
    ++verified;
  }
  EXPECT_GT(verified, 10u);
  EXPECT_GT(backend->stats().partitions_shuffled, 0u);
}

// The same contract exercised through the whole stack: controller +
// cache tree fronting each backend, built solely via the public facade.
TEST_P(BackendConformance, ClientDifferentialCorrectness) {
  client oram = client_builder()
                    .blocks(kBlocks)
                    .memory_blocks(kMemoryBlocks)
                    .payload_bytes(kPayload)
                    .backend(GetParam())
                    .seed(test::seed(23))
                    .build();
  EXPECT_EQ(oram.backend().name(), backend_name(GetParam()));

  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(test::seed(29));
  for (int step = 0; step < 800; ++step) {
    const block_id id = util::uniform_below(driver, kBlocks);
    if (util::bernoulli(driver, 0.4)) {
      const auto data = tagged(id, static_cast<std::uint64_t>(step));
      oram.write(id, data);
      shadow[id] = data;
    } else {
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      ASSERT_EQ(oram.read(id), expected)
          << backend_name(GetParam()) << " step " << step << " id " << id;
    }
  }
  EXPECT_GT(oram.stats().periods, 3u);
  EXPECT_NO_THROW(oram.backend().check_consistency());
}

// The incremental session API streams batches through each backend.
TEST_P(BackendConformance, SubmitDrainSessionServicesEverything) {
  client oram = client_builder()
                    .blocks(kBlocks)
                    .memory_blocks(kMemoryBlocks)
                    .payload_bytes(kPayload)
                    .backend(GetParam())
                    .seed(test::seed(31))
                    .build();
  util::pcg64 driver(test::seed(37));
  std::uint64_t submitted = 0;
  for (int wave = 0; wave < 5; ++wave) {
    const std::uint64_t count = 20 + 10 * static_cast<std::uint64_t>(wave);
    for (std::uint64_t i = 0; i < count; ++i) {
      request req;
      req.op = op_kind::read;
      req.id = util::uniform_below(driver, kBlocks);
      oram.submit(std::move(req));
    }
    submitted += count;
    EXPECT_EQ(oram.pending(), count);
    std::vector<request_result> results;
    oram.drain(&results);
    EXPECT_EQ(oram.pending(), 0u);
    ASSERT_EQ(results.size(), count);
    for (const request_result& result : results) {
      EXPECT_GT(result.completion_time, 0);
      EXPECT_EQ(result.read_data.size(), kPayload);
    }
  }
  EXPECT_EQ(oram.stats().requests, submitted);
}

// Rejecting misuse uniformly: loading a cached block trips a contract.
TEST_P(BackendConformance, LoadingCachedBlockTripsContract) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  (void)backend->load_block(7);
  EXPECT_THROW((void)backend->load_block(7), contract_error);
}

// An empty eviction (nothing was cached) is a legal shuffle period:
// nothing may change residency, and the deep audit must stay clean.
TEST_P(BackendConformance, EmptyShufflePeriodKeepsEverythingResident) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  for (std::uint64_t period = 0; period < 3; ++period) {
    std::vector<oram::evicted_block> overflow;
    (void)backend->shuffle_period({}, period, overflow);
    EXPECT_TRUE(overflow.empty());
    for (block_id id = 0; id < kBlocks; ++id) {
      ASSERT_TRUE(backend->in_storage(id)) << "block " << id;
    }
    ASSERT_NO_THROW(backend->check_consistency());
  }
  EXPECT_EQ(backend->stats().real_loads, 0u);
}

// Residency must match an explicitly tracked cached set exactly, for
// every block, across interleaved loads, dummies and evict-shuffles.
TEST_P(BackendConformance, ResidencyTrackingIsExactAcrossPeriods) {
  rig fx;
  const std::unique_ptr<oram_backend> backend = fx.make(GetParam());
  const std::uint64_t period_loads = fx.config().period_loads();
  util::pcg64 driver(test::seed(41));

  std::map<block_id, std::vector<std::uint8_t>> cached;
  for (std::uint64_t period = 0; period < 4; ++period) {
    for (std::uint64_t cycle = 0; cycle < period_loads; ++cycle) {
      const block_id target = util::uniform_below(driver, kBlocks);
      oram_backend::load_result load;
      if (backend->in_storage(target)) {
        load = backend->load_block(target);
      } else {
        load = backend->dummy_load();
      }
      if (load.id != oram::dummy_block_id) {
        cached[load.id] = load.payload;
      }
    }
    for (block_id id = 0; id < kBlocks; ++id) {
      ASSERT_EQ(backend->in_storage(id), !cached.contains(id))
          << backend_name(GetParam()) << " period " << period << " block "
          << id;
    }
    std::vector<oram::evicted_block> evicted;
    for (auto& [id, payload] : cached) {
      evicted.push_back(oram::evicted_block{id, std::move(payload)});
    }
    cached.clear();
    std::vector<oram::evicted_block> overflow;
    (void)backend->shuffle_period(std::move(evicted), period, overflow);
    for (oram::evicted_block& block : overflow) {
      cached.emplace(block.id, std::move(block.payload));
    }
    ASSERT_NO_THROW(backend->check_consistency());
  }
}

// Facade plumbing: every kind's printed name parses back to the kind,
// and the builder accepts it end to end.
TEST_P(BackendConformance, NameRoundTripsThroughParserAndBuilder) {
  EXPECT_EQ(backend_by_name(backend_name(GetParam())), GetParam());
  client oram = client_builder()
                    .blocks(64)
                    .memory_blocks(16)
                    .payload_bytes(8)
                    .backend(backend_by_name(backend_name(GetParam())))
                    .seed(test::seed(43))
                    .build();
  EXPECT_EQ(oram.kind(), GetParam());
  EXPECT_EQ(oram.read(5), std::vector<std::uint8_t>(8, 0));
}

// ------------------------------------------------- path-backend detail

// Deep recursion forced via the config knobs: the recursive map chain
// gains real ORAM levels, shrinks trusted memory below the flat map's
// 8 bytes/block, and still agrees with the tree at every audit.
TEST(PathBackendDetail, ForcedRecursionAgreesWithTreeUnderStress) {
  rig fx;
  horam_config config = fx.config();
  config.map_entries_per_block = 8;
  config.map_direct_threshold = 4;
  oram::path_backend backend(config, fx.device, fx.cpu, fx.rng,
                             /*trace=*/nullptr, /*filler=*/nullptr,
                             &fx.map_device);
  EXPECT_GE(backend.map().level_count(), 2u);
  EXPECT_LT(backend.map().trusted_bytes(), 8 * kBlocks);

  util::pcg64 driver(test::seed(47));
  std::map<block_id, std::vector<std::uint8_t>> cached;
  for (std::uint64_t period = 0; period < 3; ++period) {
    for (std::uint64_t cycle = 0; cycle < fx.config().period_loads();
         ++cycle) {
      const block_id target = util::uniform_below(driver, kBlocks);
      if (backend.in_storage(target)) {
        const auto load = backend.load_block(target);
        cached[load.id] = load.payload;
      } else {
        (void)backend.dummy_load();
      }
    }
    std::vector<oram::evicted_block> evicted;
    for (auto& [id, payload] : cached) {
      evicted.push_back(oram::evicted_block{id, std::move(payload)});
    }
    cached.clear();
    std::vector<oram::evicted_block> overflow;
    (void)backend.shuffle_period(std::move(evicted), period, overflow);
    EXPECT_TRUE(overflow.empty());
    ASSERT_NO_THROW(backend.check_consistency()) << "period " << period;
  }
}

// The shuffle-period stash drain works: after a full evict-and-shuffle
// round the stash is back to a small constant, so the tree (not
// trusted memory) holds the dataset.
TEST(PathBackendDetail, ShuffleDrainReturnsStashToConstantSize) {
  rig fx;
  oram::path_backend backend(fx.config(), fx.device, fx.cpu, fx.rng,
                             /*trace=*/nullptr, /*filler=*/nullptr,
                             &fx.map_device);
  util::pcg64 driver(test::seed(53));

  std::vector<oram::evicted_block> evicted;
  for (std::uint64_t i = 0; i < fx.config().period_loads(); ++i) {
    const block_id target = util::uniform_below(driver, kBlocks);
    if (backend.in_storage(target)) {
      const auto load = backend.load_block(target);
      evicted.push_back(oram::evicted_block{load.id, load.payload});
    } else {
      (void)backend.dummy_load();
    }
  }
  std::vector<oram::evicted_block> overflow;
  (void)backend.shuffle_period(std::move(evicted), 0, overflow);
  EXPECT_TRUE(overflow.empty());
  EXPECT_GT(backend.last_drain_accesses(), 0u);
  EXPECT_LE(backend.tree().stash_ref().size(),
            2u * fx.config().bucket_size);
  ASSERT_NO_THROW(backend.check_consistency());
}

// A legal non-power-of-two bucket size must not trip the tree's
// power-of-two leaf-count contract (the leaf count is derived by
// doubling, independently of Z).
TEST(PathBackendDetail, AcceptsNonPowerOfTwoBucketSize) {
  client oram = client_builder()
                    .blocks(200)
                    .memory_blocks(30)
                    .payload_bytes(8)
                    .bucket_size(5)
                    .backend(backend_kind::path)
                    .seed(test::seed(67))
                    .build();
  const std::vector<std::uint8_t> data(8, 0x5A);
  oram.write(3, data);
  EXPECT_EQ(oram.read(3), data);
  EXPECT_NO_THROW(oram.backend().check_consistency());
}

// Sanity of the client-facing recursion knobs: a facade-built client
// with forced recursion still round-trips data.
TEST(PathBackendDetail, FacadeClientWithForcedRecursionRoundTrips) {
  client oram = client_builder()
                    .blocks(kBlocks)
                    .memory_blocks(kMemoryBlocks)
                    .payload_bytes(kPayload)
                    .backend(backend_kind::path)
                    .seed(test::seed(59))
                    .config_tweak([](horam_config& config) {
                      config.map_entries_per_block = 8;
                      config.map_direct_threshold = 8;
                    })
                    .build();
  util::pcg64 driver(test::seed(61));
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  for (int step = 0; step < 200; ++step) {
    const block_id id = util::uniform_below(driver, kBlocks);
    if (util::bernoulli(driver, 0.5)) {
      const auto data = tagged(id, static_cast<std::uint64_t>(step));
      oram.write(id, data);
      shadow[id] = data;
    } else {
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(kPayload, 0);
      ASSERT_EQ(oram.read(id), expected) << "step " << step;
    }
  }
  EXPECT_NO_THROW(oram.backend().check_consistency());
}

}  // namespace
}  // namespace horam
