// Unit tests for src/sim: clock, device timing model (seek vs
// sequential), calibration of the paper profile, buffer cache, CPU
// model.
#include <gtest/gtest.h>

#include "sim/buffer_cache.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "sim/profiles.h"
#include "util/contracts.h"
#include "util/units.h"

namespace horam::sim {
namespace {

device_profile simple_profile() {
  return device_profile{.name = "test",
                        .seek_time = 1000,            // 1 us
                        .read_bytes_per_second = 1e9,  // 1 GB/s
                        .write_bytes_per_second = 5e8,  // 0.5 GB/s
                        .per_op_time = 100};
}

TEST(Clock, AdvancesMonotonically) {
  sim_clock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(5);
  clock.advance(0);
  EXPECT_EQ(clock.now(), 5);
  EXPECT_THROW(clock.advance(-1), contract_error);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(Device, FirstAccessPaysSeek) {
  block_device device(simple_profile());
  // 1000 bytes at 1 GB/s = 1000 ns transfer + 100 per-op + 1000 seek.
  EXPECT_EQ(device.read(0, 1000), 1000 + 100 + 1000);
}

TEST(Device, SequentialAccessSkipsSeek) {
  block_device device(simple_profile());
  device.read(0, 1000);
  // Continues where the head stopped: no seek.
  EXPECT_EQ(device.read(1000, 1000), 1000 + 100);
  // Jumping back pays the seek again.
  EXPECT_EQ(device.read(0, 1000), 1000 + 100 + 1000);
}

TEST(Device, WritesUseWriteThroughput) {
  block_device device(simple_profile());
  // 1000 bytes at 0.5 GB/s = 2000 ns + 100 + seek 1000.
  EXPECT_EQ(device.write(0, 1000), 2000 + 100 + 1000);
}

TEST(Device, ReadAfterWriteAtHeadIsSequential) {
  block_device device(simple_profile());
  device.write(0, 512);
  EXPECT_EQ(device.read(512, 1000), 1000 + 100);
}

TEST(Device, InvalidateHeadForcesSeek) {
  block_device device(simple_profile());
  device.read(0, 1000);
  device.invalidate_head();
  EXPECT_EQ(device.read(1000, 1000), 1000 + 100 + 1000);
}

TEST(Device, StatsAccumulate) {
  block_device device(simple_profile());
  device.read(0, 100);
  device.read(100, 100);  // sequential
  device.write(500, 200);
  const io_stats& stats = device.stats();
  EXPECT_EQ(stats.read_ops, 2u);
  EXPECT_EQ(stats.sequential_read_ops, 1u);
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_EQ(stats.sequential_write_ops, 0u);
  EXPECT_EQ(stats.bytes_read, 200u);
  EXPECT_EQ(stats.bytes_written, 200u);
  EXPECT_GT(stats.busy_time, 0);
  device.reset_stats();
  EXPECT_EQ(device.stats().total_ops(), 0u);
}

TEST(Device, RejectsNonPositiveThroughput) {
  device_profile bad = simple_profile();
  bad.read_bytes_per_second = 0.0;
  EXPECT_THROW(block_device{bad}, horam::contract_error);
}

// ------------------------------------------------ round-trip counting

TEST(Device, EachBareOpIsOneRoundTrip) {
  block_device device(simple_profile());
  // Outside any scope, every operation's input could depend on the
  // previous result: each is its own dependent exchange.
  device.read(0, 100);
  device.write(500, 100);
  device.read(1000, 100);
  EXPECT_EQ(device.stats().round_trips, 3u);
}

TEST(Device, TripScopeBatchesOpsIntoOneTrip) {
  block_device device(simple_profile());
  {
    trip_scope trip(&device);
    device.read(0, 100);
    device.read(4096, 100);
    device.write(8192, 200);
  }
  EXPECT_EQ(device.stats().round_trips, 1u);
  // Timing is untouched by scoping: an identical unscoped sequence on
  // a fresh device accumulates the same busy time.
  block_device control(simple_profile());
  control.read(0, 100);
  control.read(4096, 100);
  control.write(8192, 200);
  EXPECT_EQ(device.stats().busy_time, control.stats().busy_time);
}

TEST(Device, EmptyTripScopeCountsNothing) {
  block_device device(simple_profile());
  { trip_scope trip(&device); }
  EXPECT_EQ(device.stats().round_trips, 0u);
}

TEST(Device, NestedTripScopesFoldIntoOutermost) {
  block_device device(simple_profile());
  {
    trip_scope outer(&device);
    device.read(0, 100);
    {
      trip_scope inner(&device);
      device.write(500, 100);
    }
    device.read(1000, 100);
  }
  EXPECT_EQ(device.stats().round_trips, 1u);
}

TEST(Device, TripScopeCountsPerDevice) {
  block_device storage(simple_profile());
  block_device memory(simple_profile());
  {
    trip_scope trip(&storage, &memory);
    storage.read(0, 100);
    memory.read(0, 100);
  }
  EXPECT_EQ(storage.stats().round_trips, 1u);
  EXPECT_EQ(memory.stats().round_trips, 1u);
  {
    // A scope where only one lane sees traffic charges only that lane.
    trip_scope trip(&storage, &memory);
    storage.read(4096, 100);
  }
  EXPECT_EQ(storage.stats().round_trips, 2u);
  EXPECT_EQ(memory.stats().round_trips, 1u);
}

TEST(Device, ResetStatsClearsRoundTrips) {
  block_device device(simple_profile());
  device.read(0, 100);
  EXPECT_EQ(device.stats().round_trips, 1u);
  device.reset_stats();
  EXPECT_EQ(device.stats().round_trips, 0u);
}

// Calibration against the thesis measurements (Table 5-2 / 5-3): a
// random 1 KB read ~ 77 us; a Path ORAM request doing 4 random 4 KB
// bucket reads + 4 random 4 KB bucket writes ~ 1.03 ms.
TEST(Profiles, PaperHddRandomReadLatency) {
  block_device device(hdd_paper());
  const sim_time t = device.read(123456789, 1024);
  EXPECT_NEAR(util::ns_to_us(t), 77.0, 8.0);
}

TEST(Profiles, PaperHddPathOramRequestLatency) {
  block_device device(hdd_paper());
  sim_time total = 0;
  for (int i = 0; i < 4; ++i) {
    total += device.read(static_cast<std::uint64_t>(i) * 7919 * 4096, 4096);
  }
  for (int i = 0; i < 4; ++i) {
    total += device.write(static_cast<std::uint64_t>(i) * 104729 * 4096,
                          4096);
  }
  EXPECT_NEAR(util::ns_to_us(total), 1032.0, 120.0);
}

TEST(Profiles, PaperHddSequentialThroughput) {
  block_device device(hdd_paper());
  // Stream 100 MB in 1 MB chunks; effective rate ~ 102.7 MB/s.
  sim_time total = 0;
  for (int i = 0; i < 100; ++i) {
    total += device.read(static_cast<std::uint64_t>(i) << 20, 1 << 20);
  }
  const double seconds = util::ns_to_s(total);
  // 100 MiB moved; the profile's throughput is in decimal MB/s.
  const double mb_per_s = 100.0 * 1048576.0 / 1e6 / seconds;
  EXPECT_NEAR(mb_per_s, 102.7, 3.0);
}

TEST(Profiles, DeviceOrdering) {
  // Faster devices have strictly smaller random 4 KB read times.
  block_device hdd_raw(hdd_7200_raw());
  block_device hdd(hdd_paper());
  block_device sata(ssd_sata());
  block_device fast(nvme());
  block_device ram(dram_ddr4());
  const auto t = [](block_device& d) { return d.read(1 << 30, 4096); };
  EXPECT_GT(t(hdd_raw), t(hdd));
  EXPECT_GT(t(hdd), t(sata));
  EXPECT_GT(t(sata), t(fast));
  EXPECT_GT(t(fast), t(ram));
}

// ---------------------------------------------------------------- cache

TEST(BufferCache, HitAfterMiss) {
  block_device device(simple_profile());
  buffer_cache cache(device, {.page_size = 4096, .capacity_pages = 4,
                              .hit_time = 10});
  const sim_time miss = cache.read(0, 4096);
  const sim_time hit = cache.read(0, 4096);
  EXPECT_GT(miss, hit);
  EXPECT_EQ(hit, 10);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BufferCache, LruEvictsOldest) {
  block_device device(simple_profile());
  buffer_cache cache(device, {.page_size = 4096, .capacity_pages = 2,
                              .hit_time = 10});
  cache.read(0 * 4096, 4096);   // page 0
  cache.read(1 * 4096, 4096);   // page 1
  cache.read(0 * 4096, 4096);   // page 0 -> MRU
  cache.read(2 * 4096, 4096);   // evicts page 1
  EXPECT_EQ(cache.read(0, 4096), 10);       // still resident
  EXPECT_GT(cache.read(1 * 4096, 4096), 10);  // was evicted
}

TEST(BufferCache, WriteBackDefersDeviceWrites) {
  block_device device(simple_profile());
  buffer_cache cache(device, {.page_size = 4096, .capacity_pages = 4,
                              .hit_time = 10});
  cache.write(0, 4096);  // full page: no fill, no device write yet
  EXPECT_EQ(device.stats().write_ops, 0u);
  cache.flush();
  EXPECT_EQ(device.stats().write_ops, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(BufferCache, PartialWriteFillsFirst) {
  block_device device(simple_profile());
  buffer_cache cache(device, {.page_size = 4096, .capacity_pages = 4,
                              .hit_time = 10});
  cache.write(100, 50);  // partial page: must read-modify-write
  EXPECT_EQ(device.stats().read_ops, 1u);
}

TEST(BufferCache, EvictionWritesDirtyPage) {
  block_device device(simple_profile());
  buffer_cache cache(device, {.page_size = 4096, .capacity_pages = 1,
                              .hit_time = 10});
  cache.write(0, 4096);       // dirty page 0
  cache.read(4096, 4096);     // evicts page 0 -> device write
  EXPECT_EQ(device.stats().write_ops, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BufferCache, InvalidateDropsEverything) {
  block_device device(simple_profile());
  buffer_cache cache(device, {.page_size = 4096, .capacity_pages = 4,
                              .hit_time = 10});
  cache.write(0, 4096);
  cache.invalidate();
  EXPECT_EQ(cache.resident_pages(), 0u);
  EXPECT_EQ(device.stats().write_ops, 1u);  // flushed before dropping
}

// ------------------------------------------------------------ cpu model

TEST(CpuModel, CryptoTimeScalesWithBytes) {
  const cpu_model cpu(cpu_profile{.name = "t",
                                  .crypto_bytes_per_second = 1e9,
                                  .per_block_time = 100,
                                  .word_ops_per_second = 1e9});
  // 10 blocks of 1000 bytes: 10 us bulk + 1 us fixed.
  EXPECT_EQ(cpu.crypto_time(10, 1000), 10000 + 1000);
  EXPECT_EQ(cpu.crypto_time(0, 1000), 0);
}

TEST(CpuModel, WordOps) {
  const cpu_model cpu(cpu_profile{.name = "t",
                                  .crypto_bytes_per_second = 1e9,
                                  .per_block_time = 0,
                                  .word_ops_per_second = 1e9});
  EXPECT_EQ(cpu.word_ops_time(1000), 1000);
}

TEST(CpuModel, SoftCryptoSlowerThanAesni) {
  const cpu_model soft(cpu_soft_crypto());
  const cpu_model hw(cpu_aesni());
  EXPECT_GT(soft.crypto_time(100, 1024), hw.crypto_time(100, 1024));
}

}  // namespace
}  // namespace horam::sim
