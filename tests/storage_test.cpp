// Unit tests for src/storage: block store and partitioned store.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/profiles.h"
#include "storage/block_store.h"
#include "storage/partitioned_store.h"
#include "util/contracts.h"

namespace horam::storage {
namespace {

std::vector<std::uint8_t> record_of(std::uint8_t fill, std::size_t size) {
  return std::vector<std::uint8_t>(size, fill);
}

TEST(BlockStore, RoundTripSingleRecords) {
  sim::block_device device(sim::dram_ddr4());
  block_store store(device, 0, 16, 32, 64);
  store.write(3, record_of(0xab, 32));
  std::vector<std::uint8_t> out(32);
  store.read(3, out);
  EXPECT_EQ(out, record_of(0xab, 32));
}

TEST(BlockStore, RangeRoundTrip) {
  sim::block_device device(sim::dram_ddr4());
  block_store store(device, 0, 16, 8, 8);
  std::vector<std::uint8_t> data(4 * 8);
  std::iota(data.begin(), data.end(), std::uint8_t{0});
  store.write_range(4, 4, data);
  std::vector<std::uint8_t> out(4 * 8);
  store.read_range(4, 4, out);
  EXPECT_EQ(out, data);
  // Single-record view agrees.
  std::vector<std::uint8_t> one(8);
  store.read(5, one);
  EXPECT_EQ(one, std::vector<std::uint8_t>(data.begin() + 8,
                                           data.begin() + 16));
}

TEST(BlockStore, BoundsChecked) {
  sim::block_device device(sim::dram_ddr4());
  block_store store(device, 0, 4, 8, 8);
  std::vector<std::uint8_t> buf(8);
  EXPECT_THROW(store.read(4, buf), contract_error);
  EXPECT_THROW(store.write(4, buf), contract_error);
  EXPECT_THROW(store.read_range(3, 2, buf), contract_error);
  std::vector<std::uint8_t> tiny(4);
  EXPECT_THROW(store.read(0, tiny), contract_error);
}

TEST(BlockStore, ChargesLogicalBlockTiming) {
  // Two stores with identical record sizes but different logical block
  // sizes must charge different device time.
  sim::block_device device_small(sim::hdd_paper());
  sim::block_device device_large(sim::hdd_paper());
  block_store small(device_small, 0, 8, 32, 64);
  block_store large(device_large, 0, 8, 32, 1024);
  std::vector<std::uint8_t> buf(32);
  const sim::sim_time t_small = small.read(7, buf);
  const sim::sim_time t_large = large.read(7, buf);
  EXPECT_LT(t_small, t_large);
  EXPECT_EQ(device_small.stats().bytes_read, 64u);
  EXPECT_EQ(device_large.stats().bytes_read, 1024u);
}

TEST(BlockStore, RangeIsSingleDeviceOp) {
  sim::block_device device(sim::hdd_paper());
  block_store store(device, 0, 64, 16, 1024);
  std::vector<std::uint8_t> buf(32 * 16);
  store.read_range(0, 32, buf);
  EXPECT_EQ(device.stats().read_ops, 1u);
  EXPECT_EQ(device.stats().bytes_read, 32u * 1024u);
}

TEST(BlockStore, BaseOffsetSeparatesRegions) {
  sim::block_device device(sim::dram_ddr4());
  block_store region_a(device, 0, 4, 8, 8);
  block_store region_b(device, 4 * 8, 4, 8, 8);
  region_a.write(0, record_of(1, 8));
  region_b.write(0, record_of(2, 8));
  std::vector<std::uint8_t> out(8);
  region_a.read(0, out);
  EXPECT_EQ(out, record_of(1, 8));
  region_b.read(0, out);
  EXPECT_EQ(out, record_of(2, 8));
}

TEST(BlockStore, PeekDoesNotChargeTime) {
  sim::block_device device(sim::dram_ddr4());
  block_store store(device, 0, 4, 8, 8);
  store.write(1, record_of(9, 8));
  device.reset_stats();
  EXPECT_EQ(store.peek(1)[0], 9);
  EXPECT_EQ(device.stats().total_ops(), 0u);
}

// ----------------------------------------------------- partitioned store

partition_geometry small_geometry() {
  return partition_geometry{.partition_count = 4,
                            .main_capacity = 8,
                            .append_capacity = 4};
}

TEST(PartitionedStore, SlotRoundTrip) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  store.write_slot(2, 5, record_of(0x77, 16));
  std::vector<std::uint8_t> out(16);
  store.read_slot(2, 5, out);
  EXPECT_EQ(out, record_of(0x77, 16));
}

TEST(PartitionedStore, PartitionsAreDisjoint) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  store.write_slot(0, 0, record_of(1, 16));
  store.write_slot(1, 0, record_of(2, 16));
  std::vector<std::uint8_t> out(16);
  store.read_slot(0, 0, out);
  EXPECT_EQ(out[0], 1);
  store.read_slot(1, 0, out);
  EXPECT_EQ(out[0], 2);
}

TEST(PartitionedStore, AppendAndReadBack) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  EXPECT_EQ(store.appended_count(1), 0u);
  std::vector<std::uint8_t> two_records(2 * 16, 0x42);
  store.append(1, two_records);
  EXPECT_EQ(store.appended_count(1), 2u);
  std::vector<std::uint8_t> out(16);
  store.read_append_slot(1, 1, out);
  EXPECT_EQ(out, record_of(0x42, 16));
  EXPECT_THROW(store.read_append_slot(1, 2, out), contract_error);
}

TEST(PartitionedStore, AppendOverflowThrows) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  store.append(0, std::vector<std::uint8_t>(4 * 16));
  EXPECT_THROW(store.append(0, std::vector<std::uint8_t>(16)),
               contract_error);
}

TEST(PartitionedStore, ReadPartitionIncludesAppends) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  store.append(3, std::vector<std::uint8_t>(3 * 16, 0x11));
  std::vector<std::uint8_t> image;
  std::uint64_t records = 0;
  store.read_partition(3, /*include_appends=*/true, image, records);
  EXPECT_EQ(records, 8u + 3u);
  store.read_partition(3, /*include_appends=*/false, image, records);
  EXPECT_EQ(records, 8u);
}

TEST(PartitionedStore, WritePartitionResetsAppends) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  store.append(2, std::vector<std::uint8_t>(2 * 16));
  store.write_partition(2, std::vector<std::uint8_t>(8 * 16, 0x33));
  EXPECT_EQ(store.appended_count(2), 0u);
  std::vector<std::uint8_t> out(16);
  store.read_slot(2, 7, out);
  EXPECT_EQ(out, record_of(0x33, 16));
}

TEST(PartitionedStore, PartitionSweepIsSequential) {
  sim::block_device device(sim::hdd_paper());
  partitioned_store store(device, 0, small_geometry(), 16, 1024);
  device.reset_stats();
  std::vector<std::uint8_t> image;
  std::uint64_t records = 0;
  store.read_partition(1, false, image, records);
  EXPECT_EQ(device.stats().read_ops, 1u);  // one streaming transfer
  EXPECT_EQ(device.stats().bytes_read, 8u * 1024u);
}

TEST(PartitionedStore, WritePartitionRequiresFullImage) {
  sim::block_device device(sim::dram_ddr4());
  partitioned_store store(device, 0, small_geometry(), 16, 16);
  EXPECT_THROW(store.write_partition(0, std::vector<std::uint8_t>(16)),
               contract_error);
}

TEST(PartitionedStore, GeometryAccounting) {
  const partition_geometry g = small_geometry();
  EXPECT_EQ(g.slots_per_partition(), 12u);
  EXPECT_EQ(g.total_slots(), 48u);
}

}  // namespace
}  // namespace horam::storage
