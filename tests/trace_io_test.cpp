// Tests of the request-trace CSV serialisation (workload/trace_io):
// save/load round-trips (including comments, blank lines and CRLF
// endings), malformed-input diagnostics that name the 1-based line of
// the *file* rather than of the parsed request stream, and the payload
// model — write payloads derive from (id, per-id write ordinal), so a
// trace file fully determines the run and editing unrelated lines
// never changes what a write stores.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "workload/generators.h"
#include "workload/trace_io.h"

namespace horam::workload {
namespace {

using oram::op_kind;

constexpr std::size_t kPayload = 24;

std::vector<request> load(const std::string& text) {
  std::istringstream in(text);
  return load_trace(in, kPayload);
}

std::string message_of(const std::string& text) {
  try {
    (void)load(text);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return {};
}

TEST(TraceIo, SaveThenLoadRoundTrips) {
  std::vector<request> stream;
  for (int i = 0; i < 20; ++i) {
    request req;
    req.op = (i % 3 == 0) ? op_kind::write : op_kind::read;
    req.id = static_cast<oram::block_id>(i * 7 % 13);
    req.user = static_cast<std::uint32_t>(i % 4);
    if (req.op == op_kind::write) {
      req.write_data = payload_for(req.id, 0, kPayload);  // placeholder
    }
    stream.push_back(std::move(req));
  }
  std::ostringstream out;
  save_trace(out, stream);
  const std::vector<request> loaded = load(out.str());

  ASSERT_EQ(loaded.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded[i].op, stream[i].op) << "request " << i;
    EXPECT_EQ(loaded[i].id, stream[i].id) << "request " << i;
    EXPECT_EQ(loaded[i].user, stream[i].user) << "request " << i;
  }
}

TEST(TraceIo, SaveLoadSaveIsByteIdentical) {
  const std::string text = "W,3,1\nR,3,0\nW,3,2\nW,7,0\nR,7,1\n";
  const std::vector<request> first = load(text);
  std::ostringstream resaved;
  save_trace(resaved, first);
  EXPECT_EQ(resaved.str(), text);
  // And the payloads of a second load agree with the first: the file is
  // the whole truth.
  const std::vector<request> second = load(resaved.str());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].write_data, first[i].write_data) << "request " << i;
  }
}

TEST(TraceIo, SkipsCommentsBlankLinesAndTrailingCr) {
  const std::string text =
      "# a captured trace\r\n"
      "\r\n"
      "W,5,0\r\n"
      "\n"
      "# mid-stream comment\n"
      "R,5,1\r\n";
  const std::vector<request> stream = load(text);
  ASSERT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream[0].op, op_kind::write);
  EXPECT_EQ(stream[0].id, 5u);
  EXPECT_EQ(stream[1].op, op_kind::read);
  EXPECT_EQ(stream[1].user, 1u);
}

TEST(TraceIo, PayloadsComeFromIdAndWriteOrdinal) {
  const std::vector<request> stream = load("W,9,0\nW,4,0\nW,9,0\n");
  ASSERT_EQ(stream.size(), 3u);
  EXPECT_EQ(stream[0].write_data, payload_for(9, 0, kPayload));
  EXPECT_EQ(stream[1].write_data, payload_for(4, 0, kPayload));
  EXPECT_EQ(stream[2].write_data, payload_for(9, 1, kPayload));
  EXPECT_NE(stream[0].write_data, stream[2].write_data)
      << "repeat writes to one id must store distinct payloads";
}

TEST(TraceIo, PayloadsSurviveCommentInsertionAndUnrelatedEdits) {
  // The same logical stream with comments injected and an unrelated
  // read added must store byte-identical payloads: payloads depend on
  // (id, per-id write ordinal), never on file position.
  const std::vector<request> plain = load("W,2,0\nW,2,0\nW,6,0\n");
  const std::vector<request> edited = load(
      "# header\n\nW,2,0\nR,100,0\n# between the writes\nW,2,0\n\nW,6,0\n");
  ASSERT_EQ(plain.size(), 3u);
  ASSERT_EQ(edited.size(), 4u);
  EXPECT_EQ(edited[0].write_data, plain[0].write_data);
  EXPECT_EQ(edited[2].write_data, plain[1].write_data);
  EXPECT_EQ(edited[3].write_data, plain[2].write_data);
}

TEST(TraceIo, MalformedOpNamesTheFileLine) {
  // Line 1 is a comment, line 2 blank, line 3 valid — the bad op sits
  // on *file* line 4, not request 2.
  const std::string message = message_of("# head\n\nR,1,0\nX,2,0\n");
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("op must be R or W"), std::string::npos)
      << message;
}

TEST(TraceIo, MalformedIdNamesTheFieldAndLine) {
  const std::string message = message_of("R,1,0\nW,abc,0\n");
  EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  EXPECT_NE(message.find("malformed id"), std::string::npos) << message;
  EXPECT_NE(message.find("'abc'"), std::string::npos) << message;
}

TEST(TraceIo, TrailingJunkInANumberIsAnError) {
  // std::stoull would silently accept "12x" as 12; the loader must not.
  const std::string message = message_of("R,12x,0\n");
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("malformed id"), std::string::npos) << message;
}

TEST(TraceIo, MalformedUserNamesTheFieldAndLine) {
  const std::string message = message_of("R,1,0\n\nR,2,u7\n");
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("malformed user"), std::string::npos) << message;
}

TEST(TraceIo, MissingFieldsAreAnError) {
  const std::string message = message_of("R\n");
  EXPECT_NE(message.find("line 1"), std::string::npos) << message;
  EXPECT_NE(message.find("op,id"), std::string::npos) << message;
}

TEST(TraceIo, OmittedUserDefaultsToZero) {
  const std::vector<request> stream = load("R,41\n");
  ASSERT_EQ(stream.size(), 1u);
  EXPECT_EQ(stream[0].user, 0u);
}

}  // namespace
}  // namespace horam::workload
