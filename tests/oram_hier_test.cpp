// Tests for the single-round-trip hierarchical backend (oram/hier/):
// the cycle-walking Feistel permutation, the packed succinct index,
// level geometry, the one-batched-probe online path (one device round
// trip per load, distinct slots within an epoch), in-place level
// refreshes, and data survival across merges driven both monolithically
// and through bounded incremental steps.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "horam.h"
#include "oram/hier/feistel_prp.h"
#include "oram/hier/hier_backend.h"
#include "oram/hier/succinct_index.h"
#include "test_support.h"

namespace horam::oram {
namespace {

constexpr std::uint64_t kBlocks = 256;
constexpr std::uint64_t kMemoryBlocks = 32;
constexpr std::size_t kPayload = 16;

struct rig {
  sim::block_device device{sim::hdd_paper()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{test::seed(501)};

  horam_config config() const {
    horam_config c;
    c.block_count = kBlocks;
    c.memory_blocks = kMemoryBlocks;
    c.payload_bytes = kPayload;
    c.seal = true;
    return c;
  }

  hier_backend make() {
    return hier_backend(config(), device, cpu, rng, /*trace=*/nullptr,
                        /*filler=*/nullptr);
  }
};

std::vector<std::uint8_t> tagged(block_id id) {
  std::vector<std::uint8_t> data(kPayload, 0);
  data[0] = static_cast<std::uint8_t>(id);
  data[1] = static_cast<std::uint8_t>(id >> 8);
  return data;
}

// --------------------------------------------------------- feistel_prp

TEST(FeistelPrp, BijectionOverAwkwardDomains) {
  util::pcg64 rng{test::seed(502)};
  // Odd, prime, power-of-two and tiny domains: forward must be a
  // bijection and inverse its exact inverse on every one (cycle-walking
  // handles the non-power-of-two sizes).
  for (const std::uint64_t domain : {1ull, 2ull, 3ull, 17ull, 64ull,
                                     100ull, 257ull, 1000ull}) {
    const crypto::siphash_key key{rng.next_u64(), rng.next_u64()};
    feistel_prp prp(domain, key);
    std::set<std::uint64_t> seen;
    for (std::uint64_t rank = 0; rank < domain; ++rank) {
      const std::uint64_t slot = prp.forward(rank);
      ASSERT_LT(slot, domain) << "domain " << domain;
      EXPECT_TRUE(seen.insert(slot).second)
          << "collision at rank " << rank << ", domain " << domain;
      EXPECT_EQ(prp.inverse(slot), rank) << "domain " << domain;
    }
  }
}

TEST(FeistelPrp, KeyedPermutationsDiffer) {
  util::pcg64 rng{test::seed(503)};
  const crypto::siphash_key a{rng.next_u64(), rng.next_u64()};
  const crypto::siphash_key b{rng.next_u64(), rng.next_u64()};
  feistel_prp prp_a(256, a);
  feistel_prp prp_b(256, b);
  std::uint64_t agreements = 0;
  for (std::uint64_t rank = 0; rank < 256; ++rank) {
    agreements += prp_a.forward(rank) == prp_b.forward(rank) ? 1 : 0;
  }
  // Two random permutations of 256 agree ~1 time on average; 32 would
  // mean the key is ignored.
  EXPECT_LT(agreements, 32u);
}

// ------------------------------------------------------ succinct_index

TEST(SuccinctIndex, PlaceLookupClearRoundTrip) {
  succinct_index index(/*universe=*/100, /*level_bits=*/3,
                       /*slot_bits=*/10);
  EXPECT_EQ(index.entry_bits(), 13u);
  for (block_id id = 0; id < 100; ++id) {
    EXPECT_EQ(index.level_of(id), 0u) << id;
  }
  index.place(7, 3, 1000);
  EXPECT_EQ(index.level_of(7), 3u);
  EXPECT_EQ(index.slot_of(7), 1000u);
  // Neighbours of a packed entry stay untouched.
  EXPECT_EQ(index.level_of(6), 0u);
  EXPECT_EQ(index.level_of(8), 0u);
  index.clear(7);
  EXPECT_EQ(index.level_of(7), 0u);
}

TEST(SuccinctIndex, EntriesStraddlingWordBoundariesSurvive) {
  // 13-bit entries: entry 4 spans bits 52..64, crossing the first word
  // boundary; a dense fill + full read-back exercises every straddle.
  succinct_index index(/*universe=*/200, /*level_bits=*/3,
                       /*slot_bits=*/10);
  for (block_id id = 0; id < 200; ++id) {
    index.place(id, 1 + id % 7, id * 5 % 1024);
  }
  for (block_id id = 0; id < 200; ++id) {
    EXPECT_EQ(index.level_of(id), 1 + id % 7) << id;
    EXPECT_EQ(index.slot_of(id), id * 5 % 1024) << id;
  }
  EXPECT_LE(index.bytes(), 200u * 13u / 8u + 24u);
}

// ------------------------------------------------------------ geometry

TEST(HierBackend, GeometryGrowsGeometricallyToCoverTheDataset) {
  rig fx;
  hier_backend backend = fx.make();
  // r_1 = max(16, memory_blocks) = 32, fan-out 4: 32, 128, 512 >= 256.
  ASSERT_EQ(backend.level_count(), 3u);
  EXPECT_EQ(backend.level_real_capacity(1), 32u);
  EXPECT_EQ(backend.level_real_capacity(2), 128u);
  EXPECT_EQ(backend.level_real_capacity(3), 512u);
  // Only the bottom level holds an epoch at start; everything lives
  // there, and levels are laid out contiguously on one store.
  EXPECT_EQ(backend.active_levels(), 1u);
  EXPECT_EQ(backend.level_live(3), kBlocks);
  EXPECT_EQ(backend.level_base(1), 0u);
  EXPECT_EQ(backend.level_base(2), backend.level_slot_count(1));
  for (std::uint32_t level = 1; level <= 3; ++level) {
    EXPECT_GT(backend.level_slot_count(level),
              backend.level_real_capacity(level))
        << "level " << level << " has no dummy pool";
  }
  EXPECT_NO_THROW(backend.check_consistency());
}

TEST(HierBackend, ControlMemoryIsTheIndexNotTheDataset) {
  rig fx;
  hier_backend backend = fx.make();
  // The trusted footprint is entry_bits per block plus O(levels) —
  // far below one payload per block, but (the documented trade-off)
  // it does grow linearly with the block count.
  EXPECT_LT(backend.control_memory_bytes(), kBlocks * kPayload);
  EXPECT_GE(backend.control_memory_bytes(),
            kBlocks * backend.index_entry_bits() / 8);
  EXPECT_GT(backend.physical_bytes(), 0u);
}

// ---------------------------------------------------------- online path

TEST(HierBackend, LoadIsOneRoundTripAndOneProbePerActiveLevel) {
  rig fx;
  hier_backend backend = fx.make();
  fx.device.reset_stats();
  const oram_backend::load_result load = backend.load_block(42);
  EXPECT_EQ(load.id, 42u);
  EXPECT_EQ(load.payload, std::vector<std::uint8_t>(kPayload, 0));
  EXPECT_FALSE(backend.in_storage(42));
  // The whole access is one batched scatter read: a single round trip,
  // one slot read per active level.
  EXPECT_EQ(fx.device.stats().round_trips, 1u);
  EXPECT_EQ(fx.device.stats().read_ops, 1u);

  fx.device.reset_stats();
  (void)backend.dummy_load();
  EXPECT_EQ(fx.device.stats().round_trips, 1u);
  EXPECT_NO_THROW(backend.check_consistency());
}

TEST(HierBackend, ProbedSlotsNeverRepeatWithinAnEpoch) {
  rig fx;
  horam_config config = fx.config();
  // Generous rebuild budget so no refresh interrupts the window.
  config.hier_rebuild_rate = 8.0;
  hier_backend backend(config, fx.device, fx.cpu, fx.rng, nullptr,
                       nullptr);
  access_trace trace;
  hier_backend traced(config, fx.device, fx.cpu, fx.rng, &trace,
                      nullptr);
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 40; ++round) {
    const std::size_t before = trace.events().size();
    if (round % 2 == 0) {
      (void)traced.load_block(static_cast<block_id>(round));
    } else {
      (void)traced.dummy_load();
    }
    for (std::size_t i = before; i < trace.events().size(); ++i) {
      const auto& event = trace.events()[i];
      if (event.kind != event_kind::storage_read_slot) {
        continue;
      }
      EXPECT_TRUE(seen.insert(event.a).second)
          << "slot " << event.a << " probed twice in one epoch";
    }
  }
  EXPECT_NO_THROW(traced.check_consistency());
}

TEST(HierBackend, RefreshRepermutesASpentLevelInPlace) {
  rig fx;
  horam_config config = fx.config();
  // Tight budget: the bottom level's probes run out quickly.
  config.hier_rebuild_rate = 0.05;
  hier_backend backend(config, fx.device, fx.cpu, fx.rng, nullptr,
                       nullptr);
  ASSERT_EQ(backend.refresh_count(), 0u);
  for (int round = 0; round < 64; ++round) {
    (void)backend.dummy_load();
  }
  EXPECT_GT(backend.refresh_count(), 0u);
  // Refreshed levels still serve every resident block.
  std::vector<std::uint8_t> expect_payload(kPayload, 0);
  const oram_backend::load_result load = backend.load_block(7);
  EXPECT_EQ(load.payload, expect_payload);
  EXPECT_NO_THROW(backend.check_consistency());
}

// -------------------------------------------------------------- merges

TEST(HierBackend, DataSurvivesMergesUnderAShadowOracle) {
  rig fx;
  hier_backend backend = fx.make();
  std::map<block_id, std::vector<std::uint8_t>> oracle;
  for (block_id id = 0; id < kBlocks; ++id) {
    oracle[id] = std::vector<std::uint8_t>(kPayload, 0);
  }

  util::pcg64 gen{test::seed(504)};
  for (std::uint64_t period = 0; period < 12; ++period) {
    // Pull a random working set, rewrite it, hand it back via the
    // shuffle period — the monolithic entry point.
    std::vector<evicted_block> evicted;
    for (int k = 0; k < 8; ++k) {
      const block_id id =
          static_cast<block_id>(util::uniform_below(gen, kBlocks));
      if (!backend.in_storage(id)) {
        continue;
      }
      const oram_backend::load_result load = backend.load_block(id);
      EXPECT_EQ(load.payload, oracle[id]) << "period " << period;
      evicted.push_back({id, tagged(id)});
      evicted.back().payload[2] =
          static_cast<std::uint8_t>(period + 1);
      oracle[id] = evicted.back().payload;
    }
    std::vector<evicted_block> overflow;
    backend.shuffle_period(std::move(evicted), period, overflow);
    EXPECT_TRUE(overflow.empty()) << "period " << period;
    EXPECT_NO_THROW(backend.check_consistency());
  }
  // Every block is still resident and readable with its latest value.
  for (block_id id = 0; id < kBlocks; id += 13) {
    ASSERT_TRUE(backend.in_storage(id)) << id;
    const oram_backend::load_result load = backend.load_block(id);
    EXPECT_EQ(load.payload, oracle[id]) << id;
    std::vector<evicted_block> back;
    back.push_back({id, load.payload});
    std::vector<evicted_block> overflow;
    backend.shuffle_period(std::move(back), 100 + id, overflow);
    EXPECT_TRUE(overflow.empty());
  }
}

TEST(HierBackend, SteppedMergeKeepsStagedBlocksReadable) {
  rig fx;
  hier_backend backend = fx.make();
  const oram_backend::load_result load = backend.load_block(5);
  std::vector<evicted_block> evicted;
  evicted.push_back({5, tagged(5)});

  // Period 15 (16 = fan-out squared) escalates the merge to the bottom
  // level, whose slot count spans several transfer chunks — a bounded
  // budget genuinely needs multiple steps.
  std::unique_ptr<shuffle_job> job =
      backend.begin_shuffle(std::move(evicted), 15);
  ASSERT_NE(job, nullptr);
  // Until its chunk lands the merged block lives in the job's staging
  // area: still absent from storage, readable through staged().
  std::uint64_t steps = 0;
  bool saw_staged = false;
  while (!job->done()) {
    if (!backend.in_storage(5)) {
      const std::vector<std::uint8_t>* staged = job->staged(5);
      if (staged != nullptr) {
        EXPECT_EQ(*staged, tagged(5));
        saw_staged = true;
      }
    }
    (void)job->step(/*device_budget=*/1);
    ++steps;
    ASSERT_LT(steps, 100000u) << "merge never finished";
  }
  std::vector<evicted_block> overflow;
  job->finish(overflow);
  EXPECT_TRUE(overflow.empty());
  EXPECT_TRUE(saw_staged);
  EXPECT_GT(steps, 1u) << "bounded budgets should take several steps";
  EXPECT_TRUE(backend.in_storage(5));
  const oram_backend::load_result after = backend.load_block(5);
  EXPECT_EQ(after.payload, tagged(5));
  EXPECT_NO_THROW(backend.check_consistency());
}

TEST(HierBackend, MergesEventuallyReachAndRebuildDeeperLevels) {
  rig fx;
  hier_backend backend = fx.make();
  util::pcg64 gen{test::seed(505)};
  // Period indices 0,1,2,3: with fan-out 4 the schedule escalates the
  // target level at period 3 (g | period+1 once -> level 2).
  std::set<std::uint32_t> active_counts;
  for (std::uint64_t period = 0; period < 16; ++period) {
    std::vector<evicted_block> evicted;
    const block_id id =
        static_cast<block_id>(util::uniform_below(gen, kBlocks));
    if (backend.in_storage(id)) {
      (void)backend.load_block(id);
      evicted.push_back({id, tagged(id)});
    }
    std::vector<evicted_block> overflow;
    backend.shuffle_period(std::move(evicted), period, overflow);
    EXPECT_TRUE(overflow.empty());
    active_counts.insert(backend.active_levels());
  }
  // The hierarchy actually breathes: shallow merges leave several
  // levels active, deep ones collapse the stack toward one.
  EXPECT_GT(*active_counts.rbegin(), 1u);
  EXPECT_NO_THROW(backend.check_consistency());
}

}  // namespace
}  // namespace horam::oram
