// End-to-end tests of the H-ORAM controller: data correctness across
// periods and shuffles (differential testing against a shadow map),
// scheduling behaviour, policy timing, obliviousness audits of the full
// bus trace, and the multi-user front end.
#include <gtest/gtest.h>

#include <map>

#include "analysis/pattern_audit.h"
#include "core/controller.h"
#include "core/multi_user.h"
#include "sim/profiles.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace horam {
namespace {

using oram::block_id;
using oram::op_kind;

struct fixture {
  sim::block_device disk{sim::hdd_paper()};
  sim::block_device memory{sim::dram_ddr4()};
  sim::cpu_model cpu{sim::cpu_aesni()};
  util::pcg64 rng{41};
  oram::access_trace trace;

  horam_config config(std::uint64_t n = 512, std::uint64_t mem = 64) {
    horam_config c;
    c.block_count = n;
    c.memory_blocks = mem;
    c.payload_bytes = 16;
    c.seal = true;
    return c;
  }
};

std::vector<std::uint8_t> tagged(std::uint8_t tag) {
  return std::vector<std::uint8_t>(16, tag);
}

TEST(Controller, SingleOpReadWriteRoundTrip) {
  fixture fx;
  controller ctrl(fx.config(), fx.disk, fx.memory, fx.cpu, fx.rng);
  ctrl.write(100, tagged(0x5c));
  EXPECT_EQ(ctrl.read(100), tagged(0x5c));
  EXPECT_EQ(ctrl.read(101), std::vector<std::uint8_t>(16, 0));
}

TEST(Controller, ShadowMapAcrossManyPeriods) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng);
  // Period = 16 loads; 3000 requests span dozens of shuffle periods.
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(42);
  std::vector<request> batch;
  std::vector<std::vector<std::uint8_t>> expected_reads;
  for (int step = 0; step < 3000; ++step) {
    request req;
    req.id = util::uniform_below(driver, 256);
    if (util::bernoulli(driver, 0.3)) {
      req.op = op_kind::write;
      req.write_data = tagged(static_cast<std::uint8_t>(step));
      shadow[req.id] = req.write_data;
      expected_reads.emplace_back();
    } else {
      req.op = op_kind::read;
      expected_reads.push_back(shadow.contains(req.id)
                                   ? shadow[req.id]
                                   : std::vector<std::uint8_t>(16, 0));
    }
    batch.push_back(std::move(req));
  }
  // NOTE: requests in one batch may be serviced out of order, so the
  // shadow expectation must be taken per-request at submission time —
  // the scheduler preserves per-block program order only for blocks
  // serviced through the memory tree. To keep the oracle exact, submit
  // sequentially here.
  std::vector<request_result> results;
  std::uint64_t checked = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::vector<request> one{batch[i]};
    ctrl.run(one, &results);
    if (batch[i].op == op_kind::read) {
      ASSERT_EQ(results[0].read_data, expected_reads[i])
          << "request " << i << " id " << batch[i].id;
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000u);
  EXPECT_GT(ctrl.stats().periods, 5u);
}

TEST(Controller, BatchModeServicesEveryRequest) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng);
  workload::stream_config stream;
  stream.request_count = 2000;
  stream.block_count = 256;
  stream.write_fraction = 0.25;
  stream.payload_bytes = 16;
  util::pcg64 gen(43);
  const std::vector<request> batch = workload::hotspot(gen, stream);
  std::vector<request_result> results;
  ctrl.run(batch, &results);

  ASSERT_EQ(results.size(), batch.size());
  const controller_stats& stats = ctrl.stats();
  EXPECT_EQ(stats.requests, 2000u);
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  EXPECT_EQ(stats.cycles, stats.real_loads + stats.dummy_loads);
  // A block evicted by a shuffle before its requester was serviced is
  // re-loaded, so loads can exceed the count of miss-classified requests.
  EXPECT_GE(stats.real_loads, stats.misses);
  for (const request_result& result : results) {
    EXPECT_GT(result.completion_time, 0);
    EXPECT_LE(result.completion_time, ctrl.now());
  }
}

TEST(Controller, LastWriteWinsWithinBatch) {
  // Writes and reads to the same block in one batch are serviced in
  // program order by the scheduler's in-order window scan.
  fixture fx;
  controller ctrl(fx.config(), fx.disk, fx.memory, fx.cpu, fx.rng);
  std::vector<request> batch;
  request w1{op_kind::write, 5, 0, tagged(1)};
  request w2{op_kind::write, 5, 0, tagged(2)};
  request r{op_kind::read, 5, 0, {}};
  batch.push_back(w1);
  batch.push_back(w2);
  batch.push_back(r);
  std::vector<request_result> results;
  ctrl.run(batch, &results);
  EXPECT_EQ(results[2].read_data, tagged(2));
}

TEST(Controller, PeriodEndsAfterHalfMemoryLoads) {
  fixture fx;
  controller ctrl(fx.config(512, 64), fx.disk, fx.memory, fx.cpu, fx.rng);
  // period_loads = 32; a uniform all-miss stream of 40 requests must
  // trigger exactly one shuffle.
  std::vector<request> batch;
  for (block_id id = 0; id < 40; ++id) {
    batch.push_back(request{op_kind::read, id, 0, {}});
  }
  ctrl.run(batch);
  EXPECT_EQ(ctrl.stats().periods, 1u);
  EXPECT_GT(ctrl.stats().shuffle_time, 0);
}

TEST(Controller, MemoryResidencyIsBoundedByPeriod) {
  fixture fx;
  controller ctrl(fx.config(512, 64), fx.disk, fx.memory, fx.cpu, fx.rng);
  workload::stream_config stream;
  stream.request_count = 500;
  stream.block_count = 512;
  stream.payload_bytes = 16;
  util::pcg64 gen(44);
  ctrl.run(workload::uniform(gen, stream));
  // The tree never holds more than period_loads = n/2 real blocks.
  EXPECT_LE(ctrl.memory_tree().resident_blocks(),
            ctrl.config().period_loads());
}

TEST(Controller, HitsAreCheaperThanColdMisses) {
  fixture fx;
  controller ctrl(fx.config(), fx.disk, fx.memory, fx.cpu, fx.rng);
  // Warm one block, then hammer it: hit rate should be high.
  std::vector<request> warm{request{op_kind::write, 9, 0, tagged(9)}};
  ctrl.run(warm);
  std::vector<request> hammer(50, request{op_kind::read, 9, 0, {}});
  const std::uint64_t misses_before = ctrl.stats().misses;
  ctrl.run(hammer);
  EXPECT_EQ(ctrl.stats().misses, misses_before);  // all hits
}

TEST(Controller, DeterministicForFixedSeeds) {
  const auto run_once = [] {
    fixture fx;
    controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu,
                    fx.rng);
    workload::stream_config stream;
    stream.request_count = 1000;
    stream.block_count = 256;
    stream.payload_bytes = 16;
    util::pcg64 gen(45);
    ctrl.run(workload::hotspot(gen, stream));
    return std::tuple(ctrl.stats().cycles, ctrl.stats().hits,
                      ctrl.now());
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------------ policy timing

TEST(Controller, ShufflePolicyOrdering) {
  const auto total_time_with = [](shuffle_policy policy) {
    fixture fx;
    horam_config c = fx.config(512, 64);
    c.shuffle = policy;
    controller ctrl(c, fx.disk, fx.memory, fx.cpu, fx.rng);
    workload::stream_config stream;
    stream.request_count = 1500;
    stream.block_count = 512;
    stream.payload_bytes = 16;
    util::pcg64 gen(46);
    ctrl.run(workload::uniform(gen, stream));
    EXPECT_GT(ctrl.stats().periods, 0u);
    return ctrl.now();
  };
  const sim::sim_time foreground =
      total_time_with(shuffle_policy::foreground);
  const sim::sim_time async =
      total_time_with(shuffle_policy::async_writeback);
  const sim::sim_time offloaded =
      total_time_with(shuffle_policy::offloaded);
  EXPECT_GT(foreground, async);
  EXPECT_GT(async, offloaded);
}

// ------------------------------------------------------------- audits

TEST(Controller, FullShuffleTracePassesAudit) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng,
                  &fx.trace);
  workload::stream_config stream;
  stream.request_count = 1500;
  stream.block_count = 256;
  stream.write_fraction = 0.3;
  stream.payload_bytes = 16;
  util::pcg64 gen(47);
  ctrl.run(workload::hotspot(gen, stream));

  analysis::audit_config audit;
  audit.partition_count = ctrl.storage().geometry().partition_count;
  audit.slots_per_partition =
      ctrl.storage().geometry().slots_per_partition();
  audit.main_capacity = ctrl.storage().geometry().main_capacity;
  audit.leaf_count = ctrl.memory_tree().config().leaf_count;
  audit.expect_single_read_per_cycle = true;
  const analysis::audit_report report =
      analysis::audit_trace(fx.trace, audit);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_GT(report.cycles, 0u);
  EXPECT_GT(report.shuffles, 0u);
  EXPECT_TRUE(report.leaf_uniformity_ok);
}

TEST(Controller, PartialShuffleTracePassesAudit) {
  fixture fx;
  horam_config c = fx.config(256, 32);
  c.shuffle_every_periods = 4;
  controller ctrl(c, fx.disk, fx.memory, fx.cpu, fx.rng, &fx.trace);
  workload::stream_config stream;
  stream.request_count = 1500;
  stream.block_count = 256;
  stream.payload_bytes = 16;
  util::pcg64 gen(48);
  ctrl.run(workload::hotspot(gen, stream));

  analysis::audit_config audit;
  audit.partition_count = ctrl.storage().geometry().partition_count;
  audit.slots_per_partition =
      ctrl.storage().geometry().slots_per_partition();
  audit.main_capacity = ctrl.storage().geometry().main_capacity;
  audit.leaf_count = ctrl.memory_tree().config().leaf_count;
  // Loads may add masking reads: >1 read per cycle, same partition.
  audit.expect_single_read_per_cycle = false;
  const analysis::audit_report report =
      analysis::audit_trace(fx.trace, audit);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
}

TEST(Controller, PartialShuffleCorrectness) {
  fixture fx;
  horam_config c = fx.config(256, 32);
  c.shuffle_every_periods = 4;
  controller ctrl(c, fx.disk, fx.memory, fx.cpu, fx.rng);
  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(49);
  for (int step = 0; step < 1500; ++step) {
    const block_id id = util::uniform_below(driver, 256);
    if (util::bernoulli(driver, 0.4)) {
      const auto data = tagged(static_cast<std::uint8_t>(step));
      ctrl.write(id, data);
      shadow[id] = data;
    } else {
      const auto out = ctrl.read(id);
      const auto expected = shadow.contains(id)
                                ? shadow[id]
                                : std::vector<std::uint8_t>(16, 0);
      ASSERT_EQ(out, expected) << "step " << step << " id " << id;
    }
  }
  EXPECT_GT(ctrl.stats().periods, 10u);
  EXPECT_GT(ctrl.storage().stats().append_segments, 0u);
}

TEST(Controller, StorageSmallerThanPathOramBaseline) {
  // The paper's second claim: H-ORAM needs ~N blocks of storage vs the
  // baseline's 2N.
  fixture fx;
  const horam_config c = fx.config(1024, 64);
  controller ctrl(c, fx.disk, fx.memory, fx.cpu, fx.rng);
  const std::uint64_t record =
      c.payload_bytes + 8 + crypto::seal_overhead;
  EXPECT_LT(ctrl.storage().physical_bytes(),
            2 * c.block_count * record);
}

// --------------------------------------------------------- multi-user

TEST(MultiUser, AllUsersServedFairly) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng);
  multi_user_frontend frontend(ctrl);
  util::pcg64 gen(50);
  std::vector<std::vector<request>> queues(4);
  for (std::uint32_t user = 0; user < 4; ++user) {
    for (int i = 0; i < 100; ++i) {
      queues[user].push_back(request{
          op_kind::read, util::uniform_below(gen, 256), user, {}});
    }
  }
  const multi_user_summary summary = frontend.run(queues);
  ASSERT_EQ(summary.users.size(), 4u);
  for (const user_summary& user : summary.users) {
    EXPECT_EQ(user.requests, 100u);
    EXPECT_GT(user.mean_latency, 0);
  }
  EXPECT_GT(summary.throughput, 0.0);
  // Round-robin fairness: mean latencies within 3x of each other.
  sim::sim_time lo = summary.users[0].mean_latency;
  sim::sim_time hi = lo;
  for (const user_summary& user : summary.users) {
    lo = std::min(lo, user.mean_latency);
    hi = std::max(hi, user.mean_latency);
  }
  EXPECT_LT(hi, 3 * lo);
}

TEST(MultiUser, AccessControlBlocksOutOfRangeRequests) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng);
  multi_user_frontend frontend(ctrl);
  frontend.grant(0, user_grant{0, 128});
  frontend.grant(1, user_grant{128, 256});

  std::vector<std::vector<request>> ok(2);
  ok[0].push_back(request{op_kind::read, 5, 0, {}});
  ok[1].push_back(request{op_kind::read, 200, 1, {}});
  EXPECT_NO_THROW(frontend.run(ok));

  std::vector<std::vector<request>> bad(2);
  bad[0].push_back(request{op_kind::read, 5, 0, {}});
  bad[1].push_back(request{op_kind::read, 5, 1, {}});  // user 1 forbidden
  const std::uint64_t cycles_before = ctrl.stats().cycles;
  EXPECT_THROW(frontend.run(bad), access_denied);
  // The denial happened before any ORAM work: no observable trace.
  EXPECT_EQ(ctrl.stats().cycles, cycles_before);
}

TEST(MultiUser, UngrantedUsersAreUnrestricted) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng);
  multi_user_frontend frontend(ctrl);
  frontend.grant(0, user_grant{0, 10});
  std::vector<std::vector<request>> queues(2);
  queues[0].push_back(request{op_kind::read, 3, 0, {}});
  queues[1].push_back(request{op_kind::read, 250, 1, {}});  // no grant
  EXPECT_NO_THROW(frontend.run(queues));
}

TEST(MultiUser, UnevenQueuesDrainCompletely) {
  fixture fx;
  controller ctrl(fx.config(256, 32), fx.disk, fx.memory, fx.cpu, fx.rng);
  multi_user_frontend frontend(ctrl);
  std::vector<std::vector<request>> queues(3);
  queues[0].assign(10, request{op_kind::read, 1, 0, {}});
  queues[1].assign(50, request{op_kind::read, 2, 0, {}});
  queues[2].assign(1, request{op_kind::read, 3, 0, {}});
  const multi_user_summary summary = frontend.run(queues);
  EXPECT_EQ(summary.users[0].requests, 10u);
  EXPECT_EQ(summary.users[1].requests, 50u);
  EXPECT_EQ(summary.users[2].requests, 1u);
}

// --------------------------------------------------- parameter sweeps

struct sweep_params {
  std::uint64_t block_count;
  std::uint64_t memory_blocks;
  std::uint32_t shuffle_every;
};

class ControllerSweep : public ::testing::TestWithParam<sweep_params> {};

INSTANTIATE_TEST_SUITE_P(
    Configs, ControllerSweep,
    ::testing::Values(sweep_params{128, 16, 1}, sweep_params{256, 32, 1},
                      sweep_params{256, 64, 1}, sweep_params{512, 32, 1},
                      sweep_params{256, 32, 2}, sweep_params{256, 32, 4},
                      sweep_params{1024, 128, 1},
                      sweep_params{1024, 128, 4}));

TEST_P(ControllerSweep, DifferentialCorrectnessAndInvariants) {
  const sweep_params params = GetParam();
  fixture fx;
  horam_config c = fx.config(params.block_count, params.memory_blocks);
  c.shuffle_every_periods = params.shuffle_every;
  controller ctrl(c, fx.disk, fx.memory, fx.cpu, fx.rng);

  std::map<block_id, std::vector<std::uint8_t>> shadow;
  util::pcg64 driver(51 + params.block_count);
  std::vector<request> batch;
  for (int step = 0; step < 600; ++step) {
    request req;
    req.id = util::uniform_below(driver, params.block_count);
    req.op = util::bernoulli(driver, 0.5) ? op_kind::write : op_kind::read;
    if (req.op == op_kind::write) {
      req.write_data = workload::payload_for(req.id, step, 16);
    }
    batch.push_back(req);
  }
  // Submit in mini-batches of 20 (out-of-order within a batch, ordered
  // between batches) and verify reads against the shadow at batch ends.
  for (std::size_t first = 0; first < batch.size(); first += 20) {
    std::vector<request> chunk(
        batch.begin() + static_cast<std::ptrdiff_t>(first),
        batch.begin() + static_cast<std::ptrdiff_t>(first + 20));
    // Drop duplicate-id requests to keep the oracle exact under
    // reordering.
    std::set<block_id> seen;
    std::vector<request> unique;
    for (request& req : chunk) {
      if (seen.insert(req.id).second) {
        unique.push_back(std::move(req));
      }
    }
    std::vector<request_result> results;
    ctrl.run(unique, &results);
    for (std::size_t i = 0; i < unique.size(); ++i) {
      if (unique[i].op == op_kind::write) {
        shadow[unique[i].id] = unique[i].write_data;
      } else {
        const auto expected =
            shadow.contains(unique[i].id)
                ? shadow[unique[i].id]
                : std::vector<std::uint8_t>(16, 0);
        ASSERT_EQ(results[i].read_data, expected)
            << "chunk " << first << " index " << i;
      }
    }
  }
  const controller_stats& stats = ctrl.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.requests);
  EXPECT_EQ(stats.cycles, stats.real_loads + stats.dummy_loads);
  EXPECT_LE(ctrl.memory_tree().stash_ref().peak_size(), 128u);
}

}  // namespace
}  // namespace horam
