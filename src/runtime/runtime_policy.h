// Execution-runtime selection for the sharded engine (src/runtime/).
//
// The engine's shard lanes are independent machines; the runtime policy
// decides what executes them:
//
//   * sim      — the historical single-threaded discrete-event machine:
//                lanes run sequentially on the calling thread and only
//                virtual time models their parallelism.
//   * threaded — each shard is confined to a worker thread
//                (runtime/worker_pool.h); lanes genuinely overlap on
//                the host's cores. Traces, stats and completion times
//                are bit-for-bit identical to sim for a fixed seed —
//                only wall-clock time differs — which is what lets the
//                obliviousness audits and differential-replay suites
//                carry over unchanged.
//
// The enum lives here (not core/config.h) so the runtime subsystem owns
// its vocabulary; name helpers follow the backend/shuffle-policy
// pattern in horam.h.
#ifndef HORAM_RUNTIME_RUNTIME_POLICY_H
#define HORAM_RUNTIME_RUNTIME_POLICY_H

#include <cstdint>

namespace horam {

/// How the engine executes its shard lanes.
enum class runtime_policy : std::uint8_t {
  /// Single-threaded discrete-event simulation (the default).
  sim,
  /// Per-shard worker threads behind a cross-shard mailbox layer.
  threaded,
};

/// Every selectable runtime, in presentation order (comparison tables,
/// parameterised tests).
inline constexpr runtime_policy all_runtime_policies[] = {
    runtime_policy::sim, runtime_policy::threaded};

}  // namespace horam

#endif  // HORAM_RUNTIME_RUNTIME_POLICY_H
