#include "runtime/worker_pool.h"

#include <utility>

#include "util/contracts.h"

namespace horam::runtime {

worker_pool::worker_pool(std::size_t threads, std::size_t queue_capacity) {
  expects(threads > 0, "worker_pool with zero threads");
  boxes_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    boxes_.push_back(std::make_unique<mailbox<job>>(queue_capacity));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { run_worker(i); });
  }
}

worker_pool::~worker_pool() { stop(); }

bool worker_pool::post(std::size_t worker, job work) {
  expects(worker < boxes_.size(), "post to out-of-range worker");
  return boxes_[worker]->push(std::move(work));
}

void worker_pool::stop() noexcept {
  if (stopped_) return;
  stopped_ = true;
  for (auto& box : boxes_) box->close();
  for (auto& thread : workers_) {
    if (thread.joinable()) thread.join();
  }
}

void worker_pool::run_worker(std::size_t index) {
  mailbox<job>& box = *boxes_[index];
  job work;
  // pop() parks the worker on the mailbox condvar while idle and keeps
  // returning queued jobs after close() — the graceful-drain guarantee.
  while (box.pop(work)) {
    work();
    executed_.fetch_add(1, std::memory_order_relaxed);
    work = nullptr;  // release captured state promptly between jobs
  }
}

}  // namespace horam::runtime
