// Bounded MPSC mailbox: the cross-shard message layer of the threaded
// runtime.
//
// Everything that crosses a thread boundary in the runtime travels
// through one of these: routed requests flow from the coordinator into
// a worker's job queue, completion records flow from workers back to
// the coordinator's collector. The mailbox is deliberately boring —
// a mutex, two condition variables and a deque — because the hot state
// (controller, backend, devices, RNG) never crosses threads at all;
// only small message structs do, so lock-free cleverness would buy
// nothing measurable and cost auditability. The mutex acquire/release
// pair is also what publishes each message's payload to the consumer
// (the happens-before edge determinism leans on).
//
// Semantics:
//   * push() blocks while the box is full; returns false iff the box
//     was closed before the item could be accepted.
//   * pop() blocks while the box is empty; a closed box still drains —
//     pop() keeps returning queued items and only returns false once
//     the box is both closed and empty. Close is therefore a graceful
//     shutdown signal, not a drop.
//   * close() is idempotent and wakes every blocked producer/consumer.
#ifndef HORAM_RUNTIME_MAILBOX_H
#define HORAM_RUNTIME_MAILBOX_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/contracts.h"

namespace horam::runtime {

/// Bounded multi-producer single-consumer queue with blocking push/pop
/// and drain-on-close shutdown. T must be movable.
template <typename T>
class mailbox {
 public:
  /// Creates a mailbox holding at most `capacity` items; capacity must
  /// be nonzero (a zero-capacity box could never accept a message).
  explicit mailbox(std::size_t capacity) : capacity_(capacity) {
    expects(capacity > 0, "mailbox with zero capacity");
  }

  mailbox(const mailbox&) = delete;
  mailbox& operator=(const mailbox&) = delete;

  /// Enqueues an item, blocking while the box is full. Returns false
  /// iff the box was closed before the item was accepted (the item is
  /// dropped in that case).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues without blocking. Returns false if the box is full or
  /// closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues into `out`, blocking while the box is empty. Returns
  /// false only once the box is closed AND fully drained.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Dequeues without blocking; empty optional if nothing is ready.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mutex_);
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Marks the box closed and wakes all waiters. Queued items remain
  /// poppable; further pushes are refused. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Items currently queued (racy by nature; for tests and telemetry).
  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace horam::runtime

#endif  // HORAM_RUNTIME_MAILBOX_H
