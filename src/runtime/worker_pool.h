// Worker lifecycle for the threaded runtime: N real threads, each
// parked on its own bounded job mailbox.
//
// The pool is a deliberately minimal executor. Each worker owns one
// mailbox<job> and loops pop() → run; pop() blocking on the mailbox's
// condition variable IS the idle-parking mechanism — a worker with an
// empty box consumes no CPU. Giving every worker a private box (rather
// than one shared work-stealing queue) is what makes shard→thread
// confinement trivial: the engine posts shard s's lane job to worker
// s % size(), so a given shard's controller, backend, devices, RNG and
// trace are only ever touched from that one thread, and same-worker
// jobs run in posting order.
//
// Shutdown is a graceful drain: stop() closes every box (drain-on-close
// mailbox semantics keep already-queued jobs runnable), then joins.
// The destructor calls stop(), so a pool going out of scope never
// abandons queued work or leaks threads.
#ifndef HORAM_RUNTIME_WORKER_POOL_H
#define HORAM_RUNTIME_WORKER_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/mailbox.h"

namespace horam::runtime {

/// Fixed set of worker threads, each draining a private bounded job
/// mailbox. Jobs must not throw — the engine wraps lane execution and
/// ships failures back as data (an escaped exception would terminate).
class worker_pool {
 public:
  using job = std::function<void()>;

  /// Spawns `threads` workers (must be nonzero), each with a job
  /// mailbox holding up to `queue_capacity` pending jobs.
  explicit worker_pool(std::size_t threads, std::size_t queue_capacity = 64);

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  /// Stops and joins all workers (graceful drain).
  ~worker_pool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Posts a job to the given worker's mailbox, blocking while that
  /// mailbox is full. Jobs posted to the same worker run in posting
  /// order. Returns false iff the pool has been stopped.
  bool post(std::size_t worker, job work);

  /// Closes every mailbox, lets workers finish queued jobs, and joins
  /// them. Idempotent and called by the destructor.
  void stop() noexcept;

  /// Total jobs completed across all workers (tests, telemetry).
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void run_worker(std::size_t index);

  // unique_ptr because mailbox is immovable and threads capture stable
  // addresses into it.
  std::vector<std::unique_ptr<mailbox<job>>> boxes_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> executed_{0};
  bool stopped_ = false;
};

}  // namespace horam::runtime

#endif  // HORAM_RUNTIME_WORKER_POOL_H
