#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace horam::workload {

namespace {

void validate(const stream_config& config) {
  expects(config.request_count > 0, "empty request stream");
  expects(config.block_count > 0, "empty address space");
  expects(config.write_fraction >= 0.0 && config.write_fraction <= 1.0,
          "write fraction must be a probability");
}

request make_request(util::random_source& rng, const stream_config& config,
                     std::uint64_t id, std::uint64_t sequence) {
  request req;
  req.id = id;
  if (util::bernoulli(rng, config.write_fraction)) {
    req.op = oram::op_kind::write;
    req.write_data = payload_for(id, sequence, config.payload_bytes);
  }
  return req;
}

}  // namespace

std::vector<std::uint8_t> payload_for(std::uint64_t id,
                                      std::uint64_t sequence,
                                      std::size_t payload_bytes) {
  // splitmix64 over (id, sequence) gives stable, collision-resistant
  // contents that tests can regenerate.
  std::vector<std::uint8_t> payload(payload_bytes);
  std::uint64_t x = id * 0x9e3779b97f4a7c15ULL + sequence + 1;
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    if (i % 8 == 0) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      x = z ^ (z >> 31);
    }
    payload[i] = static_cast<std::uint8_t>(x >> (8 * (i % 8)));
  }
  return payload;
}

std::vector<request> hotspot(util::random_source& rng,
                             const stream_config& config,
                             double hot_probability,
                             double hot_region_fraction) {
  validate(config);
  expects(hot_probability >= 0.0 && hot_probability <= 1.0,
          "hot probability must be a probability");
  expects(hot_region_fraction > 0.0 && hot_region_fraction <= 1.0,
          "hot region must be a nonzero fraction of the space");

  const std::uint64_t hot_blocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(hot_region_fraction *
                                    static_cast<double>(config.block_count)));
  // Place the hot region at a random offset so it does not align with
  // partition 0.
  const std::uint64_t hot_base =
      util::uniform_below(rng, config.block_count - hot_blocks + 1);

  std::vector<request> stream;
  stream.reserve(config.request_count);
  for (std::uint64_t s = 0; s < config.request_count; ++s) {
    std::uint64_t id = 0;
    if (util::bernoulli(rng, hot_probability)) {
      id = hot_base + util::uniform_below(rng, hot_blocks);
    } else {
      id = util::uniform_below(rng, config.block_count);
    }
    stream.push_back(make_request(rng, config, id, s));
  }
  return stream;
}

std::vector<request> uniform(util::random_source& rng,
                             const stream_config& config) {
  validate(config);
  std::vector<request> stream;
  stream.reserve(config.request_count);
  for (std::uint64_t s = 0; s < config.request_count; ++s) {
    stream.push_back(make_request(
        rng, config, util::uniform_below(rng, config.block_count), s));
  }
  return stream;
}

std::vector<request> zipf(util::random_source& rng,
                          const stream_config& config, double theta) {
  validate(config);
  expects(theta > 0.0 && theta < 1.0, "zipf skew must be in (0, 1)");

  // Gray et al. approximation of the Zipf inverse CDF: draws rank r
  // with P(r) proportional to 1 / r^theta without materialising the
  // full distribution.
  const double n = static_cast<double>(config.block_count);
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = [&] {
    // Truncated harmonic estimate; exact for small n, integral
    // approximation beyond the cutoff.
    const std::uint64_t cutoff =
        std::min<std::uint64_t>(config.block_count, 100000);
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= cutoff; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    if (config.block_count > cutoff) {
      sum += (std::pow(n, 1.0 - theta) -
              std::pow(static_cast<double>(cutoff), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }();
  const double eta = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                     (1.0 - (1.0 / std::pow(2.0, theta) +
                             0.5 / std::pow(2.0, theta) / zetan * theta));

  // Random relabelling scatters the popular ids across the space.
  std::vector<std::uint64_t> relabel =
      util::random_permutation(rng, config.block_count);

  std::vector<request> stream;
  stream.reserve(config.request_count);
  for (std::uint64_t s = 0; s < config.request_count; ++s) {
    const double u = util::uniform_unit(rng);
    const double uz = u * zetan;
    std::uint64_t rank = 0;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta)) {
      rank = 1;
    } else {
      rank = static_cast<std::uint64_t>(
          n * std::pow(eta * u - eta + 1.0, alpha));
      rank = std::min(rank, config.block_count - 1);
    }
    stream.push_back(make_request(rng, config, relabel[rank], s));
  }
  return stream;
}

std::vector<request> zipfian(util::random_source& rng,
                             const stream_config& config, double s) {
  validate(config);
  expects(s > 0.0, "zipfian exponent must be positive");
  expects(config.block_count <= (1ULL << 24),
          "zipfian materialises the CDF — use zipf() for huge spaces");

  // Exact inverse-CDF sampling: cumulative 1 / r^s table, binary
  // search per draw. O(block_count) memory, O(log block_count) per
  // request — fine for the bench/test address spaces this feeds.
  std::vector<double> cdf(config.block_count);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < config.block_count; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = sum;
  }

  std::vector<std::uint64_t> relabel =
      util::random_permutation(rng, config.block_count);

  std::vector<request> stream;
  stream.reserve(config.request_count);
  for (std::uint64_t seq = 0; seq < config.request_count; ++seq) {
    const double u = util::uniform_unit(rng) * sum;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto rank = static_cast<std::uint64_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     config.block_count - 1)));
    stream.push_back(make_request(rng, config, relabel[rank], seq));
  }
  return stream;
}

std::vector<request> hot_set(util::random_source& rng,
                             const stream_config& config,
                             double hot_probability,
                             std::uint64_t hot_block_count) {
  validate(config);
  expects(hot_probability >= 0.0 && hot_probability <= 1.0,
          "hot probability must be a probability");
  expects(hot_block_count > 0 && hot_block_count <= config.block_count,
          "hot set must be a nonempty subset of the space");

  // The hot blocks are a random scattered subset: the prefix of a
  // random permutation.
  std::vector<std::uint64_t> scatter =
      util::random_permutation(rng, config.block_count);
  scatter.resize(hot_block_count);

  std::vector<request> stream;
  stream.reserve(config.request_count);
  for (std::uint64_t seq = 0; seq < config.request_count; ++seq) {
    std::uint64_t id = 0;
    if (util::bernoulli(rng, hot_probability)) {
      id = scatter[util::uniform_below(rng, hot_block_count)];
    } else {
      id = util::uniform_below(rng, config.block_count);
    }
    stream.push_back(make_request(rng, config, id, seq));
  }
  return stream;
}

std::vector<request> sequential(const stream_config& config,
                                std::uint64_t stride) {
  validate(config);
  expects(stride > 0, "stride must be positive");
  std::vector<request> stream;
  stream.reserve(config.request_count);
  std::uint64_t id = 0;
  for (std::uint64_t s = 0; s < config.request_count; ++s) {
    request req;
    req.id = id;
    stream.push_back(std::move(req));
    id = (id + stride) % config.block_count;
  }
  return stream;
}

}  // namespace horam::workload
