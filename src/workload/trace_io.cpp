#include "workload/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "workload/generators.h"

namespace horam::workload {

namespace {

/// Parses a full numeric field; throws naming the 1-based file line on
/// anything std::stoull would reject (or trailing junk it would
/// silently ignore).
std::uint64_t parse_field(const std::string& text, const char* field,
                          std::uint64_t file_line) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    if (consumed != text.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("trace line " + std::to_string(file_line) +
                             ": malformed " + field + " field '" + text +
                             "'");
  }
}

}  // namespace

void save_trace(std::ostream& out, const std::vector<request>& stream) {
  for (const request& req : stream) {
    out << (req.op == oram::op_kind::write ? 'W' : 'R') << ',' << req.id
        << ',' << req.user << '\n';
  }
}

std::vector<request> load_trace(std::istream& in,
                                std::size_t payload_bytes) {
  std::vector<request> stream;
  std::string line;
  /// 1-based file line, counted for every line read — including the
  /// blank and comment lines that never become requests — so error
  /// messages point at the line an editor shows.
  std::uint64_t file_line = 0;
  /// Per-id write ordinal: payloads depend only on (id, how many writes
  /// to that id precede this one), so inserting comments or replaying a
  /// prefix never changes what a given write stores, and
  /// save→load→save round-trips are byte-identical.
  std::unordered_map<oram::block_id, std::uint64_t> write_ordinal;
  while (std::getline(in, line)) {
    ++file_line;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string op_text;
    std::string id_text;
    std::string user_text;
    if (!std::getline(fields, op_text, ',') ||
        !std::getline(fields, id_text, ',')) {
      throw std::runtime_error("trace line " + std::to_string(file_line) +
                               ": expected 'op,id[,user]'");
    }
    std::getline(fields, user_text, ',');

    request req;
    if (op_text == "W") {
      req.op = oram::op_kind::write;
    } else if (op_text == "R") {
      req.op = oram::op_kind::read;
    } else {
      throw std::runtime_error("trace line " + std::to_string(file_line) +
                               ": op must be R or W");
    }
    req.id = parse_field(id_text, "id", file_line);
    req.user = user_text.empty()
                   ? 0
                   : static_cast<std::uint32_t>(
                         parse_field(user_text, "user", file_line));
    if (req.op == oram::op_kind::write) {
      req.write_data =
          payload_for(req.id, write_ordinal[req.id]++, payload_bytes);
    }
    stream.push_back(std::move(req));
  }
  return stream;
}

}  // namespace horam::workload
