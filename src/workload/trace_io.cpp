#include "workload/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "workload/generators.h"

namespace horam::workload {

void save_trace(std::ostream& out, const std::vector<request>& stream) {
  for (const request& req : stream) {
    out << (req.op == oram::op_kind::write ? 'W' : 'R') << ',' << req.id
        << ',' << req.user << '\n';
  }
}

std::vector<request> load_trace(std::istream& in,
                                std::size_t payload_bytes) {
  std::vector<request> stream;
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string op_text;
    std::string id_text;
    std::string user_text;
    if (!std::getline(fields, op_text, ',') ||
        !std::getline(fields, id_text, ',')) {
      throw std::runtime_error("trace line " + std::to_string(line_number) +
                               ": expected 'op,id[,user]'");
    }
    std::getline(fields, user_text, ',');

    request req;
    if (op_text == "W") {
      req.op = oram::op_kind::write;
    } else if (op_text == "R") {
      req.op = oram::op_kind::read;
    } else {
      throw std::runtime_error("trace line " + std::to_string(line_number) +
                               ": op must be R or W");
    }
    req.id = std::stoull(id_text);
    req.user = user_text.empty()
                   ? 0
                   : static_cast<std::uint32_t>(std::stoul(user_text));
    if (req.op == oram::op_kind::write) {
      req.write_data = payload_for(req.id, line_number, payload_bytes);
    }
    stream.push_back(std::move(req));
    ++line_number;
  }
  return stream;
}

}  // namespace horam::workload
