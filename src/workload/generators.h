// Request-stream generators.
//
// The paper's evaluation (§5.2.1) uses a hotspot stream: "80% of chance
// it will distribute in a certain area, and 20% of chance it requests a
// random data". hotspot() parameterises both probabilities and the hot
// region's size; the other generators feed ablations and tests.
#ifndef HORAM_WORKLOAD_GENERATORS_H
#define HORAM_WORKLOAD_GENERATORS_H

#include <cstdint>
#include <vector>

#include "core/controller.h"
#include "util/rng.h"

namespace horam::workload {

/// Common knobs shared by the generators.
struct stream_config {
  /// Requests to generate.
  std::uint64_t request_count = 0;
  /// Address space (blocks).
  std::uint64_t block_count = 0;
  /// Fraction of requests that are writes (the rest read).
  double write_fraction = 0.0;
  /// Bytes of payload attached to each write (deterministic contents
  /// derived from the id and sequence number).
  std::size_t payload_bytes = 0;
};

/// Hotspot stream (the paper's workload): with probability
/// `hot_probability` the request falls uniformly inside a contiguous
/// hot region of `hot_region_fraction * block_count` blocks; otherwise
/// it is uniform over the whole space.
std::vector<request> hotspot(util::random_source& rng,
                             const stream_config& config,
                             double hot_probability = 0.8,
                             double hot_region_fraction = 0.1);

/// Uniform stream over the whole address space.
std::vector<request> uniform(util::random_source& rng,
                             const stream_config& config);

/// Zipf-distributed stream (skew parameter `theta` in (0, 1); higher is
/// more skewed) over a randomly relabelled address space, so popular
/// blocks are scattered rather than clustered.
std::vector<request> zipf(util::random_source& rng,
                          const stream_config& config, double theta = 0.99);

/// Zipf-distributed stream for any exponent `s` > 0 (P(rank r) is
/// proportional to 1 / r^s — s > 1 included, which zipf()'s Gray
/// approximation cannot express), drawn from the exact CDF via a
/// precomputed table and binary search. Popular ranks are scattered
/// over a randomly relabelled address space. The coalescing ablations
/// use s ~ 1.1, the classic web-trace skew.
std::vector<request> zipfian(util::random_source& rng,
                             const stream_config& config, double s = 1.1);

/// Hot-set stream: with probability `hot_probability` the request falls
/// uniformly on one of `hot_block_count` *scattered* hot blocks (a
/// random subset, not a contiguous region like hotspot()); otherwise it
/// is uniform over the whole space. Small hot sets at high probability
/// model the duplicate-heavy streams request coalescing targets.
std::vector<request> hot_set(util::random_source& rng,
                             const stream_config& config,
                             double hot_probability = 0.9,
                             std::uint64_t hot_block_count = 16);

/// Sequential scan with the given stride (wraps around).
std::vector<request> sequential(const stream_config& config,
                                std::uint64_t stride = 1);

/// Deterministic payload for (id, sequence) — also used by tests to
/// predict what a read should return.
std::vector<std::uint8_t> payload_for(std::uint64_t id,
                                      std::uint64_t sequence,
                                      std::size_t payload_bytes);

}  // namespace horam::workload

#endif  // HORAM_WORKLOAD_GENERATORS_H
