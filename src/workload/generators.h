// Request-stream generators.
//
// The paper's evaluation (§5.2.1) uses a hotspot stream: "80% of chance
// it will distribute in a certain area, and 20% of chance it requests a
// random data". hotspot() parameterises both probabilities and the hot
// region's size; the other generators feed ablations and tests.
#ifndef HORAM_WORKLOAD_GENERATORS_H
#define HORAM_WORKLOAD_GENERATORS_H

#include <cstdint>
#include <vector>

#include "core/controller.h"
#include "util/rng.h"

namespace horam::workload {

/// Common knobs shared by the generators.
struct stream_config {
  /// Requests to generate.
  std::uint64_t request_count = 0;
  /// Address space (blocks).
  std::uint64_t block_count = 0;
  /// Fraction of requests that are writes (the rest read).
  double write_fraction = 0.0;
  /// Bytes of payload attached to each write (deterministic contents
  /// derived from the id and sequence number).
  std::size_t payload_bytes = 0;
};

/// Hotspot stream (the paper's workload): with probability
/// `hot_probability` the request falls uniformly inside a contiguous
/// hot region of `hot_region_fraction * block_count` blocks; otherwise
/// it is uniform over the whole space.
std::vector<request> hotspot(util::random_source& rng,
                             const stream_config& config,
                             double hot_probability = 0.8,
                             double hot_region_fraction = 0.1);

/// Uniform stream over the whole address space.
std::vector<request> uniform(util::random_source& rng,
                             const stream_config& config);

/// Zipf-distributed stream (skew parameter `theta` in (0, 1); higher is
/// more skewed) over a randomly relabelled address space, so popular
/// blocks are scattered rather than clustered.
std::vector<request> zipf(util::random_source& rng,
                          const stream_config& config, double theta = 0.99);

/// Sequential scan with the given stride (wraps around).
std::vector<request> sequential(const stream_config& config,
                                std::uint64_t stride = 1);

/// Deterministic payload for (id, sequence) — also used by tests to
/// predict what a read should return.
std::vector<std::uint8_t> payload_for(std::uint64_t id,
                                      std::uint64_t sequence,
                                      std::size_t payload_bytes);

}  // namespace horam::workload

#endif  // HORAM_WORKLOAD_GENERATORS_H
