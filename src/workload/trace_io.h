// Request-trace serialisation: simple CSV so traces can be captured,
// replayed and diffed across runs and implementations.
//
// Format: one line per request, "op,id,user" with op in {R, W}; blank
// lines and '#' comments are skipped, and a trailing CR (CRLF files) is
// tolerated. Write payloads are regenerated from (id, per-id write
// ordinal) via payload_for, so a trace file fully determines the run
// and inserting comments or reordering unrelated lines never changes
// what a write stores.
#ifndef HORAM_WORKLOAD_TRACE_IO_H
#define HORAM_WORKLOAD_TRACE_IO_H

#include <iosfwd>
#include <vector>

#include "core/controller.h"

namespace horam::workload {

/// Writes the stream as CSV.
void save_trace(std::ostream& out, const std::vector<request>& stream);

/// Parses a CSV trace; regenerates write payloads of `payload_bytes`.
/// Throws std::runtime_error on malformed input.
std::vector<request> load_trace(std::istream& in,
                                std::size_t payload_bytes);

}  // namespace horam::workload

#endif  // HORAM_WORKLOAD_TRACE_IO_H
