// Single-round-trip hierarchical oblivious store (H-ORAM backend).
//
// Classic hierarchical ORAM layouts pay one dependent probe per level;
// tree schemes with a recursive position map pay one dependent trip per
// map level before the data path. This backend removes both chains: a
// trusted-memory succinct index (succinct_index.h) maps every
// storage-resident block to its (level, slot), so an online access
// knows all its probe addresses up front and ships them as ONE batched
// scatter read — a single request/response exchange with the device,
// whatever the level count.
//
// Layout: geometrically growing levels on one contiguous block store.
// Level i holds r_i = r_1 * g^(i-1) real slots (g = hier_fanout, r_1
// sized to the controller's hot set) plus a dummy pool, permuted by a
// fresh keyed Feistel permutation (feistel_prp.h) each epoch:
//   * a real probe reads the slot the index names, after which the
//     block is cached upstream (the slot is never probed again);
//   * a dummy probe reads the slot of the next unused dummy rank, so
//     every active level is probed exactly once per access and no slot
//     repeats within an epoch — the adversary sees fresh uniform slots
//     regardless of the workload;
//   * after a level's public probe budget is spent it is refreshed in
//     place (re-permuted under a new key) by two streaming sweeps — the
//     rare extra round trips behind the "≈1 trip per request" headline;
//   * the shuffle period merges the evicted hot set and all levels
//     above a schedule-chosen target into that target, rebuilt under a
//     fresh permutation — chunked range transfers behind the stepped
//     shuffle-job API, so shuffle_policy::incremental deamortizes it.
//
// Every schedule decision (probe count, refresh instants, merge target,
// chunk boundaries) is a function of the access count and configuration
// only — public by design; payload-dependent state never reaches the
// device outside sealed records.
#ifndef HORAM_ORAM_HIER_HIER_BACKEND_H
#define HORAM_ORAM_HIER_HIER_BACKEND_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "oram/hier/feistel_prp.h"
#include "oram/hier/succinct_index.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/block_store.h"
#include "util/rng.h"

namespace horam::oram {

class hier_backend final : public horam::oram_backend {
 public:
  /// Builds the hierarchy with every block of [0, config.block_count)
  /// at the bottom level; `filler` provides initial payloads (null =
  /// zero-filled). `map_device` is accepted for interface parity with
  /// the tree backends and ignored — the position state is the trusted
  /// in-memory index, which is the point of the scheme. Device
  /// statistics are reset afterwards so initialisation is not measured.
  hier_backend(const horam_config& config, sim::block_device& device,
               const sim::cpu_model& cpu, util::random_source& rng,
               access_trace* trace,
               const std::function<void(block_id,
                                        std::span<std::uint8_t>)>* filler,
               sim::block_device* map_device = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hier";
  }
  [[nodiscard]] bool in_storage(block_id id) const override;
  load_result load_block(block_id id) override;
  load_result dummy_load() override;
  /// Implemented as begin_shuffle() driven to completion in one
  /// unbounded step, so the monolithic and incremental entry points
  /// are interchangeable by construction.
  horam::shuffle_cost shuffle_period(
      std::vector<evicted_block> evicted, std::uint64_t period_index,
      std::vector<evicted_block>& overflow_out) override;

  /// Native incremental shuffle: slice units are chunked range reads of
  /// the source levels and chunked range writes of the rebuilt target,
  /// each one batched transfer. Merged blocks stay readable/writable
  /// through staged() until their chunk lands; nothing is ever handed
  /// back.
  [[nodiscard]] std::unique_ptr<horam::shuffle_job> begin_shuffle(
      std::vector<evicted_block> evicted,
      std::uint64_t period_index) override;
  [[nodiscard]] const horam::backend_stats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::uint64_t physical_bytes() const override;
  [[nodiscard]] std::uint64_t control_memory_bytes() const override;
  void check_consistency() const override;

  /// Number of levels in the hierarchy (L).
  [[nodiscard]] std::uint32_t level_count() const noexcept {
    return static_cast<std::uint32_t>(levels_.size());
  }
  /// Number of levels currently holding an epoch (probed per access).
  [[nodiscard]] std::uint32_t active_levels() const noexcept;
  /// Real capacity r_i of 1-based `level`.
  [[nodiscard]] std::uint64_t level_real_capacity(std::uint32_t level) const;
  /// Total slots c_i of 1-based `level`.
  [[nodiscard]] std::uint64_t level_slot_count(std::uint32_t level) const;
  /// First global slot of 1-based `level`.
  [[nodiscard]] std::uint64_t level_base(std::uint32_t level) const;
  /// Blocks the index maps to 1-based `level`.
  [[nodiscard]] std::uint64_t level_live(std::uint32_t level) const;
  /// Bits per entry of the trusted index.
  [[nodiscard]] unsigned index_entry_bits() const noexcept {
    return index_.entry_bits();
  }
  /// In-place level refreshes performed so far.
  [[nodiscard]] std::uint64_t refresh_count() const noexcept {
    return refreshes_;
  }

 private:
  friend class hier_shuffle_job;

  /// Per-level epoch state; everything here is O(1) trusted memory —
  /// position state lives in the shared succinct index.
  struct level_state {
    std::uint64_t real_capacity = 0;   // r_i
    std::uint64_t dummy_capacity = 0;  // dummy pool d_i
    std::uint64_t slot_count = 0;      // c_i = r_i + d_i
    std::uint64_t base = 0;            // first global slot
    std::uint64_t refresh_after = 0;   // probes before an in-place refresh
    bool active = false;
    std::uint64_t live = 0;            // blocks the index maps here
    std::uint64_t probes = 0;          // probes since epoch start
    std::uint64_t dummies_used = 0;    // dummy ranks consumed this epoch
    std::uint64_t epoch = 0;
    feistel_prp prp;                   // rank -> level-local slot
  };

  /// One batched probe across every active level (the single round
  /// trip). `target` = dummy_block_id probes dummies everywhere;
  /// otherwise the resident level is probed for real and the target's
  /// payload lands in `payload_out` (the block becomes cached).
  cost_split probe_all(block_id target, std::span<std::uint8_t> payload_out);

  /// Refreshes every active level whose probe budget is spent
  /// (suppressed while a merge is in flight; the dummy pools carry the
  /// slack). Public schedule: depends on probe counts only.
  void refresh_due_levels(cost_split& cost);
  void refresh_level(std::size_t idx, cost_split& cost);

  [[nodiscard]] crypto::siphash_key fresh_key();

  horam_config config_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  block_codec codec_;
  std::unique_ptr<storage::block_store> store_;
  std::vector<level_state> levels_;
  succinct_index index_;

  /// Blocks whose live copy left storage (controller cache or an
  /// in-flight merge job's staging area): ids with index level 0.
  std::uint64_t cached_count_ = 0;
  bool merge_in_flight_ = false;
  std::uint64_t refreshes_ = 0;

  horam::backend_stats stats_;
  std::vector<std::uint64_t> probe_slots_;
  std::vector<std::uint8_t> probe_buf_;
  std::vector<std::uint8_t> payload_scratch_;
  std::vector<std::uint8_t> level_buf_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_HIER_HIER_BACKEND_H
