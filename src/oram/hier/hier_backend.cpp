#include "oram/hier/hier_backend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

/// Slots moved per merge slice unit: one chunked range transfer. Public
/// information by design — a pure constant of the implementation.
constexpr std::uint64_t kChunkSlots = 512;

}  // namespace

hier_backend::hier_backend(
    const horam_config& config, sim::block_device& device,
    const sim::cpu_model& cpu, util::random_source& rng,
    access_trace* trace,
    const std::function<void(block_id, std::span<std::uint8_t>)>* filler,
    sim::block_device* map_device)
    : config_(config),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      codec_(config.payload_bytes, config.seal,
             config.key_seed ^ 0x4869) {  // "Hi"
  static_cast<void>(map_device);  // no map chain: the index is the map
  config_.validate();

  // Geometric levels: the top level holds the controller's hot set, the
  // bottom level holds the dataset. Each level carries a dummy pool of
  // one slot per probe of its refresh budget, plus slack for the probes
  // that keep arriving while a merge suppresses refreshes (at most a
  // bounded number of access periods; exhaustion fail-stops loudly).
  const std::uint64_t top = std::max<std::uint64_t>(16, config_.memory_blocks);
  std::vector<std::uint64_t> reals;
  for (std::uint64_t r = top;; r *= config_.hier_fanout) {
    reals.push_back(r);
    if (r >= config_.block_count) {
      break;
    }
  }
  levels_.resize(reals.size());
  std::uint64_t base = 0;
  std::uint64_t max_slots = 0;
  for (std::size_t i = 0; i < reals.size(); ++i) {
    level_state& lvl = levels_[i];
    lvl.real_capacity = reals[i];
    lvl.refresh_after = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(
               config_.hier_rebuild_rate * static_cast<double>(reals[i]))));
    lvl.dummy_capacity =
        lvl.refresh_after + 4 * config_.memory_blocks + 256;
    lvl.slot_count = lvl.real_capacity + lvl.dummy_capacity;
    lvl.base = base;
    base += lvl.slot_count;
    max_slots = std::max(max_slots, lvl.slot_count);
  }
  const std::uint64_t total_slots = base;

  unsigned level_bits =
      std::max(1u, util::ceil_log2(levels_.size() + 1));
  unsigned slot_bits = std::max(1u, util::ceil_log2(max_slots));
  if (config_.hier_index_bits != 0) {
    expects(config_.hier_index_bits >= level_bits + slot_bits,
            "hier_index_bits cannot hold the geometry");
    slot_bits = config_.hier_index_bits - level_bits;
  }
  index_ = succinct_index(config_.block_count, level_bits, slot_bits);

  const std::size_t rec = codec_.record_bytes();
  const std::uint64_t logical =
      config_.logical_block_bytes != 0 ? config_.logical_block_bytes : rec;
  expects(logical >= rec, "logical block cannot hold the sealed record");
  store_ = std::make_unique<storage::block_store>(device, 0, total_slots,
                                                  rec, logical);
  payload_scratch_.assign(config_.payload_bytes, 0);

  // Every block starts at the bottom level (rank = id) under a fresh
  // permutation; the other levels stay inactive until merges fill them.
  level_state& bottom = levels_.back();
  bottom.active = true;
  bottom.epoch = 1;
  bottom.live = config_.block_count;
  bottom.prp = feistel_prp(bottom.slot_count, fresh_key());
  horam::oram::trace(trace_, event_kind::storage_write_sweep, bottom.base,
                     bottom.slot_count);
  std::vector<std::uint8_t> buf;
  for (std::uint64_t first = 0; first < bottom.slot_count;
       first += kChunkSlots) {
    const std::uint64_t n =
        std::min(kChunkSlots, bottom.slot_count - first);
    buf.resize(n * rec);
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t slot = first + j;
      const std::uint64_t rank = bottom.prp.inverse(slot);
      const std::span<std::uint8_t> out =
          std::span(buf).subspan(j * rec, rec);
      if (rank < config_.block_count) {
        std::fill(payload_scratch_.begin(), payload_scratch_.end(), 0);
        if (filler != nullptr) {
          (*filler)(rank, payload_scratch_);
        }
        codec_.encode(rank, payload_scratch_, out);
        index_.place(rank, level_count(), slot);
      } else {
        codec_.encode_dummy(out);
      }
    }
    store_->write_range(bottom.base + first, n, buf);
  }
  device.reset_stats();
}

crypto::siphash_key hier_backend::fresh_key() {
  crypto::siphash_key key;
  for (std::size_t half = 0; half < 2; ++half) {
    const std::uint64_t word = rng_.next_u64();
    std::memcpy(key.data() + half * 8, &word, sizeof(word));
  }
  return key;
}

bool hier_backend::in_storage(block_id id) const {
  expects(id < config_.block_count, "block id out of range");
  return index_.level_of(id) != 0;
}

cost_split hier_backend::probe_all(block_id target,
                                   std::span<std::uint8_t> payload_out) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  probe_slots_.clear();
  std::size_t target_pos = npos;
  std::size_t resident_idx = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    level_state& lvl = levels_[i];
    if (!lvl.active) {
      continue;
    }
    if (target != dummy_block_id && index_.level_of(target) == i + 1) {
      target_pos = probe_slots_.size();
      resident_idx = i;
      probe_slots_.push_back(lvl.base + index_.slot_of(target));
    } else {
      invariant(lvl.dummies_used < lvl.dummy_capacity,
                "hier dummy pool exhausted before its refresh");
      probe_slots_.push_back(
          lvl.base + lvl.prp.forward(lvl.real_capacity + lvl.dummies_used));
      ++lvl.dummies_used;
    }
    ++lvl.probes;
  }
  invariant(!probe_slots_.empty(), "hier has no active level to probe");
  invariant(target == dummy_block_id || target_pos != npos,
            "resident level of the target is not active");
  for (const std::uint64_t slot : probe_slots_) {
    trace(trace_, event_kind::storage_read_slot, slot);
  }

  // The single round trip: every probe address is known up front from
  // the trusted index, so the whole batch ships as one exchange.
  const std::size_t rec = codec_.record_bytes();
  probe_buf_.resize(probe_slots_.size() * rec);
  cost_split cost;
  {
    sim::trip_scope round_trip(&store_->device());
    cost.io += store_->read_scatter(probe_slots_, probe_buf_);
  }
  // The client decrypts the full batch whether or not a real block is
  // inside, so real and dummy loads cost the same.
  cost.cpu += cpu_.crypto_time(probe_slots_.size(), rec) +
              cpu_.word_ops_time(probe_slots_.size() + 8);

  if (target_pos != npos) {
    const block_id got = codec_.decode(
        std::span<const std::uint8_t>(probe_buf_)
            .subspan(target_pos * rec, rec),
        payload_out);
    invariant(got == target, "hier probe returned the wrong block");
    level_state& lvl = levels_[resident_idx];
    invariant(lvl.live > 0, "level live count underflow");
    --lvl.live;
    index_.clear(target);
    ++cached_count_;
  }
  return cost;
}

void hier_backend::refresh_due_levels(cost_split& cost) {
  if (merge_in_flight_) {
    return;  // the dummy pools carry the slack until the merge lands
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].active && levels_[i].probes >= levels_[i].refresh_after) {
      refresh_level(i, cost);
    }
  }
}

void hier_backend::refresh_level(std::size_t idx, cost_split& cost) {
  level_state& lvl = levels_[idx];
  const std::size_t rec = codec_.record_bytes();
  level_buf_.resize(lvl.slot_count * rec);
  trace(trace_, event_kind::storage_read_sweep, lvl.base, lvl.slot_count);
  {
    sim::trip_scope round_trip(&store_->device());
    cost.io += store_->read_range(lvl.base, lvl.slot_count, level_buf_);
  }

  // Survivors are the records the index still maps here; stale copies
  // of extracted or re-merged blocks drop out.
  std::vector<block_id> ids;
  std::vector<std::uint8_t> payloads;
  ids.reserve(lvl.live);
  payloads.reserve(lvl.live * config_.payload_bytes);
  for (std::uint64_t slot = 0; slot < lvl.slot_count; ++slot) {
    const block_id id = codec_.decode(
        std::span<const std::uint8_t>(level_buf_).subspan(slot * rec, rec),
        payload_scratch_);
    if (id == dummy_block_id || index_.level_of(id) != idx + 1 ||
        index_.slot_of(id) != slot) {
      continue;
    }
    ids.push_back(id);
    payloads.insert(payloads.end(), payload_scratch_.begin(),
                    payload_scratch_.end());
  }
  invariant(ids.size() == lvl.live,
            "refresh found a live count the index disagrees with");

  lvl.prp = feistel_prp(lvl.slot_count, fresh_key());
  ++lvl.epoch;
  lvl.probes = 0;
  lvl.dummies_used = 0;
  for (std::uint64_t slot = 0; slot < lvl.slot_count; ++slot) {
    const std::uint64_t rank = lvl.prp.inverse(slot);
    const std::span<std::uint8_t> out =
        std::span(level_buf_).subspan(slot * rec, rec);
    if (rank < ids.size()) {
      codec_.encode(ids[rank],
                    std::span<const std::uint8_t>(payloads).subspan(
                        rank * config_.payload_bytes, config_.payload_bytes),
                    out);
      index_.place(ids[rank], static_cast<std::uint32_t>(idx + 1), slot);
    } else {
      codec_.encode_dummy(out);
    }
  }
  trace(trace_, event_kind::storage_write_sweep, lvl.base, lvl.slot_count);
  {
    sim::trip_scope round_trip(&store_->device());
    cost.io += store_->write_range(lvl.base, lvl.slot_count, level_buf_);
  }
  cost.cpu += cpu_.crypto_time(2 * lvl.slot_count, rec) +
              cpu_.word_ops_time(2 * lvl.slot_count);
  ++refreshes_;
}

oram_backend::load_result hier_backend::load_block(block_id id) {
  expects(in_storage(id), "block is not on storage");
  load_result result;
  ++stats_.real_loads;
  result.cost += probe_all(id, payload_scratch_);
  result.id = id;
  result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
  refresh_due_levels(result.cost);
  return result;
}

oram_backend::load_result hier_backend::dummy_load() {
  load_result result;
  ++stats_.dummy_loads;
  result.cost += probe_all(dummy_block_id, {});
  refresh_due_levels(result.cost);
  return result;
}

/// Incremental merge of the evicted hot set plus every active level
/// above the schedule-chosen target into that target, rebuilt under a
/// fresh permutation. Slice units are single chunked range transfers
/// (first streaming reads of the sources, then streaming writes of the
/// composed target), so bounded budgets stop between any two chunks;
/// blocks the job holds stay readable/writable through staged() until
/// their chunk lands.
class hier_shuffle_job final : public horam::shuffle_job {
 public:
  hier_shuffle_job(hier_backend& owner, std::vector<evicted_block> evicted,
                   std::uint64_t period_index)
      : owner_(owner) {
    invariant(!owner_.merge_in_flight_, "hier merge already in flight");
    owner_.merge_in_flight_ = true;
    trace(owner_.trace_, event_kind::shuffle_begin, period_index);

    for (evicted_block& block : evicted) {
      expects(block.id < owner_.config_.block_count,
              "evicted id out of range");
      invariant(owner_.index_.level_of(block.id) == 0,
                "evicted block the index says is on storage");
      const bool fresh =
          staged_.emplace(block.id, std::move(block.payload)).second;
      invariant(fresh, "duplicate block in the evicted set");
      order_.push_back(block.id);
    }

    // Merge target: level 1 by default, one level deeper for every
    // power of the fan-out dividing the period ordinal — the classic
    // hierarchical cascade, a function of the period index only. If an
    // off-schedule hot set would not fit, escalate minimally.
    const std::uint32_t level_total = owner_.level_count();
    const std::uint64_t fanout = owner_.config_.hier_fanout;
    std::uint64_t ordinal = period_index + 1;
    std::uint32_t target = 1;
    while (target < level_total && ordinal % fanout == 0) {
      ++target;
      ordinal /= fanout;
    }
    std::uint64_t incoming = order_.size();
    for (std::uint32_t l = 1; l <= target; ++l) {
      incoming += owner_.levels_[l - 1].active ? owner_.levels_[l - 1].live
                                               : 0;
    }
    while (incoming > owner_.levels_[target - 1].real_capacity &&
           target < level_total) {
      ++target;
      incoming += owner_.levels_[target - 1].active
                      ? owner_.levels_[target - 1].live
                      : 0;
    }
    invariant(incoming <= owner_.levels_[target - 1].real_capacity,
              "hier merge target cannot hold its inputs");
    target_ = target;
    for (std::uint32_t l = 1; l <= target_; ++l) {
      if (owner_.levels_[l - 1].active) {
        sources_.push_back(l - 1);
      }
    }
    if (sources_.empty()) {
      if (staged_.empty()) {
        skip_ = true;  // nothing anywhere: leave the layout untouched
      } else {
        begin_write();
      }
    }
  }

  horam::shuffle_cost step(sim::sim_time device_budget) override {
    expects(!done(), "shuffle_job::step() after done()");
    horam::shuffle_cost slice;
    while (!done()) {
      if (src_index_ < sources_.size()) {
        read_unit(slice);
      } else {
        write_unit(slice);
      }
      if (device_budget > 0 && slice.total() >= device_budget) {
        break;
      }
    }
    return slice;
  }

  [[nodiscard]] bool done() const noexcept override {
    return skip_ || write_done_;
  }

  [[nodiscard]] bool holds(block_id id) const override {
    return staged_.contains(id);
  }

  [[nodiscard]] std::vector<std::uint8_t>* staged(block_id id) override {
    const auto it = staged_.find(id);
    return it == staged_.end() ? nullptr : &it->second;
  }

  void finish(std::vector<evicted_block>& overflow_out) override {
    static_cast<void>(overflow_out);  // capacity is guaranteed; no overflow
    expects(done(), "shuffle_job::finish() before done()");
    expects(!finished_, "shuffle_job::finish() called twice");
    owner_.merge_in_flight_ = false;
    ++owner_.stats_.partitions_shuffled;
    finished_ = true;
  }

 private:
  /// Streams the next chunk of the current source level into the
  /// staging area; deactivates the level once drained.
  void read_unit(horam::shuffle_cost& cost) {
    const std::size_t idx = sources_[src_index_];
    hier_backend::level_state& lvl = owner_.levels_[idx];
    const std::uint64_t n =
        std::min(kChunkSlots, lvl.slot_count - read_cursor_);
    const std::size_t rec = owner_.codec_.record_bytes();
    owner_.level_buf_.resize(n * rec);
    trace(owner_.trace_, event_kind::storage_read_sweep,
          lvl.base + read_cursor_, n);
    {
      sim::trip_scope round_trip(&owner_.store_->device());
      cost.io_read += owner_.store_->read_range(lvl.base + read_cursor_, n,
                                                owner_.level_buf_);
    }
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t slot = read_cursor_ + j;
      const block_id id = owner_.codec_.decode(
          std::span<const std::uint8_t>(owner_.level_buf_)
              .subspan(j * rec, rec),
          owner_.payload_scratch_);
      if (id == dummy_block_id || owner_.index_.level_of(id) != idx + 1 ||
          owner_.index_.slot_of(id) != slot) {
        continue;  // dummy or stale copy
      }
      const bool fresh =
          staged_
              .emplace(id, std::vector<std::uint8_t>(
                               owner_.payload_scratch_.begin(),
                               owner_.payload_scratch_.end()))
              .second;
      invariant(fresh, "merge staged the same block twice");
      order_.push_back(id);
      owner_.index_.clear(id);
      ++owner_.cached_count_;
      invariant(lvl.live > 0, "level live count underflow");
      --lvl.live;
    }
    cost.cpu += owner_.cpu_.crypto_time(n, rec);
    read_cursor_ += n;
    if (read_cursor_ == lvl.slot_count) {
      invariant(lvl.live == 0, "merge drained a level but blocks remain");
      lvl.active = false;
      lvl.probes = 0;
      lvl.dummies_used = 0;
      read_cursor_ = 0;
      ++src_index_;
      if (src_index_ == sources_.size()) {
        // Activate the target in the same indivisible unit so online
        // probes never see a gap with every merged level inactive.
        begin_write();
      }
    }
  }

  /// Opens the target's new epoch: fresh key, ranks in staging order.
  void begin_write() {
    hier_backend::level_state& lvl = owner_.levels_[target_ - 1];
    invariant(lvl.live == 0, "merge target still holds live blocks");
    invariant(order_.size() <= lvl.real_capacity,
              "hier merge target cannot hold its inputs");
    lvl.prp = feistel_prp(lvl.slot_count, owner_.fresh_key());
    lvl.active = true;
    ++lvl.epoch;
    lvl.probes = 0;
    lvl.dummies_used = 0;
  }

  /// Composes and writes the next chunk of the target, then flips the
  /// written blocks from the staging area into the index.
  void write_unit(horam::shuffle_cost& cost) {
    hier_backend::level_state& lvl = owner_.levels_[target_ - 1];
    const std::uint64_t n =
        std::min(kChunkSlots, lvl.slot_count - write_cursor_);
    const std::size_t rec = owner_.codec_.record_bytes();
    owner_.level_buf_.resize(n * rec);
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t slot = write_cursor_ + j;
      const std::uint64_t rank = lvl.prp.inverse(slot);
      const std::span<std::uint8_t> out =
          std::span(owner_.level_buf_).subspan(j * rec, rec);
      if (rank < order_.size()) {
        owner_.codec_.encode(order_[rank], staged_.at(order_[rank]), out);
      } else {
        owner_.codec_.encode_dummy(out);
      }
    }
    trace(owner_.trace_, event_kind::storage_write_sweep,
          lvl.base + write_cursor_, n);
    {
      sim::trip_scope round_trip(&owner_.store_->device());
      cost.io_write += owner_.store_->write_range(lvl.base + write_cursor_,
                                                  n, owner_.level_buf_);
    }
    for (std::uint64_t j = 0; j < n; ++j) {
      const std::uint64_t slot = write_cursor_ + j;
      const std::uint64_t rank = lvl.prp.inverse(slot);
      if (rank >= order_.size()) {
        continue;
      }
      const block_id id = order_[rank];
      owner_.index_.place(id, target_, slot);
      staged_.erase(id);
      ++lvl.live;
      ++placed_;
      invariant(owner_.cached_count_ > 0, "cached count underflow");
      --owner_.cached_count_;
    }
    cost.cpu += owner_.cpu_.crypto_time(n, rec) +
                owner_.cpu_.word_ops_time(2 * n);
    write_cursor_ += n;
    if (write_cursor_ == lvl.slot_count) {
      invariant(staged_.empty(), "merge finished with unplaced blocks");
      // Compare against the job's own placement count, not lvl.live:
      // online loads may re-extract already-landed blocks while later
      // chunks are still being written, legitimately shrinking live.
      invariant(placed_ == order_.size(),
                "merge placed a different block count");
      write_done_ = true;
    }
  }

  hier_backend& owner_;
  std::unordered_map<block_id, std::vector<std::uint8_t>> staged_;
  std::vector<block_id> order_;  // rank assignment of the new epoch
  std::vector<std::size_t> sources_;
  std::uint32_t target_ = 1;
  std::size_t src_index_ = 0;
  std::uint64_t read_cursor_ = 0;
  std::uint64_t write_cursor_ = 0;
  std::uint64_t placed_ = 0;
  bool skip_ = false;
  bool write_done_ = false;
  bool finished_ = false;
};

std::unique_ptr<horam::shuffle_job> hier_backend::begin_shuffle(
    std::vector<evicted_block> evicted, std::uint64_t period_index) {
  return std::make_unique<hier_shuffle_job>(*this, std::move(evicted),
                                            period_index);
}

horam::shuffle_cost hier_backend::shuffle_period(
    std::vector<evicted_block> evicted, std::uint64_t period_index,
    std::vector<evicted_block>& overflow_out) {
  std::unique_ptr<horam::shuffle_job> job =
      begin_shuffle(std::move(evicted), period_index);
  horam::shuffle_cost cost;
  while (!job->done()) {
    cost += job->step(0);
  }
  job->finish(overflow_out);
  return cost;
}

std::uint32_t hier_backend::active_levels() const noexcept {
  std::uint32_t count = 0;
  for (const level_state& lvl : levels_) {
    count += lvl.active ? 1 : 0;
  }
  return count;
}

std::uint64_t hier_backend::level_real_capacity(std::uint32_t level) const {
  expects(level >= 1 && level <= levels_.size(), "level out of range");
  return levels_[level - 1].real_capacity;
}

std::uint64_t hier_backend::level_slot_count(std::uint32_t level) const {
  expects(level >= 1 && level <= levels_.size(), "level out of range");
  return levels_[level - 1].slot_count;
}

std::uint64_t hier_backend::level_base(std::uint32_t level) const {
  expects(level >= 1 && level <= levels_.size(), "level out of range");
  return levels_[level - 1].base;
}

std::uint64_t hier_backend::level_live(std::uint32_t level) const {
  expects(level >= 1 && level <= levels_.size(), "level out of range");
  return levels_[level - 1].live;
}

std::uint64_t hier_backend::physical_bytes() const {
  return store_->slot_count() * store_->logical_block_bytes();
}

std::uint64_t hier_backend::control_memory_bytes() const {
  // Trusted state: the succinct index plus O(1) words per level — the
  // scheme's selling point (no stash, no per-slot metadata) and its
  // cost (the index grows with the block count, unlike a recursive
  // map's O(1) residue).
  return index_.bytes() + levels_.size() * sizeof(level_state);
}

void hier_backend::check_consistency() const {
  std::vector<std::uint64_t> live_counts(levels_.size(), 0);
  std::unordered_set<std::uint64_t> claimed;
  std::uint64_t mapped = 0;
  for (block_id id = 0; id < config_.block_count; ++id) {
    const std::uint32_t level = index_.level_of(id);
    if (level == 0) {
      continue;
    }
    invariant(level <= levels_.size(), "index level out of range");
    const level_state& lvl = levels_[level - 1];
    invariant(lvl.active, "index maps a block to an inactive level");
    const std::uint64_t slot = index_.slot_of(id);
    invariant(slot < lvl.slot_count, "index slot out of range");
    invariant(claimed.insert(lvl.base + slot).second,
              "two blocks indexed to one slot");
    const block_id stored =
        codec_.decode(store_->peek(lvl.base + slot), {});
    invariant(stored == id, "stored record disagrees with the index");
    ++live_counts[level - 1];
    ++mapped;
  }
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    invariant(live_counts[i] == levels_[i].live,
              "level live count disagrees with the index");
    invariant(levels_[i].active || levels_[i].live == 0,
              "inactive level holds live blocks");
    invariant(levels_[i].dummies_used <= levels_[i].dummy_capacity,
              "dummy pool overran its capacity");
  }
  invariant(mapped + cached_count_ == config_.block_count,
            "cached counter out of sync with the index");
}

}  // namespace horam::oram
