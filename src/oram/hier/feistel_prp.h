// Keyed format-preserving permutation over [0, domain).
//
// The hier backend needs a fresh random-looking bijection between ranks
// and level slots at every rebuild, recomputable in both directions from
// a small secret: forward maps the next unused dummy rank to its slot
// during online probes, inverse maps a slot back to its rank while the
// rebuild streams a level out in slot order. A balanced Feistel network
// over the smallest even-bit power of two covering the domain gives both
// directions; cycle-walking restricts it to [0, domain). The round
// function is the codebase's keyed PRF (SipHash-2-4).
#ifndef HORAM_ORAM_HIER_FEISTEL_PRP_H
#define HORAM_ORAM_HIER_FEISTEL_PRP_H

#include <cstdint>

#include "crypto/siphash.h"
#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

/// Invertible keyed permutation of [0, domain).
class feistel_prp {
 public:
  /// An empty permutation (domain 1, identity); assign to rekey.
  feistel_prp() = default;

  feistel_prp(std::uint64_t domain, const crypto::siphash_key& key)
      : domain_(domain), key_(key) {
    expects(domain > 0, "permutation domain must be non-empty");
    unsigned bits = domain == 1 ? 1 : util::ceil_log2(domain);
    bits += bits % 2;  // balanced halves
    if (bits == 0) {
      bits = 2;
    }
    half_bits_ = bits / 2;
  }

  [[nodiscard]] std::uint64_t domain() const noexcept { return domain_; }

  /// rank -> slot.
  [[nodiscard]] std::uint64_t forward(std::uint64_t rank) const {
    expects(rank < domain_, "rank outside the permutation domain");
    // Cycle-walk: the Feistel pass permutes [0, 2^(2h)); iterating from
    // inside [0, domain) must return there (the cycle revisits rank).
    std::uint64_t v = rank;
    do {
      v = permute_pow2(v);
    } while (v >= domain_);
    return v;
  }

  /// slot -> rank.
  [[nodiscard]] std::uint64_t inverse(std::uint64_t slot) const {
    expects(slot < domain_, "slot outside the permutation domain");
    std::uint64_t v = slot;
    do {
      v = unpermute_pow2(v);
    } while (v >= domain_);
    return v;
  }

 private:
  static constexpr unsigned kRounds = 6;

  [[nodiscard]] std::uint64_t round_value(unsigned round,
                                          std::uint64_t half) const {
    // Halves are at most 32 bits, so tagging the round in the top byte
    // never collides with the data.
    return crypto::siphash24_u64(
        key_, (static_cast<std::uint64_t>(round) << 56) ^ half);
  }

  [[nodiscard]] std::uint64_t permute_pow2(std::uint64_t v) const {
    const std::uint64_t mask = (std::uint64_t{1} << half_bits_) - 1;
    std::uint64_t left = v >> half_bits_;
    std::uint64_t right = v & mask;
    for (unsigned round = 0; round < kRounds; ++round) {
      const std::uint64_t next = left ^ (round_value(round, right) & mask);
      left = right;
      right = next;
    }
    return (left << half_bits_) | right;
  }

  [[nodiscard]] std::uint64_t unpermute_pow2(std::uint64_t v) const {
    const std::uint64_t mask = (std::uint64_t{1} << half_bits_) - 1;
    std::uint64_t left = v >> half_bits_;
    std::uint64_t right = v & mask;
    for (unsigned round = kRounds; round-- > 0;) {
      const std::uint64_t prev = right ^ (round_value(round, left) & mask);
      right = left;
      left = prev;
    }
    return (left << half_bits_) | right;
  }

  std::uint64_t domain_ = 1;
  unsigned half_bits_ = 1;
  crypto::siphash_key key_{};
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_HIER_FEISTEL_PRP_H
