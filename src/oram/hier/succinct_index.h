// Trusted-memory succinct position index of the hier backend.
//
// One packed bit-entry per block id: a level tag (0 = the block left
// storage and is cached upstream; 1..L = resident level) followed by the
// level-local slot. Because the index is trusted and consulted before
// any device traffic, an online access knows every probe address up
// front — the property that lets the hier backend ship all per-level
// probes as one batched exchange (a single round trip), where a
// recursive position map costs one dependent trip per map level.
//
// The entry width is ceil(log2(L + 1)) + ceil(log2(max slots per
// level)) bits — a few bytes per hundred blocks — and the structure is
// a flat bit array, so lookups and updates are O(1) word arithmetic.
#ifndef HORAM_ORAM_HIER_SUCCINCT_INDEX_H
#define HORAM_ORAM_HIER_SUCCINCT_INDEX_H

#include <cstdint>
#include <vector>

#include "oram/common/types.h"
#include "util/contracts.h"

namespace horam::oram {

/// Packed id -> (level, slot) map; level 0 is the cached sentinel.
class succinct_index {
 public:
  succinct_index() = default;

  succinct_index(std::uint64_t universe, unsigned level_bits,
                 unsigned slot_bits)
      : universe_(universe),
        level_bits_(level_bits),
        slot_bits_(slot_bits),
        entry_bits_(level_bits + slot_bits) {
    expects(universe > 0, "index universe must be non-empty");
    expects(level_bits >= 1 && slot_bits >= 1, "index fields need bits");
    expects(entry_bits_ <= 64, "index entries are packed into 64-bit words");
    // +1 pad word so a straddling entry's second-word touch stays in
    // bounds.
    words_.assign((universe * entry_bits_ + 63) / 64 + 1, 0);
  }

  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }
  [[nodiscard]] unsigned entry_bits() const noexcept { return entry_bits_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

  /// Resident level of `id`; 0 means cached (not on storage).
  [[nodiscard]] std::uint32_t level_of(block_id id) const {
    return static_cast<std::uint32_t>(raw(id) >> slot_bits_);
  }

  /// Level-local slot of `id`; meaningful only while level_of(id) != 0.
  [[nodiscard]] std::uint64_t slot_of(block_id id) const {
    return raw(id) & field_mask(slot_bits_);
  }

  /// Records `id` at (level, slot); level is 1-based.
  void place(block_id id, std::uint32_t level, std::uint64_t slot) {
    expects(level >= 1 && level <= field_mask(level_bits_),
            "index level tag out of range");
    expects(slot <= field_mask(slot_bits_), "index slot out of range");
    set_raw(id, (static_cast<std::uint64_t>(level) << slot_bits_) | slot);
  }

  /// Marks `id` cached (not on storage).
  void clear(block_id id) { set_raw(id, 0); }

 private:
  [[nodiscard]] static constexpr std::uint64_t field_mask(
      unsigned bits) noexcept {
    return bits >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << bits) - 1;
  }

  [[nodiscard]] std::uint64_t raw(block_id id) const {
    expects(id < universe_, "block id outside the index universe");
    const std::uint64_t bit = id * entry_bits_;
    const std::uint64_t word = bit >> 6;
    const unsigned shift = static_cast<unsigned>(bit & 63);
    std::uint64_t value = words_[word] >> shift;
    if (shift + entry_bits_ > 64) {
      value |= words_[word + 1] << (64 - shift);
    }
    return value & field_mask(entry_bits_);
  }

  void set_raw(block_id id, std::uint64_t value) {
    expects(id < universe_, "block id outside the index universe");
    const std::uint64_t bit = id * entry_bits_;
    const std::uint64_t word = bit >> 6;
    const unsigned shift = static_cast<unsigned>(bit & 63);
    const std::uint64_t mask = field_mask(entry_bits_);
    words_[word] = (words_[word] & ~(mask << shift)) | (value << shift);
    if (shift + entry_bits_ > 64) {
      const unsigned spill = 64 - shift;
      words_[word + 1] =
          (words_[word + 1] & ~(mask >> spill)) | (value >> spill);
    }
  }

  std::uint64_t universe_ = 0;
  unsigned level_bits_ = 0;
  unsigned slot_bits_ = 0;
  unsigned entry_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_HIER_SUCCINCT_INDEX_H
