#include "oram/ring/ring_oram.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

/// Chunk size (records) for sequential sweeps, to bound host buffers.
constexpr std::uint64_t sweep_chunk_records = 1 << 14;

/// splitmix64 finaliser — the pad stream's mixing function.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ring_oram::ring_oram(const ring_oram_config& config,
                     sim::block_device& io_device, const sim::cpu_model& cpu,
                     util::random_source& rng, access_trace* trace)
    : config_(config),
      level_count_(static_cast<std::uint32_t>(
          util::floor_log2(config.leaf_count) + 1)),
      bucket_count_(2 * config.leaf_count - 1),
      codec_(config.payload_bytes, config.seal, config.key_seed),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      positions_(config.id_universe) {
  expects(util::is_pow2(config.leaf_count), "leaf count must be 2^k");
  expects(config.real_slots > 0, "real slots (Z) must be positive");
  expects(config.spare_slots > 0, "spare slots (S) must be positive");
  expects(config.eviction_rate > 0, "eviction rate (A) must be positive");
  expects(config.id_universe > 0, "id universe must be positive");

  const std::uint64_t logical =
      config.logical_block_bytes != 0 ? config.logical_block_bytes
                                      : codec_.record_bytes();
  expects(logical >= codec_.record_bytes(),
          "logical block smaller than the encoded record");
  logical_bytes_ = logical;

  io_store_ = std::make_unique<storage::block_store>(
      io_device, /*base_offset=*/0, total_slots(), codec_.record_bytes(),
      logical);

  slots_.resize(total_slots());
  buckets_.resize(bucket_count_);

  const std::size_t record_bytes = codec_.record_bytes();
  chosen_slots_.reserve(level_count_);
  slot_order_.resize(slots_per_bucket());
  bucket_scratch_.resize(slots_per_bucket() * record_bytes);
  record_scratch_.resize(record_bytes);
  combined_scratch_.resize(record_bytes);
  pad_scratch_.resize(record_bytes);
  payload_scratch_.resize(config.payload_bytes);
  extracted_payload_.resize(config.payload_bytes);

  // Start with a physically pad-filled tree.
  reset();
}

std::uint64_t ring_oram::bucket_on_path(leaf_id leaf,
                                        std::uint32_t level) const {
  return ((std::uint64_t{1} << level) - 1) +
         (leaf >> (level_count_ - 1 - level));
}

bool ring_oram::paths_share_bucket(leaf_id a, leaf_id b,
                                   std::uint32_t level) const {
  const std::uint32_t shift = level_count_ - 1 - level;
  return (a >> shift) == (b >> shift);
}

leaf_id ring_oram::reverse_lex_leaf(std::uint64_t counter) const {
  const std::uint32_t bits = level_count_ - 1;
  std::uint64_t g = counter & (config_.leaf_count - 1);
  leaf_id leaf = 0;
  for (std::uint32_t i = 0; i < bits; ++i) {
    leaf = (leaf << 1) | (g & 1);
    g >>= 1;
  }
  return leaf;
}

void ring_oram::fill_pad(std::uint64_t slot, std::uint64_t epoch,
                         std::span<std::uint8_t> out) const {
  const std::uint64_t seed =
      mix64(config_.key_seed ^ mix64(slot) ^ mix64(epoch ^ 0x5061644cULL));
  for (std::size_t i = 0; i < codec_.record_bytes(); i += 8) {
    const std::uint64_t word = mix64(seed + 1 + i / 8);
    const std::size_t n = std::min<std::size_t>(8, codec_.record_bytes() - i);
    std::memcpy(out.data() + i, &word, n);
  }
}

cost_split ring_oram::path_read(leaf_id leaf, block_id target, bool& found) {
  cost_split cost;
  found = false;
  trace(trace_, event_kind::memory_path_access, leaf, config_.leaf_count);

  const std::uint32_t spb = slots_per_bucket();
  const std::size_t record_bytes = codec_.record_bytes();

  // Choose one slot per path bucket: the real slot when the target
  // lives there, a uniformly random unread dummy otherwise. Real slots
  // are placed at uniformly random slots on every bucket rewrite, so
  // the two choices are identically distributed on the bus.
  chosen_slots_.clear();
  std::uint64_t real_slot = 0;
  for (std::uint32_t level = 0; level < level_count_; ++level) {
    const std::uint64_t bucket = bucket_on_path(leaf, level);
    const std::uint64_t base = bucket * spb;
    std::uint64_t chosen = total_slots();
    if (target != dummy_block_id) {
      for (std::uint32_t k = 0; k < spb; ++k) {
        if (slots_[base + k].id == target) {
          invariant(!slots_[base + k].read, "real slot already consumed");
          chosen = base + k;
          found = true;
          real_slot = chosen;
          break;
        }
      }
    }
    if (chosen == total_slots()) {
      std::uint32_t candidates = 0;
      for (std::uint32_t k = 0; k < spb; ++k) {
        const slot_meta& meta = slots_[base + k];
        if (meta.id == dummy_block_id && !meta.read) {
          slot_order_[candidates++] = k;
        }
      }
      invariant(candidates > 0,
                "bucket ran out of unread dummies before its reshuffle");
      chosen = base + slot_order_[util::uniform_below(rng_, candidates)];
    }
    chosen_slots_.push_back(chosen);
  }

  // The adversary's view: which physical slots were requested. Both
  // read modes name the same slots; XOR only changes how many blocks
  // cross the bus.
  for (const std::uint64_t slot : chosen_slots_) {
    trace(trace_, event_kind::storage_read_slot, slot);
  }

  if (config_.xor_reads) {
    // One combined transfer; the real record is recovered by XORing
    // out the (deterministic, client-computable) pads of every chosen
    // dummy slot.
    cost.io += io_store_->read_xor(chosen_slots_, combined_scratch_);
    if (found) {
      for (const std::uint64_t slot : chosen_slots_) {
        if (slot == real_slot) {
          continue;
        }
        fill_pad(slot, buckets_[slot / spb].epoch, pad_scratch_);
        for (std::size_t i = 0; i < record_bytes; ++i) {
          combined_scratch_[i] ^= pad_scratch_[i];
        }
      }
      const block_id id = codec_.decode(combined_scratch_, payload_scratch_);
      invariant(id == target, "XOR-combined read recovered the wrong block");
      std::memcpy(extracted_payload_.data(), payload_scratch_.data(),
                  config_.payload_bytes);
    }
  } else {
    // Fallback: one device read per chosen slot.
    for (const std::uint64_t slot : chosen_slots_) {
      cost.io += io_store_->read(slot, record_scratch_);
      if (found && slot == real_slot) {
        std::memcpy(combined_scratch_.data(), record_scratch_.data(),
                    record_bytes);
      }
    }
    if (found) {
      const block_id id = codec_.decode(combined_scratch_, payload_scratch_);
      invariant(id == target, "slot read recovered the wrong block");
      std::memcpy(extracted_payload_.data(), payload_scratch_.data(),
                  config_.payload_bytes);
    }
  }

  // Consume the chosen slots; an extracted real slot becomes a spent
  // dummy until the bucket's next rewrite.
  for (const std::uint64_t slot : chosen_slots_) {
    slots_[slot].read = true;
    if (found && slot == real_slot) {
      slots_[slot].id = dummy_block_id;
    }
    ++buckets_[slot / spb].read_count;
  }

  // Control-layer cost: pad regeneration + decode along the path, plus
  // metadata bookkeeping.
  cost.cpu += cpu_.crypto_time(level_count_ + 1, record_bytes);
  cost.cpu += cpu_.word_ops_time(static_cast<std::uint64_t>(level_count_) *
                                     spb +
                                 stash_.size());

  // Early reshuffles: any path bucket out of spare slots is rewritten
  // now, which keeps an unread dummy available for every future access.
  for (std::uint32_t level = 0; level < level_count_; ++level) {
    const std::uint64_t bucket = bucket_on_path(leaf, level);
    if (buckets_[bucket].read_count >= config_.spare_slots) {
      cost += reshuffle_bucket(bucket);
    }
  }

  // Deterministic eviction every A accesses — a public schedule that
  // depends only on the access count.
  ++access_count_;
  if (access_count_ % config_.eviction_rate == 0) {
    cost += evict_path();
  }
  return cost;
}

cost_split ring_oram::extract(block_id id, std::span<std::uint8_t> read_out) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(positions_.contains(id), "extract of a non-resident block");
  expects(read_out.size() >= config_.payload_bytes,
          "read buffer too small");
  ++stats_.real_accesses;
  // One access = one dependent exchange: the slot choices are known up
  // front from trusted metadata, and any eviction/reshuffle the access
  // triggers rides the same public schedule.
  sim::trip_scope round_trip(&io_store_->device());

  // No remap: the block leaves the tree, so its (about to be read) path
  // is never correlated with a future access.
  const leaf_id leaf = positions_.leaf_of(id);
  if (stash_.contains(id)) {
    // Sheltering in the stash: serve from trusted memory and take the
    // block out BEFORE the cover path read — the read can trigger an
    // eviction, which would otherwise write the block into the tree
    // mid-extract. The all-dummy path read keeps the bus shape.
    const stash_entry& entry = stash_.at(id);
    std::memcpy(read_out.data(), entry.payload.data(),
                config_.payload_bytes);
    stash_.erase(id);
    positions_.remove(id);
    --resident_;
    bool found = false;
    return path_read(leaf, dummy_block_id, found);
  }
  bool found = false;
  const cost_split cost = path_read(leaf, id, found);
  invariant(found, "resident block missing from its path");
  std::memcpy(read_out.data(), extracted_payload_.data(),
              config_.payload_bytes);
  positions_.remove(id);
  --resident_;
  return cost;
}

cost_split ring_oram::dummy_access() {
  ++stats_.dummy_accesses;
  sim::trip_scope round_trip(&io_store_->device());
  const leaf_id leaf = util::uniform_below(rng_, config_.leaf_count);
  bool found = false;
  return path_read(leaf, dummy_block_id, found);
}

cost_split ring_oram::install(block_id id,
                              std::span<const std::uint8_t> payload) {
  return install(id, payload, util::uniform_below(rng_, config_.leaf_count));
}

cost_split ring_oram::install(block_id id,
                              std::span<const std::uint8_t> payload,
                              leaf_id leaf) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(!positions_.contains(id), "block already resident");
  expects(leaf < config_.leaf_count, "install leaf out of range");
  positions_.assign(id, leaf);
  stash_.put(id, leaf, payload);
  ++resident_;
  ++stats_.installs;

  cost_split cost;
  cost.cpu += cpu_.word_ops_time(4);
  return cost;
}

cost_split ring_oram::force_evict() {
  sim::trip_scope round_trip(&io_store_->device());
  return evict_path();
}

void ring_oram::compose_bucket(
    std::uint64_t bucket, std::span<const block_id> ids,
    const std::function<std::span<const std::uint8_t>(block_id)>& payload_of,
    std::span<std::uint8_t> out) {
  const std::uint32_t spb = slots_per_bucket();
  const std::size_t record_bytes = codec_.record_bytes();
  expects(ids.size() <= config_.real_slots, "bucket overfull");
  expects(out.size() >= spb * record_bytes, "bucket buffer too small");

  bucket_state& state = buckets_[bucket];
  ++state.epoch;
  state.read_count = 0;

  // Fresh secret permutation: the reals land at uniformly random
  // distinct slots (partial Fisher–Yates), everything else is a pad.
  for (std::uint32_t k = 0; k < spb; ++k) {
    slot_order_[k] = k;
  }
  for (std::uint32_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t j = static_cast<std::uint32_t>(
        util::uniform_in(rng_, i, spb - 1));
    std::swap(slot_order_[i], slot_order_[j]);
  }

  const std::uint64_t base = bucket * spb;
  for (std::uint32_t k = 0; k < spb; ++k) {
    slots_[base + k] = slot_meta{dummy_block_id, false};
    fill_pad(base + k, state.epoch,
             std::span<std::uint8_t>(out.data() + k * record_bytes,
                                     record_bytes));
  }
  for (std::uint32_t i = 0; i < ids.size(); ++i) {
    const std::uint32_t k = slot_order_[i];
    slots_[base + k] = slot_meta{ids[i], false};
    codec_.encode(ids[i], payload_of(ids[i]),
                  std::span<std::uint8_t>(out.data() + k * record_bytes,
                                          record_bytes));
  }
}

cost_split ring_oram::reshuffle_bucket(std::uint64_t bucket) {
  cost_split cost;
  ++stats_.early_reshuffles;
  const std::uint32_t spb = slots_per_bucket();
  const std::size_t record_bytes = codec_.record_bytes();
  const std::uint64_t base = bucket * spb;

  // Whole-bucket range read; the residents keep their paths, only the
  // permutation and the pads are refreshed.
  cost.io += io_store_->read_range(base, spb, bucket_scratch_);
  trace(trace_, event_kind::storage_read_sweep, base, spb);

  std::vector<block_id> ids;
  std::vector<std::uint8_t> payloads;
  for (std::uint32_t k = 0; k < spb; ++k) {
    const slot_meta& meta = slots_[base + k];
    if (meta.id == dummy_block_id) {
      continue;
    }
    const std::span<const std::uint8_t> record(
        bucket_scratch_.data() + k * record_bytes, record_bytes);
    const block_id id = codec_.decode(record, payload_scratch_);
    invariant(id == meta.id, "slot metadata disagrees with the record");
    ids.push_back(id);
    payloads.insert(payloads.end(), payload_scratch_.begin(),
                    payload_scratch_.end());
  }

  compose_bucket(
      bucket, ids,
      [&](block_id id) -> std::span<const std::uint8_t> {
        const std::uint64_t i = static_cast<std::uint64_t>(
            std::find(ids.begin(), ids.end(), id) - ids.begin());
        return {payloads.data() + i * config_.payload_bytes,
                config_.payload_bytes};
      },
      bucket_scratch_);
  cost.io += io_store_->write_range(base, spb, bucket_scratch_);
  trace(trace_, event_kind::storage_write_sweep, base, spb);

  cost.cpu += cpu_.crypto_time(2ULL * spb, record_bytes);
  cost.cpu += cpu_.word_ops_time(spb);
  return cost;
}

cost_split ring_oram::evict_path() {
  cost_split cost;
  ++stats_.evictions;
  const leaf_id leaf = reverse_lex_leaf(evict_counter_++);
  const std::uint32_t spb = slots_per_bucket();
  const std::size_t record_bytes = codec_.record_bytes();

  // Phase 1, root to leaf: range-read every path bucket and move its
  // residents into the stash.
  for (std::uint32_t level = 0; level < level_count_; ++level) {
    const std::uint64_t bucket = bucket_on_path(leaf, level);
    const std::uint64_t base = bucket * spb;
    cost.io += io_store_->read_range(base, spb, bucket_scratch_);
    trace(trace_, event_kind::storage_read_sweep, base, spb);
    for (std::uint32_t k = 0; k < spb; ++k) {
      const slot_meta& meta = slots_[base + k];
      if (meta.id == dummy_block_id) {
        continue;
      }
      const std::span<const std::uint8_t> record(
          bucket_scratch_.data() + k * record_bytes, record_bytes);
      const block_id id = codec_.decode(record, payload_scratch_);
      invariant(id == meta.id, "slot metadata disagrees with the record");
      invariant(positions_.contains(id),
                "tree holds a block missing from the position map");
      stash_.put(id, positions_.leaf_of(id), payload_scratch_);
    }
  }

  // Phase 2, leaf to root: greedy write-back under fresh permutations.
  std::vector<block_id> selected;
  for (std::uint32_t down = 0; down < level_count_; ++down) {
    const std::uint32_t level = level_count_ - 1 - down;
    const std::uint64_t bucket = bucket_on_path(leaf, level);
    const std::uint64_t base = bucket * spb;
    selected.clear();
    for (const auto& [id, entry] : stash_) {
      if (paths_share_bucket(entry.leaf, leaf, level)) {
        selected.push_back(id);
        if (selected.size() == config_.real_slots) {
          break;
        }
      }
    }
    compose_bucket(
        bucket, selected,
        [&](block_id id) -> std::span<const std::uint8_t> {
          const stash_entry& entry = stash_.at(id);
          return {entry.payload.data(), entry.payload.size()};
        },
        bucket_scratch_);
    cost.io += io_store_->write_range(base, spb, bucket_scratch_);
    trace(trace_, event_kind::storage_write_sweep, base, spb);
    for (const block_id id : selected) {
      stash_.erase(id);
    }
  }

  const std::uint64_t records_touched =
      2ULL * level_count_ * spb;
  cost.cpu += cpu_.crypto_time(records_touched, record_bytes);
  cost.cpu += cpu_.word_ops_time(records_touched + stash_.size());
  return cost;
}

void ring_oram::reset() {
  const std::size_t record_bytes = codec_.record_bytes();
  for (std::uint64_t bucket = 0; bucket < bucket_count_; ++bucket) {
    buckets_[bucket] = bucket_state{};
  }
  std::fill(slots_.begin(), slots_.end(), slot_meta{});

  std::vector<std::uint8_t> chunk;
  const std::uint64_t slots = total_slots();
  for (std::uint64_t first = 0; first < slots;
       first += sweep_chunk_records) {
    const std::uint64_t count = std::min(sweep_chunk_records, slots - first);
    chunk.resize(count * record_bytes);
    for (std::uint64_t k = 0; k < count; ++k) {
      fill_pad(first + k, 0,
               std::span<std::uint8_t>(chunk.data() + k * record_bytes,
                                       record_bytes));
    }
    io_store_->write_range(first, count, chunk);
  }

  positions_.clear();
  stash_.clear();
  resident_ = 0;
}

cost_split ring_oram::initialize_full(
    std::uint64_t count,
    const std::function<void(block_id, std::span<std::uint8_t>)>& filler,
    std::vector<leaf_id>* leaves_out) {
  expects(count <= positions_.universe(), "more blocks than the universe");
  expects(count <= capacity_blocks(), "tree cannot hold that many blocks");
  cost_split cost;
  sim::trip_scope round_trip(&io_store_->device());

  // Assign leaves and group ids by leaf (counting sort).
  std::vector<leaf_id> leaves(count);
  std::vector<std::uint64_t> leaf_counts(config_.leaf_count, 0);
  for (block_id id = 0; id < count; ++id) {
    leaves[id] = util::uniform_below(rng_, config_.leaf_count);
    ++leaf_counts[leaves[id]];
    positions_.assign(id, leaves[id]);
  }
  std::vector<std::uint64_t> leaf_offsets(config_.leaf_count + 1, 0);
  for (leaf_id l = 0; l < config_.leaf_count; ++l) {
    leaf_offsets[l + 1] = leaf_offsets[l] + leaf_counts[l];
  }
  std::vector<block_id> ids_by_leaf(count);
  {
    std::vector<std::uint64_t> cursor(leaf_offsets.begin(),
                                      leaf_offsets.end() - 1);
    for (block_id id = 0; id < count; ++id) {
      ids_by_leaf[cursor[leaves[id]]++] = id;
    }
  }

  // Materialise payloads once (indexable by id during the build).
  std::vector<std::uint8_t> payloads(count * config_.payload_bytes, 0);
  for (block_id id = 0; id < count; ++id) {
    filler(id, std::span<std::uint8_t>(
                   payloads.data() + id * config_.payload_bytes,
                   config_.payload_bytes));
  }
  const auto payload_of = [&](block_id id) -> std::span<const std::uint8_t> {
    return {payloads.data() + id * config_.payload_bytes,
            config_.payload_bytes};
  };

  // Bottom-up greedy placement with capacity Z per bucket.
  std::vector<std::vector<block_id>> bucket_ids(bucket_count_);
  const std::function<std::vector<block_id>(std::uint32_t, std::uint64_t)>
      build = [&](std::uint32_t level,
                  std::uint64_t node_in_level) -> std::vector<block_id> {
    std::vector<block_id> pending;
    if (level == level_count_ - 1) {
      const std::uint64_t first = leaf_offsets[node_in_level];
      const std::uint64_t last = leaf_offsets[node_in_level + 1];
      pending.assign(ids_by_leaf.begin() + static_cast<std::ptrdiff_t>(first),
                     ids_by_leaf.begin() + static_cast<std::ptrdiff_t>(last));
    } else {
      pending = build(level + 1, 2 * node_in_level);
      std::vector<block_id> right = build(level + 1, 2 * node_in_level + 1);
      pending.insert(pending.end(), right.begin(), right.end());
    }

    const std::uint64_t bucket =
        ((std::uint64_t{1} << level) - 1) + node_in_level;
    const std::uint64_t take =
        std::min<std::uint64_t>(config_.real_slots, pending.size());
    for (std::uint64_t k = 0; k < take; ++k) {
      bucket_ids[bucket].push_back(pending[pending.size() - 1 - k]);
    }
    pending.resize(pending.size() - take);
    return pending;
  };
  std::vector<block_id> overflow = build(0, 0);
  for (const block_id id : overflow) {
    stash_.put(id, leaves[id], payload_of(id));
  }

  // Compose every bucket (fresh permutations + pads) into one image and
  // stream it out as sequential sweeps.
  const std::uint32_t spb = slots_per_bucket();
  const std::size_t record_bytes = codec_.record_bytes();
  std::vector<std::uint8_t> tree_image(total_slots() * record_bytes);
  for (std::uint64_t bucket = 0; bucket < bucket_count_; ++bucket) {
    compose_bucket(
        bucket, bucket_ids[bucket], payload_of,
        std::span<std::uint8_t>(
            tree_image.data() + bucket * spb * record_bytes,
            static_cast<std::size_t>(spb) * record_bytes));
  }
  const std::uint64_t slots = total_slots();
  for (std::uint64_t first = 0; first < slots;
       first += sweep_chunk_records) {
    const std::uint64_t n = std::min(sweep_chunk_records, slots - first);
    cost.io += io_store_->write_range(
        first, n,
        std::span<const std::uint8_t>(
            tree_image.data() + first * record_bytes, n * record_bytes));
  }
  cost.cpu += cpu_.crypto_time(slots, record_bytes);

  resident_ = count;
  if (leaves_out != nullptr) {
    *leaves_out = leaves;
  }
  return cost;
}

void ring_oram::for_each_resident(
    const std::function<void(block_id, leaf_id,
                             std::span<const std::uint8_t>)>& visit)
    const {
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  for (std::uint64_t slot = 0; slot < total_slots(); ++slot) {
    const slot_meta& meta = slots_[slot];
    if (meta.id == dummy_block_id) {
      continue;
    }
    const block_id id = codec_.decode(io_store_->peek(slot), payload);
    invariant(id == meta.id, "slot metadata disagrees with the record");
    visit(id, positions_.leaf_of(id), payload);
  }
  for (const auto& [id, entry] : stash_) {
    visit(id, entry.leaf, entry.payload);
  }
}

void ring_oram::check_consistency() const {
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  std::vector<std::uint8_t> pad(codec_.record_bytes());
  std::vector<std::uint8_t> seen(positions_.universe(), 0);
  std::uint64_t found = 0;
  const std::uint32_t spb = slots_per_bucket();

  for (std::uint64_t bucket = 0; bucket < bucket_count_; ++bucket) {
    const bucket_state& state = buckets_[bucket];
    invariant(state.read_count < config_.spare_slots,
              "bucket consumed all its spare slots without a reshuffle");
    std::uint32_t reals = 0;
    for (std::uint32_t k = 0; k < spb; ++k) {
      const std::uint64_t slot = bucket * spb + k;
      const slot_meta& meta = slots_[slot];
      if (meta.id != dummy_block_id) {
        invariant(!meta.read, "live real slot marked consumed");
        ++reals;
        const block_id id = codec_.decode(io_store_->peek(slot), payload);
        invariant(id == meta.id, "slot metadata disagrees with the record");
        invariant(id < positions_.universe(),
                  "tree holds an out-of-universe block");
        invariant(positions_.contains(id),
                  "tree holds a block missing from the position map");
        invariant(seen[id] == 0, "block stored in two tree slots");
        seen[id] = 1;
        ++found;
        const unsigned level = util::floor_log2(bucket + 1);
        invariant(bucket == bucket_on_path(positions_.leaf_of(id), level),
                  "block stored off its position-map path");
      } else if (!meta.read) {
        // An unread dummy must hold its deterministic pad byte for
        // byte, or the XOR reconstruction would corrupt real reads.
        fill_pad(slot, state.epoch, pad);
        const std::span<const std::uint8_t> host = io_store_->peek(slot);
        invariant(std::equal(pad.begin(), pad.end(), host.begin()),
                  "unread dummy slot diverged from its pad");
      }
    }
    invariant(reals <= config_.real_slots,
              "bucket holds more reals than Z slots");
  }

  for (const auto& [id, entry] : stash_) {
    invariant(id < positions_.universe(),
              "stash holds an out-of-universe block");
    invariant(positions_.contains(id),
              "stash holds a block missing from the position map");
    invariant(entry.leaf == positions_.leaf_of(id),
              "stash leaf disagrees with the position map");
    invariant(seen[id] == 0, "block in both the tree and the stash");
    seen[id] = 1;
    ++found;
    invariant(entry.payload.size() == config_.payload_bytes,
              "stash payload has the wrong size");
  }

  invariant(found == resident_, "resident counter out of sync");
  invariant(positions_.size() == resident_,
            "position map size disagrees with the resident count");
}

}  // namespace horam::oram
