// Ring ORAM (Ren et al.), storage-resident tree for the `ring`
// oram_backend.
//
// Buckets hold Z real slots plus S spare (dummy) slots; every bucket
// rewrite places its real blocks at uniformly random distinct slots
// (the per-bucket secret permutation) and fills the rest with
// deterministic dummy pads. An online access reads exactly ONE slot per
// bucket on the path — the real slot when the block lives there, a
// uniformly chosen unread dummy otherwise — so online bandwidth is one
// block per level instead of Path ORAM's Z per level. Under
// `xor_reads`, the storage side folds the chosen slots into a single
// combined block (block_store::read_xor) and the client unXORs the
// known dummy pads, collapsing the whole online path read to one
// device transfer.
//
// Writes are decoupled from reads: every `eviction_rate` accesses one
// deterministic reverse-lexicographic path is evicted (read whole
// buckets, greedy write-back from the stash), and any bucket whose
// unread slots run low (read_count reaching S) is reshuffled early on
// its own. Both are range operations on a public schedule.
//
// Like oram/path/path_oram.h in backend mode, the tree is driven
// through extract/install: extract removes the live copy (the caller's
// cache layer takes over), install stages a returning block in the
// stash for the next evictions to place.
#ifndef HORAM_ORAM_RING_RING_ORAM_H
#define HORAM_ORAM_RING_RING_ORAM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "oram/common/position_map.h"
#include "oram/common/stash.h"
#include "oram/common/types.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/block_store.h"
#include "util/rng.h"

namespace horam::oram {

/// Static parameters of a Ring ORAM instance.
struct ring_oram_config {
  /// Number of leaves; must be a power of two.
  std::uint64_t leaf_count = 0;
  /// Real block slots per bucket (the paper's Z).
  std::uint32_t real_slots = 16;
  /// Dummy (spare) slots per bucket (the paper's S). Each online read
  /// consumes one slot per path bucket; the bucket is reshuffled once S
  /// slots have been consumed since its last rewrite, which guarantees
  /// an unread dummy always exists for the next access.
  std::uint32_t spare_slots = 25;
  /// Eviction rate (the paper's A): one deterministic path eviction
  /// every A online accesses.
  std::uint32_t eviction_rate = 20;
  /// Application payload bytes per block.
  std::size_t payload_bytes = 0;
  /// Logical block size for device timing (0 = record size).
  std::uint64_t logical_block_bytes = 0;
  /// Block ids the position map covers.
  std::uint64_t id_universe = 0;
  /// Seal records with real crypto (tests) or plaintext (large benches).
  bool seal = true;
  std::uint64_t key_seed = 0x72696e67;  // "ring"
  /// XOR-combined online reads: one device transfer per path read; off
  /// falls back to one per chosen slot (same trace shape either way).
  bool xor_reads = true;
};

/// Counters of a Ring ORAM instance.
struct ring_oram_stats {
  std::uint64_t real_accesses = 0;
  std::uint64_t dummy_accesses = 0;
  std::uint64_t installs = 0;
  /// Deterministic reverse-lexicographic path evictions.
  std::uint64_t evictions = 0;
  /// Single-bucket reshuffles triggered by the read counter hitting S.
  std::uint64_t early_reshuffles = 0;
};

class ring_oram {
 public:
  ring_oram(const ring_oram_config& config, sim::block_device& io_device,
            const sim::cpu_model& cpu, util::random_source& rng,
            access_trace* trace);

  [[nodiscard]] std::uint32_t level_count() const noexcept {
    return level_count_;
  }
  [[nodiscard]] std::uint64_t bucket_count() const noexcept {
    return bucket_count_;
  }
  /// Slots per bucket (Z + S).
  [[nodiscard]] std::uint32_t slots_per_bucket() const noexcept {
    return config_.real_slots + config_.spare_slots;
  }
  /// Real-block capacity (Z per bucket; spares never hold blocks).
  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept {
    return bucket_count_ * config_.real_slots;
  }
  /// Total physical slots (real + spare).
  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return bucket_count_ * slots_per_bucket();
  }
  [[nodiscard]] const ring_oram_config& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t record_bytes() const noexcept {
    return codec_.record_bytes();
  }
  [[nodiscard]] const ring_oram_stats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const stash& stash_ref() const noexcept { return stash_; }

  /// True iff the block currently lives in this tree (or its stash).
  [[nodiscard]] bool contains(block_id id) const {
    return positions_.contains(id);
  }
  [[nodiscard]] std::uint64_t resident_blocks() const noexcept {
    return resident_;
  }
  [[nodiscard]] leaf_id leaf_of(block_id id) const {
    return positions_.leaf_of(id);
  }

  /// One online access that removes `id` from the tree: reads one slot
  /// per path bucket, copies the payload into `read_out` (payload_bytes
  /// long) — the live copy moves to the caller's cache layer. The block
  /// must be resident. May trigger early reshuffles and, on the public
  /// access-count schedule, a deterministic eviction.
  cost_split extract(block_id id, std::span<std::uint8_t> read_out);

  /// A dummy access: random path, one unread dummy slot per bucket.
  /// Indistinguishable from extract() on the bus; advances the same
  /// reshuffle/eviction schedules.
  cost_split dummy_access();

  /// Stages a block arriving from the cache layer in the stash with a
  /// fresh uniform leaf; later evictions place it in the tree.
  cost_split install(block_id id, std::span<const std::uint8_t> payload);

  /// install() with a caller-chosen leaf, so an external position map
  /// can record the same assignment the tree uses.
  cost_split install(block_id id, std::span<const std::uint8_t> payload,
                     leaf_id leaf);

  /// One deterministic eviction outside the access schedule (shuffle
  /// drains use this to push staged blocks into the tree). Advances the
  /// same reverse-lexicographic order as scheduled evictions.
  cost_split force_evict();

  /// Bulk-builds the tree with every id in [0, count); overflow lands
  /// in the stash. `leaves_out` (index = id) mirrors the assignments
  /// for an external position map.
  cost_split initialize_full(
      std::uint64_t count,
      const std::function<void(block_id, std::span<std::uint8_t>)>& filler,
      std::vector<leaf_id>* leaves_out = nullptr);

  /// Visits every resident block — tree buckets first, then the stash —
  /// without charging device time (audits and peeks only).
  void for_each_resident(
      const std::function<void(block_id, leaf_id,
                               std::span<const std::uint8_t>)>& visit)
      const;

  /// Deep audit: every real slot decodes to its metadata id and lies on
  /// its position-map path, every unread dummy slot holds its
  /// deterministic pad byte for byte, read counters stay below S, and
  /// the stash/resident bookkeeping agrees. Throws util::contract_error
  /// on the first inconsistency.
  void check_consistency() const;

 private:
  /// Trusted per-slot metadata (the client-side view of the per-bucket
  /// permutation). A slot is a live real block (id != dummy, !read), an
  /// unread dummy pad (id == dummy, !read), or consumed (read — either
  /// a spent dummy or an extracted real; its bytes are stale until the
  /// bucket's next rewrite and it is never chosen again).
  struct slot_meta {
    block_id id = dummy_block_id;
    bool read = false;
  };
  /// Trusted per-bucket state.
  struct bucket_state {
    std::uint32_t read_count = 0;
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] std::uint64_t bucket_on_path(leaf_id leaf,
                                             std::uint32_t level) const;
  [[nodiscard]] bool paths_share_bucket(leaf_id a, leaf_id b,
                                        std::uint32_t level) const;
  /// Leaf of the g-th deterministic eviction (reverse-lexicographic
  /// order: bit-reversed counter).
  [[nodiscard]] leaf_id reverse_lex_leaf(std::uint64_t counter) const;

  /// Writes the deterministic dummy pad of (global slot, epoch) —
  /// a keyed splitmix64 byte stream, reproducible by the client
  /// without a device read (the XOR technique depends on this).
  void fill_pad(std::uint64_t slot, std::uint64_t epoch,
                std::span<std::uint8_t> out) const;

  /// One online path read of one slot per bucket. When `target` is
  /// found in a path bucket its payload is decoded into
  /// payload_scratch_ and the slot is consumed; `found` reports it.
  /// Bumps read counters, then runs the reshuffle and eviction
  /// schedules.
  cost_split path_read(leaf_id leaf, block_id target, bool& found);

  /// Rewrites one bucket in place: the given blocks land at fresh
  /// uniformly random distinct slots, every other slot gets the next
  /// epoch's pad; metadata, read bits and the read counter reset.
  void compose_bucket(
      std::uint64_t bucket, std::span<const block_id> ids,
      const std::function<std::span<const std::uint8_t>(block_id)>&
          payload_of,
      std::span<std::uint8_t> out);

  /// Early reshuffle: whole-bucket range read, rewrite with the same
  /// residents under a fresh permutation.
  cost_split reshuffle_bucket(std::uint64_t bucket);

  /// Deterministic eviction of the next reverse-lexicographic path:
  /// range-read every path bucket into the stash, greedy write-back
  /// deepest bucket first.
  cost_split evict_path();

  /// Rewrites the whole tree with epoch-0 pads and clears all state.
  void reset();

  ring_oram_config config_;
  std::uint32_t level_count_;
  std::uint64_t bucket_count_;

  block_codec codec_;
  std::uint64_t logical_bytes_ = 0;
  std::unique_ptr<storage::block_store> io_store_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  position_map positions_;
  stash stash_;
  std::uint64_t resident_ = 0;
  ring_oram_stats stats_;

  std::vector<slot_meta> slots_;
  std::vector<bucket_state> buckets_;
  /// Online accesses since construction (drives the eviction schedule).
  std::uint64_t access_count_ = 0;
  /// Deterministic evictions issued (drives the reverse-lex order).
  std::uint64_t evict_counter_ = 0;

  // Reused per-access scratch.
  std::vector<std::uint64_t> chosen_slots_;
  std::vector<std::uint32_t> slot_order_;
  std::vector<std::uint8_t> bucket_scratch_;
  std::vector<std::uint8_t> record_scratch_;
  std::vector<std::uint8_t> combined_scratch_;
  std::vector<std::uint8_t> pad_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
  /// The payload path_read() recovered for its target — separate from
  /// payload_scratch_, which the reshuffle/eviction schedules running
  /// inside the same call reuse as a decode buffer.
  std::vector<std::uint8_t> extracted_payload_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_RING_RING_ORAM_H
