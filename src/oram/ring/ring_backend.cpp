#include "oram/ring/ring_backend.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

/// Smallest power-of-two leaf count following the ≤50%-utilisation
/// convention over the ring's Z real slots per bucket (spares never
/// hold blocks, so they don't enter the capacity count). Computed by
/// doubling so the result is a power of two for every legal Z.
std::uint64_t backend_leaf_count(std::uint64_t block_count,
                                 std::uint32_t real_slots) {
  std::uint64_t leaves = 1;
  // capacity + Z = 2 * leaves * Z; stop once that reaches 2N.
  while (2 * leaves * real_slots < 2 * block_count) {
    leaves *= 2;
  }
  return leaves;
}

}  // namespace

ring_backend::ring_backend(
    const horam_config& config, sim::block_device& device,
    const sim::cpu_model& cpu, util::random_source& rng,
    access_trace* trace,
    const std::function<void(block_id, std::span<std::uint8_t>)>* filler,
    sim::block_device* map_device)
    : config_(config), cpu_(cpu), rng_(rng), trace_(trace) {
  config_.validate();

  ring_oram_config tree_config;
  tree_config.leaf_count =
      backend_leaf_count(config_.block_count, config_.ring_bucket_size);
  tree_config.real_slots = config_.ring_bucket_size;
  tree_config.spare_slots = config_.ring_spare_slots;
  tree_config.eviction_rate = config_.ring_eviction_rate;
  tree_config.payload_bytes = config_.payload_bytes;
  tree_config.logical_block_bytes = config_.logical_block_bytes;
  tree_config.id_universe = config_.block_count;
  tree_config.seal = config_.seal;
  tree_config.key_seed = config_.key_seed ^ 0x5269;  // "Ri"
  tree_config.xor_reads = config_.ring_xor;
  tree_ = std::make_unique<ring_oram>(tree_config, device, cpu_, rng_,
                                      trace_);
  expects(tree_->capacity_blocks() >= config_.block_count,
          "ring backend tree cannot hold the dataset");

  const std::function<void(block_id, std::span<std::uint8_t>)> zero_fill =
      [](block_id, std::span<std::uint8_t>) {};
  std::vector<leaf_id> leaves;
  tree_->initialize_full(config_.block_count,
                         filler != nullptr ? *filler : zero_fill, &leaves);

  recursive_map_config map_config;
  map_config.universe = config_.block_count;
  map_config.entries_per_block = config_.map_entries_per_block;
  map_config.direct_threshold = config_.map_direct_threshold;
  map_config.bucket_size = config_.bucket_size;
  map_config.seal = config_.seal;
  map_config.key_seed = config_.key_seed ^ 0x526a;
  map_ = std::make_unique<recursive_position_map>(
      map_config, map_device != nullptr ? *map_device : device, cpu_, rng_,
      trace_, leaves);

  cached_.assign(config_.block_count, 0);
  payload_scratch_.resize(config_.payload_bytes);
  device.reset_stats();
  if (map_device != nullptr) {
    map_device->reset_stats();
  }
}

bool ring_backend::in_storage(block_id id) const {
  expects(id < config_.block_count, "block id out of range");
  return cached_[id] == 0;
}

oram_backend::load_result ring_backend::load_block(block_id id) {
  expects(in_storage(id), "block is not on storage");
  load_result result;
  ++stats_.real_loads;

  // Walk the recursive map for the leaf, then verify it against the
  // tree's own bookkeeping: the two must agree at every load.
  std::optional<leaf_id> mapped;
  result.cost += map_->lookup(id, mapped);
  invariant(mapped.has_value(), "map lost a storage-resident block");
  invariant(*mapped == tree_->leaf_of(id),
            "recursive map disagrees with the tree's position map");

  result.cost += tree_->extract(id, payload_scratch_);
  result.id = id;
  result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
  cached_[id] = 1;
  ++cached_count_;
  return result;
}

oram_backend::load_result ring_backend::dummy_load() {
  load_result result;
  ++stats_.dummy_loads;

  // Cover traffic with the same bus shape as a real load: one map walk
  // (of a uniformly random id, value discarded) + one dummy ring
  // access (one unread dummy slot per bucket of a random path).
  std::optional<leaf_id> ignored;
  result.cost +=
      map_->lookup(util::uniform_below(rng_, config_.block_count), ignored);
  result.cost += tree_->dummy_access();
  return result;
}

/// Incremental shuffle over the Ring ORAM layout: slice units are
/// single stash re-installs, then single forced deterministic
/// evictions (the scheme's own write path). Run back to back the units
/// reproduce the monolithic period exactly; bounded budgets stop
/// between any two units.
class ring_shuffle_job final : public horam::shuffle_job {
 public:
  ring_shuffle_job(ring_backend& owner, std::vector<evicted_block> evicted,
                   std::uint64_t period_index)
      : owner_(owner), evicted_(std::move(evicted)) {
    trace(owner_.trace_, event_kind::shuffle_begin, period_index);
    for (std::size_t i = 0; i < evicted_.size(); ++i) {
      expects(evicted_[i].id < owner_.config_.block_count,
              "evicted id out of range");
      staged_.emplace(evicted_[i].id, i);
    }
    // Eviction burst length: a function of the (public) eviction size
    // only — every forced eviction absorbs up to Z stash blocks at the
    // root alone — with a bounded conditional tail so a stubborn stash
    // still drains; whatever remains stays sheltered in the stash.
    const std::uint64_t z = owner_.config_.ring_bucket_size;
    drain_budget_ = owner_.tree_->level_count() +
                    2 * util::ceil_div(evicted_.size(), z);
    drain_floor_ = 2 * z;
    extra_ = 4 * drain_budget_ + 64;
    owner_.last_drain_evictions_ = 0;
  }

  horam::shuffle_cost step(sim::sim_time device_budget) override {
    expects(!done(), "shuffle_job::step() after done()");
    horam::shuffle_cost slice;
    while (!done()) {
      if (next_install_ < evicted_.size()) {
        install_one(slice);
      } else if (drains_done_ < drain_budget_) {
        ++drains_done_;
        drain_once(slice);
      } else if (owner_.tree_->stash_ref().size() > drain_floor_ &&
                 extra_ > 0) {
        --extra_;
        drain_once(slice);
      }
      if (device_budget > 0 && slice.total() >= device_budget) {
        break;
      }
    }
    return slice;
  }

  [[nodiscard]] bool done() const noexcept override {
    return next_install_ >= evicted_.size() &&
           drains_done_ >= drain_budget_ &&
           (owner_.tree_->stash_ref().size() <= drain_floor_ ||
            extra_ == 0);
  }

  [[nodiscard]] bool holds(block_id id) const override {
    return staged_.contains(id);
  }

  [[nodiscard]] std::vector<std::uint8_t>* staged(block_id id) override {
    const auto it = staged_.find(id);
    return it == staged_.end() ? nullptr : &evicted_[it->second].payload;
  }

  void finish(std::vector<evicted_block>& overflow_out) override {
    static_cast<void>(overflow_out);  // the stash shelters; no overflow
    expects(done(), "shuffle_job::finish() before done()");
    expects(!finished_, "shuffle_job::finish() called twice");
    ++owner_.stats_.partitions_shuffled;  // the one tree counts as one
    finished_ = true;
  }

 private:
  /// Folds the next hot block back in: fresh uniform leaf, recorded in
  /// the recursive map and handed to the tree's stash.
  void install_one(horam::shuffle_cost& cost) {
    evicted_block& block = evicted_[next_install_++];
    invariant(owner_.cached_[block.id] != 0,
              "evicted block the bitmap says is on storage");
    const leaf_id leaf =
        util::uniform_below(owner_.rng_, owner_.tree_->config().leaf_count);
    const cost_split assign_cost = owner_.map_->assign(block.id, leaf);
    const cost_split install_cost =
        owner_.tree_->install(block.id, block.payload, leaf);
    cost.memory += assign_cost.memory + install_cost.memory;
    cost.cpu += assign_cost.cpu + install_cost.cpu;
    owner_.cached_[block.id] = 0;
    --owner_.cached_count_;
    staged_.erase(block.id);
  }

  void drain_once(horam::shuffle_cost& cost) {
    const cost_split evict_cost = owner_.tree_->force_evict();
    cost.io_read += evict_cost.io / 2;
    cost.io_write += evict_cost.io - evict_cost.io / 2;
    cost.memory += evict_cost.memory;
    cost.cpu += evict_cost.cpu;
    ++owner_.last_drain_evictions_;
  }

  ring_backend& owner_;
  std::vector<evicted_block> evicted_;
  std::unordered_map<block_id, std::size_t> staged_;
  std::size_t next_install_ = 0;
  std::uint64_t drain_budget_ = 0;
  std::uint64_t drain_floor_ = 0;
  std::uint64_t drains_done_ = 0;
  std::uint64_t extra_ = 0;
  bool finished_ = false;
};

std::unique_ptr<horam::shuffle_job> ring_backend::begin_shuffle(
    std::vector<evicted_block> evicted, std::uint64_t period_index) {
  return std::make_unique<ring_shuffle_job>(*this, std::move(evicted),
                                            period_index);
}

horam::shuffle_cost ring_backend::shuffle_period(
    std::vector<evicted_block> evicted, std::uint64_t period_index,
    std::vector<evicted_block>& overflow_out) {
  std::unique_ptr<horam::shuffle_job> job =
      begin_shuffle(std::move(evicted), period_index);
  horam::shuffle_cost cost;
  while (!job->done()) {
    cost += job->step(0);
  }
  job->finish(overflow_out);
  return cost;
}

std::uint64_t ring_backend::physical_bytes() const {
  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : tree_->record_bytes();
  return tree_->total_slots() * logical + map_->oram_bytes();
}

std::uint64_t ring_backend::control_memory_bytes() const {
  // Trusted state: the map residue, the stash, the residency bitmap,
  // and the per-slot permutation metadata + per-bucket counters.
  return map_->trusted_bytes() +
         tree_->stash_ref().size() *
             (config_.payload_bytes + sizeof(stash_entry)) +
         cached_.size() + tree_->total_slots() * (sizeof(block_id) + 1) +
         tree_->bucket_count() * (sizeof(std::uint32_t) +
                                  sizeof(std::uint64_t));
}

void ring_backend::check_consistency() const {
  tree_->check_consistency();

  invariant(cached_count_ <= config_.block_count, "cached counter overran");
  std::uint64_t cached_blocks = 0;
  for (block_id id = 0; id < config_.block_count; ++id) {
    const bool cached = cached_[id] != 0;
    invariant(cached != tree_->contains(id),
              "residency bitmap disagrees with the tree");
    cached_blocks += cached ? 1 : 0;
  }
  invariant(cached_blocks == cached_count_,
            "cached counter out of sync with the bitmap");
  invariant(tree_->resident_blocks() ==
                config_.block_count - cached_count_,
            "tree resident count disagrees with the bitmap");

  // Every storage-resident block's map entry matches the tree's leaf
  // (cached blocks may carry stale entries until re-install).
  map_->for_each_assigned([&](block_id id, leaf_id leaf) {
    invariant(id < config_.block_count, "map entry outside the universe");
    if (cached_[id] != 0) {
      return;
    }
    invariant(tree_->contains(id),
              "map names a block the tree does not hold");
    invariant(leaf == tree_->leaf_of(id),
              "recursive map disagrees with the tree's position map");
  });
}

}  // namespace horam::oram
