// Ring ORAM (Ren et al.) as an H-ORAM backend (oram_backend adapter) —
// the one-real-block-per-bucket tree scheme behind the cacheable
// interface.
//
// The layout is a storage-resident Ring ORAM tree sized for ~2N real
// slots (≤50% utilisation over Z slots per bucket, plus S spares per
// bucket for online reads); the client state is the stash, the trusted
// per-slot permutation metadata, and a recursive position map
// (recursive_position_map) whose ORAM chain lives on a separate memory
// device. Fronted by the H-ORAM controller:
//   * a real miss walks the recursive map for the block's leaf, then
//     extracts it with ONE slot read per path bucket — a single
//     XOR-combined transfer under ring_xor — the live copy moving to
//     the controller's tree;
//   * a dummy load performs a dummy map walk plus a dummy ring access
//     (one unread dummy slot per bucket of a random path), so real and
//     dummy loads are indistinguishable on both lanes;
//   * writes ride the scheme's own deterministic machinery: every A
//     online reads the tree evicts one reverse-lexicographic path, and
//     buckets whose spare slots run low reshuffle early — both range
//     operations on public schedules. The shuffle period re-installs
//     evicted blocks into the stash (fresh uniform leaf, recorded in
//     the map) and drains with forced deterministic evictions; blocks
//     the drain cannot place stay sheltered in the stash.
//
// The adapter keeps the recursive map authoritative at the interface:
// every load first walks the map and verifies the answer against the
// tree's internal bookkeeping, and check_consistency() cross-audits
// tree, stash, residency bitmap and map chain.
#ifndef HORAM_ORAM_RING_RING_BACKEND_H
#define HORAM_ORAM_RING_RING_BACKEND_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "oram/common/access_trace.h"
#include "oram/path/recursive_position_map.h"
#include "oram/ring/ring_oram.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "util/rng.h"

namespace horam::oram {

class ring_backend final : public horam::oram_backend {
 public:
  /// Builds the tree holding every block in [0, config.block_count);
  /// `filler` provides initial payloads (null = zero-filled). The
  /// recursive position map chain lives on `map_device` (null = share
  /// `device`; the facade passes the machine's memory device). Device
  /// statistics are reset afterwards so initialisation is not measured.
  ring_backend(const horam_config& config, sim::block_device& device,
               const sim::cpu_model& cpu, util::random_source& rng,
               access_trace* trace,
               const std::function<void(block_id,
                                        std::span<std::uint8_t>)>* filler,
               sim::block_device* map_device = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ring";
  }
  [[nodiscard]] bool in_storage(block_id id) const override;
  load_result load_block(block_id id) override;
  load_result dummy_load() override;
  /// Implemented as begin_shuffle() driven to completion in one
  /// unbounded step, so the monolithic and incremental entry points
  /// are interchangeable by construction.
  horam::shuffle_cost shuffle_period(
      std::vector<evicted_block> evicted, std::uint64_t period_index,
      std::vector<evicted_block>& overflow_out) override;

  /// Native incremental shuffle: the slice units are single stash
  /// re-installs (fresh uniform leaf + map assign) followed by single
  /// forced deterministic evictions, so the deamortized pipeline can
  /// stop after any unit. Nothing is ever handed back — the stash is
  /// the scheme's trusted holding area.
  [[nodiscard]] std::unique_ptr<horam::shuffle_job> begin_shuffle(
      std::vector<evicted_block> evicted,
      std::uint64_t period_index) override;
  [[nodiscard]] const horam::backend_stats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::uint64_t physical_bytes() const override;
  [[nodiscard]] std::uint64_t control_memory_bytes() const override;
  void check_consistency() const override;

  [[nodiscard]] const ring_oram& tree() const noexcept { return *tree_; }
  [[nodiscard]] const recursive_position_map& map() const noexcept {
    return *map_;
  }
  /// Forced evictions issued by the last shuffle period's stash drain.
  [[nodiscard]] std::uint64_t last_drain_evictions() const noexcept {
    return last_drain_evictions_;
  }

 private:
  friend class ring_shuffle_job;

  horam_config config_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  std::unique_ptr<ring_oram> tree_;
  std::unique_ptr<recursive_position_map> map_;

  /// cached_[id] != 0 iff the live copy moved to the controller's cache.
  std::vector<std::uint8_t> cached_;
  std::uint64_t cached_count_ = 0;
  std::uint64_t last_drain_evictions_ = 0;

  horam::backend_stats stats_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_RING_RING_BACKEND_H
