#include "oram/sqrt/sqrt_oram.h"

#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

sqrt_oram::sqrt_oram(const sqrt_oram_config& config,
                     sim::block_device& storage_device,
                     const sim::cpu_model& cpu, util::random_source& rng,
                     access_trace* trace)
    : config_(config),
      codec_(config.payload_bytes, config.seal, config.key_seed),
      cpu_(cpu),
      rng_(rng),
      trace_(trace) {
  expects(config_.block_count > 0, "need at least one block");
  if (config_.dummy_count == 0) {
    config_.dummy_count = util::isqrt_ceil(config_.block_count);
  }
  if (config_.period == 0) {
    config_.period = util::isqrt_ceil(config_.block_count);
  }
  expects(config_.period <= config_.dummy_count,
          "every shelter hit consumes a dummy: period <= dummy count");

  const std::uint64_t slots = total_slots();
  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  const std::uint64_t scratch_slots = shuffle::melbourne_scratch_records(
      slots, config_.reshuffle);

  // Region layout on the device: array A | array B | Melbourne scratch.
  array_a_ = std::make_unique<storage::block_store>(
      storage_device, 0, slots, codec_.record_bytes(), logical);
  array_b_ = std::make_unique<storage::block_store>(
      storage_device, slots * logical, slots, codec_.record_bytes(),
      logical);
  scratch_ = std::make_unique<storage::block_store>(
      storage_device, 2 * slots * logical, scratch_slots,
      codec_.record_bytes(), logical);

  record_scratch_.resize(codec_.record_bytes());
  payload_scratch_.resize(config_.payload_bytes);

  // Initial permuted layout: virtual index v at a uniformly random slot.
  slot_of_ = util::random_permutation(rng_, slots);
  std::vector<std::uint8_t> record(codec_.record_bytes());
  const std::vector<std::uint8_t> zeros(config_.payload_bytes, 0);
  for (std::uint64_t v = 0; v < slots; ++v) {
    if (v < config_.block_count) {
      codec_.encode(v, zeros, record);
    } else {
      codec_.encode_dummy(record);
    }
    array_a_->write(slot_of_[v], record);
  }
  storage_device.reset_stats();
}

cost_split sqrt_oram::access(op_kind op, block_id id,
                             std::span<const std::uint8_t> write_data,
                             std::span<std::uint8_t> read_out) {
  expects(id < config_.block_count, "block id out of range");
  cost_split cost;
  ++stats_.accesses;

  storage::block_store& active = active_is_a_ ? *array_a_ : *array_b_;

  // Scanning the shelter is trusted-memory work.
  cost.cpu += cpu_.word_ops_time(shelter_.size() + 8);
  const bool hit = shelter_.contains(id);

  // One storage read per access: the block itself on a miss, the next
  // unused dummy on a hit (so the adversary always sees one fresh,
  // uniformly distributed slot).
  std::uint64_t virtual_index = 0;
  if (hit) {
    ++stats_.shelter_hits;
    invariant(used_dummies_ < config_.dummy_count, "dummies exhausted");
    virtual_index = config_.block_count + used_dummies_;
    ++used_dummies_;
  } else {
    virtual_index = id;
  }
  const std::uint64_t slot = slot_of_[virtual_index];
  cost.io += active.read(slot, record_scratch_);
  trace(trace_, event_kind::storage_read_slot, slot);
  const block_id decoded = codec_.decode(record_scratch_, payload_scratch_);
  cost.cpu += cpu_.crypto_time(1, codec_.record_bytes());

  if (!hit) {
    invariant(decoded == id, "permutation list out of sync with storage");
    shelter_.emplace(id, std::vector<std::uint8_t>(payload_scratch_.begin(),
                                                   payload_scratch_.end()));
  }
  stats_.shelter_peak = std::max(stats_.shelter_peak, shelter_.size());

  // Serve from the shelter.
  std::vector<std::uint8_t>& payload = shelter_.at(id);
  if (op == op_kind::write) {
    expects(write_data.size() <= config_.payload_bytes,
            "write larger than the block payload");
    std::fill(payload.begin(), payload.end(), 0);
    std::memcpy(payload.data(), write_data.data(), write_data.size());
  } else if (!read_out.empty()) {
    expects(read_out.size() >= config_.payload_bytes,
            "read buffer too small");
    std::memcpy(read_out.data(), payload.data(), config_.payload_bytes);
  }

  if (++accesses_in_period_ >= config_.period) {
    cost += reshuffle();
  }
  return cost;
}

cost_split sqrt_oram::reshuffle() {
  cost_split cost;
  ++stats_.reshuffles;
  trace(trace_, event_kind::shuffle_begin, stats_.reshuffles);

  storage::block_store& source = active_is_a_ ? *array_a_ : *array_b_;
  storage::block_store& target = active_is_a_ ? *array_b_ : *array_a_;

  // Fold the shelter back into the array: rewrite each sheltered
  // block's slot with its current contents. (The slots were already
  // revealed when they were read, and the array is about to be
  // re-permuted, so this leaks nothing new.)
  std::vector<std::uint8_t> record(codec_.record_bytes());
  for (const auto& [id, payload] : shelter_) {
    codec_.encode(id, payload, record);
    cost.io += source.write(slot_of_[id], record);
    trace(trace_, event_kind::storage_write_slot, slot_of_[id]);
  }
  cost.cpu += cpu_.crypto_time(shelter_.size(), codec_.record_bytes());
  shelter_.clear();

  // Oblivious reshuffle of the whole array (real + dummy blocks).
  const shuffle::external_shuffle_result result = shuffle::melbourne_shuffle(
      source, *scratch_, target, rng_, config_.reshuffle);
  cost.io += result.io_time;
  cost.cpu += cpu_.crypto_time(
      result.stats.bytes_moved / codec_.record_bytes(),
      codec_.record_bytes());
  trace(trace_, event_kind::storage_read_sweep, 0, total_slots());
  trace(trace_, event_kind::storage_write_sweep, 0, total_slots());

  // New permutation list: virtual v moves from slot s to pi[s].
  for (std::uint64_t v = 0; v < slot_of_.size(); ++v) {
    slot_of_[v] = result.pi[slot_of_[v]];
  }
  cost.cpu += cpu_.word_ops_time(slot_of_.size());

  active_is_a_ = !active_is_a_;
  used_dummies_ = 0;
  accesses_in_period_ = 0;
  return cost;
}

}  // namespace horam::oram
