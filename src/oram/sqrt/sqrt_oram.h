// Square-root ORAM (Goldreich & Ostrovsky), as described in §2.1.3 of
// the paper: N real blocks padded with dummies and stored permuted; a
// trusted shelter absorbs accessed blocks; every access reads exactly
// one permuted slot (the requested block on a miss, the next unused
// dummy on a shelter hit); after `period` accesses the whole array is
// obliviously reshuffled (here: Melbourne shuffle, the machinery whose
// cost motivates H-ORAM's lighter partition shuffle).
#ifndef HORAM_ORAM_SQRT_SQRT_ORAM_H
#define HORAM_ORAM_SQRT_SQRT_ORAM_H

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "oram/common/types.h"
#include "shuffle/melbourne.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/block_store.h"
#include "util/rng.h"

namespace horam::oram {

/// Static parameters of a square-root ORAM instance.
struct sqrt_oram_config {
  /// Real blocks (N).
  std::uint64_t block_count = 0;
  /// Dummy blocks appended to the permuted array (0 = ceil(sqrt(N))).
  std::uint64_t dummy_count = 0;
  /// Accesses between reshuffles (0 = ceil(sqrt(N))); must not exceed
  /// the dummy count, since each shelter hit consumes one dummy.
  std::uint64_t period = 0;
  std::size_t payload_bytes = 0;
  std::uint64_t logical_block_bytes = 0;  // 0 = record size
  bool seal = true;
  std::uint64_t key_seed = 0x73717274;  // "sqrt"
  shuffle::melbourne_config reshuffle{};
};

/// Counters of a square-root ORAM instance.
struct sqrt_oram_stats {
  std::uint64_t accesses = 0;
  std::uint64_t shelter_hits = 0;
  std::uint64_t reshuffles = 0;
  std::size_t shelter_peak = 0;
};

class sqrt_oram {
 public:
  sqrt_oram(const sqrt_oram_config& config,
            sim::block_device& storage_device, const sim::cpu_model& cpu,
            util::random_source& rng, access_trace* trace);

  /// Performs one ORAM access (absent blocks read as zeros).
  cost_split access(op_kind op, block_id id,
                    std::span<const std::uint8_t> write_data,
                    std::span<std::uint8_t> read_out);

  [[nodiscard]] const sqrt_oram_stats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return config_.block_count + config_.dummy_count;
  }

 private:
  /// Writes shelter contents back and re-permutes the whole array.
  cost_split reshuffle();

  sqrt_oram_config config_;
  block_codec codec_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  // Ping-pong data regions plus Melbourne scratch, on one device.
  std::unique_ptr<storage::block_store> array_a_;
  std::unique_ptr<storage::block_store> array_b_;
  std::unique_ptr<storage::block_store> scratch_;
  bool active_is_a_ = true;

  /// slot_of_[v] = physical slot of virtual index v (v < N: real block
  /// v; v >= N: dummy #(v - N)). Trusted control-layer state.
  std::vector<std::uint64_t> slot_of_;
  std::unordered_map<block_id, std::vector<std::uint8_t>> shelter_;
  std::uint64_t used_dummies_ = 0;
  std::uint64_t accesses_in_period_ = 0;
  sqrt_oram_stats stats_;

  std::vector<std::uint8_t> record_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_SQRT_SQRT_ORAM_H
