// Square-root ORAM as an H-ORAM backend (oram_backend adapter).
//
// The layout is the classic Goldreich-Ostrovsky arrangement the paper
// recaps in §2.1.3: N real blocks plus D dummies live permuted in one
// flat array. Fronted by the H-ORAM controller, the controller's memory
// tree plays the role of the scheme's shelter:
//   * a real miss reads the target's permuted slot (uniform, because the
//     layout is a fresh random permutation);
//   * a dummy load consumes the next unused dummy slot — exactly the
//     read a classic sqrt ORAM issues on a shelter hit — so every cycle
//     touches one fresh uniformly distributed slot either way;
//   * the shuffle period folds the evicted hot set back into the array
//     and re-permutes the whole thing with the Melbourne shuffle — the
//     "several passes over the dataset" machinery whose cost H-ORAM's
//     partitioned backend avoids. Plugging both behind one interface
//     makes that comparison a one-line config change.
//
// Dummy capacity is sized to the controller's access period (n/2 loads),
// so dummies never run out mid-period.
#ifndef HORAM_ORAM_SQRT_SQRT_BACKEND_H
#define HORAM_ORAM_SQRT_SQRT_BACKEND_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "shuffle/melbourne.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/block_store.h"
#include "util/rng.h"

namespace horam::oram {

class sqrt_backend final : public horam::oram_backend {
 public:
  /// Builds the initial permuted array holding every block in
  /// [0, config.block_count); `filler` provides initial payloads (null =
  /// zero-filled). Device statistics are reset afterwards.
  sqrt_backend(const horam_config& config, sim::block_device& device,
               const sim::cpu_model& cpu, util::random_source& rng,
               access_trace* trace,
               const std::function<void(block_id,
                                        std::span<std::uint8_t>)>* filler);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "sqrt";
  }
  [[nodiscard]] bool in_storage(block_id id) const override;
  load_result load_block(block_id id) override;
  load_result dummy_load() override;
  horam::shuffle_cost shuffle_period(
      std::vector<evicted_block> evicted, std::uint64_t period_index,
      std::vector<evicted_block>& overflow_out) override;
  [[nodiscard]] const horam::backend_stats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::uint64_t physical_bytes() const override;
  [[nodiscard]] std::uint64_t control_memory_bytes() const override;
  void check_consistency() const override;

  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return config_.block_count + dummy_count_;
  }
  [[nodiscard]] std::uint64_t dummy_count() const noexcept {
    return dummy_count_;
  }

 private:
  [[nodiscard]] const storage::block_store& active() const noexcept {
    return active_is_a_ ? *array_a_ : *array_b_;
  }
  [[nodiscard]] storage::block_store& active() noexcept {
    return active_is_a_ ? *array_a_ : *array_b_;
  }
  /// Reads + decodes one physical slot of the active array.
  cost_split read_slot(std::uint64_t slot, block_id& decoded_out);

  horam_config config_;
  block_codec codec_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  std::uint64_t dummy_count_ = 0;
  shuffle::melbourne_config reshuffle_{};

  // Ping-pong data regions plus Melbourne scratch, on one device.
  std::unique_ptr<storage::block_store> array_a_;
  std::unique_ptr<storage::block_store> array_b_;
  std::unique_ptr<storage::block_store> scratch_;
  bool active_is_a_ = true;

  /// slot_of_[v] = physical slot of virtual index v (v < N: real block
  /// v; v >= N: dummy #(v - N)). Trusted control-layer state.
  std::vector<std::uint64_t> slot_of_;
  /// cached_[id] != 0 iff the live copy moved to the controller's cache.
  std::vector<std::uint8_t> cached_;
  std::uint64_t used_dummies_ = 0;

  horam::backend_stats stats_;
  std::vector<std::uint8_t> record_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_SQRT_SQRT_BACKEND_H
