#include "oram/sqrt/sqrt_backend.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

sqrt_backend::sqrt_backend(
    const horam_config& config, sim::block_device& device,
    const sim::cpu_model& cpu, util::random_source& rng,
    access_trace* trace,
    const std::function<void(block_id, std::span<std::uint8_t>)>* filler)
    : config_(config),
      codec_(config.payload_bytes, config.seal, config.key_seed ^ 0x5371),
      cpu_(cpu),
      rng_(rng),
      trace_(trace) {
  config_.validate();

  // One dummy per potential dummy load of an access period (n/2 loads),
  // with the classic sqrt(N) as a floor.
  dummy_count_ = std::max(util::isqrt_ceil(config_.block_count),
                          config_.period_loads());

  const std::uint64_t slots = total_slots();
  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  const std::uint64_t scratch_slots =
      shuffle::melbourne_scratch_records(slots, reshuffle_);

  // Region layout on the device: array A | array B | Melbourne scratch.
  array_a_ = std::make_unique<storage::block_store>(
      device, 0, slots, codec_.record_bytes(), logical);
  array_b_ = std::make_unique<storage::block_store>(
      device, slots * logical, slots, codec_.record_bytes(), logical);
  scratch_ = std::make_unique<storage::block_store>(
      device, 2 * slots * logical, scratch_slots, codec_.record_bytes(),
      logical);

  record_scratch_.resize(codec_.record_bytes());
  payload_scratch_.resize(config_.payload_bytes);
  cached_.assign(config_.block_count, 0);

  // Initial permuted layout: virtual index v at a uniformly random slot.
  slot_of_ = util::random_permutation(rng_, slots);
  std::vector<std::uint8_t> record(codec_.record_bytes());
  std::vector<std::uint8_t> payload(config_.payload_bytes, 0);
  for (std::uint64_t v = 0; v < slots; ++v) {
    if (v < config_.block_count) {
      std::fill(payload.begin(), payload.end(), 0);
      if (filler != nullptr) {
        (*filler)(v, payload);
      }
      codec_.encode(v, payload, record);
    } else {
      codec_.encode_dummy(record);
    }
    array_a_->write(slot_of_[v], record);
  }
  device.reset_stats();
}

bool sqrt_backend::in_storage(block_id id) const {
  expects(id < config_.block_count, "block id out of range");
  return cached_[id] == 0;
}

cost_split sqrt_backend::read_slot(std::uint64_t slot,
                                   block_id& decoded_out) {
  cost_split cost;
  cost.io += active().read(slot, record_scratch_);
  trace(trace_, event_kind::storage_read_slot, slot);
  decoded_out = codec_.decode(record_scratch_, payload_scratch_);
  cost.cpu += cpu_.crypto_time(1, codec_.record_bytes());
  return cost;
}

oram_backend::load_result sqrt_backend::load_block(block_id id) {
  expects(in_storage(id), "block is not on storage");
  load_result result;
  ++stats_.real_loads;

  block_id decoded = dummy_block_id;
  result.cost += read_slot(slot_of_[id], decoded);
  invariant(decoded == id, "permutation list out of sync with storage");
  result.id = id;
  result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
  cached_[id] = 1;
  return result;
}

oram_backend::load_result sqrt_backend::dummy_load() {
  load_result result;
  ++stats_.dummy_loads;

  if (used_dummies_ < dummy_count_) {
    // The classic sqrt-ORAM cover read: the next unused dummy. slot_of_
    // is a fresh uniform permutation, so the sequence of dummy slots is
    // uniform without replacement — indistinguishable from misses.
    block_id decoded = dummy_block_id;
    result.cost +=
        read_slot(slot_of_[config_.block_count + used_dummies_], decoded);
    ++used_dummies_;
    return result;
  }

  // Degenerate: more dummy loads than dummies this period (only
  // reachable when driven outside the controller's period cadence).
  ++stats_.exhausted_dummy_loads;
  const std::uint64_t slot = util::uniform_below(rng_, total_slots());
  block_id decoded = dummy_block_id;
  result.cost += read_slot(slot, decoded);
  if (decoded != dummy_block_id && cached_[decoded] == 0) {
    result.id = decoded;
    result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
    cached_[decoded] = 1;
    ++stats_.prefetched_blocks;
  }
  return result;
}

horam::shuffle_cost sqrt_backend::shuffle_period(
    std::vector<evicted_block> evicted, std::uint64_t period_index,
    std::vector<evicted_block>& overflow_out) {
  static_cast<void>(overflow_out);  // every block keeps a slot: no overflow
  horam::shuffle_cost cost;
  trace(trace_, event_kind::shuffle_begin, period_index);

  storage::block_store& source = active_is_a_ ? *array_a_ : *array_b_;
  storage::block_store& target = active_is_a_ ? *array_b_ : *array_a_;

  // Fold the hot set back into the array: each evicted block rewrites
  // its own (already revealed, about to be re-permuted) slot.
  std::vector<std::uint8_t> record(codec_.record_bytes());
  for (const evicted_block& block : evicted) {
    expects(block.id < config_.block_count, "evicted id out of range");
    invariant(cached_[block.id] != 0,
              "evicted block the list says is on storage");
    codec_.encode(block.id, block.payload, record);
    cost.io_write += source.write(slot_of_[block.id], record);
    trace(trace_, event_kind::storage_write_slot, slot_of_[block.id]);
    cached_[block.id] = 0;
  }
  cost.cpu += cpu_.crypto_time(evicted.size(), codec_.record_bytes());
  invariant(std::count(cached_.begin(), cached_.end(), std::uint8_t{1}) ==
                0,
            "shuffle period did not receive the whole hot set");

  // Oblivious reshuffle of the whole array (real + dummy blocks). The
  // Melbourne passes read and write symmetric volumes; split evenly.
  const shuffle::external_shuffle_result result =
      shuffle::melbourne_shuffle(source, *scratch_, target, rng_,
                                 reshuffle_);
  cost.io_read += result.io_time / 2;
  cost.io_write += result.io_time - result.io_time / 2;
  cost.cpu += cpu_.crypto_time(
      result.stats.bytes_moved / codec_.record_bytes(),
      codec_.record_bytes());
  trace(trace_, event_kind::storage_read_sweep, 0, total_slots());
  trace(trace_, event_kind::storage_write_sweep, 0, total_slots());

  // New permutation list: virtual v moves from slot s to pi[s].
  for (std::uint64_t v = 0; v < slot_of_.size(); ++v) {
    slot_of_[v] = result.pi[slot_of_[v]];
  }
  cost.cpu += cpu_.word_ops_time(slot_of_.size());

  active_is_a_ = !active_is_a_;
  used_dummies_ = 0;
  ++stats_.partitions_shuffled;  // the whole array counts as one
  return cost;
}

std::uint64_t sqrt_backend::physical_bytes() const {
  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  return (array_a_->slot_count() + array_b_->slot_count() +
          scratch_->slot_count()) *
         logical;
}

std::uint64_t sqrt_backend::control_memory_bytes() const {
  return slot_of_.size() * 8 + cached_.size();
}

void sqrt_backend::check_consistency() const {
  invariant(used_dummies_ <= dummy_count_, "dummy counter overran");

  // slot_of_ is a permutation of the physical slots.
  std::vector<std::uint8_t> seen(total_slots(), 0);
  for (const std::uint64_t slot : slot_of_) {
    invariant(slot < total_slots(), "slot index out of range");
    invariant(seen[slot] == 0, "two virtual indices share a slot");
    seen[slot] = 1;
  }

  // Every storage-resident block's slot decodes to the block itself.
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  for (block_id id = 0; id < config_.block_count; ++id) {
    if (cached_[id] != 0) {
      continue;
    }
    const block_id decoded =
        codec_.decode(active().peek(slot_of_[id]), payload);
    invariant(decoded == id,
              "slot contents disagree with the permutation list");
  }
}

}  // namespace horam::oram
