// Partition ORAM as an H-ORAM backend (oram_backend adapter).
//
// The layout is the §2.1.4 scheme: ~sqrt(N) partitions of ~sqrt(N)
// slots, each partition independently permuted. Fronted by the H-ORAM
// controller (whose memory tree plays the scheme's stash):
//   * a real miss reads the target's slot inside its partition;
//   * a dummy load reads a uniformly random not-yet-accessed slot and
//     opportunistically caches any live block found there — the
//     protocol's dummy fetches are real fetches;
//   * the shuffle period is the scheme's background eviction: every
//     evicted block is assigned a uniformly random partition, and each
//     partition that received blocks is streamed in, merged, re-permuted
//     in trusted memory and streamed back out *in isolation* — no
//     cross-partition pass, unlike the Melbourne machinery of the sqrt
//     backend, and no append segments, unlike the partitioned default.
#ifndef HORAM_ORAM_PARTITION_PARTITION_BACKEND_H
#define HORAM_ORAM_PARTITION_PARTITION_BACKEND_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/partitioned_store.h"
#include "util/fenwick.h"
#include "util/rng.h"

namespace horam::oram {

class partition_backend final : public horam::oram_backend {
 public:
  /// Builds the initial permuted layout holding every block in
  /// [0, config.block_count); `filler` provides initial payloads (null =
  /// zero-filled). Device statistics are reset afterwards.
  partition_backend(const horam_config& config, sim::block_device& device,
                    const sim::cpu_model& cpu, util::random_source& rng,
                    access_trace* trace,
                    const std::function<void(
                        block_id, std::span<std::uint8_t>)>* filler);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "partition";
  }
  [[nodiscard]] bool in_storage(block_id id) const override;
  load_result load_block(block_id id) override;
  load_result dummy_load() override;
  horam::shuffle_cost shuffle_period(
      std::vector<evicted_block> evicted, std::uint64_t period_index,
      std::vector<evicted_block>& overflow_out) override;
  [[nodiscard]] const horam::backend_stats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::uint64_t physical_bytes() const override;
  [[nodiscard]] std::uint64_t control_memory_bytes() const override;
  void check_consistency() const override;

  [[nodiscard]] const storage::partition_geometry& geometry() const noexcept {
    return store_->geometry();
  }
  [[nodiscard]] std::uint64_t unaccessed_slot_count() const;

 private:
  struct location {
    bool cached = false;
    std::uint32_t partition = 0;
    std::uint32_t index = 0;
  };

  void pool_insert(std::uint64_t partition, std::uint32_t index);
  void pool_remove(std::uint64_t partition, std::uint32_t index);
  /// Reads + decodes the slot at (partition, index); marks it accessed.
  cost_split consume_slot(std::uint64_t partition, std::uint32_t index,
                          block_id& decoded_out);
  /// Streams one partition in, merges `incoming`, re-permutes it in
  /// trusted memory and streams it back out; resets its unread pool.
  horam::shuffle_cost rewrite_partition(
      std::uint64_t partition, std::vector<evicted_block> incoming);

  horam_config config_;
  block_codec codec_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  std::unique_ptr<storage::partitioned_store> store_;
  std::vector<location> locations_;
  /// contents_[p][i] = live block at slot i of partition p (dummy if none).
  std::vector<std::vector<block_id>> contents_;
  /// Unaccessed-slot pools, one per partition, with O(1) removal.
  std::vector<std::vector<std::uint32_t>> pool_;
  std::vector<std::vector<std::uint32_t>> pool_position_;
  util::fenwick_tree pool_weight_;

  horam::backend_stats stats_;
  std::vector<std::uint8_t> record_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_PARTITION_PARTITION_BACKEND_H
