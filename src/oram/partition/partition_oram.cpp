#include "oram/partition/partition_oram.h"

#include <algorithm>
#include <cstring>

#include "shuffle/fisher_yates.h"
#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

partition_oram::partition_oram(const partition_oram_config& config,
                               sim::block_device& storage_device,
                               const sim::cpu_model& cpu,
                               util::random_source& rng, access_trace* trace)
    : config_(config),
      codec_(config.payload_bytes, config.seal, config.key_seed),
      cpu_(cpu),
      rng_(rng),
      trace_(trace) {
  expects(config_.block_count > 0, "need at least one block");
  expects(config_.capacity_slack >= 1.0, "slack below 1 cannot fit blocks");

  const std::uint64_t partitions = util::isqrt_ceil(config_.block_count);
  const std::uint64_t expected =
      util::ceil_div(config_.block_count, partitions);
  const std::uint64_t capacity = static_cast<std::uint64_t>(
      config_.capacity_slack * static_cast<double>(expected) + 1.0);
  if (config_.eviction_batch == 0) {
    config_.eviction_batch = std::max<std::uint64_t>(1, partitions / 4);
  }

  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  store_ = std::make_unique<storage::partitioned_store>(
      storage_device, /*base_offset=*/0,
      storage::partition_geometry{partitions, capacity,
                                  /*append_capacity=*/0},
      codec_.record_bytes(), logical);

  locations_.resize(config_.block_count);
  contents_.assign(partitions,
                   std::vector<block_id>(capacity, dummy_block_id));
  unread_.resize(partitions);
  record_scratch_.resize(codec_.record_bytes());
  payload_scratch_.resize(config_.payload_bytes);

  // Initial placement: deal a random permutation of the ids across
  // partitions, then a random slot order within each partition.
  const std::vector<std::uint64_t> order =
      util::random_permutation(rng_, config_.block_count);
  std::vector<std::uint8_t> image(capacity * codec_.record_bytes());
  const std::vector<std::uint8_t> zeros(config_.payload_bytes, 0);
  std::uint64_t cursor = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    const std::uint64_t count =
        std::min(expected, config_.block_count - std::min(
                                config_.block_count, cursor));
    std::vector<std::uint64_t> slots =
        util::random_permutation(rng_, capacity);
    for (std::uint64_t k = 0; k < count; ++k) {
      const block_id id = order[cursor + k];
      const std::uint32_t index = static_cast<std::uint32_t>(slots[k]);
      contents_[p][index] = id;
      locations_[id] =
          location{static_cast<std::uint32_t>(p), index, false};
    }
    cursor += count;
    for (std::uint64_t i = 0; i < capacity; ++i) {
      const block_id id = contents_[p][i];
      const std::span<std::uint8_t> record(
          image.data() + i * codec_.record_bytes(), codec_.record_bytes());
      if (id == dummy_block_id) {
        codec_.encode_dummy(record);
      } else {
        codec_.encode(id, zeros, record);
      }
    }
    store_->write_partition(p, image);
    unread_[p].resize(capacity);
    for (std::uint32_t i = 0; i < capacity; ++i) {
      unread_[p][i] = i;
    }
  }
  storage_device.reset_stats();
}

cost_split partition_oram::read_slot(std::uint64_t partition,
                                     std::uint64_t index,
                                     block_id expected) {
  cost_split cost;
  cost.io += store_->read_slot(partition, index, record_scratch_);
  trace(trace_, event_kind::storage_read_slot,
        partition * store_->geometry().main_capacity + index);
  const block_id decoded = codec_.decode(record_scratch_, payload_scratch_);
  cost.cpu += cpu_.crypto_time(1, codec_.record_bytes());
  if (expected != dummy_block_id) {
    invariant(decoded == expected, "slot map out of sync with storage");
  }
  // Consume the slot from the unread pool.
  auto& pool = unread_[partition];
  const auto it = std::find(pool.begin(), pool.end(),
                            static_cast<std::uint32_t>(index));
  invariant(it != pool.end(), "slot read twice within one shuffle epoch");
  *it = pool.back();
  pool.pop_back();
  return cost;
}

cost_split partition_oram::access(op_kind op, block_id id,
                                  std::span<const std::uint8_t> write_data,
                                  std::span<std::uint8_t> read_out) {
  expects(id < config_.block_count, "block id out of range");
  cost_split cost;
  ++stats_.accesses;
  cost.cpu += cpu_.word_ops_time(8);

  const location loc = locations_[id];
  if (loc.in_stash) {
    ++stats_.stash_hits;
    // Mask the hit with a dummy read from a random partition that still
    // has unread slots. If the slot holds a live block it joins the
    // stash (the protocol's dummy fetches are real fetches — otherwise
    // the consumed slot would strand its block).
    std::uint64_t p = util::uniform_below(rng_, partition_count());
    for (std::uint64_t tries = 0; unread_[p].empty(); ++tries) {
      invariant(tries < 2 * partition_count(),
                "all partitions exhausted of unread slots");
      p = util::uniform_below(rng_, partition_count());
    }
    const std::uint64_t pick =
        util::uniform_below(rng_, unread_[p].size());
    const std::uint64_t index = unread_[p][pick];
    const block_id found = contents_[p][index];
    cost += read_slot(p, index, found);
    if (found != dummy_block_id) {
      contents_[p][index] = dummy_block_id;
      stash_.emplace(found,
                     std::vector<std::uint8_t>(payload_scratch_.begin(),
                                               payload_scratch_.end()));
      locations_[found].in_stash = true;
    }
  } else {
    cost += read_slot(loc.partition, loc.index, id);
    contents_[loc.partition][loc.index] = dummy_block_id;
    stash_.emplace(id,
                   std::vector<std::uint8_t>(payload_scratch_.begin(),
                                             payload_scratch_.end()));
    locations_[id].in_stash = true;
  }
  stats_.stash_peak = std::max(stats_.stash_peak, stash_.size());

  std::vector<std::uint8_t>& payload = stash_.at(id);
  if (op == op_kind::write) {
    expects(write_data.size() <= config_.payload_bytes,
            "write larger than the block payload");
    std::fill(payload.begin(), payload.end(), 0);
    std::memcpy(payload.data(), write_data.data(), write_data.size());
  } else if (!read_out.empty()) {
    expects(read_out.size() >= config_.payload_bytes,
            "read buffer too small");
    std::memcpy(read_out.data(), payload.data(), config_.payload_bytes);
  }

  if (++accesses_since_evict_ >= config_.eviction_batch) {
    const std::uint64_t target =
        util::uniform_below(rng_, partition_count());
    cost += evict_and_shuffle(target);
    accesses_since_evict_ = 0;
  }
  return cost;
}

cost_split partition_oram::evict_and_shuffle(std::uint64_t partition) {
  cost_split cost;
  ++stats_.evictions;
  trace(trace_, event_kind::shuffle_partition, partition);

  const std::uint64_t capacity = store_->geometry().main_capacity;
  const std::size_t record_bytes = codec_.record_bytes();

  // Read the whole partition sequentially (cold data).
  std::vector<std::uint8_t> image;
  std::uint64_t records_read = 0;
  cost.io += store_->read_partition(partition, /*include_appends=*/false,
                                    image, records_read);
  trace(trace_, event_kind::storage_read_sweep, partition * capacity,
        capacity);
  cost.cpu += cpu_.crypto_time(records_read, record_bytes);

  // Gather survivors: blocks still resident in this partition.
  struct pending_block {
    block_id id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<pending_block> blocks;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    const block_id id = contents_[partition][i];
    if (id == dummy_block_id) {
      continue;
    }
    const block_id decoded = codec_.decode(
        std::span<const std::uint8_t>(image.data() + i * record_bytes,
                                      record_bytes),
        payload_scratch_);
    invariant(decoded == id, "partition contents out of sync");
    blocks.push_back(pending_block{
        id, std::vector<std::uint8_t>(payload_scratch_.begin(),
                                      payload_scratch_.end())});
  }

  // Merge the stash into this partition, up to physical capacity;
  // the remainder waits in the stash for the next eviction.
  std::vector<block_id> stash_ids;
  stash_ids.reserve(stash_.size());
  for (const auto& [id, payload] : stash_) {
    stash_ids.push_back(id);
  }
  for (const block_id id : stash_ids) {
    if (blocks.size() >= capacity) {
      ++stats_.capacity_overflows;
      continue;
    }
    blocks.push_back(pending_block{id, std::move(stash_.at(id))});
    stash_.erase(id);
  }

  // In-memory shuffle (trusted), then rewrite the partition with fresh
  // dummy padding.
  std::vector<std::uint64_t> slot_order =
      util::random_permutation(rng_, capacity);
  std::fill(contents_[partition].begin(), contents_[partition].end(),
            dummy_block_id);
  std::vector<std::uint8_t> out(capacity * record_bytes);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    const std::span<std::uint8_t> record(out.data() + i * record_bytes,
                                         record_bytes);
    codec_.encode_dummy(record);
  }
  for (std::uint64_t k = 0; k < blocks.size(); ++k) {
    const std::uint32_t index = static_cast<std::uint32_t>(slot_order[k]);
    const std::span<std::uint8_t> record(
        out.data() + index * record_bytes, record_bytes);
    codec_.encode(blocks[k].id, blocks[k].payload, record);
    contents_[partition][index] = blocks[k].id;
    locations_[blocks[k].id] = location{
        static_cast<std::uint32_t>(partition), index, false};
  }
  cost.cpu += cpu_.crypto_time(capacity, record_bytes);
  cost.cpu += cpu_.word_ops_time(capacity);

  cost.io += store_->write_partition(partition, out);
  trace(trace_, event_kind::storage_write_sweep, partition * capacity,
        capacity);

  // Every slot of the rewritten partition is fresh again.
  unread_[partition].resize(capacity);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    unread_[partition][i] = i;
  }
  return cost;
}

}  // namespace horam::oram
