// Partition ORAM, as described in §2.1.4 of the paper: the dataset is
// split into ~sqrt(N) partitions of ~sqrt(N) blocks; every access
// fetches exactly one block into the trusted stash; after `eviction
// batch` accesses the stash is evicted into one uniformly random
// partition, which is then shuffled in isolation. H-ORAM's security
// argument (§4.3.3) reduces its group-and-partition shuffle to this
// scheme's per-partition shuffle.
#ifndef HORAM_ORAM_PARTITION_PARTITION_ORAM_H
#define HORAM_ORAM_PARTITION_PARTITION_ORAM_H

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "oram/common/types.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/partitioned_store.h"
#include "util/rng.h"

namespace horam::oram {

/// Static parameters of a partition ORAM instance.
struct partition_oram_config {
  /// Real blocks (N).
  std::uint64_t block_count = 0;
  /// Accesses between stash evictions (the paper's v; 0 = sqrt(N)/4).
  std::uint64_t eviction_batch = 0;
  /// Physical partition capacity = slack * (N / partition_count).
  double capacity_slack = 1.5;
  std::size_t payload_bytes = 0;
  std::uint64_t logical_block_bytes = 0;  // 0 = record size
  bool seal = true;
  std::uint64_t key_seed = 0x70617274;  // "part"
};

/// Counters of a partition ORAM instance.
struct partition_oram_stats {
  std::uint64_t accesses = 0;
  std::uint64_t stash_hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t forced_shuffles = 0;  // unread-slot exhaustion
  std::size_t stash_peak = 0;
  std::uint64_t capacity_overflows = 0;  // blocks kept back in the stash
};

class partition_oram {
 public:
  partition_oram(const partition_oram_config& config,
                 sim::block_device& storage_device,
                 const sim::cpu_model& cpu, util::random_source& rng,
                 access_trace* trace);

  /// Performs one ORAM access (absent blocks read as zeros).
  cost_split access(op_kind op, block_id id,
                    std::span<const std::uint8_t> write_data,
                    std::span<std::uint8_t> read_out);

  [[nodiscard]] const partition_oram_stats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t partition_count() const noexcept {
    return store_->geometry().partition_count;
  }
  [[nodiscard]] std::uint64_t partition_capacity() const noexcept {
    return store_->geometry().main_capacity;
  }

 private:
  struct location {
    std::uint32_t partition = 0;
    std::uint32_t index = 0;
    bool in_stash = false;
  };

  /// Evicts the stash into a random partition and shuffles it.
  cost_split evict_and_shuffle(std::uint64_t partition);
  /// Reads one (partition, index) slot, marking it consumed.
  cost_split read_slot(std::uint64_t partition, std::uint64_t index,
                       block_id expected);

  partition_oram_config config_;
  block_codec codec_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  std::unique_ptr<storage::partitioned_store> store_;
  std::vector<location> locations_;
  /// contents_[p][i] = block at main slot i of partition p (or dummy).
  std::vector<std::vector<block_id>> contents_;
  /// Slots of each partition not yet read since its last shuffle.
  std::vector<std::vector<std::uint32_t>> unread_;
  std::unordered_map<block_id, std::vector<std::uint8_t>> stash_;
  std::uint64_t accesses_since_evict_ = 0;
  partition_oram_stats stats_;

  std::vector<std::uint8_t> record_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_PARTITION_PARTITION_ORAM_H
