#include "oram/partition/partition_backend.h"

#include <algorithm>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

constexpr std::uint32_t no_pool_position =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

partition_backend::partition_backend(
    const horam_config& config, sim::block_device& device,
    const sim::cpu_model& cpu, util::random_source& rng,
    access_trace* trace,
    const std::function<void(block_id, std::span<std::uint8_t>)>* filler)
    : config_(config),
      codec_(config.payload_bytes, config.seal, config.key_seed ^ 0x5061),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      pool_weight_(config.partition_count()) {
  config_.validate();

  const std::uint64_t partitions = config_.partition_count();
  const std::uint64_t expected =
      util::ceil_div(config_.block_count, partitions);
  // Random per-block partition assignment skews harder than the
  // partitioned layer's planned deal, so keep a generous slack floor
  // (the classic scheme uses ~1.5; overflow still shelters).
  const double slack = std::max(config_.partition_slack, 1.5);
  const std::uint64_t capacity = static_cast<std::uint64_t>(
      slack * static_cast<double>(expected) + 1.0);

  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  store_ = std::make_unique<storage::partitioned_store>(
      device, /*base_offset=*/0,
      storage::partition_geometry{partitions, capacity,
                                  /*append_capacity=*/0},
      codec_.record_bytes(), logical);

  locations_.resize(config_.block_count);
  contents_.assign(partitions,
                   std::vector<block_id>(capacity, dummy_block_id));
  pool_.resize(partitions);
  pool_position_.assign(
      partitions, std::vector<std::uint32_t>(capacity, no_pool_position));
  record_scratch_.resize(codec_.record_bytes());
  payload_scratch_.resize(config_.payload_bytes);

  // Initial permuted layout: a random deal of ids across partitions,
  // random slot order inside each.
  const std::vector<std::uint64_t> order =
      util::random_permutation(rng_, config_.block_count);
  std::vector<std::uint8_t> image(capacity * codec_.record_bytes());
  std::vector<std::uint8_t> payload(config_.payload_bytes, 0);
  std::uint64_t cursor = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    const std::uint64_t count =
        std::min(expected, config_.block_count - cursor);
    const std::vector<std::uint64_t> slots =
        util::random_permutation(rng_, capacity);
    std::vector<block_id> slot_block(capacity, dummy_block_id);
    for (std::uint64_t k = 0; k < count; ++k) {
      slot_block[slots[k]] = order[cursor + k];
    }
    cursor += count;
    for (std::uint64_t i = 0; i < capacity; ++i) {
      const std::span<std::uint8_t> record(
          image.data() + i * codec_.record_bytes(), codec_.record_bytes());
      const block_id id = slot_block[i];
      if (id == dummy_block_id) {
        codec_.encode_dummy(record);
        continue;
      }
      std::fill(payload.begin(), payload.end(), 0);
      if (filler != nullptr) {
        (*filler)(id, payload);
      }
      codec_.encode(id, payload, record);
      contents_[p][i] = id;
      locations_[id] = location{false, static_cast<std::uint32_t>(p),
                                static_cast<std::uint32_t>(i)};
    }
    store_->write_partition(p, image);
    for (std::uint32_t i = 0; i < capacity; ++i) {
      pool_insert(p, i);
    }
  }
  invariant(cursor == config_.block_count, "initial deal lost blocks");
  device.reset_stats();
}

void partition_backend::pool_insert(std::uint64_t partition,
                                    std::uint32_t index) {
  invariant(pool_position_[partition][index] == no_pool_position,
            "slot already in the unaccessed pool");
  pool_position_[partition][index] =
      static_cast<std::uint32_t>(pool_[partition].size());
  pool_[partition].push_back(index);
  pool_weight_.add(partition, 1);
}

void partition_backend::pool_remove(std::uint64_t partition,
                                    std::uint32_t index) {
  const std::uint32_t position = pool_position_[partition][index];
  invariant(position != no_pool_position,
            "slot not in the unaccessed pool");
  const std::uint32_t last = pool_[partition].back();
  pool_[partition][position] = last;
  pool_position_[partition][last] = position;
  pool_[partition].pop_back();
  pool_position_[partition][index] = no_pool_position;
  pool_weight_.add(partition, -1);
}

cost_split partition_backend::consume_slot(std::uint64_t partition,
                                           std::uint32_t index,
                                           block_id& decoded_out) {
  cost_split cost;
  cost.io += store_->read_slot(partition, index, record_scratch_);
  trace(trace_, event_kind::storage_read_slot,
        partition * store_->geometry().slots_per_partition() + index);
  decoded_out = codec_.decode(record_scratch_, payload_scratch_);
  cost.cpu += cpu_.crypto_time(1, codec_.record_bytes());
  return cost;
}

bool partition_backend::in_storage(block_id id) const {
  expects(id < config_.block_count, "block id out of range");
  return !locations_[id].cached;
}

oram_backend::load_result partition_backend::load_block(block_id id) {
  expects(in_storage(id), "block is not on storage");
  load_result result;
  ++stats_.real_loads;

  const location loc = locations_[id];
  pool_remove(loc.partition, loc.index);
  block_id decoded = dummy_block_id;
  result.cost += consume_slot(loc.partition, loc.index, decoded);
  invariant(decoded == id, "slot map out of sync with storage");
  result.id = id;
  result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
  contents_[loc.partition][loc.index] = dummy_block_id;
  locations_[id].cached = true;
  return result;
}

oram_backend::load_result partition_backend::dummy_load() {
  load_result result;
  ++stats_.dummy_loads;

  const std::int64_t total = pool_weight_.total();
  if (total == 0) {
    // Degenerate: every slot was touched since its last rewrite. Keep
    // the bus busy with a repeat read (pattern deviation counted).
    ++stats_.exhausted_dummy_loads;
    const std::uint64_t p =
        util::uniform_below(rng_, store_->geometry().partition_count);
    const std::uint32_t index = static_cast<std::uint32_t>(
        util::uniform_below(rng_, store_->geometry().main_capacity));
    block_id discarded = dummy_block_id;
    result.cost += consume_slot(p, index, discarded);
    return result;
  }

  const std::int64_t offset = static_cast<std::int64_t>(
      util::uniform_below(rng_, static_cast<std::uint64_t>(total)));
  const std::size_t partition = pool_weight_.find_by_offset(offset);
  const std::int64_t within = offset - pool_weight_.prefix_sum(partition);
  const std::uint32_t index =
      pool_[partition][static_cast<std::size_t>(within)];
  pool_remove(partition, index);

  block_id decoded = dummy_block_id;
  result.cost += consume_slot(partition, index, decoded);

  // The protocol's dummy fetches are real fetches: a live block found
  // by the cover read joins the cache (otherwise its consumed slot
  // would strand it until the next rewrite of this partition).
  if (decoded != dummy_block_id &&
      contents_[partition][index] == decoded) {
    result.id = decoded;
    result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
    contents_[partition][index] = dummy_block_id;
    locations_[decoded].cached = true;
    ++stats_.prefetched_blocks;
  }
  return result;
}

horam::shuffle_cost partition_backend::rewrite_partition(
    std::uint64_t partition, std::vector<evicted_block> incoming) {
  horam::shuffle_cost cost;
  const std::uint64_t capacity = store_->geometry().main_capacity;
  const std::size_t record_bytes = codec_.record_bytes();

  // Stream the partition in (cold data).
  std::vector<std::uint8_t> image;
  std::uint64_t records_read = 0;
  cost.io_read += store_->read_partition(partition,
                                         /*include_appends=*/false, image,
                                         records_read);
  trace(trace_, event_kind::storage_read_sweep,
        partition * store_->geometry().slots_per_partition(), capacity);
  cost.cpu += cpu_.crypto_time(records_read, record_bytes);

  // Gather survivors, then the incoming hot share.
  std::vector<evicted_block> blocks;
  blocks.reserve(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    const block_id id = contents_[partition][i];
    if (id == dummy_block_id) {
      continue;
    }
    const block_id decoded = codec_.decode(
        std::span<const std::uint8_t>(image.data() + i * record_bytes,
                                      record_bytes),
        payload_scratch_);
    invariant(decoded == id, "partition contents out of sync");
    blocks.push_back(evicted_block{
        id, std::vector<std::uint8_t>(payload_scratch_.begin(),
                                      payload_scratch_.end())});
  }
  for (evicted_block& block : incoming) {
    blocks.push_back(std::move(block));
  }
  invariant(blocks.size() <= capacity,
            "partition assignment exceeded physical capacity");

  // Re-permute in trusted memory, rewrite with fresh dummy padding.
  const std::vector<std::uint64_t> slot_order =
      util::random_permutation(rng_, capacity);
  std::fill(contents_[partition].begin(), contents_[partition].end(),
            dummy_block_id);
  std::vector<std::uint8_t> out(capacity * record_bytes);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    codec_.encode_dummy(std::span<std::uint8_t>(
        out.data() + i * record_bytes, record_bytes));
  }
  for (std::uint64_t k = 0; k < blocks.size(); ++k) {
    const std::uint32_t index = static_cast<std::uint32_t>(slot_order[k]);
    codec_.encode(blocks[k].id, blocks[k].payload,
                  std::span<std::uint8_t>(out.data() + index * record_bytes,
                                          record_bytes));
    contents_[partition][index] = blocks[k].id;
    locations_[blocks[k].id] = location{
        false, static_cast<std::uint32_t>(partition), index};
  }
  cost.cpu += cpu_.crypto_time(capacity, record_bytes);
  cost.cpu += cpu_.word_ops_time(capacity);

  cost.io_write += store_->write_partition(partition, out);
  trace(trace_, event_kind::shuffle_partition, partition);
  trace(trace_, event_kind::storage_write_sweep,
        partition * store_->geometry().slots_per_partition(), capacity);
  ++stats_.partitions_shuffled;

  // Every slot of the rewritten partition is fresh again.
  for (std::uint32_t index = 0; index < capacity; ++index) {
    if (pool_position_[partition][index] == no_pool_position) {
      pool_insert(partition, index);
    }
  }
  return cost;
}

horam::shuffle_cost partition_backend::shuffle_period(
    std::vector<evicted_block> evicted, std::uint64_t period_index,
    std::vector<evicted_block>& overflow_out) {
  horam::shuffle_cost cost;
  trace(trace_, event_kind::shuffle_begin, period_index);

  const std::uint64_t partitions = store_->geometry().partition_count;
  const std::uint64_t capacity = store_->geometry().main_capacity;

  // Current live occupancy per partition (placement planning).
  std::vector<std::uint64_t> live(partitions, 0);
  for (std::uint64_t p = 0; p < partitions; ++p) {
    for (const block_id id : contents_[p]) {
      live[p] += id != dummy_block_id ? 1 : 0;
    }
  }

  // Background eviction: every evicted block goes to a uniformly random
  // partition with room (rejection sampling, then a deterministic scan;
  // the rest shelters with the controller until next period).
  std::vector<std::vector<evicted_block>> incoming(partitions);
  for (evicted_block& block : evicted) {
    invariant(locations_[block.id].cached,
              "evicted block the list says is on storage");
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const std::uint64_t p = util::uniform_below(rng_, partitions);
      if (live[p] + incoming[p].size() < capacity) {
        incoming[p].push_back(std::move(block));
        placed = true;
      }
    }
    for (std::uint64_t p = 0; p < partitions && !placed; ++p) {
      if (live[p] + incoming[p].size() < capacity) {
        incoming[p].push_back(std::move(block));
        placed = true;
      }
    }
    if (!placed) {
      ++stats_.overflow_blocks;
      overflow_out.push_back(std::move(block));
    }
  }

  // Rewrite each partition that received blocks, in isolation.
  for (std::uint64_t p = 0; p < partitions; ++p) {
    if (incoming[p].empty()) {
      continue;
    }
    const horam::shuffle_cost part =
        rewrite_partition(p, std::move(incoming[p]));
    cost.io_read += part.io_read;
    cost.io_write += part.io_write;
    cost.memory += part.memory;
    cost.cpu += part.cpu;
  }
  return cost;
}

std::uint64_t partition_backend::physical_bytes() const {
  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  return store_->geometry().total_slots() * logical;
}

std::uint64_t partition_backend::control_memory_bytes() const {
  return config_.block_count * 9 + store_->geometry().total_slots() * 8;
}

std::uint64_t partition_backend::unaccessed_slot_count() const {
  return static_cast<std::uint64_t>(pool_weight_.total());
}

void partition_backend::check_consistency() const {
  const std::uint64_t partitions = store_->geometry().partition_count;
  const std::uint64_t capacity = store_->geometry().main_capacity;

  // 1) Locations vs slot contents.
  std::uint64_t storage_resident = 0;
  for (block_id id = 0; id < config_.block_count; ++id) {
    const location& loc = locations_[id];
    if (loc.cached) {
      continue;
    }
    ++storage_resident;
    invariant(loc.partition < partitions && loc.index < capacity,
              "location points outside the slot space");
    invariant(contents_[loc.partition][loc.index] == id,
              "slot contents disagree with the location map");
  }

  // 2) Contents vs locations, and live census.
  std::uint64_t live = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    for (std::uint32_t i = 0; i < capacity; ++i) {
      const block_id id = contents_[p][i];
      if (id == dummy_block_id) {
        continue;
      }
      ++live;
      invariant(id < config_.block_count, "slot holds an unknown block");
      invariant(!locations_[id].cached,
                "slot holds a block the map says is cached");
      invariant(locations_[id].partition == p && locations_[id].index == i,
                "slot holds a block mapped elsewhere");
    }
  }
  invariant(live == storage_resident,
            "live census disagrees with the location map");

  // 3) Pools vs their position index and the Fenwick weights.
  std::int64_t pooled = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    invariant(pool_weight_.prefix_sum(p + 1) - pool_weight_.prefix_sum(p) ==
                  static_cast<std::int64_t>(pool_[p].size()),
              "Fenwick weight disagrees with the pool size");
    pooled += static_cast<std::int64_t>(pool_[p].size());
    for (std::uint32_t position = 0; position < pool_[p].size();
         ++position) {
      invariant(pool_position_[p][pool_[p][position]] == position,
                "pool position index out of sync");
    }
  }
  invariant(pooled == pool_weight_.total(),
            "Fenwick total disagrees with the pools");
}

}  // namespace horam::oram
