// Path ORAM (Stefanov et al.) as an H-ORAM backend (oram_backend
// adapter) — the tree-based scheme behind the cacheable interface.
//
// The layout is a storage-resident Path ORAM tree sized for ~2N blocks
// (≤50% utilisation, §2.1.2) with every level on the storage device;
// the scheme's client state is the stash plus a recursive position map
// (recursive_position_map) whose ORAM chain lives on a separate memory
// device. Fronted by the H-ORAM controller (whose cache tree plays the
// role of a very large shelter):
//   * a real miss walks the recursive map (one ORAM access per level)
//     to locate the block's leaf, then extracts the block with one path
//     read + write-back — the live copy moves to the controller's tree;
//   * a dummy load performs a dummy map walk (uniform random id) plus a
//     dummy path access, so real and dummy loads are indistinguishable
//     on both the map and the tree bus;
//   * the shuffle period is Path ORAM's no-reshuffle answer: every
//     evicted block re-enters the stash with a fresh uniform leaf (the
//     same leaf is recorded in the recursive map), and a burst of dummy
//     accesses — its length a function of the (public) eviction size
//     only — drains the stash back into the tree. Blocks the drain
//     cannot place simply stay in the stash: the stash is the scheme's
//     trusted holding area, so no overflow is ever handed back.
//
// The adapter keeps the recursive map authoritative at the interface:
// every load first walks the map and verifies the answer against the
// tree's internal bookkeeping (invariant, not assumption), and
// check_consistency() cross-audits tree, stash, residency bitmap and
// map chain.
#ifndef HORAM_ORAM_PATH_PATH_BACKEND_H
#define HORAM_ORAM_PATH_PATH_BACKEND_H

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/oram_backend.h"
#include "oram/common/access_trace.h"
#include "oram/path/path_oram.h"
#include "oram/path/recursive_position_map.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "util/rng.h"

namespace horam::oram {

class path_backend final : public horam::oram_backend {
 public:
  /// Builds the tree holding every block in [0, config.block_count);
  /// `filler` provides initial payloads (null = zero-filled). The
  /// recursive position map chain lives on `map_device` (null = share
  /// `device`; the facade passes the machine's memory device). Device
  /// statistics are reset afterwards so initialisation is not measured.
  path_backend(const horam_config& config, sim::block_device& device,
               const sim::cpu_model& cpu, util::random_source& rng,
               access_trace* trace,
               const std::function<void(block_id,
                                        std::span<std::uint8_t>)>* filler,
               sim::block_device* map_device = nullptr);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "path";
  }
  [[nodiscard]] bool in_storage(block_id id) const override;
  load_result load_block(block_id id) override;
  load_result dummy_load() override;
  /// Implemented as begin_shuffle() driven to completion in one
  /// unbounded step, so the monolithic and incremental entry points
  /// are interchangeable by construction.
  horam::shuffle_cost shuffle_period(
      std::vector<evicted_block> evicted, std::uint64_t period_index,
      std::vector<evicted_block>& overflow_out) override;

  /// Native incremental shuffle: the slice units are single stash
  /// re-installs (fresh uniform leaf + map assign) followed by single
  /// stash-drain dummy accesses, so the deamortized pipeline can stop
  /// after any access. Nothing is ever handed back — the stash is the
  /// scheme's trusted holding area.
  [[nodiscard]] std::unique_ptr<horam::shuffle_job> begin_shuffle(
      std::vector<evicted_block> evicted,
      std::uint64_t period_index) override;
  [[nodiscard]] const horam::backend_stats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::uint64_t physical_bytes() const override;
  [[nodiscard]] std::uint64_t control_memory_bytes() const override;
  void check_consistency() const override;

  [[nodiscard]] const path_oram& tree() const noexcept { return *tree_; }
  [[nodiscard]] const recursive_position_map& map() const noexcept {
    return *map_;
  }
  /// Dummy accesses issued by the last shuffle period's stash drain.
  [[nodiscard]] std::uint64_t last_drain_accesses() const noexcept {
    return last_drain_accesses_;
  }

 private:
  friend class path_shuffle_job;

  horam_config config_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  std::unique_ptr<path_oram> tree_;
  std::unique_ptr<recursive_position_map> map_;

  /// cached_[id] != 0 iff the live copy moved to the controller's cache.
  std::vector<std::uint8_t> cached_;
  std::uint64_t cached_count_ = 0;
  std::uint64_t last_drain_accesses_ = 0;

  horam::backend_stats stats_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_PATH_PATH_BACKEND_H
