#include "oram/path/path_oram.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

/// Chunk size (records) for sequential sweeps, to bound host buffers.
constexpr std::uint64_t sweep_chunk_records = 1 << 14;

}  // namespace

path_oram::path_oram(const path_oram_config& config,
                     sim::block_device& memory_device,
                     sim::block_device* io_device, const sim::cpu_model& cpu,
                     util::random_source& rng, access_trace* trace)
    : config_(config),
      level_count_(static_cast<std::uint32_t>(
          util::floor_log2(config.leaf_count) + 1)),
      memory_levels_(std::min(config.memory_levels, level_count_)),
      bucket_count_(2 * config.leaf_count - 1),
      memory_bucket_count_((std::uint64_t{1} << memory_levels_) - 1),
      codec_(config.payload_bytes, config.seal, config.key_seed),
      memory_device_(memory_device),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      positions_(config.id_universe) {
  expects(util::is_pow2(config.leaf_count), "leaf count must be 2^k");
  expects(config.bucket_size > 0, "bucket size must be positive");
  expects(config.id_universe > 0, "id universe must be positive");

  const std::uint64_t logical =
      config.logical_block_bytes != 0 ? config.logical_block_bytes
                                      : codec_.record_bytes();
  expects(logical >= codec_.record_bytes(),
          "logical block smaller than the encoded record");
  logical_bytes_ = logical;

  if (memory_bucket_count_ > 0) {
    memory_store_ = std::make_unique<storage::block_store>(
        memory_device, /*base_offset=*/0,
        memory_bucket_count_ * config.bucket_size, codec_.record_bytes(),
        logical);
  }
  const std::uint64_t io_buckets = bucket_count_ - memory_bucket_count_;
  if (io_buckets > 0) {
    expects(io_device != nullptr,
            "tree deeper than memory_levels needs a storage device");
    io_store_ = std::make_unique<storage::block_store>(
        *io_device, /*base_offset=*/0, io_buckets * config.bucket_size,
        codec_.record_bytes(), logical);
    if (config.layout == storage::storage_layout::page) {
      storage::page_layout_config page_config;
      page_config.total_levels = level_count_;
      page_config.first_level = memory_levels_;
      page_config.bucket_size = config.bucket_size;
      page_config.logical_block_bytes = logical;
      page_config.page_bytes = config.page_bytes;
      page_ = std::make_unique<storage::page_layout>(page_config);
      invariant(page_->total_slots() == io_store_->slot_count(),
                "page layout does not cover the storage lane exactly");
      valid_ = std::make_unique<storage::valid_bit_tree>(io_buckets);
      segment_buffers_.resize(page_->group_count());
      for (std::uint32_t g = 0; g < page_->group_count(); ++g) {
        segment_buffers_[g].resize(page_->segment_records(g) *
                                   codec_.record_bytes());
      }
    }
  }

  bucket_scratch_.resize(config.bucket_size * codec_.record_bytes());
  payload_scratch_.resize(config.payload_bytes);
  path_window_.resize(static_cast<std::size_t>(level_count_) *
                      config.bucket_size * codec_.record_bytes());

  // Start with a physically dummy-filled tree.
  reset();
}

std::uint64_t path_oram::bucket_on_path(leaf_id leaf,
                                        std::uint32_t level) const {
  return ((std::uint64_t{1} << level) - 1) +
         (leaf >> (level_count_ - 1 - level));
}

bool path_oram::paths_share_bucket(leaf_id a, leaf_id b,
                                   std::uint32_t level) const {
  const std::uint32_t shift = level_count_ - 1 - level;
  return (a >> shift) == (b >> shift);
}

bool path_oram::bucket_in_memory(std::uint64_t bucket) const noexcept {
  return bucket < memory_bucket_count_;
}

cost_split path_oram::read_bucket(std::uint64_t bucket,
                                  std::span<std::uint8_t> out) {
  cost_split cost;
  const std::uint64_t z = config_.bucket_size;
  if (bucket_in_memory(bucket)) {
    cost.memory += memory_store_->read_range(bucket * z, z, out);
    trace(trace_, event_kind::memory_bucket_read, bucket);
  } else {
    const std::uint64_t io_bucket = bucket - memory_bucket_count_;
    cost.io += io_store_->read_range(io_bucket * z, z, out);
    trace(trace_, event_kind::storage_read_slot, bucket);
  }
  return cost;
}

cost_split path_oram::write_bucket(std::uint64_t bucket,
                                   std::span<const std::uint8_t> records) {
  cost_split cost;
  const std::uint64_t z = config_.bucket_size;
  if (bucket_in_memory(bucket)) {
    cost.memory += memory_store_->write_range(bucket * z, z, records);
    trace(trace_, event_kind::memory_bucket_write, bucket);
  } else {
    const std::uint64_t io_bucket = bucket - memory_bucket_count_;
    cost.io += io_store_->write_range(io_bucket * z, z, records);
    trace(trace_, event_kind::storage_write_slot, bucket);
  }
  return cost;
}

std::span<std::uint8_t> path_oram::window_bucket(std::uint32_t level) {
  const std::size_t bucket_bytes =
      static_cast<std::size_t>(config_.bucket_size) * codec_.record_bytes();
  return {path_window_.data() + level * bucket_bytes, bucket_bytes};
}

bool path_oram::segment_valid(storage::segment_ref segment) const {
  const std::uint32_t top = page_->group_top_level(segment.group);
  for (std::uint32_t d = 0; d < page_->group_height(segment.group); ++d) {
    const std::uint32_t level = top + d;
    for (std::uint64_t j = 0; j < (std::uint64_t{1} << d); ++j) {
      const std::uint64_t position = (segment.index << d) | j;
      const std::uint64_t bucket =
          ((std::uint64_t{1} << level) - 1) + position;
      if (valid_->test(bucket - memory_bucket_count_)) {
        return true;
      }
    }
  }
  return false;
}

void path_oram::mark_segment_valid(storage::segment_ref segment) {
  const std::uint32_t top = page_->group_top_level(segment.group);
  for (std::uint32_t d = 0; d < page_->group_height(segment.group); ++d) {
    const std::uint32_t level = top + d;
    for (std::uint64_t j = 0; j < (std::uint64_t{1} << d); ++j) {
      const std::uint64_t position = (segment.index << d) | j;
      const std::uint64_t bucket =
          ((std::uint64_t{1} << level) - 1) + position;
      valid_->set(bucket - memory_bucket_count_);
    }
  }
}

cost_split path_oram::load_path(leaf_id leaf) {
  cost_split cost;
  const std::uint64_t z = config_.bucket_size;
  const std::size_t record_bytes = codec_.record_bytes();
  const std::size_t bucket_bytes = z * record_bytes;

  if (!page_) {
    for (std::uint32_t level = 0; level < level_count_; ++level) {
      cost += read_bucket(bucket_on_path(leaf, level), window_bucket(level));
    }
    return cost;
  }

  // Memory levels stay bucket-granular on the memory lane.
  for (std::uint32_t level = 0; level < memory_levels_; ++level) {
    cost += read_bucket(bucket_on_path(leaf, level), window_bucket(level));
  }
  // Storage levels arrive one segment per group, root side first. A
  // segment no bucket of which was ever written holds only dummies, so
  // its device read is skipped and the buffer restored from the host
  // image — an invariant reset()/initialize_full() maintain. Which
  // segments a path touches (and which are skipped) depends only on the
  // leaf and the public write-back history, never on block identities.
  for (std::uint32_t g = 0; g < page_->group_count(); ++g) {
    const storage::segment_ref segment = page_->path_segment(g, leaf);
    const std::uint64_t first = page_->segment_first_slot(segment);
    const std::uint64_t records = page_->segment_records(g);
    std::vector<std::uint8_t>& buffer = segment_buffers_[g];
    if (segment_valid(segment)) {
      cost.io += io_store_->read_range(first, records, buffer);
      trace(trace_, event_kind::storage_read_sweep, first, records);
    } else {
      for (std::uint64_t r = 0; r < records; ++r) {
        const std::span<const std::uint8_t> host = io_store_->peek(first + r);
        std::memcpy(buffer.data() + r * record_bytes, host.data(),
                    record_bytes);
      }
    }
    const std::uint32_t top = page_->group_top_level(g);
    for (std::uint32_t d = 0; d < page_->group_height(g); ++d) {
      const std::uint32_t level = top + d;
      const std::uint64_t position = leaf >> (level_count_ - 1 - level);
      const std::uint64_t index =
          page_->bucket_index_in_segment(level, position);
      std::memcpy(window_bucket(level).data(),
                  buffer.data() + index * bucket_bytes, bucket_bytes);
    }
  }
  return cost;
}

cost_split path_oram::store_path(leaf_id leaf) {
  cost_split cost;
  const std::uint64_t z = config_.bucket_size;
  const std::size_t bucket_bytes = z * codec_.record_bytes();

  if (!page_) {
    for (std::uint32_t down = 0; down < level_count_; ++down) {
      const std::uint32_t level = level_count_ - 1 - down;
      cost += write_bucket(bucket_on_path(leaf, level), window_bucket(level));
    }
    return cost;
  }

  // Leaf-to-root: deepest group's segment first, then up, then the
  // memory buckets. Path buckets are spliced into the segment buffer
  // load_path filled; sibling bytes go back unchanged. The write makes
  // every covered bucket's device image authoritative, so the whole
  // segment turns valid.
  for (std::uint32_t up = 0; up < page_->group_count(); ++up) {
    const std::uint32_t g = page_->group_count() - 1 - up;
    const storage::segment_ref segment = page_->path_segment(g, leaf);
    std::vector<std::uint8_t>& buffer = segment_buffers_[g];
    const std::uint32_t top = page_->group_top_level(g);
    for (std::uint32_t d = 0; d < page_->group_height(g); ++d) {
      const std::uint32_t level = top + d;
      const std::uint64_t position = leaf >> (level_count_ - 1 - level);
      const std::uint64_t index =
          page_->bucket_index_in_segment(level, position);
      std::memcpy(buffer.data() + index * bucket_bytes,
                  window_bucket(level).data(), bucket_bytes);
    }
    const std::uint64_t first = page_->segment_first_slot(segment);
    const std::uint64_t records = page_->segment_records(g);
    cost.io += io_store_->write_range(first, records, buffer);
    trace(trace_, event_kind::storage_write_sweep, first, records);
    mark_segment_valid(segment);
  }
  for (std::uint32_t down = 0; down < memory_levels_; ++down) {
    const std::uint32_t level = memory_levels_ - 1 - down;
    cost += write_bucket(bucket_on_path(leaf, level), window_bucket(level));
  }
  return cost;
}

bool path_oram::contains(block_id id) const { return positions_.contains(id); }

cost_split path_oram::path_access(
    leaf_id leaf, block_id requested, op_kind op,
    std::span<const std::uint8_t> write_data,
    std::span<std::uint8_t> read_out,
    const std::function<void(std::span<std::uint8_t>)>* updater,
    bool extract_requested) {
  cost_split cost;
  // One access = one dependent exchange per lane: the whole path is
  // read, served from the stash and written back before the caller can
  // issue anything that depends on the result. A recursive map walk of
  // k levels is k of these scopes, so it counts k round trips.
  sim::trip_scope round_trip(&memory_device_,
                             io_store_ ? &io_store_->device() : nullptr);
  trace(trace_, event_kind::memory_path_access, leaf, config_.leaf_count);

  const std::uint64_t z = config_.bucket_size;
  const std::size_t record_bytes = codec_.record_bytes();

  // Read the path root-to-leaf into the window, then move every real
  // block into the stash (root-to-leaf decode order).
  cost += load_path(leaf);
  for (std::uint32_t level = 0; level < level_count_; ++level) {
    const std::span<const std::uint8_t> bucket = window_bucket(level);
    for (std::uint64_t k = 0; k < z; ++k) {
      const std::span<const std::uint8_t> record(
          bucket.data() + k * record_bytes, record_bytes);
      const block_id id = codec_.decode(record, payload_scratch_);
      if (id == dummy_block_id) {
        continue;
      }
      invariant(positions_.contains(id),
                "tree holds a block missing from the position map");
      stash_.put(id, positions_.leaf_of(id), payload_scratch_);
    }
  }

  // Serve the request from the stash.
  if (requested != dummy_block_id) {
    if (!stash_.contains(requested)) {
      // First-ever touch: the block materialises zero-filled.
      const std::vector<std::uint8_t> zeros(config_.payload_bytes, 0);
      stash_.put(requested, positions_.leaf_of(requested), zeros);
    }
    stash_entry& entry = stash_.at(requested);
    // The request was remapped before the path read; a block that was
    // already sheltering in the stash must follow its new leaf, or the
    // write-back would strand it off its position-map path.
    entry.leaf = positions_.leaf_of(requested);
    if (op == op_kind::write) {
      expects(write_data.size() <= config_.payload_bytes,
              "write larger than the block payload");
      std::fill(entry.payload.begin(), entry.payload.end(), 0);
      std::memcpy(entry.payload.data(), write_data.data(),
                  write_data.size());
    } else if (!read_out.empty()) {
      expects(read_out.size() >= config_.payload_bytes,
              "read buffer too small");
      std::memcpy(read_out.data(), entry.payload.data(),
                  config_.payload_bytes);
    }
    if (updater != nullptr) {
      (*updater)(std::span<std::uint8_t>(entry.payload.data(),
                                         entry.payload.size()));
    }
    if (extract_requested) {
      // The live copy leaves the tree: drop it from the stash and the
      // position map before the write-back re-places the path.
      stash_.erase(requested);
      positions_.remove(requested);
    }
  }

  // Greedy write-back, deepest bucket first, composed into the window
  // and flushed as one store_path (same device order as composing and
  // writing level by level; under `page`, one transfer per segment).
  std::vector<block_id> selected;
  for (std::uint32_t down = 0; down < level_count_; ++down) {
    const std::uint32_t level = level_count_ - 1 - down;
    const std::span<std::uint8_t> bucket = window_bucket(level);
    selected.clear();
    for (const auto& [id, entry] : stash_) {
      if (paths_share_bucket(entry.leaf, leaf, level)) {
        selected.push_back(id);
        if (selected.size() == z) {
          break;
        }
      }
    }
    for (std::uint64_t k = 0; k < z; ++k) {
      const std::span<std::uint8_t> record(
          bucket.data() + k * record_bytes, record_bytes);
      if (k < selected.size()) {
        const stash_entry& entry = stash_.at(selected[k]);
        codec_.encode(selected[k], entry.payload, record);
      } else {
        codec_.encode_dummy(record);
      }
    }
    for (const block_id id : selected) {
      stash_.erase(id);
    }
  }
  cost += store_path(leaf);

  // Control-layer cost: decrypt + re-encrypt the full path, plus map and
  // stash bookkeeping.
  const std::uint64_t records_touched = 2ULL * level_count_ * z;
  cost.cpu += cpu_.crypto_time(records_touched, record_bytes);
  cost.cpu += cpu_.word_ops_time(records_touched + stash_.size());
  return cost;
}

cost_split path_oram::access(op_kind op, block_id id,
                             std::span<const std::uint8_t> write_data,
                             std::span<std::uint8_t> read_out) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(id != dummy_block_id, "cannot access the dummy id");

  leaf_id old_leaf = 0;
  if (positions_.contains(id)) {
    old_leaf = positions_.leaf_of(id);
  } else {
    old_leaf = util::uniform_below(rng_, config_.leaf_count);
    ++resident_;
  }
  // Remap before the path read so repeated accesses never repeat leaves.
  positions_.assign(id, util::uniform_below(rng_, config_.leaf_count));
  ++stats_.real_accesses;
  return path_access(old_leaf, id, op, write_data, read_out);
}

cost_split path_oram::access_rmw(
    block_id id,
    const std::function<void(std::span<std::uint8_t>)>& updater) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(static_cast<bool>(updater), "rmw needs an updater");

  leaf_id old_leaf = 0;
  if (positions_.contains(id)) {
    old_leaf = positions_.leaf_of(id);
  } else {
    old_leaf = util::uniform_below(rng_, config_.leaf_count);
    ++resident_;
  }
  positions_.assign(id, util::uniform_below(rng_, config_.leaf_count));
  ++stats_.real_accesses;
  return path_access(old_leaf, id, op_kind::read, {}, {}, &updater);
}

cost_split path_oram::extract(block_id id,
                              std::span<std::uint8_t> read_out) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(positions_.contains(id), "extract of a non-resident block");
  // No remap: the block leaves the tree, so its (about to be read) path
  // is never correlated with a future access.
  const leaf_id old_leaf = positions_.leaf_of(id);
  ++stats_.real_accesses;
  const cost_split cost = path_access(old_leaf, id, op_kind::read, {},
                                      read_out, nullptr,
                                      /*extract_requested=*/true);
  --resident_;
  return cost;
}

cost_split path_oram::dummy_access() {
  ++stats_.dummy_accesses;
  const leaf_id leaf = util::uniform_below(rng_, config_.leaf_count);
  return path_access(leaf, dummy_block_id, op_kind::read, {}, {});
}

cost_split path_oram::install(block_id id,
                              std::span<const std::uint8_t> payload) {
  return install(id, payload, util::uniform_below(rng_, config_.leaf_count));
}

cost_split path_oram::install(block_id id,
                              std::span<const std::uint8_t> payload,
                              leaf_id leaf) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(!positions_.contains(id), "block already resident");
  expects(leaf < config_.leaf_count, "install leaf out of range");
  positions_.assign(id, leaf);
  stash_.put(id, leaf, payload);
  ++resident_;
  ++stats_.installs;

  cost_split cost;
  cost.cpu += cpu_.word_ops_time(4);
  return cost;
}

cost_split path_oram::evict_all(std::vector<evicted_block>& out) {
  cost_split cost;
  // The whole-tree sweep is one streamed batch on each lane.
  sim::trip_scope round_trip(&memory_device_,
                             io_store_ ? &io_store_->device() : nullptr);
  ++stats_.evictions;
  out.clear();

  const std::size_t record_bytes = codec_.record_bytes();

  // 1) Stream the whole tree (sequential sweeps) and decode.
  std::vector<std::uint8_t> chunk;
  const auto sweep = [&](storage::block_store& store, bool memory_lane) {
    const std::uint64_t slots = store.slot_count();
    for (std::uint64_t first = 0; first < slots;
         first += sweep_chunk_records) {
      const std::uint64_t count =
          std::min(sweep_chunk_records, slots - first);
      chunk.resize(count * record_bytes);
      const sim::sim_time t = store.read_range(first, count, chunk);
      (memory_lane ? cost.memory : cost.io) += t;
      for (std::uint64_t k = 0; k < count; ++k) {
        const std::span<const std::uint8_t> record(
            chunk.data() + k * record_bytes, record_bytes);
        const block_id id = codec_.decode(record, payload_scratch_);
        if (id == dummy_block_id) {
          continue;
        }
        out.push_back(evicted_block{
            id, std::vector<std::uint8_t>(payload_scratch_.begin(),
                                          payload_scratch_.end())});
      }
    }
  };
  if (memory_store_) {
    sweep(*memory_store_, /*memory_lane=*/true);
  }
  if (io_store_ && !page_) {
    sweep(*io_store_, /*memory_lane=*/false);
  } else if (io_store_) {
    // Page layout: stream segment by segment, skipping never-written
    // segments outright — they hold only dummies, so the scan loses
    // nothing and the device is spared the transfer. The skip pattern
    // is the (public) valid-bit occupancy, not a function of block
    // identities.
    for (std::uint32_t g = 0; g < page_->group_count(); ++g) {
      const std::uint64_t records = page_->segment_records(g);
      chunk.resize(records * record_bytes);
      for (std::uint64_t s = 0; s < page_->segment_count(g); ++s) {
        const storage::segment_ref segment{g, s};
        if (!segment_valid(segment)) {
          continue;
        }
        cost.io += io_store_->read_range(page_->segment_first_slot(segment),
                                         records, chunk);
        for (std::uint64_t k = 0; k < records; ++k) {
          const std::span<const std::uint8_t> record(
              chunk.data() + k * record_bytes, record_bytes);
          const block_id id = codec_.decode(record, payload_scratch_);
          if (id == dummy_block_id) {
            continue;
          }
          out.push_back(evicted_block{
              id, std::vector<std::uint8_t>(payload_scratch_.begin(),
                                            payload_scratch_.end())});
        }
      }
    }
  }

  // Stash contents are part of the eviction too.
  for (const auto& [id, entry] : stash_) {
    out.push_back(evicted_block{id, entry.payload});
  }

  // 2) Oblivious shuffle of the eviction buffer. Correctness-wise a
  // uniform shuffle; cost-wise the K-oblivious cache shuffle the paper
  // selects: two passes over all tree slots (spray + clean), each pass
  // decrypting and re-encrypting every record and moving it through
  // memory once.
  const std::uint64_t total_slots = capacity_blocks();
  cost.cpu += cpu_.crypto_time(4 * total_slots, record_bytes);
  const std::uint64_t sweep_bytes = total_slots * logical_bytes_;
  cost.memory += memory_device_.read(0, sweep_bytes);
  cost.memory += memory_device_.write(0, sweep_bytes);
  cost.memory += memory_device_.read(0, sweep_bytes);
  cost.memory += memory_device_.write(0, sweep_bytes);

  std::vector<std::uint64_t> order = util::random_permutation(
      rng_, static_cast<std::uint64_t>(out.size()));
  std::vector<evicted_block> shuffled(out.size());
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    shuffled[order[i]] = std::move(out[i]);
  }
  out = std::move(shuffled);

  // 3) Dummies were dropped during the decode scan; clear logical state.
  invariant(out.size() == resident_, "eviction lost blocks");
  positions_.clear();
  stash_.clear();
  resident_ = 0;
  return cost;
}

void path_oram::for_each_resident(
    const std::function<void(block_id, leaf_id,
                             std::span<const std::uint8_t>)>& visit)
    const {
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  const std::uint64_t z = config_.bucket_size;
  if (memory_store_) {
    for (std::uint64_t slot = 0; slot < memory_store_->slot_count(); ++slot) {
      const block_id id = codec_.decode(memory_store_->peek(slot), payload);
      if (id == dummy_block_id) {
        continue;
      }
      visit(id, positions_.leaf_of(id), payload);
    }
  }
  if (io_store_) {
    // Bucket-major: heap order regardless of the device-side layout
    // (under flat the slot order coincides with it).
    for (std::uint64_t bucket = memory_bucket_count_; bucket < bucket_count_;
         ++bucket) {
      const unsigned level = util::floor_log2(bucket + 1);
      const std::uint64_t position = bucket - ((std::uint64_t{1} << level) - 1);
      const std::uint64_t first =
          page_ ? page_->bucket_first_slot(level, position)
                : (bucket - memory_bucket_count_) * z;
      for (std::uint64_t k = 0; k < z; ++k) {
        const block_id id = codec_.decode(io_store_->peek(first + k), payload);
        if (id == dummy_block_id) {
          continue;
        }
        visit(id, positions_.leaf_of(id), payload);
      }
    }
  }
  for (const auto& [id, entry] : stash_) {
    visit(id, entry.leaf, entry.payload);
  }
}

void path_oram::check_consistency() const {
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  std::vector<std::uint8_t> seen(positions_.universe(), 0);
  std::uint64_t found = 0;
  const std::uint64_t z = config_.bucket_size;

  const auto check_record = [&](std::span<const std::uint8_t> record,
                                std::uint64_t bucket) {
    const block_id id = codec_.decode(record, payload);
    if (id == dummy_block_id) {
      return;
    }
    invariant(id < positions_.universe(),
              "tree holds an out-of-universe block");
    invariant(positions_.contains(id),
              "tree holds a block missing from the position map");
    invariant(seen[id] == 0, "block stored in two tree slots");
    seen[id] = 1;
    ++found;
    const unsigned level = util::floor_log2(bucket + 1);
    invariant(bucket == bucket_on_path(positions_.leaf_of(id), level),
              "block stored off its position-map path");
  };
  if (memory_store_) {
    for (std::uint64_t slot = 0; slot < memory_store_->slot_count(); ++slot) {
      check_record(memory_store_->peek(slot), slot / z);
    }
  }
  if (io_store_) {
    for (std::uint64_t bucket = memory_bucket_count_; bucket < bucket_count_;
         ++bucket) {
      const unsigned level = util::floor_log2(bucket + 1);
      const std::uint64_t position = bucket - ((std::uint64_t{1} << level) - 1);
      const std::uint64_t first =
          page_ ? page_->bucket_first_slot(level, position)
                : (bucket - memory_bucket_count_) * z;
      for (std::uint64_t k = 0; k < z; ++k) {
        check_record(io_store_->peek(first + k), bucket);
      }
      if (page_ && !valid_->test(bucket - memory_bucket_count_)) {
        // Never-written buckets are skipped on the device; their host
        // image must therefore still be all-dummy, or a skip would lose
        // data.
        for (std::uint64_t k = 0; k < z; ++k) {
          invariant(codec_.decode(io_store_->peek(first + k), payload) ==
                        dummy_block_id,
                    "invalid bucket holds a real block");
        }
      }
    }
  }

  for (const auto& [id, entry] : stash_) {
    invariant(id < positions_.universe(),
              "stash holds an out-of-universe block");
    invariant(positions_.contains(id),
              "stash holds a block missing from the position map");
    invariant(entry.leaf == positions_.leaf_of(id),
              "stash leaf disagrees with the position map");
    invariant(seen[id] == 0, "block in both the tree and the stash");
    seen[id] = 1;
    ++found;
    invariant(entry.payload.size() == config_.payload_bytes,
              "stash payload has the wrong size");
  }

  invariant(found == resident_, "resident counter out of sync");
  invariant(positions_.size() == resident_,
            "position map size disagrees with the resident count");
}

cost_split path_oram::reset() {
  cost_split cost;
  sim::trip_scope round_trip(&memory_device_,
                             io_store_ ? &io_store_->device() : nullptr);
  const std::size_t record_bytes = codec_.record_bytes();

  std::vector<std::uint8_t> chunk;
  const auto rewrite = [&](storage::block_store& store, bool memory_lane) {
    const std::uint64_t slots = store.slot_count();
    for (std::uint64_t first = 0; first < slots;
         first += sweep_chunk_records) {
      const std::uint64_t count =
          std::min(sweep_chunk_records, slots - first);
      chunk.resize(count * record_bytes);
      for (std::uint64_t k = 0; k < count; ++k) {
        codec_.encode_dummy(std::span<std::uint8_t>(
            chunk.data() + k * record_bytes, record_bytes));
      }
      const sim::sim_time t = store.write_range(first, count, chunk);
      (memory_lane ? cost.memory : cost.io) += t;
    }
    cost.cpu += cpu_.crypto_time(slots, record_bytes);
  };
  if (memory_store_) {
    rewrite(*memory_store_, /*memory_lane=*/true);
  }
  if (io_store_ && !page_) {
    rewrite(*io_store_, /*memory_lane=*/false);
  } else if (io_store_) {
    // Page layout: clearing the valid bits IS the reinitialisation —
    // every bucket reads as all-dummy without a single device write (or
    // the crypto to produce records the device never has to see). The
    // host image is primed with encoded dummies so skipped reads and
    // audit peeks stay decodable.
    const std::size_t record = codec_.record_bytes();
    codec_.encode_dummy(
        std::span<std::uint8_t>(bucket_scratch_.data(), record));
    for (std::uint64_t slot = 0; slot < io_store_->slot_count(); ++slot) {
      io_store_->prime(
          slot, std::span<const std::uint8_t>(bucket_scratch_.data(), record));
    }
    valid_->clear();
  }

  positions_.clear();
  stash_.clear();
  resident_ = 0;
  return cost;
}

cost_split path_oram::initialize_full(
    std::uint64_t count,
    const std::function<void(block_id, std::span<std::uint8_t>)>& filler,
    std::vector<leaf_id>* leaves_out) {
  expects(count <= positions_.universe(), "more blocks than the universe");
  expects(count <= capacity_blocks(), "tree cannot hold that many blocks");
  cost_split cost;
  sim::trip_scope round_trip(&memory_device_,
                             io_store_ ? &io_store_->device() : nullptr);

  // Assign leaves and group ids by leaf (counting sort).
  std::vector<leaf_id> leaves(count);
  std::vector<std::uint64_t> leaf_counts(config_.leaf_count, 0);
  for (block_id id = 0; id < count; ++id) {
    leaves[id] = util::uniform_below(rng_, config_.leaf_count);
    ++leaf_counts[leaves[id]];
    positions_.assign(id, leaves[id]);
  }
  std::vector<std::uint64_t> leaf_offsets(config_.leaf_count + 1, 0);
  for (leaf_id l = 0; l < config_.leaf_count; ++l) {
    leaf_offsets[l + 1] = leaf_offsets[l] + leaf_counts[l];
  }
  std::vector<block_id> ids_by_leaf(count);
  {
    std::vector<std::uint64_t> cursor(leaf_offsets.begin(),
                                      leaf_offsets.end() - 1);
    for (block_id id = 0; id < count; ++id) {
      ids_by_leaf[cursor[leaves[id]]++] = id;
    }
  }

  // Materialise payloads once (indexable by id during the build).
  std::vector<std::uint8_t> payloads(count * config_.payload_bytes, 0);
  for (block_id id = 0; id < count; ++id) {
    filler(id, std::span<std::uint8_t>(
                   payloads.data() + id * config_.payload_bytes,
                   config_.payload_bytes));
  }

  // Bottom-up greedy placement: post-order DFS; each node packs up to Z
  // pending blocks (all of which have this bucket on their path) and
  // passes the rest to its parent.
  const std::uint64_t z = config_.bucket_size;
  const std::size_t record_bytes = codec_.record_bytes();
  std::vector<std::uint8_t> tree_image(bucket_count_ * z * record_bytes);
  for (std::uint64_t slot = 0; slot < bucket_count_ * z; ++slot) {
    codec_.encode_dummy(std::span<std::uint8_t>(
        tree_image.data() + slot * record_bytes, record_bytes));
  }
  std::vector<std::uint8_t> real_in_bucket(bucket_count_, 0);

  const std::function<std::vector<block_id>(std::uint32_t, std::uint64_t)>
      build = [&](std::uint32_t level,
                  std::uint64_t node_in_level) -> std::vector<block_id> {
    std::vector<block_id> pending;
    if (level == level_count_ - 1) {
      const std::uint64_t first = leaf_offsets[node_in_level];
      const std::uint64_t last = leaf_offsets[node_in_level + 1];
      pending.assign(ids_by_leaf.begin() + static_cast<std::ptrdiff_t>(first),
                     ids_by_leaf.begin() + static_cast<std::ptrdiff_t>(last));
    } else {
      pending = build(level + 1, 2 * node_in_level);
      std::vector<block_id> right = build(level + 1, 2 * node_in_level + 1);
      pending.insert(pending.end(), right.begin(), right.end());
    }

    const std::uint64_t bucket =
        ((std::uint64_t{1} << level) - 1) + node_in_level;
    const std::uint64_t take = std::min<std::uint64_t>(z, pending.size());
    if (take > 0) {
      real_in_bucket[bucket] = 1;
    }
    for (std::uint64_t k = 0; k < take; ++k) {
      const block_id id = pending[pending.size() - 1 - k];
      codec_.encode(
          id,
          std::span<const std::uint8_t>(
              payloads.data() + id * config_.payload_bytes,
              config_.payload_bytes),
          std::span<std::uint8_t>(
              tree_image.data() + (bucket * z + k) * record_bytes,
              record_bytes));
    }
    pending.resize(pending.size() - take);
    return pending;
  };
  std::vector<block_id> overflow = build(0, 0);
  for (const block_id id : overflow) {
    stash_.put(id, leaves[id],
               std::span<const std::uint8_t>(
                   payloads.data() + id * config_.payload_bytes,
                   config_.payload_bytes));
  }

  // Stream the image out as sequential sweeps on both lanes.
  const std::uint64_t memory_slots =
      memory_store_ ? memory_store_->slot_count() : 0;
  for (std::uint64_t first = 0; first < memory_slots;
       first += sweep_chunk_records) {
    const std::uint64_t n = std::min(sweep_chunk_records,
                                     memory_slots - first);
    cost.memory += memory_store_->write_range(
        first, n,
        std::span<const std::uint8_t>(
            tree_image.data() + first * record_bytes, n * record_bytes));
  }
  if (io_store_ && !page_) {
    const std::uint64_t io_slots = io_store_->slot_count();
    for (std::uint64_t first = 0; first < io_slots;
         first += sweep_chunk_records) {
      const std::uint64_t n =
          std::min(sweep_chunk_records, io_slots - first);
      cost.io += io_store_->write_range(
          first, n,
          std::span<const std::uint8_t>(
              tree_image.data() + (memory_slots + first) * record_bytes,
              n * record_bytes));
    }
  } else if (io_store_) {
    // Page layout: only segments holding a real block reach the device;
    // all-dummy segments are primed host-side and stay invalid, so the
    // bulk of the initial image is never transferred. Which segments
    // qualify depends on the uniform leaf draw alone.
    std::vector<std::uint8_t> segment_bytes;
    valid_->clear();
    for (std::uint32_t g = 0; g < page_->group_count(); ++g) {
      const std::uint64_t records = page_->segment_records(g);
      segment_bytes.resize(records * record_bytes);
      const std::uint32_t top = page_->group_top_level(g);
      for (std::uint64_t s = 0; s < page_->segment_count(g); ++s) {
        const storage::segment_ref segment{g, s};
        bool has_real = false;
        for (std::uint32_t d = 0; d < page_->group_height(g); ++d) {
          const std::uint32_t level = top + d;
          for (std::uint64_t j = 0; j < (std::uint64_t{1} << d); ++j) {
            const std::uint64_t position = (s << d) | j;
            const std::uint64_t bucket =
                ((std::uint64_t{1} << level) - 1) + position;
            has_real = has_real || real_in_bucket[bucket] != 0;
            const std::uint64_t index =
                page_->bucket_index_in_segment(level, position);
            std::memcpy(segment_bytes.data() + index * z * record_bytes,
                        tree_image.data() + bucket * z * record_bytes,
                        z * record_bytes);
          }
        }
        const std::uint64_t first = page_->segment_first_slot(segment);
        if (has_real) {
          cost.io += io_store_->write_range(first, records, segment_bytes);
          mark_segment_valid(segment);
        } else {
          for (std::uint64_t r = 0; r < records; ++r) {
            io_store_->prime(
                r + first,
                std::span<const std::uint8_t>(
                    segment_bytes.data() + r * record_bytes, record_bytes));
          }
        }
      }
    }
  }
  cost.cpu += cpu_.crypto_time(bucket_count_ * z, record_bytes);

  resident_ = count;
  if (leaves_out != nullptr) {
    *leaves_out = leaves;
  }
  return cost;
}

}  // namespace horam::oram
