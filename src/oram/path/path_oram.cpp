#include "oram/path/path_oram.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

/// Chunk size (records) for sequential sweeps, to bound host buffers.
constexpr std::uint64_t sweep_chunk_records = 1 << 14;

}  // namespace

path_oram::path_oram(const path_oram_config& config,
                     sim::block_device& memory_device,
                     sim::block_device* io_device, const sim::cpu_model& cpu,
                     util::random_source& rng, access_trace* trace)
    : config_(config),
      level_count_(static_cast<std::uint32_t>(
          util::floor_log2(config.leaf_count) + 1)),
      memory_levels_(std::min(config.memory_levels, level_count_)),
      bucket_count_(2 * config.leaf_count - 1),
      memory_bucket_count_((std::uint64_t{1} << memory_levels_) - 1),
      codec_(config.payload_bytes, config.seal, config.key_seed),
      memory_device_(memory_device),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      positions_(config.id_universe) {
  expects(util::is_pow2(config.leaf_count), "leaf count must be 2^k");
  expects(config.bucket_size > 0, "bucket size must be positive");
  expects(config.id_universe > 0, "id universe must be positive");

  const std::uint64_t logical =
      config.logical_block_bytes != 0 ? config.logical_block_bytes
                                      : codec_.record_bytes();
  expects(logical >= codec_.record_bytes(),
          "logical block smaller than the encoded record");
  logical_bytes_ = logical;

  if (memory_bucket_count_ > 0) {
    memory_store_ = std::make_unique<storage::block_store>(
        memory_device, /*base_offset=*/0,
        memory_bucket_count_ * config.bucket_size, codec_.record_bytes(),
        logical);
  }
  const std::uint64_t io_buckets = bucket_count_ - memory_bucket_count_;
  if (io_buckets > 0) {
    expects(io_device != nullptr,
            "tree deeper than memory_levels needs a storage device");
    io_store_ = std::make_unique<storage::block_store>(
        *io_device, /*base_offset=*/0, io_buckets * config.bucket_size,
        codec_.record_bytes(), logical);
  }

  bucket_scratch_.resize(config.bucket_size * codec_.record_bytes());
  payload_scratch_.resize(config.payload_bytes);

  // Start with a physically dummy-filled tree.
  reset();
}

std::uint64_t path_oram::bucket_on_path(leaf_id leaf,
                                        std::uint32_t level) const {
  return ((std::uint64_t{1} << level) - 1) +
         (leaf >> (level_count_ - 1 - level));
}

bool path_oram::paths_share_bucket(leaf_id a, leaf_id b,
                                   std::uint32_t level) const {
  const std::uint32_t shift = level_count_ - 1 - level;
  return (a >> shift) == (b >> shift);
}

bool path_oram::bucket_in_memory(std::uint64_t bucket) const noexcept {
  return bucket < memory_bucket_count_;
}

cost_split path_oram::read_bucket(std::uint64_t bucket) {
  cost_split cost;
  const std::uint64_t z = config_.bucket_size;
  if (bucket_in_memory(bucket)) {
    cost.memory += memory_store_->read_range(bucket * z, z, bucket_scratch_);
    trace(trace_, event_kind::memory_bucket_read, bucket);
  } else {
    const std::uint64_t io_bucket = bucket - memory_bucket_count_;
    cost.io += io_store_->read_range(io_bucket * z, z, bucket_scratch_);
    trace(trace_, event_kind::storage_read_slot, bucket);
  }
  return cost;
}

cost_split path_oram::write_bucket(std::uint64_t bucket,
                                   std::span<const std::uint8_t> records) {
  cost_split cost;
  const std::uint64_t z = config_.bucket_size;
  if (bucket_in_memory(bucket)) {
    cost.memory += memory_store_->write_range(bucket * z, z, records);
    trace(trace_, event_kind::memory_bucket_write, bucket);
  } else {
    const std::uint64_t io_bucket = bucket - memory_bucket_count_;
    cost.io += io_store_->write_range(io_bucket * z, z, records);
    trace(trace_, event_kind::storage_write_slot, bucket);
  }
  return cost;
}

bool path_oram::contains(block_id id) const { return positions_.contains(id); }

cost_split path_oram::path_access(
    leaf_id leaf, block_id requested, op_kind op,
    std::span<const std::uint8_t> write_data,
    std::span<std::uint8_t> read_out,
    const std::function<void(std::span<std::uint8_t>)>* updater,
    bool extract_requested) {
  cost_split cost;
  trace(trace_, event_kind::memory_path_access, leaf, config_.leaf_count);

  const std::uint64_t z = config_.bucket_size;
  const std::size_t record_bytes = codec_.record_bytes();

  // Read the path root-to-leaf, moving every real block into the stash.
  for (std::uint32_t level = 0; level < level_count_; ++level) {
    const std::uint64_t bucket = bucket_on_path(leaf, level);
    cost += read_bucket(bucket);
    for (std::uint64_t k = 0; k < z; ++k) {
      const std::span<const std::uint8_t> record(
          bucket_scratch_.data() + k * record_bytes, record_bytes);
      const block_id id = codec_.decode(record, payload_scratch_);
      if (id == dummy_block_id) {
        continue;
      }
      invariant(positions_.contains(id),
                "tree holds a block missing from the position map");
      stash_.put(id, positions_.leaf_of(id), payload_scratch_);
    }
  }

  // Serve the request from the stash.
  if (requested != dummy_block_id) {
    if (!stash_.contains(requested)) {
      // First-ever touch: the block materialises zero-filled.
      const std::vector<std::uint8_t> zeros(config_.payload_bytes, 0);
      stash_.put(requested, positions_.leaf_of(requested), zeros);
    }
    stash_entry& entry = stash_.at(requested);
    // The request was remapped before the path read; a block that was
    // already sheltering in the stash must follow its new leaf, or the
    // write-back would strand it off its position-map path.
    entry.leaf = positions_.leaf_of(requested);
    if (op == op_kind::write) {
      expects(write_data.size() <= config_.payload_bytes,
              "write larger than the block payload");
      std::fill(entry.payload.begin(), entry.payload.end(), 0);
      std::memcpy(entry.payload.data(), write_data.data(),
                  write_data.size());
    } else if (!read_out.empty()) {
      expects(read_out.size() >= config_.payload_bytes,
              "read buffer too small");
      std::memcpy(read_out.data(), entry.payload.data(),
                  config_.payload_bytes);
    }
    if (updater != nullptr) {
      (*updater)(std::span<std::uint8_t>(entry.payload.data(),
                                         entry.payload.size()));
    }
    if (extract_requested) {
      // The live copy leaves the tree: drop it from the stash and the
      // position map before the write-back re-places the path.
      stash_.erase(requested);
      positions_.remove(requested);
    }
  }

  // Greedy write-back, deepest bucket first.
  std::vector<block_id> selected;
  for (std::uint32_t down = 0; down < level_count_; ++down) {
    const std::uint32_t level = level_count_ - 1 - down;
    const std::uint64_t bucket = bucket_on_path(leaf, level);
    selected.clear();
    for (const auto& [id, entry] : stash_) {
      if (paths_share_bucket(entry.leaf, leaf, level)) {
        selected.push_back(id);
        if (selected.size() == z) {
          break;
        }
      }
    }
    for (std::uint64_t k = 0; k < z; ++k) {
      const std::span<std::uint8_t> record(
          bucket_scratch_.data() + k * record_bytes, record_bytes);
      if (k < selected.size()) {
        const stash_entry& entry = stash_.at(selected[k]);
        codec_.encode(selected[k], entry.payload, record);
      } else {
        codec_.encode_dummy(record);
      }
    }
    for (const block_id id : selected) {
      stash_.erase(id);
    }
    cost += write_bucket(bucket, bucket_scratch_);
  }

  // Control-layer cost: decrypt + re-encrypt the full path, plus map and
  // stash bookkeeping.
  const std::uint64_t records_touched = 2ULL * level_count_ * z;
  cost.cpu += cpu_.crypto_time(records_touched, record_bytes);
  cost.cpu += cpu_.word_ops_time(records_touched + stash_.size());
  return cost;
}

cost_split path_oram::access(op_kind op, block_id id,
                             std::span<const std::uint8_t> write_data,
                             std::span<std::uint8_t> read_out) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(id != dummy_block_id, "cannot access the dummy id");

  leaf_id old_leaf = 0;
  if (positions_.contains(id)) {
    old_leaf = positions_.leaf_of(id);
  } else {
    old_leaf = util::uniform_below(rng_, config_.leaf_count);
    ++resident_;
  }
  // Remap before the path read so repeated accesses never repeat leaves.
  positions_.assign(id, util::uniform_below(rng_, config_.leaf_count));
  ++stats_.real_accesses;
  return path_access(old_leaf, id, op, write_data, read_out);
}

cost_split path_oram::access_rmw(
    block_id id,
    const std::function<void(std::span<std::uint8_t>)>& updater) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(static_cast<bool>(updater), "rmw needs an updater");

  leaf_id old_leaf = 0;
  if (positions_.contains(id)) {
    old_leaf = positions_.leaf_of(id);
  } else {
    old_leaf = util::uniform_below(rng_, config_.leaf_count);
    ++resident_;
  }
  positions_.assign(id, util::uniform_below(rng_, config_.leaf_count));
  ++stats_.real_accesses;
  return path_access(old_leaf, id, op_kind::read, {}, {}, &updater);
}

cost_split path_oram::extract(block_id id,
                              std::span<std::uint8_t> read_out) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(positions_.contains(id), "extract of a non-resident block");
  // No remap: the block leaves the tree, so its (about to be read) path
  // is never correlated with a future access.
  const leaf_id old_leaf = positions_.leaf_of(id);
  ++stats_.real_accesses;
  const cost_split cost = path_access(old_leaf, id, op_kind::read, {},
                                      read_out, nullptr,
                                      /*extract_requested=*/true);
  --resident_;
  return cost;
}

cost_split path_oram::dummy_access() {
  ++stats_.dummy_accesses;
  const leaf_id leaf = util::uniform_below(rng_, config_.leaf_count);
  return path_access(leaf, dummy_block_id, op_kind::read, {}, {});
}

cost_split path_oram::install(block_id id,
                              std::span<const std::uint8_t> payload) {
  return install(id, payload, util::uniform_below(rng_, config_.leaf_count));
}

cost_split path_oram::install(block_id id,
                              std::span<const std::uint8_t> payload,
                              leaf_id leaf) {
  expects(id < positions_.universe(), "block id outside the universe");
  expects(!positions_.contains(id), "block already resident");
  expects(leaf < config_.leaf_count, "install leaf out of range");
  positions_.assign(id, leaf);
  stash_.put(id, leaf, payload);
  ++resident_;
  ++stats_.installs;

  cost_split cost;
  cost.cpu += cpu_.word_ops_time(4);
  return cost;
}

cost_split path_oram::evict_all(std::vector<evicted_block>& out) {
  cost_split cost;
  ++stats_.evictions;
  out.clear();

  const std::size_t record_bytes = codec_.record_bytes();

  // 1) Stream the whole tree (sequential sweeps) and decode.
  std::vector<std::uint8_t> chunk;
  const auto sweep = [&](storage::block_store& store, bool memory_lane) {
    const std::uint64_t slots = store.slot_count();
    for (std::uint64_t first = 0; first < slots;
         first += sweep_chunk_records) {
      const std::uint64_t count =
          std::min(sweep_chunk_records, slots - first);
      chunk.resize(count * record_bytes);
      const sim::sim_time t = store.read_range(first, count, chunk);
      (memory_lane ? cost.memory : cost.io) += t;
      for (std::uint64_t k = 0; k < count; ++k) {
        const std::span<const std::uint8_t> record(
            chunk.data() + k * record_bytes, record_bytes);
        const block_id id = codec_.decode(record, payload_scratch_);
        if (id == dummy_block_id) {
          continue;
        }
        out.push_back(evicted_block{
            id, std::vector<std::uint8_t>(payload_scratch_.begin(),
                                          payload_scratch_.end())});
      }
    }
  };
  if (memory_store_) {
    sweep(*memory_store_, /*memory_lane=*/true);
  }
  if (io_store_) {
    sweep(*io_store_, /*memory_lane=*/false);
  }

  // Stash contents are part of the eviction too.
  for (const auto& [id, entry] : stash_) {
    out.push_back(evicted_block{id, entry.payload});
  }

  // 2) Oblivious shuffle of the eviction buffer. Correctness-wise a
  // uniform shuffle; cost-wise the K-oblivious cache shuffle the paper
  // selects: two passes over all tree slots (spray + clean), each pass
  // decrypting and re-encrypting every record and moving it through
  // memory once.
  const std::uint64_t total_slots = capacity_blocks();
  cost.cpu += cpu_.crypto_time(4 * total_slots, record_bytes);
  const std::uint64_t sweep_bytes = total_slots * logical_bytes_;
  cost.memory += memory_device_.read(0, sweep_bytes);
  cost.memory += memory_device_.write(0, sweep_bytes);
  cost.memory += memory_device_.read(0, sweep_bytes);
  cost.memory += memory_device_.write(0, sweep_bytes);

  std::vector<std::uint64_t> order = util::random_permutation(
      rng_, static_cast<std::uint64_t>(out.size()));
  std::vector<evicted_block> shuffled(out.size());
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    shuffled[order[i]] = std::move(out[i]);
  }
  out = std::move(shuffled);

  // 3) Dummies were dropped during the decode scan; clear logical state.
  invariant(out.size() == resident_, "eviction lost blocks");
  positions_.clear();
  stash_.clear();
  resident_ = 0;
  return cost;
}

void path_oram::for_each_resident(
    const std::function<void(block_id, leaf_id,
                             std::span<const std::uint8_t>)>& visit)
    const {
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  const auto scan = [&](const storage::block_store& store) {
    for (std::uint64_t slot = 0; slot < store.slot_count(); ++slot) {
      const block_id id = codec_.decode(store.peek(slot), payload);
      if (id == dummy_block_id) {
        continue;
      }
      visit(id, positions_.leaf_of(id), payload);
    }
  };
  if (memory_store_) {
    scan(*memory_store_);
  }
  if (io_store_) {
    scan(*io_store_);
  }
  for (const auto& [id, entry] : stash_) {
    visit(id, entry.leaf, entry.payload);
  }
}

void path_oram::check_consistency() const {
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  std::vector<std::uint8_t> seen(positions_.universe(), 0);
  std::uint64_t found = 0;
  const std::uint64_t z = config_.bucket_size;

  const auto scan = [&](const storage::block_store& store,
                        std::uint64_t first_bucket) {
    for (std::uint64_t slot = 0; slot < store.slot_count(); ++slot) {
      const block_id id = codec_.decode(store.peek(slot), payload);
      if (id == dummy_block_id) {
        continue;
      }
      invariant(id < positions_.universe(),
                "tree holds an out-of-universe block");
      invariant(positions_.contains(id),
                "tree holds a block missing from the position map");
      invariant(seen[id] == 0, "block stored in two tree slots");
      seen[id] = 1;
      ++found;
      const std::uint64_t bucket = first_bucket + slot / z;
      const unsigned level = util::floor_log2(bucket + 1);
      invariant(bucket == bucket_on_path(positions_.leaf_of(id), level),
                "block stored off its position-map path");
    }
  };
  if (memory_store_) {
    scan(*memory_store_, 0);
  }
  if (io_store_) {
    scan(*io_store_, memory_bucket_count_);
  }

  for (const auto& [id, entry] : stash_) {
    invariant(id < positions_.universe(),
              "stash holds an out-of-universe block");
    invariant(positions_.contains(id),
              "stash holds a block missing from the position map");
    invariant(entry.leaf == positions_.leaf_of(id),
              "stash leaf disagrees with the position map");
    invariant(seen[id] == 0, "block in both the tree and the stash");
    seen[id] = 1;
    ++found;
    invariant(entry.payload.size() == config_.payload_bytes,
              "stash payload has the wrong size");
  }

  invariant(found == resident_, "resident counter out of sync");
  invariant(positions_.size() == resident_,
            "position map size disagrees with the resident count");
}

cost_split path_oram::reset() {
  cost_split cost;
  const std::size_t record_bytes = codec_.record_bytes();

  std::vector<std::uint8_t> chunk;
  const auto rewrite = [&](storage::block_store& store, bool memory_lane) {
    const std::uint64_t slots = store.slot_count();
    for (std::uint64_t first = 0; first < slots;
         first += sweep_chunk_records) {
      const std::uint64_t count =
          std::min(sweep_chunk_records, slots - first);
      chunk.resize(count * record_bytes);
      for (std::uint64_t k = 0; k < count; ++k) {
        codec_.encode_dummy(std::span<std::uint8_t>(
            chunk.data() + k * record_bytes, record_bytes));
      }
      const sim::sim_time t = store.write_range(first, count, chunk);
      (memory_lane ? cost.memory : cost.io) += t;
    }
    cost.cpu += cpu_.crypto_time(slots, record_bytes);
  };
  if (memory_store_) {
    rewrite(*memory_store_, /*memory_lane=*/true);
  }
  if (io_store_) {
    rewrite(*io_store_, /*memory_lane=*/false);
  }

  positions_.clear();
  stash_.clear();
  resident_ = 0;
  return cost;
}

cost_split path_oram::initialize_full(
    std::uint64_t count,
    const std::function<void(block_id, std::span<std::uint8_t>)>& filler,
    std::vector<leaf_id>* leaves_out) {
  expects(count <= positions_.universe(), "more blocks than the universe");
  expects(count <= capacity_blocks(), "tree cannot hold that many blocks");
  cost_split cost;

  // Assign leaves and group ids by leaf (counting sort).
  std::vector<leaf_id> leaves(count);
  std::vector<std::uint64_t> leaf_counts(config_.leaf_count, 0);
  for (block_id id = 0; id < count; ++id) {
    leaves[id] = util::uniform_below(rng_, config_.leaf_count);
    ++leaf_counts[leaves[id]];
    positions_.assign(id, leaves[id]);
  }
  std::vector<std::uint64_t> leaf_offsets(config_.leaf_count + 1, 0);
  for (leaf_id l = 0; l < config_.leaf_count; ++l) {
    leaf_offsets[l + 1] = leaf_offsets[l] + leaf_counts[l];
  }
  std::vector<block_id> ids_by_leaf(count);
  {
    std::vector<std::uint64_t> cursor(leaf_offsets.begin(),
                                      leaf_offsets.end() - 1);
    for (block_id id = 0; id < count; ++id) {
      ids_by_leaf[cursor[leaves[id]]++] = id;
    }
  }

  // Materialise payloads once (indexable by id during the build).
  std::vector<std::uint8_t> payloads(count * config_.payload_bytes, 0);
  for (block_id id = 0; id < count; ++id) {
    filler(id, std::span<std::uint8_t>(
                   payloads.data() + id * config_.payload_bytes,
                   config_.payload_bytes));
  }

  // Bottom-up greedy placement: post-order DFS; each node packs up to Z
  // pending blocks (all of which have this bucket on their path) and
  // passes the rest to its parent.
  const std::uint64_t z = config_.bucket_size;
  const std::size_t record_bytes = codec_.record_bytes();
  std::vector<std::uint8_t> tree_image(bucket_count_ * z * record_bytes);
  for (std::uint64_t slot = 0; slot < bucket_count_ * z; ++slot) {
    codec_.encode_dummy(std::span<std::uint8_t>(
        tree_image.data() + slot * record_bytes, record_bytes));
  }

  const std::function<std::vector<block_id>(std::uint32_t, std::uint64_t)>
      build = [&](std::uint32_t level,
                  std::uint64_t node_in_level) -> std::vector<block_id> {
    std::vector<block_id> pending;
    if (level == level_count_ - 1) {
      const std::uint64_t first = leaf_offsets[node_in_level];
      const std::uint64_t last = leaf_offsets[node_in_level + 1];
      pending.assign(ids_by_leaf.begin() + static_cast<std::ptrdiff_t>(first),
                     ids_by_leaf.begin() + static_cast<std::ptrdiff_t>(last));
    } else {
      pending = build(level + 1, 2 * node_in_level);
      std::vector<block_id> right = build(level + 1, 2 * node_in_level + 1);
      pending.insert(pending.end(), right.begin(), right.end());
    }

    const std::uint64_t bucket =
        ((std::uint64_t{1} << level) - 1) + node_in_level;
    const std::uint64_t take = std::min<std::uint64_t>(z, pending.size());
    for (std::uint64_t k = 0; k < take; ++k) {
      const block_id id = pending[pending.size() - 1 - k];
      codec_.encode(
          id,
          std::span<const std::uint8_t>(
              payloads.data() + id * config_.payload_bytes,
              config_.payload_bytes),
          std::span<std::uint8_t>(
              tree_image.data() + (bucket * z + k) * record_bytes,
              record_bytes));
    }
    pending.resize(pending.size() - take);
    return pending;
  };
  std::vector<block_id> overflow = build(0, 0);
  for (const block_id id : overflow) {
    stash_.put(id, leaves[id],
               std::span<const std::uint8_t>(
                   payloads.data() + id * config_.payload_bytes,
                   config_.payload_bytes));
  }

  // Stream the image out as sequential sweeps on both lanes.
  const std::uint64_t memory_slots =
      memory_store_ ? memory_store_->slot_count() : 0;
  for (std::uint64_t first = 0; first < memory_slots;
       first += sweep_chunk_records) {
    const std::uint64_t n = std::min(sweep_chunk_records,
                                     memory_slots - first);
    cost.memory += memory_store_->write_range(
        first, n,
        std::span<const std::uint8_t>(
            tree_image.data() + first * record_bytes, n * record_bytes));
  }
  if (io_store_) {
    const std::uint64_t io_slots = io_store_->slot_count();
    for (std::uint64_t first = 0; first < io_slots;
         first += sweep_chunk_records) {
      const std::uint64_t n =
          std::min(sweep_chunk_records, io_slots - first);
      cost.io += io_store_->write_range(
          first, n,
          std::span<const std::uint8_t>(
              tree_image.data() + (memory_slots + first) * record_bytes,
              n * record_bytes));
    }
  }
  cost.cpu += cpu_.crypto_time(bucket_count_ * z, record_bytes);

  resident_ = count;
  if (leaves_out != nullptr) {
    *leaves_out = leaves;
  }
  return cost;
}

}  // namespace horam::oram
