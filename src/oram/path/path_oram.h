// Path ORAM (Stefanov et al.), with a configurable memory/storage level
// split.
//
// Three roles in this repository:
//   * split_level == level_count: the whole tree lives in memory — this
//     is H-ORAM's in-memory cache tree (§4.1.2);
//   * split_level < level_count: top levels in memory, deeper levels on
//     the storage device — the "tree-top cache" baseline the paper
//     evaluates against (Figure 3-1 a, ZeroTrace-style);
//   * split_level == 0: the whole tree on storage — the `path`
//     oram_backend (oram/path/path_backend.h), driven through
//     extract/install instead of plain accesses.
//
// Every access reads one root-to-leaf path bucket by bucket, remaps the
// requested block to a fresh uniform leaf, and greedily writes the path
// back from the stash. Dummy accesses (random path, write-back
// unchanged) are indistinguishable from real ones on the bus.
#ifndef HORAM_ORAM_PATH_PATH_ORAM_H
#define HORAM_ORAM_PATH_PATH_ORAM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "oram/common/access_trace.h"
#include "oram/common/block_codec.h"
#include "oram/common/position_map.h"
#include "oram/common/stash.h"
#include "oram/common/types.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "storage/block_store.h"
#include "storage/page_layout.h"
#include "util/rng.h"

namespace horam::oram {

/// Static parameters of a Path ORAM instance.
struct path_oram_config {
  /// Number of leaves; must be a power of two. The tree then has
  /// log2(leaf_count) + 1 levels and (2 * leaf_count - 1) buckets.
  std::uint64_t leaf_count = 0;
  /// Blocks per bucket (the paper's Z; default 4 as in §5.1).
  std::uint32_t bucket_size = 4;
  /// Application payload bytes per block.
  std::size_t payload_bytes = 0;
  /// Logical block size for device timing (0 = record size).
  std::uint64_t logical_block_bytes = 0;
  /// Block ids the position map covers (the application address space).
  std::uint64_t id_universe = 0;
  /// Number of tree levels resident in memory, counted from the root;
  /// deeper levels go to the storage device. Use level_count (or any
  /// larger value) for a fully in-memory tree.
  std::uint32_t memory_levels = std::numeric_limits<std::uint32_t>::max();
  /// Seal records with real crypto (tests) or plaintext (large benches;
  /// modelled crypto time is charged either way).
  bool seal = true;
  std::uint64_t key_seed = 0x70617468;  // "path"
  /// Device-side layout of the storage-resident levels
  /// (storage/page_layout.h). `flat` = one range op per bucket, heap
  /// order (the historical machine, bit for bit); `page` = page-sized
  /// subtree segments, one op per path segment, valid-bit skipping.
  /// The in-memory levels always use the flat layout.
  storage::storage_layout layout = storage::storage_layout::flat;
  /// Target device page size for storage_layout::page.
  std::uint64_t page_bytes = 16384;
};

/// Counters of a Path ORAM instance.
struct path_oram_stats {
  std::uint64_t real_accesses = 0;
  std::uint64_t dummy_accesses = 0;
  std::uint64_t installs = 0;
  std::uint64_t evictions = 0;
};

class path_oram {
 public:
  /// `io_device` may be null when every level fits in memory.
  path_oram(const path_oram_config& config, sim::block_device& memory_device,
            sim::block_device* io_device, const sim::cpu_model& cpu,
            util::random_source& rng, access_trace* trace);

  [[nodiscard]] std::uint32_t level_count() const noexcept {
    return level_count_;
  }
  [[nodiscard]] std::uint32_t memory_level_count() const noexcept {
    return memory_levels_;
  }
  [[nodiscard]] std::uint64_t bucket_count() const noexcept {
    return bucket_count_;
  }
  /// Total block slots in the tree (real + dummy capacity).
  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept {
    return bucket_count_ * config_.bucket_size;
  }
  [[nodiscard]] const path_oram_config& config() const noexcept {
    return config_;
  }
  /// Encoded record size (payload + id + sealing overhead).
  [[nodiscard]] std::size_t record_bytes() const noexcept {
    return codec_.record_bytes();
  }
  [[nodiscard]] const path_oram_stats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const stash& stash_ref() const noexcept { return stash_; }
  /// Effective storage layout (`flat` when no level is
  /// storage-resident, whatever the config asked for).
  [[nodiscard]] storage::storage_layout layout() const noexcept {
    return page_ ? storage::storage_layout::page
                 : storage::storage_layout::flat;
  }
  /// Segment geometry under storage_layout::page (null otherwise).
  [[nodiscard]] const storage::page_layout* page_geometry() const noexcept {
    return page_.get();
  }
  /// Storage buckets marked valid (written since the last reset) under
  /// storage_layout::page; 0 under flat. Audits assert this occupancy
  /// is workload-independent.
  [[nodiscard]] std::uint64_t valid_bucket_count() const noexcept {
    return valid_ ? valid_->valid_count() : 0;
  }

  /// True iff the block currently lives in this tree (or its stash).
  [[nodiscard]] bool contains(block_id id) const;

  /// Number of real blocks currently held (tree + stash).
  [[nodiscard]] std::uint64_t resident_blocks() const noexcept {
    return resident_;
  }

  /// Performs one ORAM access. For reads, the payload lands in
  /// `read_out` (payload_bytes long); absent blocks read as zeros and
  /// become resident. For writes, `write_data` replaces the payload.
  cost_split access(op_kind op, block_id id,
                    std::span<const std::uint8_t> write_data,
                    std::span<std::uint8_t> read_out);

  /// One-access read-modify-write: `updater` edits the payload while
  /// the block passes through the stash (packed-entry updates, e.g. the
  /// recursive position map, use this instead of a read + write pair).
  cost_split access_rmw(
      block_id id,
      const std::function<void(std::span<std::uint8_t>)>& updater);

  /// A dummy access: random path read + write-back. Indistinguishable
  /// from access() on the bus; drains the stash as a side effect.
  cost_split dummy_access();

  /// Installs a block arriving from the storage layer into the stash
  /// with a fresh uniform leaf (H-ORAM's I/O load path). Control-layer
  /// cost only; the block reaches the tree via later write-backs.
  cost_split install(block_id id, std::span<const std::uint8_t> payload);

  /// install() with a caller-chosen leaf, so an external position map
  /// (e.g. a recursive_position_map kept by path_backend) can record
  /// the same assignment the tree uses.
  cost_split install(block_id id, std::span<const std::uint8_t> payload,
                     leaf_id leaf);

  /// One path access that removes `id` from the tree: reads the block's
  /// path, copies the payload into `read_out` (payload_bytes long) and
  /// writes the path back without the block — the live copy moves to
  /// the caller's cache layer (H-ORAM's load path, the inverse of
  /// install). The block must be resident.
  cost_split extract(block_id id, std::span<std::uint8_t> read_out);

  /// Current leaf of a resident block (control-layer knowledge; audits
  /// compare it against an external position map).
  [[nodiscard]] leaf_id leaf_of(block_id id) const {
    return positions_.leaf_of(id);
  }

  /// Visits every resident block — tree buckets first, then the stash —
  /// without charging device time (audits and peeks only).
  void for_each_resident(
      const std::function<void(block_id, leaf_id,
                               std::span<const std::uint8_t>)>& visit)
      const;

  /// Deep audit of the tree invariants: every stored block lies on the
  /// path to its position-map leaf, no block appears twice, the stash
  /// agrees with the map, and the resident count matches. Throws
  /// util::contract_error on the first inconsistency.
  void check_consistency() const;

  /// Oblivious tree evict (§4.3.1): sequentially reads the whole tree,
  /// obliviously shuffles the buffer (K-oblivious cache-shuffle cost
  /// model), drops dummies and returns every resident real block
  /// (including stash contents). The tree itself is left untouched;
  /// call reset() to reinitialise it.
  cost_split evict_all(std::vector<evicted_block>& out);

  /// Rewrites the whole tree with dummy records and clears the position
  /// map and stash ("initialize a new Path ORAM tree", §4.1.3).
  cost_split reset();

  /// Bulk-builds the tree with every id in [0, count) using `filler` to
  /// produce payloads (baseline initialisation). Blocks are placed
  /// bottom-up along their leaf paths; overflow lands in the stash.
  /// When `leaves_out` is non-null it receives the leaf assigned to
  /// each id (index = id), so callers can seed an external position map
  /// with the same assignments.
  cost_split initialize_full(
      std::uint64_t count,
      const std::function<void(block_id, std::span<std::uint8_t>)>& filler,
      std::vector<leaf_id>* leaves_out = nullptr);

 private:
  /// Heap index of the bucket at `level` on the path to `leaf`.
  [[nodiscard]] std::uint64_t bucket_on_path(leaf_id leaf,
                                             std::uint32_t level) const;
  /// True if the bucket at `level` on path-to-`a` is also on
  /// path-to-`b` (greedy write-back test).
  [[nodiscard]] bool paths_share_bucket(leaf_id a, leaf_id b,
                                        std::uint32_t level) const;

  [[nodiscard]] bool bucket_in_memory(std::uint64_t bucket) const noexcept;
  /// Reads bucket records into `out`; returns cost on the right lane.
  cost_split read_bucket(std::uint64_t bucket, std::span<std::uint8_t> out);
  cost_split write_bucket(std::uint64_t bucket,
                          std::span<const std::uint8_t> records);

  /// The path window: level `level`'s bucket records of the access in
  /// flight (level_count_ buckets of Z records each).
  [[nodiscard]] std::span<std::uint8_t> window_bucket(std::uint32_t level);
  /// Fills the path window for the path to `leaf` (device reads; under
  /// `page`, one transfer per segment with valid-bit skipping).
  cost_split load_path(leaf_id leaf);
  /// Writes the path window back along the path to `leaf`, leaf to
  /// root (under `page`, sibling bytes of each segment are rewritten
  /// unchanged from the buffer load_path filled).
  cost_split store_path(leaf_id leaf);

  /// True iff any bucket of the segment has been written since reset.
  [[nodiscard]] bool segment_valid(storage::segment_ref segment) const;
  /// Marks every bucket the segment covers valid (a segment write
  /// rewrites them all).
  void mark_segment_valid(storage::segment_ref segment);

  cost_split path_access(
      leaf_id leaf, block_id requested, op_kind op,
      std::span<const std::uint8_t> write_data,
      std::span<std::uint8_t> read_out,
      const std::function<void(std::span<std::uint8_t>)>* updater =
          nullptr,
      bool extract_requested = false);

  path_oram_config config_;
  std::uint32_t level_count_;
  std::uint32_t memory_levels_;
  std::uint64_t bucket_count_;
  std::uint64_t memory_bucket_count_;

  block_codec codec_;
  sim::block_device& memory_device_;
  std::uint64_t logical_bytes_ = 0;
  /// Null when memory_levels == 0 (fully storage-resident tree).
  std::unique_ptr<storage::block_store> memory_store_;
  std::unique_ptr<storage::block_store> io_store_;
  const sim::cpu_model& cpu_;
  util::random_source& rng_;
  access_trace* trace_;

  position_map positions_;
  stash stash_;
  std::uint64_t resident_ = 0;
  path_oram_stats stats_;

  /// Page geometry + valid bits; null under storage_layout::flat (and
  /// when no level is storage-resident).
  std::unique_ptr<storage::page_layout> page_;
  std::unique_ptr<storage::valid_bit_tree> valid_;

  // Reused per-access scratch.
  std::vector<std::uint8_t> bucket_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
  /// One path's bucket records (level_count_ * Z records).
  std::vector<std::uint8_t> path_window_;
  /// Per-group segment bytes of the access in flight (page layout).
  std::vector<std::vector<std::uint8_t>> segment_buffers_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_PATH_PATH_ORAM_H
