// Recursive position map — the standard Path ORAM extension the thesis
// leaves out ("we implement Path ORAM and H-ORAM with the naive setting
// (no recursive)", §5.2.1).
//
// The flat position map costs 8 bytes of trusted memory per block
// (4 MB at 2^19 blocks — the annotation in Figure 4-1). Recursion packs
// `entries_per_block` leaf labels into one data block and stores those
// blocks in a smaller Path ORAM, whose own (smaller) position map is
// stored in a yet smaller ORAM, and so on until the residue fits a
// trusted-memory threshold. Trusted state shrinks geometrically; every
// map operation pays one ORAM access per level instead.
//
// This component is self-contained (it does not change path_oram's
// internals) so the cost of recursion can be measured in isolation; see
// bench/ablation_recursive_map.
#ifndef HORAM_ORAM_PATH_RECURSIVE_POSITION_MAP_H
#define HORAM_ORAM_PATH_RECURSIVE_POSITION_MAP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "oram/common/types.h"
#include "oram/path/path_oram.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "util/rng.h"

namespace horam::oram {

/// Parameters of the recursion.
struct recursive_map_config {
  /// Block ids the map covers.
  std::uint64_t universe = 0;
  /// Leaf labels packed into one map block (the compression factor).
  std::uint64_t entries_per_block = 64;
  /// Stop recursing once a level's entry count is at or below this;
  /// that residue is held as a plain trusted-memory vector.
  std::uint64_t direct_threshold = 1024;
  /// Bucket size of the per-level map ORAMs.
  std::uint32_t bucket_size = 4;
  bool seal = true;
  std::uint64_t key_seed = 0x7265636d;  // "recm"
};

/// Position map stored in a chain of Path ORAMs.
class recursive_position_map {
 public:
  /// `initial` optionally seeds the map in bulk: initial[id] becomes the
  /// assigned leaf of every id < initial.size() (one streaming build of
  /// the level-0 ORAM instead of per-id assign() accesses). Empty means
  /// every id starts unassigned.
  recursive_position_map(const recursive_map_config& config,
                         sim::block_device& memory_device,
                         const sim::cpu_model& cpu,
                         util::random_source& rng, access_trace* trace,
                         std::span<const leaf_id> initial = {});

  /// Number of ORAM levels below the trusted residue.
  [[nodiscard]] std::uint32_t level_count() const noexcept {
    return static_cast<std::uint32_t>(levels_.size());
  }
  /// Trusted memory the residue occupies (the recursion's win).
  [[nodiscard]] std::uint64_t trusted_bytes() const noexcept {
    return residue_.size() * sizeof(leaf_id);
  }
  /// Untrusted memory the map ORAM chain occupies.
  [[nodiscard]] std::uint64_t oram_bytes() const noexcept;

  /// Looks up the leaf of `id`; `out` is empty when unassigned.
  /// Cost: one ORAM read per level.
  cost_split lookup(block_id id, std::optional<leaf_id>& out);

  /// Assigns a leaf. Cost: one ORAM read-modify-write per level.
  cost_split assign(block_id id, leaf_id leaf);

  /// Removes an assignment (same cost as assign).
  cost_split remove(block_id id);

  /// Visits every assigned (id, leaf) entry without charging device
  /// time (audits only; backends compare against the data ORAM's own
  /// bookkeeping).
  void for_each_assigned(
      const std::function<void(block_id, leaf_id)>& visit) const;

 private:
  static constexpr leaf_id absent = std::numeric_limits<leaf_id>::max();

  /// Reads the packed map block holding `index` at `level` and returns
  /// the entry; with `new_value` set, writes it back modified.
  cost_split level_access(std::size_t level, std::uint64_t index,
                          std::optional<leaf_id> new_value,
                          leaf_id& current_out);

  recursive_map_config config_;
  /// levels_[0] holds the data-level entries; deeper levels hold the
  /// position maps of the shallower map ORAMs.
  std::vector<std::unique_ptr<path_oram>> levels_;
  /// Entry counts per level (level 0 = universe).
  std::vector<std::uint64_t> level_entries_;
  /// Plain trusted map for the deepest level's ORAM.
  std::vector<leaf_id> residue_;
  std::vector<std::uint8_t> payload_scratch_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_PATH_RECURSIVE_POSITION_MAP_H
