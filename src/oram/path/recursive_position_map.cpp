#include "oram/path/recursive_position_map.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam::oram {

namespace {

/// Smallest power-of-two leaf count whose tree holds `blocks` records.
std::uint64_t leaves_for(std::uint64_t blocks, std::uint32_t z) {
  std::uint64_t leaves = 1;
  while (leaves * z * 2 - z < blocks) {  // capacity = Z*(2*leaves - 1)
    leaves *= 2;
  }
  return leaves;
}

}  // namespace

recursive_position_map::recursive_position_map(
    const recursive_map_config& config, sim::block_device& memory_device,
    const sim::cpu_model& cpu, util::random_source& rng,
    access_trace* trace, std::span<const leaf_id> initial)
    : config_(config) {
  expects(config_.universe > 0, "map universe must be positive");
  expects(config_.entries_per_block >= 2,
          "recursion needs at least two entries per block");
  expects(config_.direct_threshold >= 1, "threshold must be positive");
  expects(initial.empty() || initial.size() <= config_.universe,
          "more initial entries than the universe");

  // Build the level chain: level 0 covers the data blocks; level k+1
  // covers the map blocks of level k; stop when a level fits the
  // trusted threshold.
  std::uint64_t entries = config_.universe;
  while (entries > config_.direct_threshold) {
    level_entries_.push_back(entries);
    const std::uint64_t blocks =
        util::ceil_div(entries, config_.entries_per_block);

    path_oram_config level_config;
    level_config.leaf_count = leaves_for(blocks, config_.bucket_size);
    level_config.bucket_size = config_.bucket_size;
    level_config.payload_bytes =
        config_.entries_per_block * sizeof(leaf_id);
    level_config.id_universe = blocks;
    level_config.seal = config_.seal;
    level_config.key_seed =
        config_.key_seed + 0x101 * (levels_.size() + 1);
    levels_.push_back(std::make_unique<path_oram>(
        level_config, memory_device, nullptr, cpu, rng, trace));

    // Initialise every map block: level 0 packs the caller's initial
    // values (the authoritative entries); deeper levels and unseeded
    // entries start all-absent so lookups are total.
    const bool authoritative = levels_.size() == 1;
    levels_.back()->initialize_full(
        blocks, [&](block_id block, std::span<std::uint8_t> payload) {
          std::memset(payload.data(), 0xff, payload.size());
          if (!authoritative || initial.empty()) {
            return;
          }
          for (std::uint64_t k = 0; k < config_.entries_per_block; ++k) {
            const std::uint64_t id =
                block * config_.entries_per_block + k;
            if (id >= initial.size()) {
              break;
            }
            std::memcpy(payload.data() + k * sizeof(leaf_id),
                        &initial[id], sizeof(leaf_id));
          }
        });
    entries = blocks;
  }
  residue_.assign(entries, absent);
  if (levels_.empty() && !initial.empty()) {
    std::copy(initial.begin(), initial.end(), residue_.begin());
  }
  payload_scratch_.resize(config_.entries_per_block * sizeof(leaf_id));
  invariant(!levels_.empty() || config_.universe <= config_.direct_threshold,
            "chain construction failed");
}

std::uint64_t recursive_position_map::oram_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& level : levels_) {
    total += level->capacity_blocks() * level->config().payload_bytes;
  }
  return total;
}

cost_split recursive_position_map::level_access(
    std::size_t level, std::uint64_t index,
    std::optional<leaf_id> new_value, leaf_id& current_out) {
  path_oram& oram = *levels_[level];
  const std::uint64_t block = index / config_.entries_per_block;
  const std::uint64_t offset =
      (index % config_.entries_per_block) * sizeof(leaf_id);

  leaf_id current = absent;
  const cost_split cost = oram.access_rmw(
      block, [&](std::span<std::uint8_t> payload) {
        std::memcpy(&current, payload.data() + offset, sizeof(leaf_id));
        if (new_value.has_value()) {
          const leaf_id value = *new_value;
          std::memcpy(payload.data() + offset, &value, sizeof(leaf_id));
        }
      });
  current_out = current;
  return cost;
}

cost_split recursive_position_map::lookup(block_id id,
                                          std::optional<leaf_id>& out) {
  expects(id < config_.universe, "block id outside the universe");
  cost_split cost;

  if (levels_.empty()) {
    const leaf_id value = residue_[id];
    out = value == absent ? std::nullopt : std::optional<leaf_id>(value);
    return cost;
  }

  // Walk deepest-first, mirroring the real protocol's order: the
  // residue seeds the deepest map ORAM access, each level's entry
  // locates the next-shallower map block, level 0 yields the answer.
  // (Deeper levels carry pattern and cost; the authoritative value
  // lives in level 0's packed payloads.)
  for (std::size_t level = levels_.size(); level-- > 1;) {
    leaf_id ignored = absent;
    // Index of the level-(k-1) map block this id routes through.
    std::uint64_t index = id;
    for (std::size_t k = 0; k < level; ++k) {
      index /= config_.entries_per_block;
    }
    cost += level_access(level, index, std::nullopt, ignored);
  }
  leaf_id value = absent;
  cost += level_access(0, id, std::nullopt, value);
  out = value == absent ? std::nullopt : std::optional<leaf_id>(value);
  return cost;
}

cost_split recursive_position_map::assign(block_id id, leaf_id leaf) {
  expects(id < config_.universe, "block id outside the universe");
  expects(leaf != absent, "reserved leaf value");
  cost_split cost;
  if (levels_.empty()) {
    residue_[id] = leaf;
    return cost;
  }
  for (std::size_t level = levels_.size(); level-- > 1;) {
    leaf_id ignored = absent;
    std::uint64_t index = id;
    for (std::size_t k = 0; k < level; ++k) {
      index /= config_.entries_per_block;
    }
    // Deeper map levels refresh their (pattern-bearing) entries too.
    cost += level_access(level, index, std::optional<leaf_id>(0),
                         ignored);
  }
  leaf_id ignored = absent;
  cost += level_access(0, id, std::optional<leaf_id>(leaf), ignored);
  return cost;
}

cost_split recursive_position_map::remove(block_id id) {
  expects(id < config_.universe, "block id outside the universe");
  cost_split cost;
  if (levels_.empty()) {
    residue_[id] = absent;
    return cost;
  }
  for (std::size_t level = levels_.size(); level-- > 1;) {
    leaf_id ignored = absent;
    std::uint64_t index = id;
    for (std::size_t k = 0; k < level; ++k) {
      index /= config_.entries_per_block;
    }
    cost += level_access(level, index, std::optional<leaf_id>(0),
                         ignored);
  }
  leaf_id ignored = absent;
  cost += level_access(0, id, std::optional<leaf_id>(absent), ignored);
  return cost;
}

void recursive_position_map::for_each_assigned(
    const std::function<void(block_id, leaf_id)>& visit) const {
  if (levels_.empty()) {
    for (block_id id = 0; id < residue_.size(); ++id) {
      if (residue_[id] != absent) {
        visit(id, residue_[id]);
      }
    }
    return;
  }
  // One device-free scan of the authoritative level-0 ORAM; each map
  // block packs entries_per_block consecutive entries.
  levels_[0]->for_each_resident(
      [&](block_id block, leaf_id /*block_leaf*/,
          std::span<const std::uint8_t> payload) {
        for (std::uint64_t k = 0; k < config_.entries_per_block; ++k) {
          const block_id id = block * config_.entries_per_block + k;
          if (id >= config_.universe) {
            break;
          }
          leaf_id value = absent;
          std::memcpy(&value, payload.data() + k * sizeof(leaf_id),
                      sizeof(leaf_id));
          if (value != absent) {
            visit(id, value);
          }
        }
      });
}

}  // namespace horam::oram
