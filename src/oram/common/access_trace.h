// The adversary's view.
//
// Every externally observable action — bus-visible memory bucket
// accesses, storage slot reads, sequential shuffle sweeps, scheduling
// cycle boundaries — is reported here by the ORAM layers. The pattern
// auditor (src/analysis/pattern_audit.h) replays a trace and checks the
// obliviousness invariants of DESIGN.md §6; tests fail if any layer
// leaks. Tracing is optional (pass nullptr) and adds no cost when off.
#ifndef HORAM_ORAM_COMMON_ACCESS_TRACE_H
#define HORAM_ORAM_COMMON_ACCESS_TRACE_H

#include <cstdint>
#include <vector>

namespace horam::oram {

/// Kinds of observable events. `a` and `b` give event-specific detail.
enum class event_kind : std::uint8_t {
  /// Storage slot read (a = global slot index).
  storage_read_slot,
  /// Storage slot written (a = global slot index).
  storage_write_slot,
  /// Sequential storage read sweep (a = first slot, b = count).
  storage_read_sweep,
  /// Sequential storage write sweep (a = first slot, b = count).
  storage_write_sweep,
  /// In-memory tree bucket read (a = bucket index).
  memory_bucket_read,
  /// In-memory tree bucket written (a = bucket index).
  memory_bucket_write,
  /// In-memory path access (a = leaf id, b = the tree's leaf count —
  /// distinguishes co-traced trees: cache tree, backend tree, map
  /// chain); buckets follow as events.
  memory_path_access,
  /// Scheduler cycle boundary (a = cycle index, b = group size c).
  cycle_begin,
  /// Access period boundary (a = period index).
  period_begin,
  /// Shuffle stage boundary (a = period index).
  shuffle_begin,
  /// One partition shuffled (a = partition index).
  shuffle_partition,
  /// One incremental shuffle slice pumped between access rounds
  /// (a = period index of the in-flight job, b = slice ordinal since
  /// the stats epoch). Only emitted by shuffle_policy::incremental
  /// with a bounded budget.
  shuffle_slice,
};

/// One observable event.
struct trace_event {
  event_kind kind;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Append-only event log. Owned by the test/bench harness; ORAM layers
/// receive a pointer and may ignore it when null.
class access_trace {
 public:
  void record(event_kind kind, std::uint64_t a = 0, std::uint64_t b = 0) {
    events_.push_back(trace_event{kind, a, b});
  }

  [[nodiscard]] const std::vector<trace_event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<trace_event> events_;
};

/// Convenience for optional tracing.
inline void trace(access_trace* sink, event_kind kind, std::uint64_t a = 0,
                  std::uint64_t b = 0) {
  if (sink != nullptr) {
    sink->record(kind, a, b);
  }
}

}  // namespace horam::oram

#endif  // HORAM_ORAM_COMMON_ACCESS_TRACE_H
