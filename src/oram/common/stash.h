// Path ORAM stash: trusted holding area for blocks between path reads
// and write-backs. Tracks its peak occupancy so tests can assert the
// standard Path ORAM bound (small constant for Z >= 4).
#ifndef HORAM_ORAM_COMMON_STASH_H
#define HORAM_ORAM_COMMON_STASH_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "oram/common/types.h"

namespace horam::oram {

/// A block held in trusted memory.
struct stash_entry {
  leaf_id leaf = 0;
  std::vector<std::uint8_t> payload;
};

/// Keyed holding area with peak tracking.
class stash {
 public:
  [[nodiscard]] bool contains(block_id id) const {
    return entries_.contains(id);
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t peak_size() const noexcept { return peak_; }

  /// Inserts or overwrites a block.
  void put(block_id id, leaf_id leaf, std::span<const std::uint8_t> payload) {
    auto& entry = entries_[id];
    entry.leaf = leaf;
    entry.payload.assign(payload.begin(), payload.end());
    peak_ = std::max(peak_, entries_.size());
  }

  /// Mutable access; the block must be present.
  [[nodiscard]] stash_entry& at(block_id id) { return entries_.at(id); }
  [[nodiscard]] const stash_entry& at(block_id id) const {
    return entries_.at(id);
  }

  void erase(block_id id) { entries_.erase(id); }
  void clear() { entries_.clear(); }

  /// Iteration over held blocks (write-back candidate selection).
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] auto begin() { return entries_.begin(); }
  [[nodiscard]] auto end() { return entries_.end(); }

 private:
  std::unordered_map<block_id, stash_entry> entries_;
  std::size_t peak_ = 0;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_COMMON_STASH_H
