// Position map: block id -> Path ORAM leaf. Lives in the trusted
// control layer (the paper's "secure shelter"); lookups are charged as
// control-layer bookkeeping by the callers.
#ifndef HORAM_ORAM_COMMON_POSITION_MAP_H
#define HORAM_ORAM_COMMON_POSITION_MAP_H

#include <cstdint>
#include <limits>
#include <vector>

#include "oram/common/types.h"
#include "util/contracts.h"

namespace horam::oram {

/// Dense map over a fixed id universe [0, universe). Absent entries are
/// explicit, so the same structure doubles as the "is the block cached
/// in memory?" bit H-ORAM's permutation list consults.
class position_map {
 public:
  explicit position_map(std::uint64_t universe)
      : leaves_(universe, absent) {}

  [[nodiscard]] std::uint64_t universe() const noexcept {
    return leaves_.size();
  }

  [[nodiscard]] bool contains(block_id id) const {
    expects(id < leaves_.size(), "block id outside the universe");
    return leaves_[id] != absent;
  }

  [[nodiscard]] leaf_id leaf_of(block_id id) const {
    expects(contains(id), "block has no assigned leaf");
    return leaves_[id];
  }

  void assign(block_id id, leaf_id leaf) {
    expects(id < leaves_.size(), "block id outside the universe");
    expects(leaf != absent, "reserved leaf value");
    leaves_[id] = leaf;
  }

  void remove(block_id id) {
    expects(id < leaves_.size(), "block id outside the universe");
    leaves_[id] = absent;
  }

  void clear() {
    std::fill(leaves_.begin(), leaves_.end(), absent);
  }

  /// Number of present entries (linear scan; test/diagnostic use).
  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t count = 0;
    for (const leaf_id leaf : leaves_) {
      count += leaf != absent ? 1 : 0;
    }
    return count;
  }

  /// Bytes of trusted memory this map occupies (reporting; the paper's
  /// Figure 4-1 annotates it as "Position map (4MB)").
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return leaves_.size() * sizeof(leaf_id);
  }

 private:
  static constexpr leaf_id absent = std::numeric_limits<leaf_id>::max();
  std::vector<leaf_id> leaves_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_COMMON_POSITION_MAP_H
