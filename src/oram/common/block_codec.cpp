#include "oram/common/block_codec.h"

#include <cstring>

#include "util/contracts.h"

namespace horam::oram {

block_codec::block_codec(std::size_t payload_bytes, bool seal,
                         std::uint64_t key_seed)
    : payload_bytes_(payload_bytes),
      seal_(seal),
      record_bytes_(8 + payload_bytes +
                    (seal ? crypto::seal_overhead : 0)),
      sealer_(crypto::derive_seal_keys(key_seed)) {
  expects(payload_bytes > 0, "payload must be non-empty");
}

void block_codec::encode(block_id id, std::span<const std::uint8_t> payload,
                         std::span<std::uint8_t> record_out) {
  expects(record_out.size() >= record_bytes_, "record buffer too small");
  expects(payload.size() <= payload_bytes_, "payload larger than block");

  std::vector<std::uint8_t> plain(8 + payload_bytes_, 0);
  for (int i = 0; i < 8; ++i) {
    plain[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
  if (!payload.empty()) {
    std::memcpy(plain.data() + 8, payload.data(), payload.size());
  }

  if (seal_) {
    const std::vector<std::uint8_t> sealed = sealer_.seal(plain);
    invariant(sealed.size() == record_bytes_, "sealed size mismatch");
    std::memcpy(record_out.data(), sealed.data(), sealed.size());
  } else {
    std::memcpy(record_out.data(), plain.data(), plain.size());
  }
}

void block_codec::encode_dummy(std::span<std::uint8_t> record_out) {
  encode(dummy_block_id, {}, record_out);
}

block_id block_codec::decode(std::span<const std::uint8_t> record,
                             std::span<std::uint8_t> payload_out) const {
  expects(record.size() >= record_bytes_, "record buffer too small");

  const std::uint8_t* plain = nullptr;
  std::vector<std::uint8_t> opened;
  if (seal_) {
    opened = sealer_.open(record.first(record_bytes_));
    invariant(opened.size() == 8 + payload_bytes_, "opened size mismatch");
    plain = opened.data();
  } else {
    plain = record.data();
  }

  block_id id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<block_id>(plain[i]) << (8 * i);
  }
  if (!payload_out.empty()) {
    expects(payload_out.size() >= payload_bytes_,
            "payload buffer too small");
    std::memcpy(payload_out.data(), plain + 8, payload_bytes_);
  }
  return id;
}

}  // namespace horam::oram
