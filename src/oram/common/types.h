// Shared vocabulary of the ORAM layers.
#ifndef HORAM_ORAM_COMMON_TYPES_H
#define HORAM_ORAM_COMMON_TYPES_H

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.h"

namespace horam::oram {

/// Logical block identifier (application address space, 0-based).
using block_id = std::uint64_t;

/// Identifier value reserved for dummy blocks.
inline constexpr block_id dummy_block_id =
    std::numeric_limits<block_id>::max();

/// Leaf label of a Path ORAM tree (0-based, < leaf_count).
using leaf_id = std::uint64_t;

/// Operation kind of a request.
enum class op_kind : std::uint8_t { read, write };

/// One real block leaving a cache layer with its current payload
/// (output of path_oram::evict_all, input of oram_backend shuffles).
struct evicted_block {
  block_id id = dummy_block_id;
  std::vector<std::uint8_t> payload;
};

/// Virtual-time cost of an operation, split by the resource that pays
/// it. The scheduler overlaps io with (memory + cpu); serial baselines
/// simply sum all three.
struct cost_split {
  sim::sim_time memory = 0;  // in-memory ORAM tree traffic
  sim::sim_time io = 0;      // storage-device traffic
  sim::sim_time cpu = 0;     // control-layer crypto + bookkeeping

  [[nodiscard]] sim::sim_time total() const noexcept {
    return memory + io + cpu;
  }
  cost_split& operator+=(const cost_split& other) noexcept {
    memory += other.memory;
    io += other.io;
    cpu += other.cpu;
    return *this;
  }
};

inline cost_split operator+(cost_split lhs, const cost_split& rhs) noexcept {
  lhs += rhs;
  return lhs;
}

}  // namespace horam::oram

#endif  // HORAM_ORAM_COMMON_TYPES_H
