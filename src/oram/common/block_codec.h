// Encoding of logical blocks into fixed-size store records.
//
// Record layout (plaintext form): 8-byte little-endian block id followed
// by the payload. With sealing enabled the whole plaintext is wrapped by
// crypto::block_sealer (nonce || ciphertext || mac), so records on
// untrusted stores reveal nothing — in particular not whether they are
// dummies — and are integrity-protected.
//
// Sealing can be disabled for large benchmark runs: records are stored
// in the clear, but callers still charge the modelled crypto time, so
// virtual-time results are identical.
#ifndef HORAM_ORAM_COMMON_BLOCK_CODEC_H
#define HORAM_ORAM_COMMON_BLOCK_CODEC_H

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/seal.h"
#include "oram/common/types.h"

namespace horam::oram {

/// Encodes and decodes (id, payload) pairs to fixed-size records.
class block_codec {
 public:
  /// `payload_bytes` is the application payload per block; `seal` turns
  /// real encryption + MAC on; `key_seed` derives the keys.
  block_codec(std::size_t payload_bytes, bool seal, std::uint64_t key_seed);

  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  [[nodiscard]] std::size_t record_bytes() const noexcept {
    return record_bytes_;
  }
  [[nodiscard]] bool sealing() const noexcept { return seal_; }

  /// Encodes a block into `record_out` (record_bytes long). A dummy
  /// block is encoded by passing dummy_block_id and an empty payload.
  void encode(block_id id, std::span<const std::uint8_t> payload,
              std::span<std::uint8_t> record_out);

  /// Convenience for dummy records.
  void encode_dummy(std::span<std::uint8_t> record_out);

  /// Decodes a record; returns the block id (dummy_block_id for
  /// dummies) and copies the payload into `payload_out` if non-empty.
  /// Throws crypto::crypto_error on MAC failure when sealing.
  block_id decode(std::span<const std::uint8_t> record,
                  std::span<std::uint8_t> payload_out) const;

 private:
  std::size_t payload_bytes_;
  bool seal_;
  std::size_t record_bytes_;
  crypto::block_sealer sealer_;
};

}  // namespace horam::oram

#endif  // HORAM_ORAM_COMMON_BLOCK_CODEC_H
