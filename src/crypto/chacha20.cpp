#include "crypto/chacha20.h"

#include <cstring>

namespace horam::crypto {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t v, int n) noexcept {
  return (v << n) | (v >> (32 - n));
}

constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b;
  d = rotl32(d ^ a, 16);
  c += d;
  b = rotl32(b ^ c, 12);
  a += b;
  d = rotl32(d ^ a, 8);
  c += d;
  b = rotl32(b ^ c, 7);
}

}  // namespace

void chacha20_block(const chacha_key& key, std::uint32_t counter,
                    const chacha_nonce& nonce,
                    std::span<std::uint8_t, 64> out) {
  // RFC 8439 state layout: constants, key, counter, nonce.
  std::uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = load_le32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = load_le32(nonce.data() + 4 * i);
  }

  std::uint32_t working[16];
  std::memcpy(working, state, sizeof working);
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, working[i] + state[i]);
  }
}

void chacha20_xor(const chacha_key& key, const chacha_nonce& nonce,
                  std::uint32_t initial_counter,
                  std::span<std::uint8_t> data) {
  std::array<std::uint8_t, 64> keystream;
  std::uint32_t counter = initial_counter;
  std::size_t offset = 0;
  while (offset < data.size()) {
    chacha20_block(key, counter++, nonce, keystream);
    const std::size_t chunk = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < chunk; ++i) {
      data[offset + i] ^= keystream[i];
    }
    offset += chunk;
  }
}

chacha_rng::chacha_rng(const chacha_key& key, std::uint64_t stream)
    : key_(key) {
  // The stream index occupies the first 8 nonce bytes; the remaining 4
  // stay zero. Each (key, stream) pair yields an independent keystream.
  for (int i = 0; i < 8; ++i) {
    nonce_[i] = static_cast<std::uint8_t>(stream >> (8 * i));
  }
}

chacha_rng::chacha_rng(std::uint64_t seed, std::uint64_t stream)
    : chacha_rng(
          [&] {
            chacha_key key{};
            // Expand the seed with splitmix64 so near-by seeds yield
            // unrelated keys.
            std::uint64_t x = seed;
            for (int word = 0; word < 4; ++word) {
              x += 0x9e3779b97f4a7c15ULL;
              std::uint64_t z = x;
              z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
              z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
              z ^= z >> 31;
              for (int i = 0; i < 8; ++i) {
                key[8 * word + i] = static_cast<std::uint8_t>(z >> (8 * i));
              }
            }
            return key;
          }(),
          stream) {}

std::uint64_t chacha_rng::next_u64() {
  if (used_ + 8 > buffer_.size()) {
    refill();
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(buffer_[used_ + i]) << (8 * i);
  }
  used_ += 8;
  return value;
}

void chacha_rng::refill() {
  chacha20_block(key_, counter_++, nonce_, buffer_);
  used_ = 0;
}

}  // namespace horam::crypto
