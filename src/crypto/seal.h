// Authenticated block sealing: encrypt-then-MAC with ChaCha20 + SipHash.
//
// Every block leaving the trusted control layer is sealed under a fresh
// nonce, so two ciphertexts of the same plaintext are unlinkable — the
// property that lets H-ORAM rewrite unmodified data during path
// write-back and shuffles without revealing that nothing changed.
#ifndef HORAM_CRYPTO_SEAL_H
#define HORAM_CRYPTO_SEAL_H

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/chacha20.h"
#include "crypto/siphash.h"

namespace horam::crypto {

/// Extra bytes a sealed block carries beyond the plaintext
/// (12-byte nonce + 8-byte MAC).
inline constexpr std::size_t seal_overhead = 12 + 8;

/// Key material for the sealing scheme (independent encryption and MAC
/// keys, per standard encrypt-then-MAC practice).
struct seal_keys {
  chacha_key encryption_key{};
  siphash_key mac_key{};
};

/// Derives both keys deterministically from a 64-bit master seed.
seal_keys derive_seal_keys(std::uint64_t master_seed);

/// Stateful sealer. Nonces are drawn from an internal counter, which is
/// unique-per-seal as long as one sealer instance guards one store.
class block_sealer {
 public:
  explicit block_sealer(const seal_keys& keys);

  /// Seals `plaintext`; the result is plaintext.size() + seal_overhead
  /// bytes: nonce || ciphertext || mac.
  [[nodiscard]] std::vector<std::uint8_t> seal(
      std::span<const std::uint8_t> plaintext);

  /// Opens a sealed buffer. Throws crypto_error if the MAC check fails
  /// (tampering) or the buffer is malformed.
  [[nodiscard]] std::vector<std::uint8_t> open(
      std::span<const std::uint8_t> sealed) const;

 private:
  seal_keys keys_;
  std::uint64_t nonce_counter_ = 0;
};

/// Thrown when authentication fails or a sealed buffer is malformed.
class crypto_error : public std::runtime_error {
 public:
  explicit crypto_error(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace horam::crypto

#endif  // HORAM_CRYPTO_SEAL_H
