#include "crypto/siphash.h"

namespace horam::crypto {

namespace {

constexpr std::uint64_t rotl64(std::uint64_t v, int n) noexcept {
  return (v << n) | (v >> (64 - n));
}

constexpr std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

struct sip_state {
  std::uint64_t v0, v1, v2, v3;

  void round() noexcept {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(const siphash_key& key,
                        std::span<const std::uint8_t> data) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  sip_state s{0x736f6d6570736575ULL ^ k0, 0x646f72616e646f6dULL ^ k1,
              0x6c7967656e657261ULL ^ k0, 0x7465646279746573ULL ^ k1};

  const std::size_t full_words = data.size() / 8;
  for (std::size_t w = 0; w < full_words; ++w) {
    const std::uint64_t m = load_le64(data.data() + 8 * w);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  // Final word: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(data.size() & 0xff) << 56;
  const std::size_t tail = data.size() & 7;
  for (std::size_t i = 0; i < tail; ++i) {
    last |= static_cast<std::uint64_t>(data[8 * full_words + i]) << (8 * i);
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24_u64(const siphash_key& key, std::uint64_t value) {
  std::array<std::uint8_t, 8> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  return siphash24(key, bytes);
}

}  // namespace horam::crypto
