// SipHash-2-4 (Aumasson & Bernstein), implemented from scratch.
//
// Serves as the keyed PRF of the codebase: block MACs (crypto/seal.h) and
// pseudorandom address derivation where a permutation needs to be
// recomputable from a small secret.
#ifndef HORAM_CRYPTO_SIPHASH_H
#define HORAM_CRYPTO_SIPHASH_H

#include <array>
#include <cstdint>
#include <span>

namespace horam::crypto {

/// 128-bit SipHash key.
using siphash_key = std::array<std::uint8_t, 16>;

/// SipHash-2-4 of `data` under `key`; returns the 64-bit tag.
std::uint64_t siphash24(const siphash_key& key,
                        std::span<const std::uint8_t> data);

/// PRF convenience: SipHash of a single 64-bit message word.
std::uint64_t siphash24_u64(const siphash_key& key, std::uint64_t value);

}  // namespace horam::crypto

#endif  // HORAM_CRYPTO_SIPHASH_H
