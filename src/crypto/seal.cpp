#include "crypto/seal.h"

#include <cstring>

namespace horam::crypto {

seal_keys derive_seal_keys(std::uint64_t master_seed) {
  // Expand the master seed through a ChaCha20 stream keyed off the seed;
  // the first 32 bytes become the encryption key, the next 16 the MAC key.
  chacha_rng expander(master_seed, /*stream=*/0x5ea1);
  seal_keys keys;
  for (auto& byte : keys.encryption_key) {
    byte = static_cast<std::uint8_t>(expander.next_u64());
  }
  for (auto& byte : keys.mac_key) {
    byte = static_cast<std::uint8_t>(expander.next_u64());
  }
  return keys;
}

block_sealer::block_sealer(const seal_keys& keys) : keys_(keys) {}

std::vector<std::uint8_t> block_sealer::seal(
    std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> out(plaintext.size() + seal_overhead);

  // Nonce: 8-byte counter || 4 zero bytes. Unique per seal per instance.
  chacha_nonce nonce{};
  const std::uint64_t n = nonce_counter_++;
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(n >> (8 * i));
  }
  std::memcpy(out.data(), nonce.data(), nonce.size());

  // Ciphertext.
  std::uint8_t* const ct = out.data() + nonce.size();
  std::memcpy(ct, plaintext.data(), plaintext.size());
  chacha20_xor(keys_.encryption_key, nonce, /*initial_counter=*/1,
               std::span<std::uint8_t>(ct, plaintext.size()));

  // MAC over nonce || ciphertext.
  const std::uint64_t tag = siphash24(
      keys_.mac_key,
      std::span<const std::uint8_t>(out.data(),
                                    nonce.size() + plaintext.size()));
  std::uint8_t* const mac = ct + plaintext.size();
  for (int i = 0; i < 8; ++i) {
    mac[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  return out;
}

std::vector<std::uint8_t> block_sealer::open(
    std::span<const std::uint8_t> sealed) const {
  if (sealed.size() < seal_overhead) {
    throw crypto_error("sealed buffer shorter than seal overhead");
  }
  const std::size_t payload_size = sealed.size() - seal_overhead;

  const std::uint64_t expected_tag = siphash24(
      keys_.mac_key,
      std::span<const std::uint8_t>(sealed.data(), 12 + payload_size));
  std::uint64_t stored_tag = 0;
  for (int i = 0; i < 8; ++i) {
    stored_tag |= static_cast<std::uint64_t>(sealed[12 + payload_size +
                                                    static_cast<std::size_t>(
                                                        i)])
                  << (8 * i);
  }
  if (stored_tag != expected_tag) {
    throw crypto_error("MAC verification failed: block tampered or corrupt");
  }

  chacha_nonce nonce{};
  std::memcpy(nonce.data(), sealed.data(), nonce.size());
  std::vector<std::uint8_t> plaintext(payload_size);
  std::memcpy(plaintext.data(), sealed.data() + 12, payload_size);
  chacha20_xor(keys_.encryption_key, nonce, /*initial_counter=*/1,
               plaintext);
  return plaintext;
}

}  // namespace horam::crypto
