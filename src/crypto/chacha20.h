// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// Used for two jobs in this codebase:
//   * sealing block payloads before they leave the trusted control layer
//     (see crypto/seal.h), and
//   * as the core of chacha_rng, the CSPRNG behind all security-relevant
//     random choices (leaf remapping, permutation generation).
#ifndef HORAM_CRYPTO_CHACHA20_H
#define HORAM_CRYPTO_CHACHA20_H

#include <array>
#include <cstdint>
#include <span>

#include "util/rng.h"

namespace horam::crypto {

/// 256-bit key.
using chacha_key = std::array<std::uint8_t, 32>;
/// 96-bit nonce (RFC 8439 layout).
using chacha_nonce = std::array<std::uint8_t, 12>;

/// Computes one 64-byte ChaCha20 keystream block for (key, counter, nonce).
void chacha20_block(const chacha_key& key, std::uint32_t counter,
                    const chacha_nonce& nonce,
                    std::span<std::uint8_t, 64> out);

/// XORs `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
void chacha20_xor(const chacha_key& key, const chacha_nonce& nonce,
                  std::uint32_t initial_counter,
                  std::span<std::uint8_t> data);

/// Cryptographically strong random stream built on the ChaCha20 block
/// function in counter mode. Deterministic for a fixed key, which keeps
/// simulations reproducible while exercising the exact code path a
/// deployment would use with a hardware-seeded key.
class chacha_rng final : public util::random_source {
 public:
  explicit chacha_rng(const chacha_key& key, std::uint64_t stream = 0);

  /// Convenience: derives the 256-bit key from a 64-bit seed (test use).
  explicit chacha_rng(std::uint64_t seed, std::uint64_t stream = 0);

  std::uint64_t next_u64() override;

 private:
  void refill();

  chacha_key key_{};
  chacha_nonce nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t used_ = 64;  // Forces a refill on first use.
};

}  // namespace horam::crypto

#endif  // HORAM_CRYPTO_CHACHA20_H
