#include "core/controller.h"

#include <algorithm>
#include <cstring>

#include "util/contracts.h"
#include "util/math.h"

namespace horam {

namespace {

/// In-memory tree sizing: the largest power-of-two leaf count whose
/// tree (Z blocks per bucket) fits in `memory_blocks` blocks.
std::uint64_t tree_leaf_count(std::uint64_t memory_blocks,
                              std::uint32_t bucket_size) {
  const std::uint64_t target = std::max<std::uint64_t>(
      1, memory_blocks / (2 * bucket_size));
  return util::is_pow2(target) ? target
                               : util::next_pow2(target) / 2;
}

}  // namespace

controller::controller(const horam_config& config,
                       std::unique_ptr<oram_backend> backend,
                       sim::block_device& memory_device,
                       const sim::cpu_model& cpu, util::random_source& rng,
                       oram::access_trace* trace)
    : config_(config),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      scheduler_(config.stages, config.period_loads(),
                 config.prefetch_factor) {
  config_.validate();
  expects(backend != nullptr, "controller needs an oram_backend");

  oram::path_oram_config tree_config;
  tree_config.leaf_count =
      tree_leaf_count(config_.memory_blocks, config_.bucket_size);
  tree_config.bucket_size = config_.bucket_size;
  tree_config.payload_bytes = config_.payload_bytes;
  tree_config.logical_block_bytes = config_.logical_block_bytes;
  tree_config.id_universe = config_.block_count;
  tree_config.seal = config_.seal;
  tree_config.key_seed = config_.key_seed ^ 0x7472;
  tree_ = std::make_unique<oram::path_oram>(tree_config, memory_device,
                                            /*io_device=*/nullptr, cpu_,
                                            rng_, trace_);
  memory_device.reset_stats();

  storage_ = std::move(backend);
}

controller::controller(
    const horam_config& config, sim::block_device& storage_device,
    sim::block_device& memory_device, const sim::cpu_model& cpu,
    util::random_source& rng, oram::access_trace* trace,
    const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
        filler)
    : controller(config,
                 std::make_unique<storage_layer>(config, storage_device,
                                                 cpu, rng, trace, filler),
                 memory_device, cpu, rng, trace) {
  attach_device_stats(&storage_device.stats());
}

const storage_layer& controller::storage() const {
  const auto* partitioned = dynamic_cast<const storage_layer*>(
      storage_.get());
  expects(partitioned != nullptr,
          "storage() requires the partitioned backend; use backend()");
  return *partitioned;
}

bool controller::resident(oram::block_id id) const {
  return tree_->contains(id) || shelter_.contains(id) ||
         (shuffle_job_ != nullptr && shuffle_job_->holds(id));
}

oram::cost_split controller::service_hit(const request& req,
                                         request_result* result) {
  oram::cost_split cost;
  if (shuffle_job_ != nullptr) {
    if (std::vector<std::uint8_t>* staged = shuffle_job_->staged(req.id)) {
      // Block staged in the in-flight shuffle job: serve from trusted
      // memory, cover with a dummy path access so the bus shape is
      // unchanged (the shelter pattern); writes go through into the
      // staged copy so the shuffle places the fresh data.
      cost += tree_->dummy_access();
      cost.cpu += cpu_.word_ops_time(8);
      if (req.op == oram::op_kind::write) {
        if (req.fetch_before_write && result != nullptr) {
          result->read_data = *staged;
          result->read_data.resize(config_.payload_bytes, 0);
        }
        staged->assign(req.write_data.begin(), req.write_data.end());
        staged->resize(config_.payload_bytes, 0);
      } else if (result != nullptr) {
        result->read_data = *staged;
        result->read_data.resize(config_.payload_bytes, 0);
      }
      return cost;
    }
  }
  const auto shelter_it = shelter_.find(req.id);
  if (shelter_it != shelter_.end()) {
    // Shelter-resident block: serve from trusted memory, cover with a
    // dummy path access so the bus shape is unchanged.
    cost += tree_->dummy_access();
    cost.cpu += cpu_.word_ops_time(8);
    if (req.op == oram::op_kind::write) {
      if (req.fetch_before_write && result != nullptr) {
        result->read_data = shelter_it->second;
        result->read_data.resize(config_.payload_bytes, 0);
      }
      shelter_it->second.assign(req.write_data.begin(),
                                req.write_data.end());
      shelter_it->second.resize(config_.payload_bytes, 0);
    } else if (result != nullptr) {
      result->read_data = shelter_it->second;
      result->read_data.resize(config_.payload_bytes, 0);
    }
    return cost;
  }

  if (req.op == oram::op_kind::write) {
    if (req.fetch_before_write && result != nullptr) {
      // One path access serves both halves: the updater sees the old
      // payload in the stash, copies it out, then overwrites in place —
      // same bus shape and same RNG draws as a plain write.
      expects(req.write_data.size() <= config_.payload_bytes,
              "write larger than the block payload");
      cost += tree_->access_rmw(
          req.id, [&](std::span<std::uint8_t> payload) {
            result->read_data.assign(payload.begin(), payload.end());
            std::fill(payload.begin(), payload.end(), 0);
            if (!req.write_data.empty()) {
              std::memcpy(payload.data(), req.write_data.data(),
                          req.write_data.size());
            }
          });
    } else {
      cost += tree_->access(oram::op_kind::write, req.id, req.write_data,
                            {});
    }
  } else if (result != nullptr) {
    result->read_data.resize(config_.payload_bytes);
    cost += tree_->access(oram::op_kind::read, req.id, {},
                          result->read_data);
  } else {
    cost += tree_->access(oram::op_kind::read, req.id, {}, {});
  }
  return cost;
}

void controller::run(std::span<const request> requests,
                     std::vector<request_result>* results) {
  invariant(rob_.empty(), "previous batch left requests in the ROB");
  if (results != nullptr) {
    results->assign(requests.size(), request_result{});
  }
  for (const request& req : requests) {
    expects(req.id < config_.block_count, "request id out of range");
  }

  std::vector<std::uint8_t> was_scheduled_miss(requests.size(), 0);
  /// ROB-entry timestamps: request_latency measures entry → retirement.
  std::vector<sim::sim_time> enqueued_at(requests.size(), 0);
  std::uint64_t next_to_enqueue = 0;
  std::uint64_t serviced = 0;

  const auto id_of = [&](std::uint64_t request_index) {
    return requests[request_index].id;
  };
  const auto is_resident = [&](oram::block_id id) { return resident(id); };

  while (serviced < requests.size()) {
    // Keep the ROB ahead of the prefetch window.
    const std::uint64_t want = scheduler_.round_budget(loads_this_period_);
    while (rob_.size() < want && next_to_enqueue < requests.size()) {
      enqueued_at[next_to_enqueue] = clock_.now();
      rob_.push(next_to_enqueue++);
    }

    const cycle_plan plan =
        scheduler_.plan(rob_, loads_this_period_, id_of, is_resident);
    trace(trace_, oram::event_kind::cycle_begin, stats_.cycles, plan.c);

    // --- I/O lane: exactly one storage load per cycle. ---
    oram_backend::load_result load;
    if (plan.miss_position.has_value()) {
      rob_table::entry& miss_entry = rob_.at(*plan.miss_position);
      miss_entry.loading = true;
      was_scheduled_miss[miss_entry.request_index] = 1;
      load = storage_->load_block(requests[miss_entry.request_index].id);
      ++stats_.real_loads;
    } else {
      load = storage_->dummy_load();
      ++stats_.dummy_loads;
    }

    // --- Memory lane: c path accesses (real hits + dummy padding). ---
    oram::cost_split memory_cost;
    for (const std::size_t position : plan.hit_positions) {
      const std::uint64_t request_index = rob_.at(position).request_index;
      request_result* result =
          results != nullptr ? &(*results)[request_index] : nullptr;
      memory_cost += service_hit(requests[request_index], result);
    }
    for (std::uint32_t k = 0; k < plan.dummy_hits; ++k) {
      memory_cost += tree_->dummy_access();
      ++stats_.dummy_path_accesses;
    }

    // The loaded block lands in the tree stash at cycle end.
    oram::cost_split install_cost;
    if (load.id != oram::dummy_block_id) {
      install_cost = tree_->install(load.id, load.payload);
    }

    // Lanes overlap (§4.1: "the I/O loads and in-memory reads are
    // conducted simultaneously"); the cycle lasts the slower lane. A
    // load's memory time (e.g. the path backend's recursive-map walk)
    // is serial with its storage access, so it extends the I/O lane.
    const sim::sim_time io_lane =
        load.cost.io + load.cost.memory + load.cost.cpu + install_cost.cpu;
    const sim::sim_time memory_lane =
        memory_cost.memory + memory_cost.cpu;
    const sim::sim_time cycle_time = std::max(io_lane, memory_lane);
    clock_.advance(cycle_time);

    // Async write-back debt drains with otherwise-idle device time.
    if (flush_debt_ > 0) {
      flush_debt_ = std::max<sim::sim_time>(
          0, flush_debt_ - (cycle_time - load.cost.io));
    }

    ++stats_.cycles;
    stats_.access_time += cycle_time;
    stats_.io_busy += load.cost.io;
    stats_.io_load_time += load.cost.io;
    stats_.memory_busy += memory_cost.memory + load.cost.memory;
    stats_.cpu_busy += load.cost.cpu + memory_cost.cpu + install_cost.cpu;

    // Retire serviced requests (descending positions keep indices valid).
    for (auto it = plan.hit_positions.rbegin();
         it != plan.hit_positions.rend(); ++it) {
      const std::uint64_t request_index = rob_.at(*it).request_index;
      if (results != nullptr) {
        (*results)[request_index].completion_time = clock_.now();
        (*results)[request_index].hit =
            was_scheduled_miss[request_index] == 0;
      }
      if (was_scheduled_miss[request_index] == 0) {
        ++stats_.hits;
      } else {
        ++stats_.misses;
      }
      stats_.request_latency.record(clock_.now() -
                                    enqueued_at[request_index]);
      rob_.remove(*it);
      ++serviced;
      ++stats_.requests;
    }
    rob_.clear_loading_flags();

    // Period bookkeeping: every cycle consumes one of the n/2 loads.
    if (++loads_this_period_ >= config_.period_loads()) {
      run_shuffle_period();
    }

    // Deamortization point: one budget-bounded slice of any in-flight
    // incremental shuffle job runs between access rounds, so its
    // device time lands in slice-sized pieces instead of one cliff.
    pump_shuffle_slice();
  }
  stats_.total_time = clock_.now() - stats_epoch_;
}

void controller::reset_stats() noexcept {
  stats_ = controller_stats{};
  stats_epoch_ = clock_.now();
}

std::uint64_t controller::round_budget() const noexcept {
  return scheduler_.round_budget(loads_this_period_);
}

void controller::pump_shuffle_slice() {
  if (shuffle_job_ == nullptr) {
    return;
  }
  // The job was begun by the period that just ended (period_index_ was
  // advanced at creation).
  trace(trace_, oram::event_kind::shuffle_slice, period_index_ - 1,
        stats_.shuffle_slices);
  const sim::io_stats device_before =
      device_stats_ != nullptr ? *device_stats_ : sim::io_stats{};
  const shuffle_cost sc = shuffle_job_->step(config_.shuffle_slice_budget);
  clock_.advance(sc.total());
  ++stats_.shuffle_slices;
  stats_.shuffle_time += sc.total();
  stats_.io_busy += sc.io_read + sc.io_write;
  stats_.memory_busy += sc.memory;
  stats_.cpu_busy += sc.cpu;
  if (shuffle_job_->done()) {
    std::vector<oram::evicted_block> overflow;
    shuffle_job_->finish(overflow);
    shuffle_job_.reset();
    for (auto& block : overflow) {
      shelter_.emplace(block.id, std::move(block.payload));
    }
  }
  charge_shuffle_device_delta(device_before);
}

void controller::charge_shuffle_device_delta(
    const sim::io_stats& before) noexcept {
  if (device_stats_ == nullptr) {
    return;
  }
  stats_.shuffle_device_read_ops +=
      device_stats_->read_ops - before.read_ops;
  stats_.shuffle_device_write_ops +=
      device_stats_->write_ops - before.write_ops;
  stats_.shuffle_device_read_bytes +=
      device_stats_->bytes_read - before.bytes_read;
  stats_.shuffle_device_write_bytes +=
      device_stats_->bytes_written - before.bytes_written;
  stats_.shuffle_device_round_trips +=
      device_stats_->round_trips - before.round_trips;
}

void controller::run_shuffle_period() {
  // An incremental job still in flight blocks the next period: drain
  // it foreground now — the latency cliff a well-sized slice budget
  // avoids (budget * period_loads should cover a whole shuffle).
  while (shuffle_job_ != nullptr) {
    const sim::sim_time stall_begin = clock_.now();
    pump_shuffle_slice();
    stats_.shuffle_stall_time += clock_.now() - stall_begin;
  }

  trace(trace_, oram::event_kind::period_begin, period_index_);

  // 1) Oblivious tree evict (§4.3.1).
  std::vector<oram::evicted_block> evicted;
  const oram::cost_split evict_cost = tree_->evict_all(evicted);

  // Shelter blocks re-enter the shuffle as hot data too.
  for (auto& [id, payload] : shelter_) {
    evicted.push_back(oram::evicted_block{id, std::move(payload)});
  }
  shelter_.clear();

  // 2) Group-and-partition shuffle (§4.3.2) — monolithic, or through
  // the backend's incremental job API under shuffle_policy::
  // incremental. A bounded budget defers the job to the slice pump; an
  // unbounded one drives it to completion right here, reproducing the
  // foreground machine bit for bit through the job entry point.
  const bool deferred = config_.shuffle == shuffle_policy::incremental &&
                        config_.shuffle_slice_budget > 0;
  std::vector<oram::evicted_block> overflow;
  shuffle_cost sc;
  const sim::io_stats device_before =
      device_stats_ != nullptr ? *device_stats_ : sim::io_stats{};
  if (config_.shuffle == shuffle_policy::incremental) {
    std::unique_ptr<shuffle_job> job =
        storage_->begin_shuffle(std::move(evicted), period_index_);
    if (deferred) {
      shuffle_job_ = std::move(job);
    } else {
      while (!job->done()) {
        sc += job->step(0);
      }
      job->finish(overflow);
    }
  } else {
    sc = storage_->shuffle_period(std::move(evicted), period_index_,
                                  overflow);
  }
  charge_shuffle_device_delta(device_before);
  for (auto& block : overflow) {
    shelter_.emplace(block.id, std::move(block.payload));
  }

  // 3) Initialise a new tree (§4.1.3 step 3).
  const oram::cost_split reset_cost = tree_->reset();

  // Charge wall time according to the shuffle policy.
  const sim::sim_time local_work = evict_cost.memory + evict_cost.cpu +
                                   reset_cost.memory + reset_cost.cpu;
  sim::sim_time charged = 0;
  switch (config_.shuffle) {
    case shuffle_policy::foreground:
      charged = flush_debt_ + local_work + sc.total();
      flush_debt_ = 0;
      break;
    case shuffle_policy::async_writeback:
      // Reads and trusted-memory work are foreground; writes are
      // absorbed by the write-back cache and drain during the next
      // access period (leftover debt stalls the next shuffle).
      charged = flush_debt_ + local_work + sc.io_read + sc.memory + sc.cpu;
      flush_debt_ = sc.io_write;
      break;
    case shuffle_policy::offloaded:
      // Figure 5-2: the storage-side shuffle runs off the critical
      // path; only the local tree evict + rebuild is paid.
      charged = local_work;
      break;
    case shuffle_policy::incremental:
      // Local tree work lands at the boundary; the backend's device
      // time lands slice by slice between rounds (pump_shuffle_slice)
      // — or, with an unbounded budget, entirely in sc right here.
      charged = flush_debt_ + local_work + sc.total();
      flush_debt_ = 0;
      break;
  }
  clock_.advance(charged);

  stats_.shuffle_time += local_work + sc.total();
  stats_.io_busy += sc.io_read + sc.io_write;
  stats_.memory_busy += evict_cost.memory + reset_cost.memory + sc.memory;
  stats_.cpu_busy += evict_cost.cpu + reset_cost.cpu + sc.cpu;
  ++stats_.periods;
  loads_this_period_ = 0;
  ++period_index_;
}

void controller::submit(request req) {
  expects(req.id < config_.block_count, "request id out of range");
  pending_.push_back(std::move(req));
}

void controller::submit(std::span<const request> requests) {
  // Validate the whole batch before appending so a bad id cannot leave
  // a partial prefix in the session queue.
  for (const request& req : requests) {
    expects(req.id < config_.block_count, "request id out of range");
  }
  pending_.insert(pending_.end(), requests.begin(), requests.end());
}

void controller::drain(std::vector<request_result>* results) {
  std::vector<request> batch;
  batch.swap(pending_);
  run(batch, results);
}

std::vector<std::uint8_t> controller::read(oram::block_id id) {
  std::vector<request> batch(1);
  batch[0].op = oram::op_kind::read;
  batch[0].id = id;
  std::vector<request_result> results;
  run(batch, &results);
  return std::move(results[0].read_data);
}

void controller::write(oram::block_id id,
                       std::span<const std::uint8_t> data) {
  std::vector<request> batch(1);
  batch[0].op = oram::op_kind::write;
  batch[0].id = id;
  batch[0].write_data.assign(data.begin(), data.end());
  run(batch, nullptr);
}

std::uint64_t controller::control_memory_bytes() const {
  // Position map + backend bookkeeping + ROB + stash payloads (rough,
  // for the Figure 4-1 style report).
  const std::uint64_t position_map = config_.block_count * 8;
  const std::uint64_t stash_bytes =
      tree_->stash_ref().size() * (config_.payload_bytes + 16);
  return position_map + storage_->control_memory_bytes() + stash_bytes;
}

}  // namespace horam
