// Sharded ORAM engine: an oblivious batch-router over N independent
// controller shards.
//
// A single controller funnels every request through one storage lane,
// one shuffle period and one ROB, so throughput is capped by a single
// device no matter how many tenants the service admits. The engine
// stripes the block space over shard_count independent controllers —
// each with its own backend instance, storage/memory device lanes, ROB
// and shuffle period — and becomes the unit of execution the facade and
// the tenant scheduler pump.
//
// Routing privacy: a bare deterministic shard index would let the bus
// adversary count per-shard access frequencies and recover cross-shard
// workload skew. Requests are therefore routed by a keyed SipHash PRF
// over the block id (the mapping is secret and balanced), and the
// engine executes in *rounds*: each round every shard runs exactly
// round_cap() request slots — real requests from its queue, topped up
// with dummy requests on uniformly random shard-local blocks — so the
// per-shard bus shape is data-independent whatever the skew. A
// completion-ordering layer maps shard-local completion sim-times back
// onto the engine's global clock (lanes run in parallel: a round lasts
// the slowest shard), so ticket/latency semantics are unchanged.
//
// shard_count == 1 degenerates to an exact pass-through around one
// controller: no PRF, no padding, no time mapping — bit-for-bit the
// historical single-controller behavior (tests assert this).
//
// Request coalescing (config.coalescing, src/coalesce/): each round the
// coordinator folds same-block requests into one physical access per
// block via a trusted-memory round_table and fans the result back out
// to every member. Only the *real* slot count changes — rounds are
// still topped up to the public cap with dummies, now for single-shard
// engines too, so the bus shape stays data-independent whatever the
// duplicate rate. Off is bit-for-bit the non-coalescing machine (the
// pad stream is never drawn on a single shard with coalescing off).
//
// Execution runtime: lanes are serviced either by the historical
// single-threaded machine (runtime_policy::sim) or by per-shard worker
// threads (runtime_policy::threaded, src/runtime/). Either way a
// shard's controller, backend, devices, RNG and trace are touched by
// exactly one thread at a time: under the threaded runtime shard s is
// confined to worker s % worker_threads(), the coordinator keeps the
// routing queues, and the only data crossing threads are lane_task
// messages in and lane_report messages out through bounded mailboxes.
// Reports merge in shard-index order regardless of finish order, so a
// fixed seed produces bit-for-bit identical traces, stats and
// completion times under both runtimes.
#ifndef HORAM_CORE_ENGINE_H
#define HORAM_CORE_ENGINE_H

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "coalesce/coalescer.h"
#include "core/config.h"
#include "core/controller.h"
#include "crypto/siphash.h"
#include "oram/common/access_trace.h"
#include "oram/common/types.h"
#include "runtime/mailbox.h"
#include "runtime/worker_pool.h"
#include "sim/cpu_model.h"
#include "sim/device.h"
#include "util/rng.h"

namespace horam {

/// Router-level counters, beyond the per-shard controller stats.
struct engine_stats {
  /// Padded router rounds executed (0 for single-shard engines, whose
  /// batches pass straight through to the controller).
  std::uint64_t rounds = 0;
  /// Application requests serviced.
  std::uint64_t real_requests = 0;
  /// Dummy requests injected to pad shard rounds to the public cap.
  std::uint64_t pad_requests = 0;
  /// Hit/miss split of the padding traffic (control-layer knowledge;
  /// lets stats() report application-level hit rates).
  std::uint64_t pad_hits = 0;
  std::uint64_t pad_misses = 0;
  /// Real (non-dummy) physical ORAM accesses issued — one per
  /// coalescing group. Equals real_requests with coalescing off.
  std::uint64_t physical_accesses = 0;
  /// Logical requests absorbed by the round coalescing table without a
  /// physical access of their own (real_requests - physical_accesses);
  /// 0 with coalescing off.
  std::uint64_t coalesced_requests = 0;

  /// Physical ORAM accesses per logical request — the constant factor
  /// coalescing attacks (1.0 with coalescing off; lower is better).
  [[nodiscard]] double ios_per_logical_request() const noexcept {
    return real_requests == 0
               ? 0.0
               : static_cast<double>(physical_accesses) /
                     static_cast<double>(real_requests);
  }
};

class engine {
 public:
  /// Builds the oblivious store of one shard over that shard's own
  /// device lane. `shard_config` is the shard-local view (block_count =
  /// the shard's share, shard-local id space); `shard_blocks` maps
  /// shard-local ids back to global ids (empty = identity, the
  /// single-shard case) so fillers can be rebased.
  using shard_factory = std::function<std::unique_ptr<oram_backend>(
      std::uint32_t shard_index, const horam_config& shard_config,
      sim::block_device& storage, sim::block_device& memory,
      const sim::cpu_model& cpu, util::random_source& rng,
      oram::access_trace* trace,
      std::span<const oram::block_id> shard_blocks)>;

  /// Completion delivery for the incremental round API: the token
  /// submit() returned and the request's result with completion_time
  /// already mapped onto the engine's global clock.
  using completion =
      std::function<void(std::uint64_t token, request_result&& result)>;

  /// Machine-lane parameters shared by every shard.
  struct options {
    sim::device_profile storage_profile;
    sim::device_profile memory_profile;
    std::uint64_t seed = 0;
    /// Record each shard's observable bus trace (shard_trace()).
    bool trace = false;
  };

  /// Owning constructor: assembles shard_count() device lanes, invokes
  /// `factory` once per shard and wires one controller per shard.
  /// `config` is the global view (block_count = whole dataset,
  /// memory_blocks = total cache budget, split evenly across shards).
  engine(const horam_config& config, const sim::cpu_model& cpu,
         const shard_factory& factory, const options& opts);

  /// Wraps one externally owned controller as a single pass-through
  /// shard (multi_user_frontend compatibility). The engine owns no
  /// devices; reset_stats() touches only the controller.
  explicit engine(controller& external);

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;
  ~engine();  // defined where shard_state is complete

  // ----------------------------------------------------------- routing

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Shard owning global block `id` (keyed PRF; identity-0 for one
  /// shard).
  [[nodiscard]] std::uint32_t shard_of(oram::block_id id) const;
  /// `id` translated into its shard's local block space.
  [[nodiscard]] oram::block_id shard_local_id(oram::block_id id) const;
  /// Request slots every shard executes per round (public by design).
  [[nodiscard]] std::uint32_t round_cap() const noexcept {
    return round_cap_;
  }
  /// Worker threads servicing shard lanes: 0 under runtime_policy::sim
  /// (and for single-shard engines, which have nothing to overlap),
  /// otherwise the clamped thread count actually spawned.
  [[nodiscard]] std::uint32_t worker_threads() const noexcept {
    return pool_ != nullptr ? static_cast<std::uint32_t>(pool_->size()) : 0;
  }

  /// Per-shard seed derivation: a SipHash PRF keyed by route_key_seed
  /// over (domain, shard), XOR-folded into the machine seed. Distinct
  /// shards and domains (0 = the shard's ORAM RNG, 1 = its pad-id
  /// stream) get independent streams regardless of how close the base
  /// seeds are — unlike sequential seeding, nearby seeds can never
  /// alias a neighbouring shard's stream. Exposed for the RNG-hygiene
  /// regression tests.
  [[nodiscard]] static std::uint64_t derive_shard_seed(
      std::uint64_t route_key_seed, std::uint64_t seed, std::uint32_t shard,
      std::uint32_t domain);

  // --------------------------------------------------------- batch API

  /// Routes and services `requests` to completion without touching the
  /// incremental queue; per-request results land in submission order
  /// when `results` is non-null. One shard: a single controller batch,
  /// identical to the historical controller::run. Several: padded
  /// rounds until every bucket drains.
  void run(std::span<const request> requests,
           std::vector<request_result>* results = nullptr);

  // --------------------------------------- incremental round API
  // (tenant_scheduler / horam::service pump these)

  /// Validates and queues one request on its shard; returns a token
  /// identifying it in step_round() completions.
  std::uint64_t submit(request req);
  /// Requests queued but not yet serviced.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_total_;
  }
  /// Physical round slots the current queue will consume: distinct
  /// queued blocks per shard under coalescing, else pending(). The pump
  /// layer (tenant_scheduler) fills rounds against this — one access
  /// retiring many tickets must not count as many slots, or the pump
  /// would under-fill every round exactly when coalescing is winning.
  [[nodiscard]] std::size_t pending_slots() const noexcept {
    return config_.coalescing ? pending_slots_ : pending_total_;
  }
  /// Executes one engine round: every shard with work runs round_cap()
  /// request slots (all queued ones when shard_count == 1), lanes in
  /// parallel, completions delivered in global completion order.
  /// Returns false (doing nothing) when no request is queued.
  bool step_round(const completion& on_complete = {});
  /// Pumps rounds until the queue drains; per-request results (in
  /// submission order) are captured when `results` is non-null.
  void drain(std::vector<request_result>* results = nullptr);

  /// Requests an incremental pump should submit per scheduling round:
  /// the single controller's refill target, or shard_count * round_cap.
  [[nodiscard]] std::uint64_t round_budget() const;

  // ------------------------------------------------------ introspection

  /// Global virtual time: the single controller's clock, or the
  /// parallel-lane clock (rounds last their slowest shard).
  [[nodiscard]] sim::sim_time now() const noexcept;
  [[nodiscard]] const horam_config& config() const noexcept {
    return config_;
  }
  /// Aggregated controller counters across shards. Request-level
  /// counters (requests / hits / misses) exclude the router's padding
  /// traffic so hit rates and throughput stay application-level;
  /// resource counters (cycles, loads, busy times) stay raw, and
  /// total_time is the parallel wall-clock window.
  [[nodiscard]] const controller_stats& stats() const noexcept;
  [[nodiscard]] const engine_stats& router_stats() const noexcept {
    return stats_;
  }
  /// Zeroes every shard's controller and device counters plus the
  /// router counters and round log; restarts the wall-clock window.
  void reset_stats() noexcept;

  /// Bus-visible shape of recent padded router rounds (a bounded window
  /// of the most recent kRoundLogLimit rounds since the last reset):
  /// per round, the request-slot count each shard executed. Always
  /// round_cap() by construction — data-independence the audits assert;
  /// empty for single-shard engines (pure pass-through, no router).
  [[nodiscard]] const std::deque<std::vector<std::uint32_t>>& round_log()
      const noexcept {
    return round_log_;
  }
  /// Retention bound of round_log() — big enough for every audit, small
  /// enough that a service pumping rounds forever stays bounded.
  static constexpr std::size_t kRoundLogLimit = 16384;

  [[nodiscard]] controller& shard(std::uint32_t index);
  [[nodiscard]] const controller& shard(std::uint32_t index) const;
  /// The shard's device lane (null device accessors are invalid for the
  /// external-controller shim, which owns no lane).
  [[nodiscard]] sim::block_device& shard_storage(std::uint32_t index);
  [[nodiscard]] const sim::block_device& shard_storage(
      std::uint32_t index) const;
  [[nodiscard]] sim::block_device& shard_memory(std::uint32_t index);
  [[nodiscard]] const sim::block_device& shard_memory(
      std::uint32_t index) const;
  /// The shard's bus trace (null when tracing is off).
  [[nodiscard]] const oram::access_trace* shard_trace(
      std::uint32_t index) const;
  /// Global ids of the blocks shard `index` owns (empty = identity,
  /// the single-shard case).
  [[nodiscard]] std::span<const oram::block_id> shard_blocks(
      std::uint32_t index) const;

  /// Trusted-memory bytes: every shard's control layer plus the
  /// router's id-translation tables.
  [[nodiscard]] std::uint64_t control_memory_bytes() const;

 private:
  /// One routed-but-unserviced request (id already shard-local).
  struct routed {
    std::uint64_t tag = 0;
    request req;
  };
  /// One serviced request with its globally mapped result.
  struct completed {
    std::uint64_t tag = 0;
    request_result result;
  };

  struct shard_state;

  /// Routed-requests-in message: everything one lane execution needs,
  /// popped off the coordinator's queues so the queues themselves never
  /// cross a thread boundary. The coalescing table is built by the
  /// coordinator *before* fan-out — each lane receives its finished
  /// groups, so nothing round-scoped is ever shared across threads.
  struct lane_task {
    std::uint32_t shard = 0;
    /// Physical accesses to issue (ids already shard-local), each with
    /// the logical members it retires; dummy-topped up to `slots`
    /// inside the lane. Coalescing off = singleton groups.
    std::vector<coalesce::group> groups;
    std::size_t slots = 0;
    /// Whether the caller wants real-request completions back.
    bool want_out = false;
  };
  /// Completion-records-out message: the lane's whole observable
  /// outcome, merged by the coordinator in shard-index order so the
  /// merge is independent of thread finish order.
  struct lane_report {
    /// Index of the originating task in the round's task list; lets the
    /// collector place out-of-order mailbox arrivals deterministically.
    std::size_t slot = 0;
    std::uint32_t shard = 0;
    sim::sim_time elapsed = 0;
    /// Logical requests retired (group members).
    std::uint64_t reals = 0;
    /// Real physical accesses issued (groups; == reals when off).
    std::uint64_t physical = 0;
    std::uint64_t pad_requests = 0;
    std::uint64_t pad_hits = 0;
    std::uint64_t pad_misses = 0;
    std::vector<completed> completions;
    /// Failure shipped back as data; workers must not throw.
    std::exception_ptr error;
  };

  [[nodiscard]] std::uint32_t derive_round_cap() const;
  /// Executes one padded round over `queues` (per-shard routed
  /// requests); appends completions to `out` (null = discard results)
  /// and returns the number of real requests serviced.
  std::uint64_t execute_round(std::vector<std::deque<routed>>& queues,
                              std::vector<completed>* out);
  /// Open-loop execution of a whole known batch: each lane runs its
  /// entire bucket, padded to a whole number of cap rounds, as one
  /// controller batch; lanes overlap, the batch lasts the slowest one.
  std::uint64_t run_buckets(std::vector<std::deque<routed>>& buckets,
                            std::vector<completed>* out);
  /// Pure lane executor: pads task.reals to task.slots dummy-topped
  /// request slots, runs them on the task's shard and maps completions
  /// onto the global clock at `start`. Touches only that shard's state
  /// (thread-confined under the threaded runtime); router bookkeeping
  /// travels back in the report. Never throws — failures ship as
  /// report.error.
  lane_report service_lane(lane_task&& task, sim::sim_time start) noexcept;
  /// Runs every task and returns their reports in task order —
  /// sequentially on the calling thread (sim), or fanned out to the
  /// per-shard workers and collected from the report mailbox
  /// (threaded). Rethrows the first failed lane in shard-index order
  /// after every report is in.
  std::vector<lane_report> run_lanes(std::vector<lane_task>&& tasks,
                                     sim::sim_time start);
  /// Merges one lane's report into router state: stats, completions,
  /// the round's longest-lane tracking.
  void merge_report(lane_report&& report, std::vector<completed>* out,
                    sim::sim_time& longest);
  /// Appends `rounds` uniform cap-per-shard entries to the bounded
  /// round log.
  void log_rounds(std::uint64_t rounds);
  /// Incremental-queue slot accounting: one submitted entry of `local`
  /// on shard `s` was popped into a round (coalescing only).
  void note_popped(std::uint32_t s, oram::block_id local) noexcept;

  horam_config config_;
  crypto::siphash_key route_key_{};
  std::vector<std::unique_ptr<shard_state>> shards_;
  /// Global-id routing tables (empty for one shard: identity).
  std::vector<std::uint32_t> shard_index_of_;
  std::vector<oram::block_id> local_id_of_;

  std::uint32_t round_cap_ = 0;
  /// Parallel-lane global clock (shard_count > 1; one shard reads the
  /// controller's clock directly).
  sim::sim_time global_now_ = 0;
  /// Wall-clock origin of the current stats window.
  sim::sim_time stats_epoch_ = 0;

  /// Incremental queues, one per shard, tags = submit() tokens.
  std::vector<std::deque<routed>> queues_;
  std::size_t pending_total_ = 0;
  std::uint64_t next_token_ = 1;
  /// Queued entries per (shard, shard-local block) — the distinct-block
  /// view behind pending_slots() (maintained only under coalescing).
  std::vector<std::unordered_map<oram::block_id, std::uint32_t>>
      queued_counts_;
  std::size_t pending_slots_ = 0;

  engine_stats stats_;
  std::deque<std::vector<std::uint32_t>> round_log_;
  /// Cache backing the stats() reference.
  mutable controller_stats aggregate_;

  /// Threaded runtime (null under runtime_policy::sim and for
  /// single-shard engines). Declared last so workers are stopped and
  /// joined before anything they might reference is torn down.
  std::unique_ptr<runtime::mailbox<lane_report>> reports_;
  std::unique_ptr<runtime::worker_pool> pool_;
};

}  // namespace horam

#endif  // HORAM_CORE_ENGINE_H
