#include "core/storage_layer.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "util/contracts.h"
#include "util/math.h"

namespace horam {

namespace {

constexpr std::uint32_t no_pool_position =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

storage_layer::storage_layer(
    const horam_config& config, sim::block_device& device,
    const sim::cpu_model& cpu, util::random_source& rng,
    oram::access_trace* trace,
    const std::function<void(oram::block_id, std::span<std::uint8_t>)>*
        filler)
    : config_(config),
      codec_(config.payload_bytes, config.seal, config.key_seed ^ 0x5a),
      cpu_(cpu),
      rng_(rng),
      trace_(trace),
      pool_weight_(config.partition_count()) {
  config_.validate();

  const std::uint64_t partitions = config_.partition_count();
  const std::uint64_t expected =
      util::ceil_div(config_.block_count, partitions);
  const std::uint64_t main_capacity = std::max(
      expected, static_cast<std::uint64_t>(
                    config_.partition_slack * static_cast<double>(expected) +
                    1.0));

  // Append segments hold a period's evicted blocks for one partition;
  // capacity covers the binomial tail and up to shuffle_every_periods
  // pending segments.
  const std::uint64_t mean_hot =
      util::ceil_div(config_.period_loads(), partitions);
  segment_capacity_ = static_cast<std::uint64_t>(2.5 * static_cast<double>(
                                                           mean_hot)) +
                      2;
  const std::uint64_t append_capacity =
      config_.shuffle_every_periods > 1
          ? segment_capacity_ * config_.shuffle_every_periods
          : 0;

  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  store_ = std::make_unique<storage::partitioned_store>(
      device, /*base_offset=*/0,
      storage::partition_geometry{partitions, main_capacity,
                                  append_capacity},
      codec_.record_bytes(), logical);

  locations_.resize(config_.block_count);
  contents_.assign(partitions, std::vector<oram::block_id>(
                                   main_capacity + append_capacity,
                                   oram::dummy_block_id));
  pool_.resize(partitions);
  pool_position_.assign(partitions,
                        std::vector<std::uint32_t>(
                            main_capacity + append_capacity,
                            no_pool_position));
  pending_segments_.assign(partitions, 0);
  record_scratch_.resize(codec_.record_bytes());
  payload_scratch_.resize(config_.payload_bytes);

  // Initial permuted layout: a random deal of ids across partitions,
  // random slot order inside each.
  const std::vector<std::uint64_t> order =
      util::random_permutation(rng_, config_.block_count);
  std::vector<std::uint8_t> image(main_capacity * codec_.record_bytes());
  std::vector<std::uint8_t> payload(config_.payload_bytes, 0);
  std::uint64_t cursor = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    const std::uint64_t count =
        std::min(expected, config_.block_count - cursor);
    const std::vector<std::uint64_t> slots =
        util::random_permutation(rng_, main_capacity);
    std::vector<oram::block_id> slot_block(main_capacity,
                                           oram::dummy_block_id);
    for (std::uint64_t k = 0; k < count; ++k) {
      const oram::block_id id = order[cursor + k];
      slot_block[slots[k]] = id;
    }
    cursor += count;
    for (std::uint64_t i = 0; i < main_capacity; ++i) {
      const std::span<std::uint8_t> record(
          image.data() + i * codec_.record_bytes(), codec_.record_bytes());
      const oram::block_id id = slot_block[i];
      if (id == oram::dummy_block_id) {
        codec_.encode_dummy(record);
        continue;
      }
      std::fill(payload.begin(), payload.end(), 0);
      if (filler != nullptr) {
        (*filler)(id, payload);
      }
      codec_.encode(id, payload, record);
      contents_[p][i] = id;
      locations_[id] = location{residence::main_slot,
                                static_cast<std::uint32_t>(p),
                                static_cast<std::uint32_t>(i)};
    }
    store_->write_partition(p, image);
    for (std::uint32_t i = 0; i < main_capacity; ++i) {
      pool_insert(p, i);
    }
  }
  invariant(cursor == config_.block_count, "initial deal lost blocks");
  device.reset_stats();
}

std::uint32_t storage_layer::code_of(const location& loc) const {
  return loc.where == residence::main_slot
             ? loc.index
             : static_cast<std::uint32_t>(store_->geometry().main_capacity) +
                   loc.index;
}

void storage_layer::pool_insert(std::uint64_t partition,
                                std::uint32_t code) {
  invariant(pool_position_[partition][code] == no_pool_position,
            "slot already in the unaccessed pool");
  pool_position_[partition][code] =
      static_cast<std::uint32_t>(pool_[partition].size());
  pool_[partition].push_back(code);
  pool_weight_.add(partition, 1);
}

void storage_layer::pool_remove(std::uint64_t partition,
                                std::uint32_t code) {
  const std::uint32_t position = pool_position_[partition][code];
  invariant(position != no_pool_position, "slot not in the unaccessed pool");
  const std::uint32_t last = pool_[partition].back();
  pool_[partition][position] = last;
  pool_position_[partition][last] = position;
  pool_[partition].pop_back();
  pool_position_[partition][code] = no_pool_position;
  pool_weight_.add(partition, -1);
}

oram::cost_split storage_layer::consume_slot(std::uint64_t partition,
                                             std::uint32_t code,
                                             oram::block_id& decoded_out) {
  oram::cost_split cost;
  const std::uint64_t main_capacity = store_->geometry().main_capacity;
  if (code < main_capacity) {
    cost.io += store_->read_slot(partition, code, record_scratch_);
  } else {
    cost.io += store_->read_append_slot(partition, code - main_capacity,
                                        record_scratch_);
  }
  trace(trace_, oram::event_kind::storage_read_slot,
        partition * store_->geometry().slots_per_partition() + code);
  decoded_out = codec_.decode(record_scratch_, payload_scratch_);
  cost.cpu += cpu_.crypto_time(1, codec_.record_bytes());
  return cost;
}

void storage_layer::mark_cached(oram::block_id id) {
  location& loc = locations_[id];
  invariant(loc.where != residence::memory, "block already cached");
  contents_[loc.partition][code_of(loc)] = oram::dummy_block_id;
  loc.where = residence::memory;
}

bool storage_layer::in_storage(oram::block_id id) const {
  expects(id < config_.block_count, "block id out of range");
  return locations_[id].where != residence::memory;
}

oram::cost_split storage_layer::masking_reads(std::uint64_t partition) {
  // One extra read per pending segment, drawn from the partition's dead
  // unaccessed slots so live blocks are not consumed. Dead slots are
  // uniformly interspersed by the layout permutation, so the reads are
  // indistinguishable from real ones.
  oram::cost_split cost;
  const std::uint32_t masks = pending_segments_[partition];
  for (std::uint32_t m = 0; m < masks; ++m) {
    auto& pool = pool_[partition];
    std::uint32_t chosen = no_pool_position;
    for (int attempt = 0; attempt < 16 && !pool.empty(); ++attempt) {
      const std::uint32_t candidate = pool[static_cast<std::size_t>(
          util::uniform_below(rng_, pool.size()))];
      if (contents_[partition][candidate] == oram::dummy_block_id) {
        chosen = candidate;
        break;
      }
    }
    if (chosen == no_pool_position) {
      for (const std::uint32_t candidate : pool) {
        if (contents_[partition][candidate] == oram::dummy_block_id) {
          chosen = candidate;
          break;
        }
      }
    }
    if (chosen == no_pool_position) {
      break;  // no dead slot left; skip the mask (degenerate configs)
    }
    pool_remove(partition, chosen);
    oram::block_id discarded = oram::dummy_block_id;
    cost += consume_slot(partition, chosen, discarded);
    ++stats_.masking_reads;
  }
  return cost;
}

storage_layer::load_result storage_layer::load_block(oram::block_id id) {
  expects(in_storage(id), "block is not on storage");
  load_result result;
  ++stats_.real_loads;

  const location loc = locations_[id];
  const std::uint32_t target_code = code_of(loc);
  pool_remove(loc.partition, target_code);
  result.cost += masking_reads(loc.partition);

  oram::block_id decoded = oram::dummy_block_id;
  result.cost += consume_slot(loc.partition, target_code, decoded);
  invariant(decoded == id, "permutation list out of sync with storage");
  result.id = id;
  result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
  mark_cached(id);
  return result;
}

storage_layer::load_result storage_layer::dummy_load() {
  load_result result;
  ++stats_.dummy_loads;

  const std::int64_t total = pool_weight_.total();
  if (total == 0) {
    // Degenerate configuration: every slot was touched this period.
    // Keep the bus busy with a repeat read (pattern deviation counted).
    ++stats_.exhausted_dummy_loads;
    const std::uint64_t p =
        util::uniform_below(rng_, store_->geometry().partition_count);
    const std::uint32_t code = static_cast<std::uint32_t>(
        util::uniform_below(rng_, store_->geometry().main_capacity));
    oram::block_id discarded = oram::dummy_block_id;
    result.cost += consume_slot(p, code, discarded);
    return result;
  }

  const std::int64_t offset =
      static_cast<std::int64_t>(util::uniform_below(
          rng_, static_cast<std::uint64_t>(total)));
  const std::size_t partition = pool_weight_.find_by_offset(offset);
  const std::int64_t within =
      offset - pool_weight_.prefix_sum(partition);
  const std::uint32_t code =
      pool_[partition][static_cast<std::size_t>(within)];
  pool_remove(partition, code);
  result.cost += masking_reads(partition);

  oram::block_id decoded = oram::dummy_block_id;
  result.cost += consume_slot(partition, code, decoded);

  // A live block found by a dummy load is cached for free (prefetch).
  if (decoded != oram::dummy_block_id &&
      contents_[partition][code] == decoded) {
    result.id = decoded;
    result.payload.assign(payload_scratch_.begin(), payload_scratch_.end());
    mark_cached(decoded);
    ++stats_.prefetched_blocks;
  }
  return result;
}

storage_layer::shuffle_plan storage_layer::plan_shuffle(
    std::vector<oram::evicted_block> evicted, std::uint64_t period_index) {
  trace(trace_, oram::event_kind::shuffle_begin, period_index);

  const std::uint64_t partitions = store_->geometry().partition_count;
  const std::uint64_t main_capacity = store_->geometry().main_capacity;
  const std::uint32_t cadence = config_.shuffle_every_periods;
  const auto is_due = [&](std::uint64_t p) {
    return cadence == 1 || (p % cadence) == (period_index % cadence);
  };

  // Current live occupancy per partition (merge capacity planning).
  std::vector<std::uint64_t> live(partitions, 0);
  for (std::uint64_t p = 0; p < partitions; ++p) {
    for (const oram::block_id id : contents_[p]) {
      live[p] += id != oram::dummy_block_id ? 1 : 0;
    }
  }

  // Assign every evicted block to a uniformly random partition with
  // room (rejection sampling; total capacity exceeds N, so placement
  // always succeeds for due partitions — segments can overflow).
  shuffle_plan plan;
  plan.period_index = period_index;
  plan.hot.resize(partitions);
  std::vector<std::uint64_t> segment_fill(partitions, 0);
  for (oram::evicted_block& block : evicted) {
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const std::uint64_t p = util::uniform_below(rng_, partitions);
      if (is_due(p)) {
        if (live[p] + plan.hot[p].size() < main_capacity) {
          plan.hot[p].push_back(std::move(block));
          placed = true;
        }
      } else if (segment_fill[p] < segment_capacity_ &&
                 pending_segments_[p] + 1 <= cadence) {
        ++segment_fill[p];
        plan.hot[p].push_back(std::move(block));
        placed = true;
      }
    }
    if (!placed) {
      // Deterministic fallback: first due partition with room.
      for (std::uint64_t p = 0; p < partitions && !placed; ++p) {
        if (is_due(p) && live[p] + plan.hot[p].size() < main_capacity) {
          plan.hot[p].push_back(std::move(block));
          placed = true;
        }
      }
    }
    if (!placed) {
      ++stats_.overflow_blocks;
      plan.overflow.push_back(std::move(block));
    }
  }
  return plan;
}

shuffle_cost storage_layer::shuffle_partition_step(shuffle_plan& plan,
                                                   std::uint64_t p) {
  shuffle_cost cost;
  const std::uint64_t main_capacity = store_->geometry().main_capacity;
  const std::size_t record_bytes = codec_.record_bytes();
  const std::uint32_t cadence = config_.shuffle_every_periods;
  const bool due = cadence == 1 ||
                   (p % cadence) == (plan.period_index % cadence);
  std::vector<oram::evicted_block>& hot = plan.hot[p];

  if (!due) {
    // Append this period's segment (exact size; the assignment is
    // fresh uniform randomness, so its size is data-independent).
    if (hot.empty()) {
      return cost;
    }
    const std::uint64_t base = store_->appended_count(p);
    std::vector<std::uint8_t> segment(hot.size() * record_bytes);
    for (std::uint64_t k = 0; k < hot.size(); ++k) {
      codec_.encode(hot[k].id, hot[k].payload,
                    std::span<std::uint8_t>(
                        segment.data() + k * record_bytes, record_bytes));
      const std::uint32_t append_index =
          static_cast<std::uint32_t>(base + k);
      locations_[hot[k].id] =
          location{residence::append_slot,
                   static_cast<std::uint32_t>(p), append_index};
      const std::uint32_t code =
          static_cast<std::uint32_t>(main_capacity) + append_index;
      contents_[p][code] = hot[k].id;
      if (pool_position_[p][code] != no_pool_position) {
        pool_remove(p, code);  // stale pool entry from a prior epoch
      }
      pool_insert(p, code);
    }
    cost.io_write += store_->append(p, segment);
    cost.cpu += cpu_.crypto_time(hot.size(), record_bytes);
    ++pending_segments_[p];
    ++stats_.append_segments;
    trace(trace_, oram::event_kind::storage_write_sweep,
          p * store_->geometry().slots_per_partition() + main_capacity +
              base,
          hot.size());
    return cost;
  }

  // Due partition: stream in (cold data + pending appends), merge
  // with its hot share in trusted memory, re-permute, stream out.
  std::vector<std::uint8_t>& image = shuffle_image_scratch_;
  std::uint64_t records_read = 0;
  cost.io_read += store_->read_partition(p, /*include_appends=*/true,
                                         image, records_read);
  trace(trace_, oram::event_kind::storage_read_sweep,
        p * store_->geometry().slots_per_partition(), records_read);
  cost.cpu += cpu_.crypto_time(records_read, record_bytes);

  struct staged {
    oram::block_id id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<staged> blocks;
  blocks.reserve(records_read + hot.size());
  for (std::uint64_t code = 0; code < records_read; ++code) {
    const oram::block_id id = contents_[p][code];
    if (id == oram::dummy_block_id) {
      continue;
    }
    const oram::block_id decoded = codec_.decode(
        std::span<const std::uint8_t>(image.data() + code * record_bytes,
                                      record_bytes),
        payload_scratch_);
    invariant(decoded == id, "partition contents out of sync");
    blocks.push_back(staged{id, std::vector<std::uint8_t>(
                                    payload_scratch_.begin(),
                                    payload_scratch_.end())});
  }
  for (oram::evicted_block& block : hot) {
    blocks.push_back(staged{block.id, std::move(block.payload)});
  }
  // With partial shuffling, survivors + pending appends + new hot data
  // can exceed the main region; the excess waits in the control-layer
  // shelter until the next period (bounded by the capacity slack).
  while (blocks.size() > main_capacity) {
    staged& excess = blocks.back();
    locations_[excess.id] = location{residence::memory, 0, 0};
    plan.overflow.push_back(
        oram::evicted_block{excess.id, std::move(excess.payload)});
    blocks.pop_back();
    ++stats_.overflow_blocks;
  }

  // Fresh in-partition permutation (in-memory shuffle; the paper uses
  // CacheShuffle here — with the partition resident in trusted memory
  // it reduces to a uniform in-memory shuffle).
  const std::vector<std::uint64_t> slot_order =
      util::random_permutation(rng_, main_capacity);
  std::fill(contents_[p].begin(), contents_[p].end(),
            oram::dummy_block_id);
  std::vector<std::uint8_t>& out = shuffle_out_scratch_;
  out.resize(main_capacity * record_bytes);
  for (std::uint64_t i = 0; i < main_capacity; ++i) {
    codec_.encode_dummy(std::span<std::uint8_t>(
        out.data() + i * record_bytes, record_bytes));
  }
  for (std::uint64_t k = 0; k < blocks.size(); ++k) {
    const std::uint32_t index =
        static_cast<std::uint32_t>(slot_order[k]);
    codec_.encode(blocks[k].id, blocks[k].payload,
                  std::span<std::uint8_t>(
                      out.data() + index * record_bytes, record_bytes));
    contents_[p][index] = blocks[k].id;
    locations_[blocks[k].id] = location{
        residence::main_slot, static_cast<std::uint32_t>(p), index};
  }
  cost.cpu += cpu_.crypto_time(main_capacity, record_bytes);
  cost.cpu += cpu_.word_ops_time(main_capacity);

  cost.io_write += store_->write_partition(p, out);
  trace(trace_, oram::event_kind::shuffle_partition, p);
  trace(trace_, oram::event_kind::storage_write_sweep,
        p * store_->geometry().slots_per_partition(), main_capacity);
  ++stats_.partitions_shuffled;

  // Every slot of the re-permuted partition is fresh again.
  for (std::uint32_t code = 0;
       code < contents_[p].size(); ++code) {
    const bool in_pool = pool_position_[p][code] != no_pool_position;
    if (code < main_capacity) {
      if (!in_pool) {
        pool_insert(p, code);
      }
    } else if (in_pool) {
      pool_remove(p, code);  // append region is empty after the merge
    }
  }
  pending_segments_[p] = 0;
  return cost;
}

/// Incremental shuffle over the partitioned layout: whole partitions
/// are the slice unit, processed strictly left to right (§4.3.2) until
/// the device budget is spent. Hot blocks stay staged (and servable)
/// until their partition lands.
class partitioned_shuffle_job final : public shuffle_job {
 public:
  partitioned_shuffle_job(storage_layer& owner,
                          std::vector<oram::evicted_block> evicted,
                          std::uint64_t period_index)
      : owner_(owner),
        plan_(owner.plan_shuffle(std::move(evicted), period_index)) {
    for (std::uint64_t p = 0; p < plan_.hot.size(); ++p) {
      for (std::size_t k = 0; k < plan_.hot[p].size(); ++k) {
        staged_.emplace(plan_.hot[p][k].id, staged_ref{p, k, false});
      }
    }
    for (std::size_t k = 0; k < plan_.overflow.size(); ++k) {
      staged_.emplace(plan_.overflow[k].id, staged_ref{0, k, true});
    }
  }

  shuffle_cost step(sim::sim_time device_budget) override {
    expects(!done(), "shuffle_job::step() after done()");
    shuffle_cost slice;
    const std::uint64_t partitions = plan_.hot.size();
    while (next_partition_ < partitions) {
      const std::uint64_t p = next_partition_++;
      // Snapshot this partition's hot ids before processing so the
      // staging index can be reconciled afterwards (placed blocks drop
      // out, merge excess moves to the overflow list).
      ids_scratch_.clear();
      for (const oram::evicted_block& block : plan_.hot[p]) {
        ids_scratch_.push_back(block.id);
      }
      const std::size_t overflow_before = plan_.overflow.size();
      slice += owner_.shuffle_partition_step(plan_, p);
      for (const oram::block_id id : ids_scratch_) {
        staged_.erase(id);
      }
      for (std::size_t k = overflow_before; k < plan_.overflow.size();
           ++k) {
        staged_[plan_.overflow[k].id] = staged_ref{0, k, true};
      }
      if (device_budget > 0 && slice.total() >= device_budget) {
        break;
      }
    }
    return slice;
  }

  [[nodiscard]] bool done() const noexcept override {
    return next_partition_ >= plan_.hot.size();
  }

  [[nodiscard]] bool holds(oram::block_id id) const override {
    return staged_.contains(id);
  }

  [[nodiscard]] std::vector<std::uint8_t>* staged(
      oram::block_id id) override {
    const auto it = staged_.find(id);
    if (it == staged_.end()) {
      return nullptr;
    }
    const staged_ref& ref = it->second;
    return ref.in_overflow ? &plan_.overflow[ref.index].payload
                           : &plan_.hot[ref.partition][ref.index].payload;
  }

  void finish(std::vector<oram::evicted_block>& overflow_out) override {
    expects(done(), "shuffle_job::finish() before done()");
    expects(!finished_, "shuffle_job::finish() called twice");
    for (oram::evicted_block& block : plan_.overflow) {
      overflow_out.push_back(std::move(block));
    }
    plan_.overflow.clear();
    staged_.clear();
    finished_ = true;
  }

 private:
  /// Where a still-staged block lives: plan_.hot[partition][index], or
  /// plan_.overflow[index] when in_overflow.
  struct staged_ref {
    std::uint64_t partition = 0;
    std::size_t index = 0;
    bool in_overflow = false;
  };

  storage_layer& owner_;
  storage_layer::shuffle_plan plan_;
  std::unordered_map<oram::block_id, staged_ref> staged_;
  std::vector<oram::block_id> ids_scratch_;
  std::uint64_t next_partition_ = 0;
  bool finished_ = false;
};

std::unique_ptr<shuffle_job> storage_layer::begin_shuffle(
    std::vector<oram::evicted_block> evicted, std::uint64_t period_index) {
  return std::make_unique<partitioned_shuffle_job>(
      *this, std::move(evicted), period_index);
}

shuffle_cost storage_layer::shuffle_period(
    std::vector<oram::evicted_block> evicted, std::uint64_t period_index,
    std::vector<oram::evicted_block>& overflow_out) {
  std::unique_ptr<shuffle_job> job =
      begin_shuffle(std::move(evicted), period_index);
  shuffle_cost cost;
  while (!job->done()) {
    cost += job->step(0);
  }
  job->finish(overflow_out);
  return cost;
}

std::uint64_t storage_layer::physical_bytes() const {
  const std::uint64_t logical = config_.logical_block_bytes != 0
                                    ? config_.logical_block_bytes
                                    : codec_.record_bytes();
  return store_->geometry().total_slots() * logical;
}

std::uint64_t storage_layer::control_memory_bytes() const {
  // Permutation list (residence bit + partition + slot, ~9 bytes per
  // block) plus the unaccessed-slot pools and their position index.
  return config_.block_count * 9 + store_->geometry().total_slots() * 8;
}

std::uint64_t storage_layer::pending_segments(
    std::uint64_t partition) const {
  expects(partition < pending_segments_.size(), "partition out of range");
  return pending_segments_[partition];
}

std::uint64_t storage_layer::unaccessed_slot_count() const {
  return static_cast<std::uint64_t>(pool_weight_.total());
}

void storage_layer::check_consistency() const {
  const std::uint64_t partitions = store_->geometry().partition_count;
  const std::uint64_t main_capacity = store_->geometry().main_capacity;

  // 1) Locations vs slot contents: every storage-resident block must
  // sit exactly where its permutation-list entry says.
  std::uint64_t storage_resident = 0;
  for (oram::block_id id = 0; id < config_.block_count; ++id) {
    const location& loc = locations_[id];
    if (loc.where == residence::memory) {
      continue;
    }
    ++storage_resident;
    invariant(loc.partition < partitions,
              "location points outside the partition space");
    const std::uint32_t code = code_of(loc);
    invariant(code < contents_[loc.partition].size(),
              "location points outside the slot space");
    invariant(contents_[loc.partition][code] == id,
              "slot contents disagree with the permutation list");
  }

  // 2) Contents vs locations (the other direction), and live census.
  std::uint64_t live = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    for (std::uint32_t code = 0; code < contents_[p].size(); ++code) {
      const oram::block_id id = contents_[p][code];
      if (id == oram::dummy_block_id) {
        continue;
      }
      ++live;
      invariant(id < config_.block_count, "slot holds an unknown block");
      invariant(locations_[id].where != residence::memory,
                "slot holds a block the list says is cached");
      invariant(code_of(locations_[id]) == code &&
                    locations_[id].partition == p,
                "slot holds a block mapped elsewhere");
    }
  }
  invariant(live == storage_resident,
            "live census disagrees with the permutation list");

  // 3) Pools vs their position index and the Fenwick weights.
  std::int64_t pooled = 0;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    invariant(pool_weight_.prefix_sum(p + 1) - pool_weight_.prefix_sum(p) ==
                  static_cast<std::int64_t>(pool_[p].size()),
              "Fenwick weight disagrees with the pool size");
    pooled += static_cast<std::int64_t>(pool_[p].size());
    for (std::uint32_t position = 0; position < pool_[p].size();
         ++position) {
      const std::uint32_t code = pool_[p][position];
      invariant(pool_position_[p][code] == position,
                "pool position index out of sync");
      // Pool entries only reference the main region or used appends.
      invariant(code < main_capacity ||
                    code - main_capacity < store_->appended_count(p),
                "pool references an unused append slot");
    }
  }
  invariant(pooled == pool_weight_.total(),
            "Fenwick total disagrees with the pools");
}

}  // namespace horam
