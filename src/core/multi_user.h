// Multi-tenant scheduling layer (§5.3.2).
//
// H-ORAM inherits the square-root family's support for group accesses:
// requests from several users can share one scheduling group, so adding
// users raises throughput instead of serialising whole ORAM accesses.
//
// The tenant_scheduler is the core of that support: per-tenant admission
// queues (with access-control grants and an optional depth limit) are
// interleaved into the controller's request stream round by round, one
// pluggable fairness_policy pick at a time. It is deliberately
// incremental — callers pump step() and interleave new submissions with
// service, which is what the facade-level horam::service builds its
// asynchronous session/ticket API on. The historical batch-only
// multi_user_frontend survives as a thin compatibility shim on top.
#ifndef HORAM_CORE_MULTI_USER_H
#define HORAM_CORE_MULTI_USER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/controller.h"
#include "core/engine.h"
#include "core/fairness.h"

namespace horam {

/// Per-user outcome of a multi-user run.
struct user_summary {
  std::uint32_t user = 0;
  std::uint64_t requests = 0;
  sim::sim_time mean_latency = 0;
  sim::sim_time max_latency = 0;
};

/// Aggregate outcome of a multi-user run.
struct multi_user_summary {
  std::vector<user_summary> users;
  sim::sim_time makespan = 0;
  /// Requests per virtual second across all users.
  double throughput = 0.0;
};

/// Per-tenant access-control entry: the half-open block range a tenant
/// may touch (§5.3.2: "some access control protection is required and
/// can be added to our scheduler").
struct user_grant {
  oram::block_id first = 0;
  oram::block_id last = 0;  // exclusive

  [[nodiscard]] bool allows(oram::block_id id) const noexcept {
    return id >= first && id < last;
  }
};

/// Thrown when a request violates its tenant's grant.
class access_denied : public std::runtime_error {
 public:
  access_denied(std::uint32_t user, oram::block_id id)
      : std::runtime_error("user " + std::to_string(user) +
                           " may not access block " + std::to_string(id)),
        user(user),
        id(id) {}

  std::uint32_t user;
  oram::block_id id;
};

/// Thrown when a tenant's admission queue is at its depth limit.
class queue_overflow : public std::runtime_error {
 public:
  queue_overflow(std::uint32_t tenant, std::size_t depth)
      : std::runtime_error("tenant " + std::to_string(tenant) +
                           " admission queue full (depth " +
                           std::to_string(depth) + ")"),
        tenant(tenant),
        depth(depth) {}

  std::uint32_t tenant;
  std::size_t depth;
};

/// Per-tenant counters since construction or the last reset_stats().
struct tenant_stats {
  std::uint32_t tenant = 0;
  double weight = 1.0;
  /// Requests admitted (including those still queued).
  std::uint64_t submitted = 0;
  /// Requests serviced to completion.
  std::uint64_t completed = 0;
  /// Current admission-queue depth (snapshot, not since reset).
  std::size_t queued = 0;
  /// Simulated latency (completion - submission) over completed
  /// requests; queueing time counts.
  sim::sim_time total_latency = 0;
  sim::sim_time max_latency = 0;
  /// Completed requests per virtual second since the stats epoch.
  double throughput = 0.0;
  /// Streaming latency distribution of the same completions
  /// (p50/p95/p99/max) — the application-level tail the deamortized
  /// shuffle pipeline is measured by.
  sim::latency_histogram latency;

  [[nodiscard]] sim::sim_time mean_latency() const noexcept {
    return completed == 0
               ? 0
               : total_latency / static_cast<sim::sim_time>(completed);
  }
};

/// Incremental cross-tenant scheduler over one sharded engine.
///
/// Admission (enqueue) validates the block id and the tenant's grant
/// immediately — a rejected request leaves no observable trace — and
/// enforces the optional per-tenant queue-depth limit. step() serves one
/// scheduling round: it pops up to engine.round_budget() requests, one
/// fairness_policy pick at a time, hands them to the engine's batch
/// router (which buckets them across shards and pads each shard's round
/// to the public cap), and reports each completion through the callback
/// with its simulated queueing + service latency. With one shard every
/// popped request completes within the same step — the historical
/// single-controller behavior; with several, requests may ride in the
/// engine for a few rounds and complete in a later step.
class tenant_scheduler {
 public:
  /// Completion delivery: tenant, the sequence number enqueue()
  /// returned, the engine's result (completion_time on the global
  /// clock), and the simulated latency.
  using completion = std::function<void(
      std::uint32_t tenant, std::uint64_t seq, request_result&& result,
      sim::sim_time latency)>;

  /// `max_queue_depth` bounds each tenant's admission queue
  /// (0 = unlimited).
  tenant_scheduler(engine& eng, std::unique_ptr<fairness_policy> policy,
                   std::size_t max_queue_depth = 0);

  /// Registers a tenant with relative share weight `weight` (> 0);
  /// returns its id (dense, starting at 0).
  std::uint32_t add_tenant(double weight = 1.0);

  /// Restricts `tenant` to `grant`. Tenants without a grant may touch
  /// everything (single-tenant compatibility).
  void grant(std::uint32_t tenant, user_grant grant);

  /// Admits one request for `tenant`; returns its sequence number.
  /// Throws access_denied / queue_overflow / contract_error before the
  /// request is queued, so rejection is trace-free.
  std::uint64_t enqueue(std::uint32_t tenant, request req);

  /// Serves one scheduling round; returns false (doing nothing) when
  /// every queue is empty.
  bool step(const completion& on_complete = {});

  /// Pumps step() until every queue is drained.
  void run_until_idle(const completion& on_complete = {});

  [[nodiscard]] bool idle() const noexcept {
    return queued_total_ == 0 && inflight_.empty();
  }
  /// Requests admitted but not yet serviced, across all tenants
  /// (admission queues plus requests riding in the engine).
  [[nodiscard]] std::size_t queued() const noexcept {
    return queued_total_ + inflight_.size();
  }
  [[nodiscard]] std::size_t queued(std::uint32_t tenant) const;
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return lanes_.size();
  }

  /// Snapshot of one tenant's counters (throughput uses virtual time
  /// elapsed since the stats epoch).
  [[nodiscard]] tenant_stats stats(std::uint32_t tenant) const;

  /// Zeroes every tenant's counters and restarts the throughput epoch
  /// (policy rotation state is preserved).
  void reset_stats();

  [[nodiscard]] const fairness_policy& policy() const noexcept {
    return *policy_;
  }

 private:
  struct queued_request {
    std::uint64_t seq = 0;
    sim::sim_time submitted = 0;
    request req;
  };
  struct lane {
    double weight = 1.0;
    std::deque<queued_request> queue;
    /// Requests handed to the engine but not yet completed.
    std::size_t inflight = 0;
    /// Lifetime service count the fairness policy sees (never reset, so
    /// a stats reset cannot cause a proportional-share catch-up burst).
    std::uint64_t serviced = 0;
    tenant_stats stats;
  };
  /// What we remember about a request riding in the engine, keyed by
  /// the engine's submit token.
  struct inflight_meta {
    std::uint32_t tenant = 0;
    std::uint64_t seq = 0;
    sim::sim_time submitted = 0;
  };

  engine& engine_;
  std::unique_ptr<fairness_policy> policy_;
  std::size_t max_queue_depth_;
  std::vector<lane> lanes_;
  std::unordered_map<std::uint32_t, user_grant> grants_;
  std::unordered_map<std::uint64_t, inflight_meta> inflight_;
  std::size_t queued_total_ = 0;
  std::uint64_t next_seq_ = 1;
  /// WFQ virtual clock: the highest pass ((serviced + 1) / weight) ever
  /// dispatched. Lanes that go backlogged restart from here, so neither
  /// veterans nor late joiners can monopolize the weighted-share policy
  /// (persists across idle periods; never reset).
  double virtual_pass_ = 0.0;
  /// Virtual-time origin for throughput reporting.
  sim::sim_time stats_epoch_ = 0;
};

/// Batch-only compatibility shim over tenant_scheduler: interleaves the
/// per-user queues round-robin, runs them to completion and splits the
/// latency statistics back out per user — the historical §5.3.2 front
/// end. New code should use horam::service (facade) or tenant_scheduler
/// directly.
class multi_user_frontend {
 public:
  /// Wraps a bare controller as a single pass-through engine shard.
  explicit multi_user_frontend(controller& ctrl)
      : controller_(ctrl), shim_(ctrl) {}

  /// Restricts user `user` to `grant`. Users without a grant may touch
  /// everything (single-tenant compatibility).
  void grant(std::uint32_t user, user_grant grant);

  /// Interleaves the user queues round-robin and runs them to
  /// completion. Request `user` fields are overwritten with the queue
  /// index. Throws access_denied if a request violates its user's
  /// grant — before anything reaches the ORAM, so a rejected request
  /// leaves no trace on the bus.
  multi_user_summary run(std::vector<std::vector<request>> per_user);

 private:
  controller& controller_;
  /// Single-shard engine view of the wrapped controller, pumped by the
  /// tenant_scheduler each run().
  engine shim_;
  std::unordered_map<std::uint32_t, user_grant> grants_;
};

}  // namespace horam

#endif  // HORAM_CORE_MULTI_USER_H
