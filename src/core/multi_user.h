// Multi-user front end (§5.3.2).
//
// H-ORAM inherits the square-root family's support for group accesses:
// requests from several users can share one scheduling group, so adding
// users raises throughput instead of serialising whole ORAM accesses.
// The front end interleaves per-user queues round-robin into one
// request stream (simple fair access control), runs it through the
// controller, and splits latency statistics back out per user.
#ifndef HORAM_CORE_MULTI_USER_H
#define HORAM_CORE_MULTI_USER_H

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/controller.h"

namespace horam {

/// Per-user outcome of a multi-user run.
struct user_summary {
  std::uint32_t user = 0;
  std::uint64_t requests = 0;
  sim::sim_time mean_latency = 0;
  sim::sim_time max_latency = 0;
};

/// Aggregate outcome of a multi-user run.
struct multi_user_summary {
  std::vector<user_summary> users;
  sim::sim_time makespan = 0;
  /// Requests per virtual second across all users.
  double throughput = 0.0;
};

/// Per-user access-control entry: the half-open block range a user may
/// touch (§5.3.2: "some access control protection is required and can
/// be added to our scheduler").
struct user_grant {
  oram::block_id first = 0;
  oram::block_id last = 0;  // exclusive

  [[nodiscard]] bool allows(oram::block_id id) const noexcept {
    return id >= first && id < last;
  }
};

class multi_user_frontend {
 public:
  explicit multi_user_frontend(controller& ctrl) : controller_(ctrl) {}

  /// Restricts user `user` to `grant`. Users without a grant may touch
  /// everything (single-tenant compatibility).
  void grant(std::uint32_t user, user_grant grant);

  /// Interleaves the user queues round-robin and runs them to
  /// completion. Request `user` fields are overwritten with the queue
  /// index. Throws access_denied if a request violates its user's
  /// grant — before anything reaches the ORAM, so a rejected request
  /// leaves no trace on the bus.
  multi_user_summary run(std::vector<std::vector<request>> per_user);

 private:
  controller& controller_;
  std::unordered_map<std::uint32_t, user_grant> grants_;
};

/// Thrown when a request violates its user's grant.
class access_denied : public std::runtime_error {
 public:
  access_denied(std::uint32_t user, oram::block_id id)
      : std::runtime_error("user " + std::to_string(user) +
                           " may not access block " + std::to_string(id)),
        user(user),
        id(id) {}

  std::uint32_t user;
  oram::block_id id;
};

}  // namespace horam

#endif  // HORAM_CORE_MULTI_USER_H
