// The pluggable oblivious-store interface behind the H-ORAM controller.
//
// The paper presents H-ORAM as a cacheable ORAM *interface*: the
// controller owns the in-memory cache tree, the ROB and the scheduler,
// and drives an underlying oblivious store through exactly four
// bus-relevant operations — load a missed block, issue a dummy load,
// answer residency queries, and absorb the evicted hot set during the
// shuffle period. Any scheme that can answer those calls with the right
// obliviousness guarantees can sit below the controller; this header
// names the contract.
//
// Contract (what the controller guarantees / expects):
//   * Construction leaves every block of the configured id space on
//     storage with its initial payload; device statistics are reset so
//     initialisation is not measured.
//   * load_block(id) is only called while in_storage(id) is true; the
//     block afterwards counts as cached (in_storage(id) == false) until
//     a shuffle_period() re-places it.
//   * dummy_load() may opportunistically return a live block (prefetch);
//     the controller installs whatever comes back into its cache tree.
//   * shuffle_period() receives every cached block (tree eviction plus
//     control-layer shelter). Blocks the scheme cannot place are handed
//     back via `overflow_out` and return with the next period's batch.
//   * begin_shuffle() is the deamortized form of the same contract: it
//     returns a shuffle_job whose step()s run the period in bounded
//     device-time slices between foreground rounds. Evicted blocks the
//     job has not placed yet stay readable/writable through staged(),
//     so the controller can keep serving them (covered by dummy path
//     accesses) while the shuffle is in flight. Driving a fresh job to
//     completion in one unbounded step is exactly shuffle_period().
//   * check_consistency() performs a deep audit of the control-layer
//     bookkeeping and throws util::contract_error on the first
//     inconsistency (tests call it after stress runs).
#ifndef HORAM_CORE_ORAM_BACKEND_H
#define HORAM_CORE_ORAM_BACKEND_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "oram/common/types.h"
#include "sim/time.h"

namespace horam {

/// Counters shared by every backend. Fields a scheme has no analogue
/// for simply stay zero (e.g. append_segments outside the partitioned
/// store, masking_reads outside partial shuffling).
struct backend_stats {
  std::uint64_t real_loads = 0;
  std::uint64_t dummy_loads = 0;
  std::uint64_t prefetched_blocks = 0;  // live blocks found by dummy loads
  std::uint64_t masking_reads = 0;      // partial-shuffle redundancy
  std::uint64_t exhausted_dummy_loads = 0;  // degenerate: no unread slot
  std::uint64_t partitions_shuffled = 0;
  std::uint64_t append_segments = 0;
  std::uint64_t overflow_blocks = 0;  // could not be placed; to shelter
};

/// Device-time split of one shuffle period, kept separate so the
/// controller can apply the configured shuffle_policy.
struct shuffle_cost {
  sim::sim_time io_read = 0;
  sim::sim_time io_write = 0;
  sim::sim_time memory = 0;
  sim::sim_time cpu = 0;

  [[nodiscard]] sim::sim_time total() const noexcept {
    return io_read + io_write + memory + cpu;
  }

  shuffle_cost& operator+=(const shuffle_cost& other) noexcept {
    io_read += other.io_read;
    io_write += other.io_write;
    memory += other.memory;
    cpu += other.cpu;
    return *this;
  }
};

/// One in-flight shuffle period, stepped in bounded device-time slices
/// (oram_backend::begin_shuffle). Lifecycle: step() until done(), then
/// finish() exactly once. Each step advances at least one indivisible
/// unit of work (a partition rewrite, a stash-drain access), so bounded
/// budgets always terminate; a unit may overshoot the budget — the
/// caller charges what the slice actually cost.
class shuffle_job {
 public:
  virtual ~shuffle_job() = default;

  /// Runs shuffle slices worth at least `device_budget` device time
  /// (<= 0 = unbounded: run the rest of the period) and returns the
  /// slice's device-time split.
  virtual shuffle_cost step(sim::sim_time device_budget) = 0;

  /// True once no work remains (finish() may be called).
  [[nodiscard]] virtual bool done() const noexcept = 0;

  /// True while the job still holds the live copy of `id` in its
  /// trusted-memory staging area (evicted but not yet placed).
  [[nodiscard]] virtual bool holds(oram::block_id id) const = 0;

  /// The staged payload of `id`, or null once the block has been
  /// placed. The controller serves reads from — and writes through
  /// into — this copy (covered by dummy path accesses) while the job
  /// is in flight, so staged blocks stay coherent.
  [[nodiscard]] virtual std::vector<std::uint8_t>* staged(
      oram::block_id id) = 0;

  /// Completes the period: hands back the blocks the scheme could not
  /// place (the controller shelters them). Call exactly once, after
  /// done().
  virtual void finish(std::vector<oram::evicted_block>& overflow_out) = 0;
};

class oram_backend {
 public:
  /// Result of a storage load.
  struct load_result {
    oram::cost_split cost;
    /// Block brought into memory (dummy_block_id if the load was a
    /// dummy that found no live block).
    oram::block_id id = oram::dummy_block_id;
    std::vector<std::uint8_t> payload;
  };

  virtual ~oram_backend() = default;

  /// Human-readable scheme name (reports, comparisons).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True iff the live copy of `id` is on storage (not cached).
  [[nodiscard]] virtual bool in_storage(oram::block_id id) const = 0;

  /// Loads the live copy of `id` (must be in storage); marks it cached.
  virtual load_result load_block(oram::block_id id) = 0;

  /// Loads a scheme-chosen dead or unaccessed slot; any live block found
  /// becomes cached (prefetch).
  virtual load_result dummy_load() = 0;

  /// Runs one shuffle period: folds `evicted` (the controller's whole
  /// hot set) back into the layout and re-randomises whatever the scheme
  /// re-randomises. Blocks that cannot be placed go to `overflow_out`.
  virtual shuffle_cost shuffle_period(
      std::vector<oram::evicted_block> evicted, std::uint64_t period_index,
      std::vector<oram::evicted_block>& overflow_out) = 0;

  /// Begins the same period as an incremental job (see shuffle_job).
  /// The default adapter wraps the monolithic shuffle_period(): one
  /// step() does everything, whatever the budget — correct for every
  /// scheme, deamortized for none. Backends with a natural slice
  /// granularity (the partitioned layer: partition at a time; the path
  /// backend: install/drain access at a time) override it; their
  /// shuffle_period() is then the wrapper, so the two entry points stay
  /// bit-for-bit interchangeable by construction.
  [[nodiscard]] virtual std::unique_ptr<shuffle_job> begin_shuffle(
      std::vector<oram::evicted_block> evicted, std::uint64_t period_index);

  [[nodiscard]] virtual const backend_stats& stats() const noexcept = 0;

  /// Physical bytes the storage layout occupies (reporting).
  [[nodiscard]] virtual std::uint64_t physical_bytes() const = 0;

  /// Trusted-memory bytes of the scheme's control-layer bookkeeping
  /// (permutation lists, pools; reporting).
  [[nodiscard]] virtual std::uint64_t control_memory_bytes() const = 0;

  /// Deep audit of the control-layer state; throws contract_error on
  /// the first inconsistency.
  virtual void check_consistency() const = 0;
};

}  // namespace horam

#endif  // HORAM_CORE_ORAM_BACKEND_H
